// Shared scaffolding for the fuzz harnesses (see DESIGN.md "Fuzzing &
// coverage").
//
// Every harness is one .cpp file defining LLVMFuzzerTestOneInput and
// compiles two ways from the same source:
//
//   libFuzzer mode   (LCRS_FUZZ=ON, Clang): -fsanitize=fuzzer,address,
//                    undefined provides the driver; the harness explores
//                    inputs coverage-guided from fuzz/corpus/<name>/.
//   standalone mode  (always built, any compiler): LCRS_FUZZ_STANDALONE
//                    makes this header supply a main() that replays every
//                    file under the corpus directories given on the
//                    command line. Registered as ctest targets, so the
//                    committed corpus -- seeds plus minimized crashers --
//                    is a permanent tier-1 regression suite.
//
// Harness contract: for ANY input bytes the harness must return normally
// or reject via lcrs::Error. Any other escaping exception, any signal,
// any sanitizer report, and any FUZZ_ASSERT failure is a finding. New
// crashers get minimized, committed to fuzz/corpus/<name>/crasher-*, and
// fixed in the same change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

// The single entry point both drivers call.
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

// Oracle check inside a harness. Not a gtest macro on purpose: in
// libFuzzer mode there is no test framework, and abort() is what both
// libFuzzer and ctest report as a crash.
#define FUZZ_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FUZZ_ASSERT failed: (%s) at %s:%d -- %s\n",     \
                   #cond, __FILE__, __LINE__, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

namespace lcrs::fuzz {

/// Consume-from-front structured decoder: turns raw fuzz bytes into the
/// bounded shapes / op-codes / float payloads the structure-aware
/// harnesses need. Running out of input yields zeros, so every byte
/// string decodes to *some* valid structure (no rejected inputs means no
/// wasted fuzz executions).
class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  std::uint8_t take_u8() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::uint32_t take_u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(take_u8()) << (8 * i);
    }
    return v;
  }

  /// Uniform-ish draw in [lo, hi] driven by one input byte (two for wide
  /// ranges). Keeps kernel shapes small so each execution stays fast.
  std::int64_t take_range(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    std::uint64_t raw = take_u8();
    if (span > 256) raw = raw << 8 | take_u8();
    return lo + static_cast<std::int64_t>(raw % span);
  }

  /// A finite float in roughly [-8, 8] (plus exact 0 with probability
  /// 1/16, to probe sign(0) = +1 conventions). Never NaN/Inf, so float
  /// oracles can use relative tolerances without special cases.
  float take_f32() {
    const std::uint8_t hi = take_u8();
    if ((hi & 0x0f) == 0) return 0.0f;
    const std::uint8_t lo = take_u8();
    const int mag = ((hi << 8) | lo) & 0x7fff;            // 0 .. 32767
    const float v = static_cast<float>(mag - 16384) / 2048.0f;
    return v;
  }

  /// The rest of the input verbatim (for harnesses that hand raw bytes to
  /// a parser after slicing off a structured prefix).
  std::vector<std::uint8_t> take_rest() {
    std::vector<std::uint8_t> out(data_ + pos_, data_ + size_);
    pos_ = size_;
    return out;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace lcrs::fuzz

#ifdef LCRS_FUZZ_STANDALONE

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>

// Standalone corpus-replay driver: feeds every regular file under each
// argument (file or directory, recursively) through the harness. Mirrors
// llvm's StandaloneFuzzTargetMain so the exact same corpus drives both
// modes.
int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t executed = 0;
  for (int i = 1; i < argc; ++i) {
    std::vector<fs::path> files;
    const fs::path root(argv[i]);
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(root)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "no such corpus input: %s\n", argv[i]);
      return 2;
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      std::ifstream in(path, std::ios::binary);
      std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      std::printf("replay %s (%zu bytes)\n", path.c_str(), bytes.size());
      std::fflush(stdout);
      LLVMFuzzerTestOneInput(
          reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
      ++executed;
    }
  }
  std::printf("replayed %zu corpus input(s), all clean\n", executed);
  return 0;
}

#endif  // LCRS_FUZZ_STANDALONE
