// Tensor deserializer harness: raw bytes -> read_tensor.
//
// Oracles: an accepted tensor re-serializes to exactly the bytes that
// were consumed (the format is canonical and self-delimiting), the
// re-serialized size matches tensor_wire_bytes, and a second read of the
// re-serialized bytes is bit-identical.
#include <cstring>

#include "fuzz_util.h"
#include "tensor/serialize.h"

using namespace lcrs;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 20)) return 0;
  const std::vector<std::uint8_t> bytes(data, data + size);
  ByteReader r(bytes);
  try {
    const Tensor t = read_tensor(r);
    const std::size_t consumed = bytes.size() - r.remaining();

    ByteWriter w;
    write_tensor(w, t);
    FUZZ_ASSERT(static_cast<std::int64_t>(w.size()) ==
                    tensor_wire_bytes(t.shape()),
                "tensor_wire_bytes disagrees with write_tensor");
    FUZZ_ASSERT(w.size() == consumed,
                "re-serialization is a different length than was consumed");
    FUZZ_ASSERT(std::memcmp(w.bytes().data(), bytes.data(), consumed) == 0,
                "tensor re-serialization differs from accepted input");

    ByteReader r2(w.bytes());
    const Tensor t2 = read_tensor(r2);
    FUZZ_ASSERT(t2.shape() == t.shape(), "round-trip changed the shape");
    FUZZ_ASSERT(std::memcmp(t2.data(), t.data(),
                            static_cast<std::size_t>(t.numel()) *
                                sizeof(float)) == 0,
                "round-trip changed the payload");
    FUZZ_ASSERT(r2.at_end(), "round-trip reader left trailing bytes");
  } catch (const Error&) {
    // expected rejection path
  }
  return 0;
}
