// Differential GEMM harness: decodes ragged shapes from the input and
// asserts SIMD-vs-scalar parity for every float GEMM entry point at every
// dispatch level compiled into this binary.
//
// Oracles (per DESIGN.md "SIMD kernel layer" parity contract):
//   * every available level matches the forced-scalar result within the
//     k-scaled tolerance the property tests use (levels differ only by
//     FMA-vs-mul+add rounding inside one ascending-k chain);
//   * gemm_at / gemm_bt / pack_a_panels+gemm_packed_a agree with
//     gemm_naive on explicitly transposed/packed operands;
//   * row purity: one row multiplied alone is bit-identical to the same
//     row of the full multiply at the same level (the batch==single
//     serving guarantee).
#include <cmath>
#include <cstring>
#include <vector>

#include "common/simd.h"
#include "fuzz_util.h"
#include "tensor/gemm.h"

using namespace lcrs;

namespace {

void check_close(const std::vector<float>& got,
                 const std::vector<float>& want, std::int64_t k,
                 const char* what) {
  // Same error budget as tests/test_gemm.cpp: reassociation-free chains
  // differ across levels only by per-step rounding, which scales with k.
  const double tol = 1e-3 * static_cast<double>(k) + 1e-6;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const double diff = std::abs(static_cast<double>(got[i]) -
                                 static_cast<double>(want[i]));
    if (!(diff <= tol)) {
      std::fprintf(stderr, "%s: index %zu got %g want %g (tol %g)\n", what,
                   i, static_cast<double>(got[i]),
                   static_cast<double>(want[i]), tol);
      FUZZ_ASSERT(false, what);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz::FuzzInput in(data, size);
  const std::int64_t m = in.take_range(1, 12);
  const std::int64_t k = in.take_range(1, 48);
  const std::int64_t n = in.take_range(1, 16);
  const float betas[] = {0.0f, 1.0f, 0.5f, -1.0f};
  const float beta = betas[in.take_range(0, 3)];
  const std::int64_t probe_row = in.take_range(0, m - 1);

  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c0(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = in.take_f32();
  for (auto& v : b) v = in.take_f32();
  for (auto& v : c0) v = in.take_f32();

  // Explicit transposes for the _at / _bt entry points.
  std::vector<float> a_t(static_cast<std::size_t>(k * m));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      a_t[static_cast<std::size_t>(kk * m + i)] =
          a[static_cast<std::size_t>(i * k + kk)];
    }
  }
  std::vector<float> b_t(static_cast<std::size_t>(n * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t j = 0; j < n; ++j) {
      b_t[static_cast<std::size_t>(j * k + kk)] =
          b[static_cast<std::size_t>(kk * n + j)];
    }
  }

  // Ground truth: the reference triple loop.
  std::vector<float> naive = c0;
  gemm_naive(a.data(), b.data(), naive.data(), m, k, n, beta);
  std::vector<float> naive0(static_cast<std::size_t>(m * n), 0.0f);
  gemm_naive(a.data(), b.data(), naive0.data(), m, k, n, 0.0f);

  // Forced-scalar gemm: the cross-level comparison baseline.
  std::vector<float> ref = c0;
  {
    simd::ScopedForcedLevel forced(simd::Level::kScalar);
    gemm(a.data(), b.data(), ref.data(), m, k, n, beta);
  }
  check_close(ref, naive, k, "scalar gemm diverges from gemm_naive");

  const simd::Level levels[] = {simd::Level::kScalar, simd::Level::kSse,
                                simd::Level::kAvx2, simd::Level::kNeon};
  for (const simd::Level level : levels) {
    if (!simd::level_available(level)) continue;
    simd::ScopedForcedLevel forced(level);

    std::vector<float> c = c0;
    gemm(a.data(), b.data(), c.data(), m, k, n, beta);
    check_close(c, ref, k, "gemm diverges from forced-scalar gemm");

    std::vector<float> c_at = c0;
    gemm_at(a_t.data(), b.data(), c_at.data(), m, k, n, beta);
    check_close(c_at, naive, k, "gemm_at diverges from gemm_naive");

    std::vector<float> c_bt = c0;
    gemm_bt(a.data(), b_t.data(), c_bt.data(), m, k, n, beta);
    check_close(c_bt, naive, k, "gemm_bt diverges from gemm_naive");

    std::vector<float> c_packed(static_cast<std::size_t>(m * n), 0.0f);
    const PackedA packed = pack_a_panels(a.data(), m, k);
    FUZZ_ASSERT(packed.m == m && packed.k == k,
                "pack_a_panels changed the logical dimensions");
    gemm_packed_a(packed, b.data(), c_packed.data(), n);
    check_close(c_packed, naive0, k, "gemm_packed_a diverges from naive");

    // Row purity: the probe row computed alone must be bit-identical to
    // the same row of the batched multiply at this level.
    std::vector<float> row_c(
        c0.begin() + probe_row * n, c0.begin() + (probe_row + 1) * n);
    gemm(a.data() + probe_row * k, b.data(), row_c.data(), 1, k, n, beta);
    FUZZ_ASSERT(std::memcmp(row_c.data(), c.data() + probe_row * n,
                            static_cast<std::size_t>(n) * sizeof(float)) ==
                    0,
                "gemm is not row-pure at this level");
  }
  return 0;
}
