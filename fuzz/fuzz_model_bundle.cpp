// Model-bundle harness: raw bytes -> core::load_bundle, the versioned
// artifact the edge server's ModelRegistry hot-swaps (ROADMAP item 1).
//
// Oracle: an accepted bundle re-saves to exactly the input bytes -- the
// format is canonical (id/version/name verbatim, the embedded checkpoint
// re-encodes byte-identically per the fuzz_checkpoint oracle), so the
// loader cannot silently drop, default, or reinterpret a field.
#include "core/checkpoint.h"
#include "fuzz_util.h"

using namespace lcrs;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Bundles nest a whole composite checkpoint; same per-exec cap as the
  // checkpoint harness.
  if (size > (1u << 20)) return 0;
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    core::LoadedBundle b = core::load_bundle(bytes);
    const std::vector<std::uint8_t> resaved = core::save_bundle(
        b.loaded.net, b.loaded.ckpt, b.info);
    FUZZ_ASSERT(resaved == bytes,
                "bundle re-save differs from accepted input");
  } catch (const Error&) {
    // expected rejection path
  }
  return 0;
}
