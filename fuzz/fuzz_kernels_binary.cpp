// Differential binary-kernel harness: decodes ragged shapes and asserts
// the bit-domain parity contract -- pack_signs and xnor_gemm are
// *bit-exact* across every dispatch level (no tolerance: XNOR math is
// integer-valued).
//
// Oracles:
//   * pack_signs at every level == BitMatrix::pack (the pre-SIMD scalar
//     packer) == an independent per-bit sign check (>= 0 -> 1, so
//     sign(0) = +1 is pinned);
//   * xnor_gemm at every level == the formula cols - 2 * popcount(XOR)
//     recomputed bit by bit from unpacked entries;
//   * serialize/deserialize round-trips the packed matrix exactly.
#include <cstring>
#include <vector>

#include "binary/bitmatrix.h"
#include "binary/xnor_gemm.h"
#include "common/simd.h"
#include "fuzz_util.h"

using namespace lcrs;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz::FuzzInput in(data, size);
  const std::int64_t m = in.take_range(1, 8);
  const std::int64_t n = in.take_range(1, 8);
  // Cross word boundaries and the xnor_gemm k>=512 AVX2 engagement point.
  const std::int64_t k = in.take_range(1, 600);

  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(n * k));
  for (auto& v : a) v = in.take_f32();
  for (auto& v : b) v = in.take_f32();

  // Scalar-packed references.
  binary::BitMatrix a_ref = binary::BitMatrix::pack(a.data(), m, k);
  binary::BitMatrix b_ref = binary::BitMatrix::pack(b.data(), n, k);

  // Independent per-bit oracle for the packing convention.
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t c = 0; c < k; ++c) {
      FUZZ_ASSERT(a_ref.get(r, c) ==
                      (a[static_cast<std::size_t>(r * k + c)] >= 0.0f),
                  "BitMatrix::pack violates the sign(0) = +1 convention");
    }
  }

  // Reference XNOR result recomputed from unpacked bits.
  std::vector<float> c_ref(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t mismatches = 0;
      for (std::int64_t c = 0; c < k; ++c) {
        mismatches += a_ref.get(i, c) != b_ref.get(j, c);
      }
      c_ref[static_cast<std::size_t>(i * n + j)] =
          static_cast<float>(k - 2 * mismatches);
    }
  }

  const simd::Level levels[] = {simd::Level::kScalar, simd::Level::kSse,
                                simd::Level::kAvx2, simd::Level::kNeon};
  for (const simd::Level level : levels) {
    if (!simd::level_available(level)) continue;
    simd::ScopedForcedLevel forced(level);

    binary::BitMatrix a_bits(m, k);
    binary::BitMatrix b_bits(n, k);
    binary::pack_signs(a.data(), m, k, &a_bits);
    binary::pack_signs(b.data(), n, k, &b_bits);
    FUZZ_ASSERT(a_bits == a_ref && b_bits == b_ref,
                "pack_signs is not bit-identical to BitMatrix::pack");

    std::vector<float> c(static_cast<std::size_t>(m * n), -12345.0f);
    binary::xnor_gemm(a_bits, b_bits, c.data());
    FUZZ_ASSERT(std::memcmp(c.data(), c_ref.data(),
                            c.size() * sizeof(float)) == 0,
                "xnor_gemm diverges from the per-bit popcount oracle");

    // xnor_dot must agree entry-wise with the full GEMM.
    const std::int64_t i = in.take_range(0, m - 1);
    const std::int64_t j = in.take_range(0, n - 1);
    FUZZ_ASSERT(static_cast<float>(binary::xnor_dot(
                    a_bits.row(i), b_bits.row(j), k)) ==
                    c_ref[static_cast<std::size_t>(i * n + j)],
                "xnor_dot disagrees with xnor_gemm");
  }

  // Wire round-trip of the packed form (the artifact the browser ships).
  ByteWriter w;
  a_ref.serialize(w);
  ByteReader r(w.bytes());
  const binary::BitMatrix back = binary::BitMatrix::deserialize(r);
  FUZZ_ASSERT(back == a_ref, "BitMatrix serialize/deserialize round-trip");
  FUZZ_ASSERT(r.at_end(), "BitMatrix deserialize left trailing bytes");
  return 0;
}
