// Differential im2col harness: decodes a convolution geometry + image
// from the input and cross-checks every lowering path against a naive
// tap-by-tap reference written independently here.
//
// Oracles (all bit-exact -- lowering only moves floats, never computes):
//   * im2col == the naive gather for every (row, pixel) tap;
//   * im2col_rows is exactly the transpose of im2col;
//   * im2col_batch over n copies == n independent im2col calls (the
//     coalesced-batch serving path);
//   * col2im is the exact adjoint on integer-valued inputs: scattering
//     all-ones columns counts how many taps read each input pixel.
#include <cstring>
#include <vector>

#include "fuzz_util.h"
#include "tensor/im2col.h"

using namespace lcrs;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz::FuzzInput in(data, size);
  ConvGeom g;
  g.in_c = in.take_range(1, 4);
  g.in_h = in.take_range(1, 12);
  g.in_w = in.take_range(1, 12);
  g.kernel = in.take_range(1, 5);
  g.stride = in.take_range(1, 3);
  g.pad = in.take_range(0, 3);
  const float pads[] = {0.0f, 1.0f, -1.0f};
  const float pad_value = pads[in.take_range(0, 2)];
  try {
    g.validate();
  } catch (const Error&) {
    return 0;  // geometry the library rejects (kernel larger than input)
  }

  const std::int64_t image_size = g.in_c * g.in_h * g.in_w;
  const std::int64_t patch = g.patch_size();
  const std::int64_t pixels = g.out_h() * g.out_w();
  std::vector<float> image(static_cast<std::size_t>(image_size));
  for (auto& v : image) v = in.take_f32();

  // Naive reference gather.
  std::vector<float> ref(static_cast<std::size_t>(patch * pixels));
  {
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < g.in_c; ++c) {
      for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
        for (std::int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
          for (std::int64_t y = 0; y < g.out_h(); ++y) {
            for (std::int64_t x = 0; x < g.out_w(); ++x) {
              const std::int64_t in_y = y * g.stride + kh - g.pad;
              const std::int64_t in_x = x * g.stride + kw - g.pad;
              const bool inside = in_y >= 0 && in_y < g.in_h &&
                                  in_x >= 0 && in_x < g.in_w;
              ref[static_cast<std::size_t>(row * pixels +
                                           y * g.out_w() + x)] =
                  inside ? image[static_cast<std::size_t>(
                               (c * g.in_h + in_y) * g.in_w + in_x)]
                         : pad_value;
            }
          }
        }
      }
    }
  }

  std::vector<float> cols(static_cast<std::size_t>(patch * pixels),
                          -777.0f);
  im2col(image.data(), g, cols.data(), pad_value);
  FUZZ_ASSERT(std::memcmp(cols.data(), ref.data(),
                          ref.size() * sizeof(float)) == 0,
              "im2col diverges from the naive tap-by-tap gather");

  std::vector<float> rows(static_cast<std::size_t>(pixels * patch),
                          -777.0f);
  im2col_rows(image.data(), g, rows.data(), pad_value);
  for (std::int64_t r = 0; r < patch; ++r) {
    for (std::int64_t p = 0; p < pixels; ++p) {
      FUZZ_ASSERT(rows[static_cast<std::size_t>(p * patch + r)] ==
                      cols[static_cast<std::size_t>(r * pixels + p)],
                  "im2col_rows is not the transpose of im2col");
    }
  }

  // Batched lowering over two copies of the image plus a perturbed third.
  const std::int64_t batch = 3;
  std::vector<float> input(static_cast<std::size_t>(batch * image_size));
  for (std::int64_t s = 0; s < batch; ++s) {
    for (std::int64_t i = 0; i < image_size; ++i) {
      input[static_cast<std::size_t>(s * image_size + i)] =
          image[static_cast<std::size_t>(i)] +
          static_cast<float>(s == 2 ? 1 : 0);
    }
  }
  std::vector<float> batch_cols(
      static_cast<std::size_t>(batch * patch * pixels), -777.0f);
  im2col_batch(input.data(), batch, g, batch_cols.data(), pad_value);
  for (std::int64_t s = 0; s < batch; ++s) {
    std::vector<float> one(static_cast<std::size_t>(patch * pixels),
                           -777.0f);
    im2col(input.data() + s * image_size, g, one.data(), pad_value);
    FUZZ_ASSERT(std::memcmp(one.data(),
                            batch_cols.data() + s * patch * pixels,
                            one.size() * sizeof(float)) == 0,
                "im2col_batch diverges from per-sample im2col");
  }

  // Adjoint: scattering all-ones columns must count, per input pixel,
  // exactly the taps the reference gather read from it.
  std::vector<float> ones(static_cast<std::size_t>(patch * pixels), 1.0f);
  std::vector<float> counts(static_cast<std::size_t>(image_size), 0.0f);
  col2im(ones.data(), g, counts.data());
  std::vector<float> want_counts(static_cast<std::size_t>(image_size),
                                 0.0f);
  {
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < g.in_c; ++c) {
      for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
        for (std::int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
          for (std::int64_t y = 0; y < g.out_h(); ++y) {
            for (std::int64_t x = 0; x < g.out_w(); ++x) {
              const std::int64_t in_y = y * g.stride + kh - g.pad;
              const std::int64_t in_x = x * g.stride + kw - g.pad;
              if (in_y >= 0 && in_y < g.in_h && in_x >= 0 &&
                  in_x < g.in_w) {
                want_counts[static_cast<std::size_t>(
                    (c * g.in_h + in_y) * g.in_w + in_x)] += 1.0f;
              }
            }
          }
        }
      }
    }
  }
  FUZZ_ASSERT(std::memcmp(counts.data(), want_counts.data(),
                          counts.size() * sizeof(float)) == 0,
              "col2im is not the exact adjoint of the im2col gather");
  return 0;
}
