// ByteReader/ByteWriter harness: the primitives every wire format and
// model artifact in the repo is built from.
//
// Two phases per input:
//   1. Write/read interpreter: the input encodes a sequence of typed
//      writes; the harness performs them, then reads the buffer back in
//      the same order and asserts bit-exact round-trips plus correct
//      remaining()/at_end() accounting.
//   2. Adversarial reads: the raw input itself is treated as a buffer and
//      hit with an input-chosen sequence of reads. Every read either
//      succeeds (consuming exactly its width) or throws lcrs::Error with
//      the cursor untouched -- never crashes, never over-consumes.
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "fuzz_util.h"

using namespace lcrs;

namespace {

enum class Op : std::uint8_t {
  kU8 = 0,
  kU32,
  kU64,
  kI64,
  kF32,
  kF64,
  kString,
  kBytes,
  kCount,
};

struct Step {
  Op op;
  std::uint64_t integer = 0;
  double real = 0.0;
  std::vector<std::uint8_t> blob;  // kString/kBytes payload
};

void roundtrip_interpreter(fuzz::FuzzInput* in) {
  ByteWriter w;
  std::vector<Step> steps;
  const int n_steps = static_cast<int>(in->take_range(0, 24));
  for (int i = 0; i < n_steps; ++i) {
    Step s;
    s.op = static_cast<Op>(in->take_range(0, static_cast<std::int64_t>(
                                                 Op::kCount) -
                                                 1));
    switch (s.op) {
      case Op::kU8:
        s.integer = in->take_u8();
        w.write_u8(static_cast<std::uint8_t>(s.integer));
        break;
      case Op::kU32:
        s.integer = in->take_u32();
        w.write_u32(static_cast<std::uint32_t>(s.integer));
        break;
      case Op::kU64:
        s.integer = static_cast<std::uint64_t>(in->take_u32()) << 32 |
                    in->take_u32();
        w.write_u64(s.integer);
        break;
      case Op::kI64:
        s.integer = static_cast<std::uint64_t>(in->take_u32()) << 32 |
                    in->take_u32();
        w.write_i64(static_cast<std::int64_t>(s.integer));
        break;
      case Op::kF32:
        s.real = static_cast<double>(in->take_f32());
        w.write_f32(static_cast<float>(s.real));
        break;
      case Op::kF64:
        s.real = static_cast<double>(in->take_f32());
        w.write_f64(s.real);
        break;
      case Op::kString: {
        const auto len = static_cast<std::size_t>(in->take_range(0, 33));
        s.blob.resize(len);
        for (auto& b : s.blob) b = in->take_u8();
        w.write_string(std::string(s.blob.begin(), s.blob.end()));
        break;
      }
      case Op::kBytes: {
        const auto len = static_cast<std::size_t>(in->take_range(0, 33));
        s.blob.resize(len);
        for (auto& b : s.blob) b = in->take_u8();
        w.write_bytes(s.blob.data(), s.blob.size());
        break;
      }
      case Op::kCount:
        break;
    }
    steps.push_back(std::move(s));
  }

  ByteReader r(w.bytes());
  for (const Step& s : steps) {
    switch (s.op) {
      case Op::kU8:
        FUZZ_ASSERT(r.read_u8() == static_cast<std::uint8_t>(s.integer),
                    "u8 round-trip mismatch");
        break;
      case Op::kU32:
        FUZZ_ASSERT(r.read_u32() == static_cast<std::uint32_t>(s.integer),
                    "u32 round-trip mismatch");
        break;
      case Op::kU64:
        FUZZ_ASSERT(r.read_u64() == s.integer, "u64 round-trip mismatch");
        break;
      case Op::kI64:
        FUZZ_ASSERT(r.read_i64() == static_cast<std::int64_t>(s.integer),
                    "i64 round-trip mismatch");
        break;
      case Op::kF32: {
        const float got = r.read_f32();
        const float want = static_cast<float>(s.real);
        FUZZ_ASSERT(std::memcmp(&got, &want, sizeof(got)) == 0,
                    "f32 round-trip not bit-exact");
        break;
      }
      case Op::kF64: {
        const double got = r.read_f64();
        FUZZ_ASSERT(std::memcmp(&got, &s.real, sizeof(got)) == 0,
                    "f64 round-trip not bit-exact");
        break;
      }
      case Op::kString: {
        const std::string got = r.read_string();
        FUZZ_ASSERT(got.size() == s.blob.size() &&
                        std::memcmp(got.data(), s.blob.data(), got.size()) ==
                            0,
                    "string round-trip mismatch");
        break;
      }
      case Op::kBytes: {
        std::vector<std::uint8_t> got(s.blob.size());
        r.read_bytes(got.data(), got.size());
        FUZZ_ASSERT(got == s.blob, "bytes round-trip mismatch");
        break;
      }
      case Op::kCount:
        break;
    }
  }
  FUZZ_ASSERT(r.at_end(), "reader did not consume exactly what was written");
}

void adversarial_reads(const std::uint8_t* data, std::size_t size) {
  fuzz::FuzzInput script(data, size);
  const auto prefix = static_cast<std::size_t>(
      script.take_range(0, static_cast<std::int64_t>(size)));
  const std::vector<std::uint8_t> ops = script.take_rest();

  ByteReader r(data, prefix <= size ? prefix : size);
  for (const std::uint8_t op : ops) {
    const std::size_t before = r.remaining();
    try {
      switch (op % 8) {
        case 0: (void)r.read_u8(); break;
        case 1: (void)r.read_u32(); break;
        case 2: (void)r.read_u64(); break;
        case 3: (void)r.read_i64(); break;
        case 4: (void)r.read_f32(); break;
        case 5: (void)r.read_f64(); break;
        case 6: (void)r.read_string(); break;
        default: {
          std::uint8_t sink[16];
          r.read_bytes(sink, sizeof(sink));
          break;
        }
      }
      FUZZ_ASSERT(r.remaining() < before || before == 0,
                  "successful read consumed nothing");
    } catch (const Error&) {
      FUZZ_ASSERT(r.remaining() == before,
                  "failed read moved the cursor");
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 16)) return 0;
  fuzz::FuzzInput in(data, size);
  roundtrip_interpreter(&in);
  adversarial_reads(data, size);
  return 0;
}
