// Frame-parser harness: raw bytes -> decode_frame + every typed payload
// parser + the streaming header paths the server/client actually use.
//
// Oracles beyond "no crash":
//   * decode_frame accepts  => encode_frame(decoded) reproduces the input
//     byte-for-byte (the wire format is canonical: v3 iff model_id != 0,
//     else v2 iff trace_id != 0, else v1).
//   * a typed payload parses => rebuilding the payload from the parsed
//     value and re-parsing yields the same value (make/parse agree).
//   * the streaming header parsers agree with whole-buffer decode_frame
//     about version, type, model id, trace id and payload size.
#include <cstring>

#include "edge/protocol.h"
#include "fuzz_util.h"
#include "tensor/serialize.h"

using namespace lcrs;

namespace {

void check_typed_payload(const edge::Frame& f) {
  try {
    switch (f.type) {
      case edge::MsgType::kCompleteRequest: {
        const Tensor t = edge::parse_complete_request(f.payload);
        const auto rebuilt = edge::make_complete_request(t);
        const Tensor again = edge::parse_complete_request(rebuilt);
        FUZZ_ASSERT(again.shape() == t.shape(),
                    "complete-request round-trip changed the shape");
        FUZZ_ASSERT(std::memcmp(again.data(), t.data(),
                                static_cast<std::size_t>(t.numel()) *
                                    sizeof(float)) == 0,
                    "complete-request round-trip changed the payload");
        break;
      }
      case edge::MsgType::kCompleteResponse: {
        const edge::CompleteResponse resp =
            edge::parse_complete_response(f.payload);
        const edge::CompleteResponse again =
            edge::parse_complete_response(edge::make_complete_response(resp));
        FUZZ_ASSERT(again.label == resp.label,
                    "complete-response round-trip changed the label");
        FUZZ_ASSERT(again.probabilities.shape() == resp.probabilities.shape(),
                    "complete-response round-trip changed the shape");
        break;
      }
      case edge::MsgType::kBusy: {
        const std::uint32_t retry = edge::parse_busy_reply(f.payload);
        FUZZ_ASSERT(edge::make_busy_reply(retry) == f.payload,
                    "busy reply is not canonical");
        break;
      }
      case edge::MsgType::kModelUnavailable: {
        const std::uint32_t id = edge::parse_model_unavailable(f.payload);
        FUZZ_ASSERT(edge::make_model_unavailable(id) == f.payload,
                    "model-unavailable reply is not canonical");
        break;
      }
      default:
        break;  // kPing/kPong/kShutdown carry no payload contract
    }
  } catch (const Error&) {
    // A structurally valid frame may still carry a malformed payload.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 20)) return 0;  // bound per-exec cost
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    const edge::Frame f = edge::decode_frame(bytes);
    FUZZ_ASSERT(edge::encode_frame(f) == bytes,
                "decode_frame accepted bytes encode_frame cannot reproduce");
    check_typed_payload(f);
  } catch (const Error&) {
    // expected rejection path for malformed frames
  }

  // Streaming header paths (the server reads the 9-byte common prefix,
  // then widens for v2/v3). They must agree with whole-buffer decoding.
  if (size >= edge::kFrameHeaderBytes) {
    try {
      const int version = edge::frame_header_version(data);
      edge::MsgType type{};
      std::uint32_t model_id = 0;
      std::uint64_t trace_id = 0;
      std::uint32_t payload_size = 0;
      if (version == 1) {
        payload_size = edge::parse_frame_header(data, &type);
      } else if (version == 2 && size >= edge::kFrameHeaderBytesV2) {
        payload_size = edge::parse_frame_header_v2(data, &type, &trace_id);
      } else if (version == 3 && size >= edge::kFrameHeaderBytesV3) {
        payload_size =
            edge::parse_frame_header_v3(data, &type, &model_id, &trace_id);
      } else {
        return 0;  // not enough bytes for the widened header
      }
      try {
        const edge::Frame f = edge::decode_frame(bytes);
        FUZZ_ASSERT(f.type == type, "streaming header type disagrees");
        FUZZ_ASSERT(f.model_id == model_id,
                    "streaming header model id disagrees");
        FUZZ_ASSERT(f.trace_id == trace_id,
                    "streaming header trace id disagrees");
        FUZZ_ASSERT(f.payload.size() == payload_size,
                    "streaming header payload size disagrees");
      } catch (const Error&) {
        // whole-buffer decode may still reject (truncated payload etc.)
      }
    } catch (const Error&) {
      // header-level rejection
    }
  }
  return 0;
}
