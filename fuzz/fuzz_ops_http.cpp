// Ops-plane HTTP harness: raw bytes -> parse_http_request ->
// ops_respond over a fixed fixture registry + flight recorder (the same
// pure path OpsServer::serve_one drives from the socket).
//
// Oracles beyond "no crash":
//   * parser acceptance implies structural validity: uppercase-alpha
//     method, target starting with '/', and request_path() yielding a
//     query-free prefix of the target.
//   * every accepted request maps to a response whose status is one of
//     {200, 404, 405, 503} and whose rendering is a well-formed
//     HTTP/1.0 message: status line, Content-Length matching the body,
//     blank line, body verbatim at the end.
//   * prometheus_escape_label_value leaves no raw '"', '\n', or
//     trailing lone backslash; prometheus_name emits only legal
//     Prometheus name characters.
//
// Input layout: byte 0 = flags (bit 0: readiness hook returns true),
// remaining bytes = the raw HTTP request head.
#include <cctype>
#include <string>

#include "common/obs/ops_server.h"
#include "fuzz_util.h"

using namespace lcrs;

namespace {

/// Shared fixture: a registry and recorder with one of everything, so
/// /metrics, /metrics.json and /tracez all traverse non-trivial render
/// paths on every execution.
struct Fixture {
  obs::Registry registry;
  obs::FlightRecorder recorder;
};

const Fixture& fixture() {
  static const Fixture* f = [] {
    auto* fx = new Fixture;
    fx->registry.counter("edge.server.requests").add(3);
    fx->registry.gauge("edge.server.queue_depth").set(2.0);
    auto& h = fx->registry.histogram("edge.server.batch_size");
    h.record(1.0);
    h.record(7.0);
    fx->recorder.on_span(obs::SpanRecord{1, "edge.complete", 100, 900});
    fx->recorder.finish(1, false, "edge.served");
    fx->recorder.on_span(obs::SpanRecord{2, "client.network", 50, 5000});
    fx->recorder.finish(2, true, "client.error: fixture");
    return fx;
  }();
  return *f;
}

void check_response_rendering(const obs::HttpResponse& resp) {
  FUZZ_ASSERT(resp.status == 200 || resp.status == 404 ||
                  resp.status == 405 || resp.status == 503,
              "ops_respond produced a status outside its contract");
  const std::string rendered = obs::render_http_response(resp);
  FUZZ_ASSERT(rendered.rfind("HTTP/1.0 ", 0) == 0,
              "rendered response does not start with an HTTP/1.0 line");
  const std::size_t blank = rendered.find("\r\n\r\n");
  FUZZ_ASSERT(blank != std::string::npos,
              "rendered response has no head/body separator");
  FUZZ_ASSERT(rendered.size() == blank + 4 + resp.body.size() &&
                  rendered.compare(blank + 4, resp.body.size(), resp.body) ==
                      0,
              "rendered response body is not the handler body verbatim");
  const std::string len_header =
      "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  FUZZ_ASSERT(rendered.find(len_header) != std::string::npos,
              "Content-Length header disagrees with the body size");
}

void check_escape_helpers(const std::string& raw) {
  const std::string escaped = obs::prometheus_escape_label_value(raw);
  std::size_t i = 0;
  while (i < escaped.size()) {
    const char c = escaped[i];
    FUZZ_ASSERT(c != '\n', "escaped label value contains a raw newline");
    if (c == '\\') {
      FUZZ_ASSERT(i + 1 < escaped.size(),
                  "escaped label value ends in a lone backslash");
      const char next = escaped[i + 1];
      FUZZ_ASSERT(next == '\\' || next == '"' || next == 'n',
                  "escaped label value has an invalid escape sequence");
      i += 2;  // consume the pair
      continue;
    }
    FUZZ_ASSERT(c != '"', "escaped label value has an unescaped quote");
    ++i;
  }
  const std::string name = obs::prometheus_name(raw);
  for (char c : name) {
    FUZZ_ASSERT((std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == ':',
                "prometheus_name emitted an illegal character");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 16)) return 0;  // bound per-exec cost
  fuzz::FuzzInput in(data, size);
  const std::uint8_t flags = in.take_u8();
  const std::vector<std::uint8_t> rest = in.take_rest();
  const std::string head(rest.begin(), rest.end());

  check_escape_helpers(head);

  const std::optional<obs::HttpRequest> req = obs::parse_http_request(head);
  if (!req.has_value()) return 0;  // expected rejection of malformed heads

  for (char c : req->method) {
    FUZZ_ASSERT(c >= 'A' && c <= 'Z', "parser accepted a non-uppercase method");
  }
  FUZZ_ASSERT(!req->target.empty() && req->target[0] == '/',
              "parser accepted a target that does not start with '/'");
  const std::string path = obs::request_path(*req);
  FUZZ_ASSERT(path.find('?') == std::string::npos,
              "request_path left a query string attached");
  FUZZ_ASSERT(req->target.rfind(path, 0) == 0,
              "request_path is not a prefix of the raw target");

  const bool ready = (flags & 1) != 0;
  obs::OpsHooks hooks;
  hooks.registry = &fixture().registry;
  hooks.recorder = &fixture().recorder;
  hooks.ready = [ready] { return ready; };
  const obs::HttpResponse resp = obs::ops_respond(*req, hooks);
  check_response_rendering(resp);
  if (path == "/healthz" && req->method == "GET") {
    FUZZ_ASSERT(resp.status == 200, "/healthz must always be 200 for GET");
  }
  if (path == "/readyz" && req->method == "GET") {
    FUZZ_ASSERT(resp.status == (ready ? 200 : 503),
                "/readyz disagrees with the readiness hook");
  }
  return 0;
}
