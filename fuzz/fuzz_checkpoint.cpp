// Checkpoint-loader harness: raw bytes -> core::load_composite, the
// parser ROADMAP item 1 will build the model registry on top of.
//
// Oracle: an accepted checkpoint re-saves to exactly the input bytes
// (config encoding is canonical: arch names round-trip through
// arch_by_name/arch_name, sizes and f64 bits are verbatim), so the
// loader cannot silently drop or reinterpret fields.
#include "core/checkpoint.h"
#include "fuzz_util.h"

using namespace lcrs;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Checkpoints nest whole model-parameter blobs; cap well above every
  // committed seed but low enough that garbage inputs stay cheap.
  if (size > (1u << 20)) return 0;
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    core::LoadedComposite loaded = core::load_composite(bytes);
    const std::vector<std::uint8_t> resaved =
        core::save_composite(loaded.net, loaded.ckpt);
    FUZZ_ASSERT(resaved == bytes,
                "checkpoint re-save differs from accepted input");
  } catch (const Error&) {
    // expected rejection path
  }
  return 0;
}
