// Structure-aware batcher/demux harness: replays fuzz-generated request
// interleavings through the PR-5 batch-queue state machine over real
// loopback sockets.
//
// The input decodes to a bounded op script over up to 3 client slots:
// connect, send a request (one of three shapes, so same-shape coalescing
// and batch cuts both happen; one of three model targets, so per-model
// queues and unknown-model rejection both happen), receive a reply,
// ping, abrupt close, inject garbage bytes, or mutate the model registry
// (install the next version of the alt model / evict it). The server is
// deliberately tiny (1-slot admission headroom, batching window enabled)
// so busy rejection, coalescing, and demux all trigger within a few ops.
//
// Oracles:
//   * Demux: every kCompleteResponse carries a label computed from the
//     request tensor itself plus a per-model offset, so a response
//     routed to the wrong connection, the wrong request on one
//     connection, or the wrong *model* is caught; the echoed response
//     model id must match the request's.
//   * Reply discipline: per connection, replies arrive FIFO, exactly one
//     per request (kCompleteResponse, kBusy, or kModelUnavailable --
//     which types are legal depends on the model id, see ExpectedReply).
//   * Liveness: after every script, a fresh client must connect, ping,
//     and complete one request within a deadline -- a wedged queue or a
//     dead worker pool fails here instead of hanging the fuzzer.
#include <array>
#include <atomic>
#include <cmath>
#include <deque>
#include <optional>

#include "edge/model_registry.h"
#include "edge/server.h"
#include "edge/tcp.h"
#include "fuzz_util.h"

using namespace lcrs;

namespace {

constexpr int kMaxClients = 3;
constexpr int kMaxOps = 48;
constexpr double kIoDeadlineMs = 5000.0;

/// The second registered model; swap/evict ops target it so model 0 (the
/// default every v1/v2 frame routes to) is always servable.
constexpr std::uint32_t kAltModelId = 2;
/// Never registered: requests carrying it must draw kModelUnavailable.
constexpr std::uint32_t kUnknownModelId = 77;

const Shape& shape_menu(std::int64_t i) {
  static const std::array<Shape, 3> menu = {
      Shape{1, 2, 4, 4}, Shape{1, 3, 3, 3}, Shape{1, 1, 8, 8}};
  return menu[static_cast<std::size_t>(i % 3)];
}

/// The label the completion derives from a request row. Client and
/// server run this same function on bit-identical floats, so agreement
/// is exact.
std::int64_t row_label(const float* p, std::int64_t n) {
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) sum += static_cast<double>(p[i]);
  return static_cast<std::int64_t>(std::llround(sum * 16.0));
}

/// Per-model label offset: a response computed by the wrong model's
/// completion is off by a multiple of 1000 and trips the demux oracle.
/// Versions share the offset, so hot-swapping kAltModelId never changes
/// what a correct response looks like -- the swap machinery is exercised
/// without making the FIFO oracle racy.
std::int64_t model_label_offset(std::uint32_t model_id) {
  return static_cast<std::int64_t>(model_id) * 1000;
}

edge::BatchCompletionFn make_batch_complete(std::uint32_t model_id) {
  return [model_id](const Tensor& batch) {
    const std::int64_t k = batch.dim(0);
    const std::int64_t per = batch.numel() / k;
    std::vector<edge::CompleteResponse> out;
    out.reserve(static_cast<std::size_t>(k));
    for (std::int64_t i = 0; i < k; ++i) {
      edge::CompleteResponse resp;
      resp.label = row_label(batch.data() + i * per, per) +
                   model_label_offset(model_id);
      // Echo the batch size so coalescing is observable in responses.
      resp.probabilities =
          Tensor(Shape{1}, std::vector<float>{static_cast<float>(k)});
      out.push_back(std::move(resp));
    }
    return out;
  };
}

/// Versions must increase monotonically per model id across the whole
/// fuzz run (the registry enforces it), so the swap op draws from one
/// counter shared by every execution.
std::atomic<std::uint32_t> g_alt_version{1};

/// One persistent server across all fuzz executions: restarting per input
/// would fuzz construction, not the queue state machine.
edge::EdgeServer& server() {
  static edge::EdgeServer s(
      0,
      [] {
        auto registry = std::make_shared<edge::ModelRegistry>();
        registry->install(edge::ServableModel::from_fn(
            0, 1, "default", make_batch_complete(0)));
        registry->install(edge::ServableModel::from_fn(
            kAltModelId, g_alt_version.fetch_add(1), "alt",
            make_batch_complete(kAltModelId)));
        return registry;
      }(),
      [] {
        edge::ServerOptions o;
        o.num_workers = 2;
        o.max_batch = 3;
        o.max_wait_us = 300.0;   // leave the coalescing window open
        o.queue_capacity = 2;    // third concurrent request draws kBusy
        o.busy_retry_after_ms = 1;
        return o;
      }());
  return s;
}

/// What a send promised: which model it targeted and the label a
/// completion must carry. Which reply *types* are legal depends only on
/// the id: the server resolves the registry when it reads the frame,
/// which (behind an in-flight request on the same connection) can be
/// after later swap/evict ops, so "was the alt model installed at send
/// time" is not assertable in either direction. Model 0 is never evicted
/// and kUnknownModelId is never installed -- those two stay strict.
struct ExpectedReply {
  std::int64_t label = 0;
  std::uint32_t model_id = 0;
};

struct ClientSlot {
  std::optional<edge::Socket> sock;
  std::deque<ExpectedReply> expected;  // FIFO for outstanding requests

  bool alive() const { return sock.has_value(); }
  void drop() {
    sock.reset();
    expected.clear();
  }
};

edge::Deadline io_deadline() {
  return edge::Deadline::after_ms(kIoDeadlineMs);
}

void op_send_request(fuzz::FuzzInput* in, ClientSlot* c) {
  // Model selector: weighted toward the always-present default so most
  // scripts still stress coalescing, with the alt and unknown ids mixed
  // in to interleave per-model queues and the rejection path.
  const std::int64_t sel = in->take_range(0, 3);
  const std::uint32_t model_id =
      sel <= 1 ? 0 : (sel == 2 ? kAltModelId : kUnknownModelId);
  const Shape& shape = shape_menu(in->take_range(0, 2));
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) t.data()[i] = in->take_f32();
  edge::Frame frame{edge::MsgType::kCompleteRequest,
                    edge::make_complete_request(t),
                    /*trace_id=*/in->take_u8(),  // 0 + model 0 = v1 header
                    model_id};                   // nonzero = v3 header
  c->sock->send_frame(frame, io_deadline());
  c->expected.push_back(ExpectedReply{
      row_label(t.data(), t.numel()) + model_label_offset(model_id),
      model_id});
}

void op_recv_reply(ClientSlot* c) {
  if (c->expected.empty()) return;  // nothing outstanding: would block
  const std::optional<edge::Frame> reply =
      c->sock->recv_frame(io_deadline());
  if (!reply.has_value()) {  // server closed on us (e.g. after garbage)
    c->drop();
    return;
  }
  const ExpectedReply want = c->expected.front();
  c->expected.pop_front();
  // Every reply to a tagged request must echo the request's model id.
  FUZZ_ASSERT(reply->model_id == want.model_id,
              "reply model id does not echo the request's");
  if (reply->type == edge::MsgType::kBusy) {
    (void)edge::parse_busy_reply(reply->payload);  // must parse cleanly
    FUZZ_ASSERT(want.model_id != kUnknownModelId,
                "unknown-model request drew kBusy, not kModelUnavailable");
    return;  // admission-rejected: no completion for this request
  }
  if (reply->type == edge::MsgType::kModelUnavailable) {
    FUZZ_ASSERT(edge::parse_model_unavailable(reply->payload) ==
                    want.model_id,
                "kModelUnavailable names a different model than requested");
    // Legal for kAltModelId (an evict may land before the server reads
    // the frame); for model 0 it is always a routing bug.
    FUZZ_ASSERT(want.model_id != 0, "default model reported unavailable");
    return;
  }
  FUZZ_ASSERT(reply->type == edge::MsgType::kCompleteResponse,
              "unexpected reply type for an outstanding request");
  FUZZ_ASSERT(want.model_id != kUnknownModelId,
              "unknown-model request got a completion");
  const edge::CompleteResponse resp =
      edge::parse_complete_response(reply->payload);
  FUZZ_ASSERT(resp.label == want.label,
              "demux error: response label does not match this "
              "connection's FIFO request (wrong request or wrong model)");
}

/// Registry mutation: install the next version of the alt model (a hot
/// swap when it is already present) or evict it. The completion is
/// re-created each install but computes the same labels, so in-flight
/// requests pinned to the old snapshot still satisfy the oracle.
void op_swap_model(fuzz::FuzzInput* in) {
  if (in->take_u8() % 2 == 0) {
    server().registry()->install(edge::ServableModel::from_fn(
        kAltModelId, g_alt_version.fetch_add(1), "alt",
        make_batch_complete(kAltModelId)));
  } else {
    server().registry()->evict(kAltModelId);
  }
}

void op_ping(ClientSlot* c) {
  if (!c->expected.empty()) return;  // keep the FIFO oracle simple
  c->sock->send_frame(edge::Frame{edge::MsgType::kPing, {}}, io_deadline());
  const std::optional<edge::Frame> reply =
      c->sock->recv_frame(io_deadline());
  if (!reply.has_value()) {
    c->drop();
    return;
  }
  FUZZ_ASSERT(reply->type == edge::MsgType::kPong, "ping answered non-pong");
}

void op_garbage(fuzz::FuzzInput* in, ClientSlot* c) {
  std::uint8_t junk[16];
  for (auto& b : junk) b = in->take_u8();
  c->sock->send_all(junk, sizeof(junk), io_deadline());
  // The server will reject the stream and close; this slot may see EOF on
  // its next use and drops then.
  c->expected.clear();
}

/// Post-script liveness probe: the server must still accept, ping, and
/// complete -- within a deadline, so a wedged state machine is a failure,
/// not a hang.
void check_server_alive() {
  edge::Socket probe = edge::connect_local(server().port());
  probe.send_frame(edge::Frame{edge::MsgType::kPing, {}}, io_deadline());
  std::optional<edge::Frame> reply = probe.recv_frame(io_deadline());
  FUZZ_ASSERT(reply.has_value() && reply->type == edge::MsgType::kPong,
              "server stopped answering pings after a fuzzed script");

  Tensor t = Tensor::full(shape_menu(0), 0.5f);
  probe.send_frame(edge::Frame{edge::MsgType::kCompleteRequest,
                               edge::make_complete_request(t)},
                   io_deadline());
  reply = probe.recv_frame(io_deadline());
  FUZZ_ASSERT(reply.has_value(), "server hung up on the liveness probe");
  if (reply->type == edge::MsgType::kCompleteResponse) {
    const edge::CompleteResponse resp =
        edge::parse_complete_response(reply->payload);
    FUZZ_ASSERT(resp.label == row_label(t.data(), t.numel()),
                "liveness probe got a wrong-label response");
  } else {
    // A kBusy here is legal (stragglers from the script may still hold
    // the queue); anything else is not.
    FUZZ_ASSERT(reply->type == edge::MsgType::kBusy,
                "liveness probe got an unexpected reply type");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 12)) return 0;
  fuzz::FuzzInput in(data, size);
  std::array<ClientSlot, kMaxClients> clients;

  for (int op = 0; op < kMaxOps && !in.empty(); ++op) {
    auto& c = clients[static_cast<std::size_t>(
        in.take_range(0, kMaxClients - 1))];
    const std::int64_t action = in.take_range(0, 6);
    if (action == 6) {  // registry mutation: no connection involved
      op_swap_model(&in);
      continue;
    }
    try {
      if (!c.alive()) {
        if (action == 4) continue;  // close of a dead slot: no-op
        c.sock = edge::connect_local(server().port());
      }
      switch (action) {
        case 0: break;  // connect only
        case 1: op_send_request(&in, &c); break;
        case 2: op_recv_reply(&c); break;
        case 3: op_ping(&c); break;
        case 4: c.drop(); break;  // abrupt close, replies abandoned
        default: op_garbage(&in, &c); break;
      }
    } catch (const IoError&) {
      // Torn connections (garbage-poisoned, server-closed, timed out)
      // are part of the state space; the slot just dies.
      c.drop();
    }
  }
  for (auto& c : clients) c.drop();
  check_server_alive();
  return 0;
}
