// Deterministic corpus generator: writes the committed seed corpus
// (seed-*) and the regression crashers (crasher-*) for every fuzz
// harness into <out-root>/<harness>/. Run from the repo root as
//
//   ./build/fuzz/fuzz_gen_seeds fuzz/corpus
//
// and commit the result. Everything here is reproducible: fixed Rng
// seeds, no time or environment dependence, so regenerating after a
// format change yields a reviewable diff.
//
// Crasher files reproduce the hand-built corpus that used to live inline
// in tests/test_fuzz_parsers.cpp (Fuzz.CrasherCorpus) plus inputs found
// by the harnesses themselves; each must be *rejected* (lcrs::Error or,
// for structured harnesses, a survived oracle) forever after the fix
// that accompanied it.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "edge/protocol.h"
#include "models/zoo.h"
#include "tensor/serialize.h"
#include "webinfer/export.h"
#include "webinfer/format.h"

namespace fs = std::filesystem;
using namespace lcrs;
using Bytes = std::vector<std::uint8_t>;

namespace {

fs::path g_root;

void emit(const std::string& harness, const std::string& name,
          const Bytes& bytes) {
  const fs::path dir = g_root / harness;
  fs::create_directories(dir);
  const fs::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
}

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.randint(0, 255));
  return out;
}

// ---------------------------------------------------------------- frames

void gen_frame_parser() {
  Rng rng(101);
  emit("frame_parser", "seed-ping",
       edge::encode_frame({edge::MsgType::kPing, {}}));
  emit("frame_parser", "seed-pong",
       edge::encode_frame({edge::MsgType::kPong, {}}));
  emit("frame_parser", "seed-shutdown",
       edge::encode_frame({edge::MsgType::kShutdown, {}}));
  emit("frame_parser", "seed-busy",
       edge::encode_frame({edge::MsgType::kBusy, edge::make_busy_reply(25)}));
  emit("frame_parser", "seed-request-v1",
       edge::encode_frame(
           {edge::MsgType::kCompleteRequest,
            edge::make_complete_request(Tensor::randn(Shape{1, 4, 7, 7},
                                                      rng))}));
  emit("frame_parser", "seed-request-v2",
       edge::encode_frame(
           {edge::MsgType::kCompleteRequest,
            edge::make_complete_request(Tensor::randn(Shape{1, 2, 4, 4},
                                                      rng)),
            0x0123456789abcdefull}));
  emit("frame_parser", "seed-request-v3",
       edge::encode_frame(
           {edge::MsgType::kCompleteRequest,
            edge::make_complete_request(Tensor::randn(Shape{1, 2, 4, 4},
                                                      rng)),
            0x0123456789abcdefull, /*model_id=*/2}));
  emit("frame_parser", "seed-request-v3-untraced",
       edge::encode_frame(
           {edge::MsgType::kCompleteRequest,
            edge::make_complete_request(Tensor::randn(Shape{1, 1, 8, 8},
                                                      rng)),
            /*trace_id=*/0, /*model_id=*/7}));
  emit("frame_parser", "seed-model-unavailable",
       edge::encode_frame({edge::MsgType::kModelUnavailable,
                           edge::make_model_unavailable(7),
                           /*trace_id=*/42, /*model_id=*/7}));
  {
    edge::CompleteResponse resp;
    resp.label = 7;
    resp.probabilities = Tensor::randn(Shape{1, 10}, rng);
    emit("frame_parser", "seed-response",
         edge::encode_frame({edge::MsgType::kCompleteResponse,
                             edge::make_complete_response(resp)}));
  }

  constexpr std::uint32_t kFrameMagic = 0x4c435246;    // "LCRF"
  constexpr std::uint32_t kFrameMagicV2 = 0x4c435632;  // "LCV2"
  constexpr std::uint32_t kFrameMagicV3 = 0x4c435633;  // "LCV3"
  {  // inflated length field with no payload behind it
    ByteWriter w;
    w.write_u32(kFrameMagic);
    w.write_u8(0);
    w.write_u32(0xFFFFFFFFu);
    emit("frame_parser", "crasher-v1-inflated-length", w.bytes());
  }
  emit("frame_parser", "crasher-truncated-header", {0x46, 0x52});
  {  // one-past-the-end message type (kModelUnavailable + 1)
    ByteWriter w;
    w.write_u32(kFrameMagic);
    w.write_u8(7);
    w.write_u32(0);
    emit("frame_parser", "crasher-v1-bad-type", w.bytes());
  }
  {  // v2 inflated length, trace id valid so only the size is bad
    ByteWriter w;
    w.write_u32(kFrameMagicV2);
    w.write_u8(0);
    w.write_u64(1);
    w.write_u32(0xFFFFFFFFu);
    emit("frame_parser", "crasher-v2-inflated-length", w.bytes());
  }
  {  // v2 truncated inside the widened header
    ByteWriter w;
    w.write_u32(kFrameMagicV2);
    w.write_u8(0);
    w.write_u32(7);  // only 4 of the 8 trace-id bytes present
    emit("frame_parser", "crasher-v2-truncated-header", w.bytes());
  }
  {  // v2 with the reserved zero trace id ("untraced" must use v1)
    ByteWriter w;
    w.write_u32(kFrameMagicV2);
    w.write_u8(0);
    w.write_u64(0);
    w.write_u32(0);
    emit("frame_parser", "crasher-v2-zero-trace-id", w.bytes());
  }
  {  // v2 with an invalid message type
    ByteWriter w;
    w.write_u32(kFrameMagicV2);
    w.write_u8(200);
    w.write_u64(1);
    w.write_u32(0);
    emit("frame_parser", "crasher-v2-bad-type", w.bytes());
  }
  {  // v3 with the reserved zero model id (canonical form is v1/v2)
    ByteWriter w;
    w.write_u32(kFrameMagicV3);
    w.write_u8(0);
    w.write_u32(0);  // model id
    w.write_u64(1);  // trace id
    w.write_u32(0);  // payload size
    emit("frame_parser", "crasher-v3-zero-model-id", w.bytes());
  }
  {  // v3 truncated inside the widened header
    ByteWriter w;
    w.write_u32(kFrameMagicV3);
    w.write_u8(0);
    w.write_u32(2);  // model id, then the header just stops
    emit("frame_parser", "crasher-v3-truncated-header", w.bytes());
  }
  {  // v3 with an invalid message type
    ByteWriter w;
    w.write_u32(kFrameMagicV3);
    w.write_u8(200);
    w.write_u32(2);
    w.write_u64(1);
    w.write_u32(0);
    emit("frame_parser", "crasher-v3-bad-type", w.bytes());
  }
  {  // v3 inflated length field with no payload behind it
    ByteWriter w;
    w.write_u32(kFrameMagicV3);
    w.write_u8(0);
    w.write_u32(2);
    w.write_u64(1);
    w.write_u32(0xFFFFFFFFu);
    emit("frame_parser", "crasher-v3-inflated-length", w.bytes());
  }
  // Busy-payload crashers (used to call parse_busy_reply directly in the
  // inline corpus): wrapped as whole kBusy frames so the frame harness
  // drives them through its typed-payload path.
  emit("frame_parser", "crasher-busy-truncated",
       edge::encode_frame({edge::MsgType::kBusy, {0x01, 0x02}}));
  {
    Bytes busy = edge::make_busy_reply(5);
    busy.push_back(0xAA);
    emit("frame_parser", "crasher-busy-trailing",
         edge::encode_frame({edge::MsgType::kBusy, busy}));
  }
  // Model-unavailable payload crashers, wrapped the same way.
  emit("frame_parser", "crasher-model-unavailable-truncated",
       edge::encode_frame({edge::MsgType::kModelUnavailable, {0x01}}));
  {
    Bytes payload = edge::make_model_unavailable(7);
    payload.push_back(0xAA);
    emit("frame_parser", "crasher-model-unavailable-trailing",
         edge::encode_frame({edge::MsgType::kModelUnavailable, payload}));
  }
}

// ---------------------------------------------------------------- tensor

void gen_tensor_serialize() {
  Rng rng(202);
  {
    ByteWriter w;
    write_tensor(w, Tensor::randn(Shape{3, 4, 5}, rng));
    emit("tensor_serialize", "seed-rank3", w.bytes());
  }
  {
    ByteWriter w;
    write_tensor(w, Tensor::randn(Shape{1}, rng));
    emit("tensor_serialize", "seed-scalar", w.bytes());
  }
  {
    ByteWriter w;
    write_tensor(w, Tensor::randn(Shape{1, 3, 9, 9}, rng));
    emit("tensor_serialize", "seed-image", w.bytes());
  }

  constexpr std::uint32_t kTensorMagic = 0x4c435254;  // "LCRT"
  {  // absurd rank
    ByteWriter w;
    w.write_u32(kTensorMagic);
    w.write_u32(0xFFFFFFFFu);
    emit("tensor_serialize", "crasher-absurd-rank", w.bytes());
  }
  {  // negative dimension
    ByteWriter w;
    w.write_u32(kTensorMagic);
    w.write_u32(2);
    w.write_i64(4);
    w.write_i64(-5);
    emit("tensor_serialize", "crasher-negative-dim", w.bytes());
  }
  {  // dims pass validation but the payload is absent -- must raise
     // ParseError before attempting the 1 GiB allocation
    ByteWriter w;
    w.write_u32(kTensorMagic);
    w.write_u32(1);
    w.write_i64(1ll << 28);
    emit("tensor_serialize", "crasher-huge-dim-no-payload", w.bytes());
  }
}

// ------------------------------------------------------------ checkpoint

void gen_checkpoint() {
  Rng rng(303);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const Bytes ckpt = core::save_composite(
      net, core::Checkpoint{cfg, models::default_branch(cfg.arch), 0.05});
  emit("checkpoint", "seed-lenet", ckpt);

  emit("checkpoint", "crasher-truncated-header",
       Bytes(ckpt.begin(), ckpt.begin() + 32));
  {
    Bytes bad = ckpt;
    bad[0] ^= 0xFF;  // wrong magic
    emit("checkpoint", "crasher-bad-magic", bad);
  }
  {
    // Trailing garbage after a fully valid checkpoint: accepted blobs
    // must be exactly one checkpoint (load_composite checks at_end).
    Bytes trailing = ckpt;
    trailing.push_back(0xAA);
    emit("checkpoint", "crasher-trailing-byte", trailing);
  }
}

// ----------------------------------------------------------- model bundle

void gen_model_bundle() {
  Rng rng(909);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const Bytes bundle = core::save_bundle(
      net, core::Checkpoint{cfg, models::default_branch(cfg.arch), 0.05},
      core::BundleInfo{3, 1, "lenet-v1"});
  emit("model_bundle", "seed-lenet", bundle);

  emit("model_bundle", "crasher-truncated-header",
       Bytes(bundle.begin(), bundle.begin() + 32));
  {
    Bytes bad = bundle;
    bad[0] ^= 0xFF;  // wrong magic
    emit("model_bundle", "crasher-bad-magic", bad);
  }
  {
    Bytes trailing = bundle;
    trailing.push_back(0xAA);
    emit("model_bundle", "crasher-trailing-byte", trailing);
  }
  // The canonical-form rules mirrored between save_bundle and
  // load_bundle: id 0 is reserved for the default model and version 0
  // does not exist, so neither can be produced -- nor loaded. Patch the
  // fixed-offset header fields of the valid bundle ([magic u32]
  // [format-version u32][model-id u32][model-version u32]...).
  {
    Bytes zero_id = bundle;
    for (std::size_t i = 8; i < 12; ++i) zero_id[i] = 0;
    emit("model_bundle", "crasher-zero-model-id", zero_id);
  }
  {
    Bytes zero_version = bundle;
    for (std::size_t i = 12; i < 16; ++i) zero_version[i] = 0;
    emit("model_bundle", "crasher-zero-version", zero_version);
  }
  {  // declared inner size runs past the end: reject before allocating
    ByteWriter w;
    w.write_u32(0x4c435242u);  // "LCRB"
    w.write_u32(1);
    w.write_u32(3);
    w.write_u32(1);
    w.write_string("lenet-v1");
    w.write_u32(0xFFFFFFF0u);
    emit("model_bundle", "crasher-inflated-inner-size", w.bytes());
  }
}

// ------------------------------------------------------------- web model

void gen_model_blob() {
  Rng rng(404);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const Bytes blob =
      webinfer::serialize(webinfer::export_browser_model(net, 1, 28, 28));
  emit("model_blob", "seed-lenet", blob);

  constexpr std::uint32_t kWebModelMagic = 0x4c435257;  // "LCRW"
  {  // future format version
    ByteWriter w;
    w.write_u32(kWebModelMagic);
    w.write_u32(999);
    emit("model_blob", "crasher-future-version", w.bytes());
  }
  {  // ends right after a valid magic + version
    ByteWriter w;
    w.write_u32(kWebModelMagic);
    w.write_u32(1);
    emit("model_blob", "crasher-header-only", w.bytes());
  }
  {  // trailing garbage after a valid blob (deserialize checks at_end)
    Bytes trailing = blob;
    trailing.push_back(0xAA);
    emit("model_blob", "crasher-trailing-byte", trailing);
  }
}

// ----------------------------------------------------- structured inputs

void gen_bytes() {
  emit("bytes", "seed-empty", {});
  for (const std::size_t n : {16u, 64u, 200u}) {
    emit("bytes", "seed-random-" + std::to_string(n),
         random_bytes(n, 500 + n));
  }
  // Regression for the ByteReader::read_string cursor bug this PR fixes:
  // byte 0 = 175 makes phase 1 a no-op (175 % 25 == 0) and selects the
  // whole 7-byte input as the adversarial buffer (175 % 8 == 7); every op
  // byte is 6 = read_string. The first read_string sees length
  // 0x060606AF, far past the end -- it must throw *without* consuming the
  // 4 length bytes (failed reads leave the cursor untouched).
  emit("bytes", "crasher-readstring-cursor", {175, 6, 6, 6, 6, 6, 6});
}

void gen_batcher() {
  // Op stream: [client-idx, action, args...] repeated; see fuzz_batcher.
  // A send's args are [model-selector, shape, floats..., trace-id].
  // Exhausted input decodes as zeros, so short scripts are valid.
  emit("batcher", "seed-send-only", {0, 1});  // request, reply abandoned
  {
    // client 0: send a zero tensor to the default model (selector 0,
    // shape 0 = {1,2,4,4}, 32 one-byte zero floats, trace id 9 = v2
    // framing), recv the reply, then ping.
    Bytes script{0, 1, 0, 0};
    script.insert(script.end(), 32, 0);  // the 32 floats
    script.push_back(9);                 // trace id
    script.insert(script.end(), {0, 2, 0, 3});
    emit("batcher", "seed-send-recv", script);
  }
  {
    // Three clients racing requests then draining: coalescing + busy,
    // with requests spread over default/alt/unknown models so per-model
    // queues and the rejection path interleave.
    Bytes script;
    Rng rng(606);
    for (int round = 0; round < 3; ++round) {
      for (std::uint8_t c = 0; c < 3; ++c) {
        script.push_back(c);
        script.push_back(1);  // send
        script.push_back(static_cast<std::uint8_t>(rng.randint(0, 3)));
        script.push_back(static_cast<std::uint8_t>(rng.randint(0, 2)));
        for (int i = 0; i < 8; ++i) {
          script.push_back(static_cast<std::uint8_t>(rng.randint(0, 255)));
        }
      }
      for (std::uint8_t c = 0; c < 3; ++c) {
        script.push_back(c);
        script.push_back(2);  // recv
      }
    }
    emit("batcher", "seed-three-clients", script);
  }
  {
    // Hot-swap interleaving: send to the alt model, swap it, drain, evict
    // it, send again (now unavailable), reinstall, send once more.
    // Floats are all the one-byte zero encoding so the script stays
    // byte-aligned (nonzero floats consume two input bytes).
    Bytes script{
        0, 1, 2, 0};                     // c0: send to alt model, shape 0
    script.insert(script.end(), 32, 0);  // floats
    script.push_back(0);                 // trace id (v3 via model id)
    script.insert(script.end(), {
        2, 6, 0,        // swap: install next alt version
        0, 2,           // c0: recv (old snapshot answered it)
        2, 6, 1,        // swap: evict the alt model
        1, 1, 2, 1});   // c1: send to alt model, shape 1
    script.insert(script.end(), 27, 0);  // floats
    script.push_back(0);                 // trace id
    script.insert(script.end(), {
        1, 2,           // c1: recv (kModelUnavailable expected)
        2, 6, 2,        // swap: reinstall
        1, 1, 2, 2});   // c1: send again, shape 2
    script.insert(script.end(), 64, 0);  // floats
    script.push_back(5);                 // trace id
    script.insert(script.end(), {1, 2});  // c1: recv the completion
    emit("batcher", "seed-swap-interleave", script);
  }
  emit("batcher", "seed-garbage-then-probe", {0, 5, 0xDE, 0xAD, 0xBE, 0xEF});
  for (const std::size_t n : {24u, 64u, 120u}) {
    emit("batcher", "seed-random-" + std::to_string(n),
         random_bytes(n, 600 + n));
  }
}

void gen_ops_http() {
  // Layout per fuzz_ops_http: byte 0 = flags (bit 0: ready), rest = the
  // raw HTTP request head.
  auto req = [](std::uint8_t flags, const std::string& head) {
    Bytes b;
    b.reserve(1 + head.size());
    b.push_back(flags);
    b.insert(b.end(), head.begin(), head.end());
    return b;
  };
  for (const char* path : {"/metrics", "/metrics.json", "/healthz",
                           "/readyz", "/statusz", "/tracez", "/"}) {
    std::string name = path[1] == '\0' ? std::string("index")
                                       : std::string(path + 1);
    for (char& c : name) {
      if (c == '.') c = '-';
    }
    emit("ops_http", "seed-get-" + name,
         req(1, "GET " + std::string(path) + " HTTP/1.0\r\n"
                "Host: 127.0.0.1\r\nConnection: close\r\n\r\n"));
  }
  emit("ops_http", "seed-readyz-draining",
       req(0, "GET /readyz HTTP/1.0\r\n\r\n"));
  emit("ops_http", "seed-query-string",
       req(1, "GET /metrics?format=text HTTP/1.1\r\nAccept: */*\r\n\r\n"));
  emit("ops_http", "seed-post", req(1, "POST /metrics HTTP/1.0\r\n\r\n"));
  emit("ops_http", "seed-not-found", req(1, "GET /nope HTTP/1.0\r\n\r\n"));
  // Malformed heads the parser must reject without crashing.
  emit("ops_http", "seed-bad-no-version", req(1, "GET /metrics\r\n\r\n"));
  emit("ops_http", "seed-bad-lowercase-method",
       req(1, "get /metrics HTTP/1.0\r\n\r\n"));
  emit("ops_http", "seed-bad-relative-target",
       req(1, "GET metrics HTTP/1.0\r\n\r\n"));
  emit("ops_http", "seed-bad-folded-header",
       req(1, "GET / HTTP/1.0\r\nX-A: b\r\n c\r\n\r\n"));
  emit("ops_http", "seed-bad-control-bytes",
       req(1, std::string("GET /\x01\x02 HTTP/1.0\r\n\r\n")));
  emit("ops_http", "seed-bad-colonless-header",
       req(1, "GET / HTTP/1.0\r\nnocolon\r\n\r\n"));
  // Label-escape stress: quotes, backslashes, newlines in the raw input
  // (exercises check_escape_helpers more than the parser).
  emit("ops_http", "seed-escape-stress",
       req(1, "a\"b\\c\nd\\\\e\"\"\n\\"));
  for (const std::size_t n : {8u, 64u, 300u}) {
    emit("ops_http", "seed-random-" + std::to_string(n),
         random_bytes(n, 1000 + n));
  }
}

void gen_kernels() {
  for (const char* h : {"kernels_gemm", "kernels_binary", "kernels_im2col"}) {
    const std::uint64_t base =
        h[8] == 'g' ? 700 : (h[8] == 'b' ? 800 : 900);
    emit(h, "seed-zeros", Bytes(64, 0x00));    // minimum shapes, zero data
    emit(h, "seed-ones", Bytes(512, 0xFF));    // maximum shapes
    for (const std::size_t n : {8u, 64u, 256u, 1024u}) {
      emit(h, "seed-random-" + std::to_string(n), random_bytes(n, base + n));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  g_root = fs::path(argv[1]);
  gen_frame_parser();
  gen_tensor_serialize();
  gen_checkpoint();
  gen_model_bundle();
  gen_model_blob();
  gen_bytes();
  gen_batcher();
  gen_ops_http();
  gen_kernels();
  std::printf("corpus written under %s\n", g_root.c_str());
  return 0;
}
