// Browser-model blob harness: raw bytes -> webinfer::deserialize, the
// parser the paper's browser runtime feeds with a network-downloaded
// artifact (the least trustworthy input in the whole system).
//
// Oracle: an accepted model re-serializes to exactly the input bytes --
// the format is canonical and deserialize rejects trailing garbage.
#include "fuzz_util.h"
#include "webinfer/export.h"
#include "webinfer/format.h"

using namespace lcrs;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 20)) return 0;
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    const webinfer::WebModel model = webinfer::deserialize(bytes);
    FUZZ_ASSERT(webinfer::serialize(model) == bytes,
                "web model re-serialization differs from accepted input");
  } catch (const Error&) {
    // expected rejection path
  }
  return 0;
}
