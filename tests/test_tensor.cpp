// Unit tests for the tensor substrate: shapes, storage, ops, serialization.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace lcrs {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_EQ((Shape{4, 5}).to_string(), "[4, 5]");
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW(Shape({2, -1}), Error);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t{Shape{3, 3}};
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full(Shape{5}, 2.5f);
  EXPECT_EQ(t[4], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[0], -1.0f);
}

TEST(Tensor, At4IndexingIsRowMajorNCHW) {
  Tensor t{Shape{2, 3, 4, 5}};
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Rng rng(1);
  const Tensor t = Tensor::randn(Shape{2, 6}, rng);
  const Tensor r = t.reshaped(Shape{3, 4});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], r[i]);
  EXPECT_THROW(t.reshaped(Shape{5}), Error);
}

TEST(Tensor, SliceOuter) {
  Tensor t{Shape{4, 2}};
  for (std::int64_t i = 0; i < 8; ++i) t[i] = static_cast<float>(i);
  const Tensor s = t.slice_outer(1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s[0], 2.0f);
  EXPECT_EQ(s[3], 5.0f);
  EXPECT_THROW(t.slice_outer(3, 5), Error);
}

TEST(Tensor, RandnMomentsRoughlyCorrect) {
  Rng rng(42);
  const Tensor t = Tensor::randn(Shape{10000}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(mean(t), 1.0, 0.1);
  double var = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const double d = static_cast<double>(t[i]) - 1.0;
    var += d * d;
  }
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Tensor, KaimingScalesWithFanIn) {
  Rng rng(42);
  const Tensor small = Tensor::kaiming(Shape{64, 9}, rng, 9);
  const Tensor large = Tensor::kaiming(Shape{64, 900}, rng, 900);
  EXPECT_GT(mean_abs(small), mean_abs(large));
}

TEST(Ops, AddSubMulScale) {
  Tensor a{Shape{3}}, b{Shape{3}};
  for (int i = 0; i < 3; ++i) {
    a[i] = static_cast<float>(i + 1);
    b[i] = 2.0f;
  }
  EXPECT_EQ(add(a, b)[2], 5.0f);
  EXPECT_EQ(sub(a, b)[0], -1.0f);
  EXPECT_EQ(mul(a, b)[1], 4.0f);
  EXPECT_EQ(scale(a, 3.0f)[2], 9.0f);
  axpy_inplace(a, 0.5f, b);
  EXPECT_EQ(a[0], 2.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  const Tensor a{Shape{2}}, b{Shape{3}};
  EXPECT_THROW(add(a, b), Error);
  EXPECT_THROW(max_abs_diff(a, b), Error);
}

TEST(Ops, Reductions) {
  Tensor t{Shape{4}};
  t[0] = 1.0f; t[1] = -2.0f; t[2] = 3.0f; t[3] = -4.0f;
  EXPECT_DOUBLE_EQ(sum(t), -2.0);
  EXPECT_DOUBLE_EQ(mean(t), -0.5);
  EXPECT_DOUBLE_EQ(mean_abs(t), 2.5);
  EXPECT_DOUBLE_EQ(l1_norm(t), 10.0);
  EXPECT_NEAR(l2_norm(t), std::sqrt(30.0), 1e-12);
  EXPECT_EQ(max_value(t), 3.0f);
  EXPECT_EQ(argmax(t), 2);
}

TEST(Ops, SignConventionAtZero) {
  Tensor t{Shape{3}};
  t[0] = -0.5f; t[1] = 0.0f; t[2] = 0.5f;
  const Tensor s = sign(t);
  EXPECT_EQ(s[0], -1.0f);
  EXPECT_EQ(s[1], 1.0f);  // sign(0) = +1, the XNOR-Net convention
  EXPECT_EQ(s[2], 1.0f);
}

TEST(Ops, SoftmaxRowsSumToOneAndOrder) {
  Tensor logits{Shape{2, 3}};
  logits.at2(0, 0) = 1.0f; logits.at2(0, 1) = 2.0f; logits.at2(0, 2) = 3.0f;
  logits.at2(1, 0) = 100.0f; logits.at2(1, 1) = 100.0f;
  logits.at2(1, 2) = 100.0f;
  const Tensor p = softmax_rows(logits);
  for (std::int64_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 3; ++c) {
      s += static_cast<double>(p.at2(r, c));
    }
    EXPECT_NEAR(s, 1.0, 1e-6);
  }
  EXPECT_LT(p.at2(0, 0), p.at2(0, 2));
  EXPECT_NEAR(p.at2(1, 1), 1.0 / 3.0, 1e-6);  // large logits stay stable
}

TEST(Ops, ArgmaxRows) {
  Tensor logits{Shape{2, 3}};
  logits.at2(0, 1) = 5.0f;
  logits.at2(1, 2) = 5.0f;
  const auto am = argmax_rows(logits);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 2);
}

TEST(Serialize, RoundTrip) {
  Rng rng(3);
  const Tensor t = Tensor::randn(Shape{2, 3, 4, 5}, rng);
  ByteWriter w;
  write_tensor(w, t);
  EXPECT_EQ(static_cast<std::int64_t>(w.size()),
            tensor_wire_bytes(t.shape()));
  ByteReader r(w.bytes());
  const Tensor back = read_tensor(r);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(max_abs_diff(back, t), 0.0f);
}

TEST(Serialize, BadMagicThrows) {
  ByteWriter w;
  w.write_u32(0x12345678);
  w.write_u32(1);
  ByteReader r(w.bytes());
  EXPECT_THROW(read_tensor(r), ParseError);
}

TEST(Serialize, CorruptDimThrows) {
  ByteWriter w;
  write_tensor(w, Tensor{Shape{2, 2}});
  std::vector<std::uint8_t> bytes = w.take();
  bytes[9] = 0xFF;  // clobber the rank/dim region
  ByteReader r(bytes);
  EXPECT_THROW(read_tensor(r), ParseError);
}

}  // namespace
}  // namespace lcrs
