// Simulation substrate tests: link math, jitter bounds, device pricing,
// and the combined cost model, with monotonicity properties.
#include <gtest/gtest.h>

#include "models/zoo.h"
#include "sim/cost_model.h"
#include "sim/queueing.h"

namespace lcrs::sim {
namespace {

TEST(Link, PresetsMatchPaperSetting) {
  const LinkSpec l = lte_4g();
  EXPECT_DOUBLE_EQ(l.downlink_mbps, 10.0);
  EXPECT_DOUBLE_EQ(l.uplink_mbps, 3.0);
}

TEST(Link, TransferMath) {
  NetworkModel net{LinkSpec{8.0, 4.0, 20.0, 0.0}};
  // 1 MB over 8 Mb/s = 1 s + half RTT.
  EXPECT_NEAR(net.download_ms(1000000), 1000.0 + 10.0, 1e-6);
  // 1 MB over 4 Mb/s = 2 s + half RTT.
  EXPECT_NEAR(net.upload_ms(1000000), 2000.0 + 10.0, 1e-6);
  EXPECT_DOUBLE_EQ(net.download_ms(0), 0.0);
  EXPECT_DOUBLE_EQ(net.round_trip_ms(), 20.0);
}

TEST(Link, FaultSpecPresetsAndValidation) {
  EXPECT_TRUE(reliable_link().faultless());
  const FaultSpec flaky = flaky_link();
  flaky.validate();
  EXPECT_FALSE(flaky.faultless());

  FaultSpec bad;
  bad.drop_prob = -0.1;
  EXPECT_THROW(bad.validate(), Error);
  bad = FaultSpec{};
  bad.close_prob = 2.0;
  EXPECT_THROW(bad.validate(), Error);
  bad = FaultSpec{};
  bad.delay_ms = -1.0;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(Link, MonotoneInBytes) {
  NetworkModel net{lte_4g()};
  double prev = -1.0;
  for (std::int64_t bytes = 1; bytes < (1 << 24); bytes *= 4) {
    const double ms = net.upload_ms(bytes);
    EXPECT_GT(ms, prev);
    prev = ms;
  }
}

TEST(Link, JitterStaysWithinBounds) {
  LinkSpec spec = lte_4g();
  spec.jitter_frac = 0.25;
  NetworkModel net{spec};
  const double base = net.download_ms(1 << 20);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double j = net.download_ms_jittered(1 << 20, rng);
    EXPECT_GE(j, base * 0.749);
    EXPECT_LE(j, base * 1.251);
  }
}

TEST(Link, ZeroJitterIsDeterministic) {
  NetworkModel net{lte_4g()};
  Rng rng(2);
  EXPECT_DOUBLE_EQ(net.upload_ms_jittered(12345, rng), net.upload_ms(12345));
}

TEST(Link, InvalidSpecThrows) {
  EXPECT_THROW(NetworkModel(LinkSpec{0.0, 1.0, 10.0, 0.0}), Error);
  EXPECT_THROW(NetworkModel(LinkSpec{1.0, 1.0, 10.0, 1.5}), Error);
}

TEST(Device, ComputeTimeScalesWithFlops) {
  DeviceModel dev{DeviceSpec{"test", 1.0, 10.0}};  // 1 GFLOP/s
  EXPECT_NEAR(dev.compute_ms(1000000000), 1000.0, 1e-9);
  EXPECT_NEAR(dev.compute_binary_ms(1000000000), 100.0, 1e-9);
}

TEST(Device, PresetsOrderedByPower) {
  EXPECT_LT(mobile_web_browser().gflops, mobile_native().gflops);
  EXPECT_LT(mobile_native().gflops, edge_server().gflops);
  EXPECT_GT(mobile_web_browser().binary_speedup, 1.0);
}

TEST(CostModel, BinaryLayersPricedThroughXnorPath) {
  const CostModel cost = CostModel::paper_default();
  std::vector<models::LayerProfile> layers(2);
  layers[0].flops = 1000000;
  layers[0].is_binary = false;
  layers[1].flops = 1000000;
  layers[1].is_binary = true;
  const double float_ms = cost.browser_compute_ms(layers, 0, 1);
  const double binary_ms = cost.browser_compute_ms(layers, 1, 2);
  EXPECT_NEAR(float_ms / binary_ms,
              mobile_web_browser().binary_speedup, 1e-6);
}

TEST(CostModel, BoundaryBytesUseLayerOutputs) {
  std::vector<models::LayerProfile> layers(2);
  layers[0].output_elems = 100;
  layers[1].output_elems = 10;
  // Cut 0 = raw input; cut 1 = first layer's output; cut 2 = logits.
  EXPECT_EQ(CostModel::boundary_bytes(layers, 0, 784), 40 + 4 * 784);
  EXPECT_EQ(CostModel::boundary_bytes(layers, 1, 784), 40 + 4 * 100);
  EXPECT_EQ(CostModel::boundary_bytes(layers, 2, 784), 40 + 4 * 10);
  EXPECT_THROW(CostModel::boundary_bytes(layers, 3, 784), Error);
}

TEST(CostModel, RealModelEdgeFasterThanBrowser) {
  Rng rng(1);
  const models::ModelConfig cfg{models::Arch::kAlexNet, 3, 32, 32, 10, 0.25};
  auto model = models::build_monolithic(cfg, rng);
  const auto profiles = models::profile_layers(*model, Shape{3, 32, 32});
  const CostModel cost = CostModel::paper_default();
  EXPECT_GT(cost.browser_compute_ms(profiles, 0, profiles.size()),
            50.0 * cost.edge_compute_ms(profiles, 0, profiles.size()));
}

TEST(Queueing, IdleServerHasNoWait) {
  const QueueStats st = md1_stats(0.0, 10.0);
  EXPECT_TRUE(st.stable);
  EXPECT_DOUBLE_EQ(st.utilization, 0.0);
  EXPECT_DOUBLE_EQ(st.avg_wait_ms, 0.0);
  EXPECT_DOUBLE_EQ(st.avg_response_ms, 10.0);
}

TEST(Queueing, PollaczekKhinchineAtHalfLoad) {
  // rho = 0.5 with 10 ms deterministic service: Wq = 0.5*10 / (2*0.5) = 5.
  const QueueStats st = md1_stats(50.0, 10.0);
  EXPECT_TRUE(st.stable);
  EXPECT_NEAR(st.utilization, 0.5, 1e-12);
  EXPECT_NEAR(st.avg_wait_ms, 5.0, 1e-9);
  EXPECT_NEAR(st.avg_response_ms, 15.0, 1e-9);
  // Little's law: Lq = lambda * Wq = 50/s * 5ms = 0.25.
  EXPECT_NEAR(st.avg_queue_len, 0.25, 1e-9);
}

TEST(Queueing, OverloadIsUnstable) {
  const QueueStats st = md1_stats(200.0, 10.0);  // rho = 2
  EXPECT_FALSE(st.stable);
  EXPECT_TRUE(std::isinf(st.avg_response_ms));
}

TEST(Queueing, WaitIsMonotoneInLoad) {
  double prev = -1.0;
  for (double lam = 10.0; lam < 100.0; lam += 10.0) {
    const QueueStats st = md1_stats(lam, 9.9);
    EXPECT_GT(st.avg_wait_ms, prev);
    prev = st.avg_wait_ms;
  }
}

TEST(Queueing, MaxSustainableRateHitsTheTarget) {
  const double rate = max_sustainable_rate(10.0, 50.0);
  EXPECT_GT(rate, 0.0);
  const QueueStats st = md1_stats(rate, 10.0);
  EXPECT_TRUE(st.stable);
  EXPECT_NEAR(st.avg_response_ms, 50.0, 0.5);
  // Slower service or a tighter SLO must both reduce capacity.
  EXPECT_LT(max_sustainable_rate(20.0, 50.0), rate);
  EXPECT_LT(max_sustainable_rate(10.0, 20.0), rate);
  EXPECT_DOUBLE_EQ(max_sustainable_rate(60.0, 50.0), 0.0);
}

TEST(Queueing, LcrsCapacityMultiplier) {
  EdgeLoadProfile load;
  load.full_model_ms = 10.0;
  load.rest_only_ms = 8.0;
  load.exit_fraction = 0.75;
  EXPECT_NEAR(load.lcrs_effective_ms(), 2.0, 1e-12);
  EXPECT_NEAR(load.capacity_multiplier(), 5.0, 1e-12);
  load.exit_fraction = 1.0;  // everything exits: unbounded capacity
  EXPECT_GT(load.capacity_multiplier(), 1e6);
}

TEST(Energy, MillijouleArithmetic) {
  const EnergyModel e{EnergySpec{2.0, 1.5, 1.0}};
  EXPECT_DOUBLE_EQ(e.compute_mj(100.0), 200.0);  // 2 W * 100 ms
  EXPECT_DOUBLE_EQ(e.tx_mj(100.0), 150.0);
  EXPECT_DOUBLE_EQ(e.rx_mj(100.0), 100.0);
}

TEST(Energy, InvalidSpecThrows) {
  EXPECT_THROW(EnergyModel(EnergySpec{0.0, 1.0, 1.0}), Error);
  EXPECT_THROW(EnergyModel(EnergySpec{1.0, -1.0, 1.0}), Error);
}

TEST(Energy, TransmitCostsMoreThanReceive) {
  // Radio convention baked into the default spec: TX > RX.
  const EnergySpec spec = mobile_device_energy();
  EXPECT_GT(spec.tx_watts, spec.rx_watts);
}

TEST(Scenario, DefaultsMatchCalibratedSession) {
  const Scenario s;
  EXPECT_EQ(s.session_samples, 20);
  EXPECT_GT(s.camera_frame_bytes, 100 * 1024);
}

}  // namespace
}  // namespace lcrs::sim
