// Binary layer tests: the Eq. 4 reference forward, exact parity of the
// bit-packed fast path, STE-gated backward behaviour, and training
// effectiveness of the full binary stack.
#include <gtest/gtest.h>

#include "binary/binary_conv2d.h"
#include "common/numerics.h"
#include "binary/binary_linear.h"
#include "binary/binarize.h"
#include "binary/input_scale.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace lcrs::binary {
namespace {

// The STE branch runs the whole suite under the numerics sanitizer: the
// binarized forward, the gated backward, and the training loop below must
// never produce NaN/Inf, and a regression is attributed to its layer.
[[maybe_unused]] const bool kNumericsOn =
    (numerics::set_enabled(true), true);

TEST(BinaryConv, ForwardMatchesEq4Expansion) {
  // out = (sign(I) conv sign(W)) * K * alpha, checked against a manual
  // expansion on a tiny case.
  Rng rng(1);
  BinaryConv2d conv(1, 1, 3, 1, 0, 3, 3, rng);
  Tensor x = Tensor::randn(Shape{1, 1, 3, 3}, rng);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 1, 1}));

  const BinarizedFilters b = binarize_filters(conv.weight().value);
  float dot = 0.0f;
  for (std::int64_t i = 0; i < 9; ++i) {
    dot += (x[i] >= 0 ? 1.0f : -1.0f) * b.sign[i];
  }
  const Tensor k = input_scale_K(x, conv.geometry());
  EXPECT_NEAR(y[0], dot * b.alpha[0] * k[0], 1e-5);
}

struct ParityCase {
  std::int64_t in_c, out_c, kernel, stride, pad, hw;
};

class BinaryConvParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(BinaryConvParity, FastPathIsBitExact) {
  const ParityCase p = GetParam();
  Rng rng(p.in_c * 100 + p.out_c);
  BinaryConv2d conv(p.in_c, p.out_c, p.kernel, p.stride, p.pad, p.hw, p.hw,
                    rng);
  const Tensor x = Tensor::randn(Shape{2, p.in_c, p.hw, p.hw}, rng);
  const Tensor ref = conv.forward(x, false);
  conv.prepare_inference();
  const Tensor fast = conv.forward_fast(x);
  // Sign dot products are small exact integers; scaling is identical
  // float math, so parity is exact.
  EXPECT_EQ(max_abs_diff(ref, fast), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BinaryConvParity,
    ::testing::Values(ParityCase{1, 4, 3, 1, 1, 8},
                      ParityCase{3, 8, 3, 1, 1, 16},
                      ParityCase{4, 6, 5, 1, 2, 12},
                      ParityCase{8, 16, 3, 2, 1, 16},
                      ParityCase{2, 3, 3, 1, 0, 9}));

TEST(BinaryConv, FastPathRequiresPreparation) {
  Rng rng(2);
  BinaryConv2d conv(1, 2, 3, 1, 1, 8, 8, rng);
  EXPECT_THROW(conv.forward_fast(Tensor{Shape{1, 1, 8, 8}}), Error);
  conv.prepare_inference();
  EXPECT_NO_THROW(conv.forward_fast(Tensor{Shape{1, 1, 8, 8}}));
}

TEST(BinaryConv, TrainingInvalidatesPackedWeights) {
  Rng rng(3);
  BinaryConv2d conv(1, 2, 3, 1, 1, 8, 8, rng);
  conv.prepare_inference();
  EXPECT_TRUE(conv.inference_ready());
  conv.forward(Tensor{Shape{1, 1, 8, 8}}, /*train=*/true);
  EXPECT_FALSE(conv.inference_ready());
}

TEST(BinaryConv, BackwardGatesInputGradBySte) {
  Rng rng(4);
  BinaryConv2d conv(1, 2, 3, 1, 1, 6, 6, rng);
  Tensor x = Tensor::randn(Shape{1, 1, 6, 6}, rng);
  x[0] = 5.0f;    // far outside |x| <= 1
  x[1] = 0.3f;    // inside the STE window
  const Tensor y = conv.forward(x, true);
  const Tensor gx = conv.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_NE(gx[1], 0.0f);
}

TEST(BinaryConv, WeightBytesRoughly32xSmaller) {
  Rng rng(5);
  BinaryConv2d conv(64, 128, 3, 1, 1, 16, 16, rng);
  const std::int64_t float_bytes = conv.param_bytes();
  const std::int64_t bin_bytes = conv.binary_weight_bytes();
  EXPECT_GT(float_bytes, bin_bytes * 20);
  EXPECT_LT(float_bytes, bin_bytes * 40);
}

TEST(BinaryLinear, FastPathIsBitExact) {
  Rng rng(6);
  BinaryLinear lin(130, 17, rng);
  const Tensor x = Tensor::randn(Shape{4, 130}, rng);
  const Tensor ref = lin.forward(x, false);
  lin.prepare_inference();
  EXPECT_EQ(max_abs_diff(ref, lin.forward_fast(x)), 0.0f);
}

TEST(BinaryLinear, BiasStaysFullPrecision) {
  Rng rng(7);
  BinaryLinear lin(8, 4, rng);
  Tensor zero_in{Shape{1, 8}};
  zero_in.fill(0.0f);  // beta = 0 -> output is exactly the bias
  const Tensor y = lin.forward(zero_in, false);
  for (std::int64_t o = 0; o < 4; ++o) {
    EXPECT_FLOAT_EQ(y.at2(0, o), 0.0f);  // bias initialized to zero
  }
  for (nn::Param* p : lin.params()) {
    if (p->name == "binary_linear.bias") p->value.fill(1.25f);
  }
  const Tensor y2 = lin.forward(zero_in, false);
  for (std::int64_t o = 0; o < 4; ++o) EXPECT_FLOAT_EQ(y2.at2(0, o), 1.25f);
}

TEST(BinaryLinear, BackwardAccumulatesEq6WeightGrad) {
  Rng rng(8);
  BinaryLinear lin(6, 3, rng);
  const Tensor x = Tensor::randn(Shape{2, 6}, rng);
  lin.zero_grad();
  const Tensor y = lin.forward(x, true);
  lin.backward(Tensor::ones(y.shape()));
  EXPECT_GT(l2_norm(lin.weight().grad), 0.0);
}

TEST(BinaryStack, LearnsASeparableProblem) {
  // End-to-end: a binary linear stack must be trainable via STE + Eq. 6.
  Rng rng(9);
  nn::Sequential net;
  net.emplace<BinaryLinear>(8, 32, rng);
  net.emplace<nn::BatchNorm>(32);
  net.emplace<nn::HardTanh>();
  net.emplace<nn::Linear>(32, 2, rng);

  const int n = 128;
  Tensor x{Shape{n, 8}};
  std::vector<std::int64_t> labels(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    for (int f = 0; f < 8; ++f) {
      const double centre = (cls == 0) ? 0.6 : -0.6;
      const double sgn = (f % 2 == 0) ? 1.0 : -1.0;
      x.at2(i, f) = static_cast<float>(centre * sgn + rng.normal(0, 0.3));
    }
    labels[static_cast<std::size_t>(i)] = cls;
  }

  nn::Adam adam(0.01);
  for (int step = 0; step < 120; ++step) {
    net.zero_grad();
    const Tensor logits = net.forward(x, true);
    const nn::LossResult r = nn::softmax_cross_entropy(logits, labels);
    net.backward(r.grad_logits);
    adam.step(net.params());
  }
  EXPECT_GT(nn::accuracy(net.forward(x, false), labels), 0.9);
}

TEST(BinaryConv, FlopsAccountingIsConvEquivalent) {
  Rng rng(10);
  BinaryConv2d conv(3, 8, 3, 1, 1, 16, 16, rng);
  EXPECT_EQ(conv.flops_per_sample(), 2 * 8 * 27 * 16 * 16);
}

}  // namespace
}  // namespace lcrs::binary
