// Tests for the confusion-matrix metrics and the PPM/PGM image output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/bytes.h"
#include "data/image_io.h"
#include "data/logo.h"
#include "nn/metrics.h"

namespace lcrs {
namespace {

TEST(Confusion, CountsAndAccuracy) {
  nn::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_EQ(cm.total(), 5);
  EXPECT_EQ(cm.count(0, 0), 2);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_NEAR(cm.accuracy(), 3.0 / 5.0, 1e-12);
}

TEST(Confusion, RecallPrecisionBalanced) {
  nn::ConfusionMatrix cm(3);
  // class 0: 2 of 3 right; class 1: 1 of 1; class 2: 0 of 1.
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 2);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_NEAR(cm.recall(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 1.0, 1e-12);
  EXPECT_NEAR(cm.recall(2), 0.0, 1e-12);
  EXPECT_NEAR(cm.precision(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.precision(2), 0.0, 1e-12);
  EXPECT_NEAR(cm.balanced_accuracy(), (2.0 / 3.0 + 1.0 + 0.0) / 3.0, 1e-12);
}

TEST(Confusion, EmptyClassConventions) {
  nn::ConfusionMatrix cm(2);
  cm.add(0, 0);
  EXPECT_NEAR(cm.recall(1), 1.0, 1e-12);     // no samples of class 1
  EXPECT_NEAR(cm.precision(1), 1.0, 1e-12);  // never predicted
}

TEST(Confusion, AddBatchMatchesAccuracy) {
  Tensor logits{Shape{3, 2}};
  logits.at2(0, 1) = 1.0f;  // pred 1
  logits.at2(1, 0) = 1.0f;  // pred 0
  logits.at2(2, 1) = 1.0f;  // pred 1
  const std::vector<std::int64_t> labels{1, 0, 0};
  nn::ConfusionMatrix cm(2);
  cm.add_batch(logits, labels);
  EXPECT_NEAR(cm.accuracy(), nn::accuracy(logits, labels), 1e-12);
}

TEST(Confusion, OutOfRangeThrows) {
  nn::ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), Error);
  EXPECT_THROW(cm.add(0, -1), Error);
  EXPECT_THROW(cm.count(0, 5), Error);
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  return read_file(path);
}

TEST(ImageIo, WritesValidPpmHeaderAndSize) {
  data::LogoSpec spec;
  const Tensor logo = data::render_logo(spec, 0);  // [3, 32, 32]
  const std::string path = ::testing::TempDir() + "/lcrs_logo.ppm";
  data::write_image(path, logo);
  const auto bytes = read_all(path);
  std::remove(path.c_str());

  const std::string header(bytes.begin(), bytes.begin() + 2);
  EXPECT_EQ(header, "P6");
  // P6\n32 32\n255\n + 32*32*3 payload
  const std::string expected_hdr = "P6\n32 32\n255\n";
  EXPECT_EQ(bytes.size(), expected_hdr.size() + 32 * 32 * 3);
}

TEST(ImageIo, GrayscaleUsesPgm) {
  Tensor img{Shape{1, 4, 4}};
  const std::string path = ::testing::TempDir() + "/lcrs_gray.pgm";
  data::write_image(path, img);
  const auto bytes = read_all(path);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(bytes.begin(), bytes.begin() + 2), "P5");
}

TEST(ImageIo, ValueMappingClampsToRange) {
  Tensor img{Shape{1, 1, 3}};
  img[0] = -5.0f;  // below lo -> 0
  img[1] = 0.0f;   // mid -> ~128
  img[2] = 5.0f;   // above hi -> 255
  const std::string path = ::testing::TempDir() + "/lcrs_clamp.pgm";
  data::write_image(path, img, -1.0f, 1.0f);
  const auto bytes = read_all(path);
  std::remove(path.c_str());
  const std::size_t payload = bytes.size() - 3;
  EXPECT_EQ(bytes[payload + 0], 0);
  EXPECT_NEAR(bytes[payload + 1], 128, 1);
  EXPECT_EQ(bytes[payload + 2], 255);
}

TEST(ImageIo, GridTilesBatch) {
  Tensor batch{Shape{4, 3, 8, 8}};
  const std::string path = ::testing::TempDir() + "/lcrs_grid.ppm";
  data::write_image_grid(path, batch, 4, 2);
  const auto bytes = read_all(path);
  std::remove(path.c_str());
  // 2x2 grid of 8x8 with 1px gaps -> 17x17.
  const std::string expected_hdr = "P6\n17 17\n255\n";
  EXPECT_EQ(std::string(bytes.begin(),
                        bytes.begin() + static_cast<long>(expected_hdr.size())),
            expected_hdr);
}

TEST(ImageIo, RejectsBadInput) {
  EXPECT_THROW(data::write_image("/tmp/x.ppm", Tensor{Shape{2, 4, 4}}),
               Error);  // 2 channels unsupported
  EXPECT_THROW(
      data::write_image("/nonexistent/dir/x.ppm", Tensor{Shape{1, 4, 4}}),
      IoError);
}

}  // namespace
}  // namespace lcrs
