// Observability tests: metric registry semantics (naming, collision
// rules, percentiles, reset-keeps-references), mirrored instruments,
// trace spans and sinks, trace-id minting, and concurrent hammering of
// counters/histograms/span emission (the TSan target for this layer).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"

namespace lcrs::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketsCountSumMinMax) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0 (<= 1)
  h.record(1.0);    // bucket 0 (== bound goes into that bucket)
  h.record(5.0);    // bucket 1
  h.record(500.0);  // overflow bucket
  const HistogramSnapshot s = h.snapshot("t");
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.sum, 506.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 500.0);
  ASSERT_EQ(s.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(s.counts[0], 2);
  EXPECT_EQ(s.counts[1], 1);
  EXPECT_EQ(s.counts[2], 0);
  EXPECT_EQ(s.counts[3], 1);
}

TEST(HistogramTest, PercentilesAreOrderedAndBounded) {
  Histogram h(default_latency_bounds_us());
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot s = h.snapshot("lat");
  const double p50 = s.percentile(0.5);
  const double p90 = s.percentile(0.9);
  const double p99 = s.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Interpolated values stay inside the observed range.
  EXPECT_GE(p50, s.min);
  EXPECT_LE(p99, s.max);
  // Coarse sanity: the median of 1..1000 lives in the right decade.
  EXPECT_GT(p50, 100.0);
  EXPECT_LT(p50, 1000.0);
}

TEST(HistogramTest, EmptySnapshotIsZeroes) {
  Histogram h({1.0, 2.0});
  const HistogramSnapshot s = h.snapshot("e");
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
}

TEST(RegistryTest, NamesValidatedAndStable) {
  Registry reg;
  Counter& a = reg.counter("edge.server.requests");
  Counter& b = reg.counter("edge.server.requests");
  EXPECT_EQ(&a, &b);  // same instrument on re-lookup
  EXPECT_THROW(reg.counter(""), Error);
  EXPECT_THROW(reg.counter("Bad.Name"), Error);
  EXPECT_THROW(reg.counter("spaces not ok"), Error);
  EXPECT_THROW(reg.counter(".leading"), Error);
  EXPECT_THROW(reg.counter("trailing."), Error);
  EXPECT_THROW(reg.counter("double..dot"), Error);
}

TEST(RegistryTest, KindCollisionRejected) {
  Registry reg;
  reg.counter("a.b");
  EXPECT_THROW(reg.gauge("a.b"), Error);
  EXPECT_THROW(reg.histogram("a.b"), Error);
}

TEST(RegistryTest, HistogramBoundsMustMatchOnRelookup) {
  Registry reg;
  reg.histogram("h.x", {1.0, 2.0});
  EXPECT_NO_THROW(reg.histogram("h.x", {1.0, 2.0}));
  EXPECT_NO_THROW(reg.histogram("h.x"));  // empty = accept existing
  EXPECT_THROW(reg.histogram("h.x", {1.0, 3.0}), Error);
}

TEST(RegistryTest, ResetValuesKeepsReferences) {
  Registry reg;
  Counter& c = reg.counter("c.n");
  Histogram& h = reg.histogram("h.n", {1.0, 2.0});
  c.add(5);
  h.record(1.5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  c.add(1);  // the old reference still works
  EXPECT_EQ(reg.counter("c.n").value(), 1);
}

TEST(RegistryTest, SnapshotFindTextJson) {
  Registry reg;
  reg.counter("z.count").add(3);
  reg.gauge("a.depth").set(2.5);
  reg.histogram("m.lat_us", {10.0, 100.0}).record(42.0);
  const Snapshot s = reg.snapshot();

  ASSERT_NE(s.find_counter("z.count"), nullptr);
  EXPECT_EQ(s.find_counter("z.count")->value, 3);
  ASSERT_NE(s.find_gauge("a.depth"), nullptr);
  EXPECT_DOUBLE_EQ(s.find_gauge("a.depth")->value, 2.5);
  ASSERT_NE(s.find_histogram("m.lat_us"), nullptr);
  EXPECT_EQ(s.find_histogram("m.lat_us")->count, 1);
  EXPECT_EQ(s.find_counter("missing.name"), nullptr);

  const std::string text = s.to_text();
  EXPECT_NE(text.find("z.count"), std::string::npos);
  EXPECT_NE(text.find("a.depth"), std::string::npos);
  EXPECT_NE(text.find("m.lat_us"), std::string::npos);

  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"z.count\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RegistryTest, MirroredInstrumentsUpdateBothSides) {
  Registry local;
  // Use a test-local name so parallel suites sharing the global registry
  // cannot interfere.
  const std::string name = "test.mirror.counter";
  const std::int64_t before = Registry::global().counter(name).value();
  MirroredCounter mc(local, name);
  mc.add(2);
  EXPECT_EQ(mc.value(), 2);
  EXPECT_EQ(local.counter(name).value(), 2);
  EXPECT_EQ(Registry::global().counter(name).value(), before + 2);

  const std::string hname = "test.mirror.hist_us";
  MirroredHistogram mh(local, hname);
  mh.record(7.0);
  EXPECT_EQ(mh.count(), 1);
  EXPECT_DOUBLE_EQ(mh.sum(), 7.0);
  EXPECT_GE(Registry::global().histogram(hname).count(), 1);

  const std::string gname = "test.mirror.gauge";
  MirroredGauge mg(local, gname);
  mg.add(1.0);
  mg.add(-1.0);
  EXPECT_DOUBLE_EQ(mg.value(), 0.0);
}

TEST(MetricNames, BuildersProduceValidNames) {
  Registry reg;
  // Every builder output must pass registration validation.
  EXPECT_NO_THROW(reg.histogram(names::layer_metric(3, "conv2d", "forward_us")));
  EXPECT_NO_THROW(reg.histogram(names::webinfer_op_metric(0, "binconv")));
  EXPECT_NO_THROW(reg.gauge(names::baseline_gauge("Edge-Only (TF)", "total_ms")));
  EXPECT_EQ(names::layer_metric(3, "conv2d", "forward_us"),
            "nn.layer.3.conv2d.forward_us");
  EXPECT_EQ(names::webinfer_op_metric(0, "binconv"), "webinfer.op.0.binconv.us");
}

TEST(Profiling, ScopedToggleRestores) {
  const bool before = profiling_enabled();
  {
    ScopedProfiling on;
    EXPECT_TRUE(profiling_enabled());
    {
      ScopedProfiling off(false);
      EXPECT_FALSE(profiling_enabled());
    }
    EXPECT_TRUE(profiling_enabled());
  }
  EXPECT_EQ(profiling_enabled(), before);
}

// ---------------------------------------------------------------------
// Trace spans and sinks.

TEST(Trace, NextTraceIdNonzeroAndUnique) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = next_trace_id();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Trace, SteadyNowIsMonotonic) {
  const std::int64_t a = steady_now_ns();
  const std::int64_t b = steady_now_ns();
  EXPECT_GE(b, a);
}

TEST(Trace, SpanEmitsToInstalledSink) {
  RingBufferSink sink;
  ScopedTraceSink scoped(&sink);
  const std::uint64_t id = next_trace_id();
  { Span span(id, "test.stage"); }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, id);
  EXPECT_EQ(spans[0].name, "test.stage");
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
  EXPECT_GE(spans[0].duration_us(), 0.0);
}

TEST(Trace, SpanInactiveWithoutSinkOrId) {
  RingBufferSink sink;
  {
    ScopedTraceSink scoped(&sink);
    { Span span(0, "untraced"); }  // zero id => inactive
  }
  { Span span(next_trace_id(), "no.sink"); }  // no sink => inactive
  EXPECT_TRUE(sink.spans().empty());
}

TEST(Trace, RingBufferDropsOldestAndCounts) {
  RingBufferSink sink(3);
  ScopedTraceSink scoped(&sink);
  for (int i = 0; i < 5; ++i) {
    Span span(static_cast<std::uint64_t>(i + 1), "s");
  }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].trace_id, 3u);  // oldest two dropped
  EXPECT_EQ(spans[2].trace_id, 5u);
  EXPECT_EQ(sink.dropped(), 2);
  sink.clear();
  EXPECT_TRUE(sink.spans().empty());
}

TEST(Trace, JsonlFileSinkWritesOneObjectPerSpan) {
  const std::string path = "test_obs_trace.jsonl";
  {
    JsonlFileSink sink(path);
    ScopedTraceSink scoped(&sink);
    { Span span(77, "client.network"); }
    { Span span(77, "edge.complete"); }
    sink.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"trace_id\":77"), std::string::npos) << line;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2);
  in.close();
  std::remove(path.c_str());
}

TEST(Trace, ScopedSinkRestoresPrevious) {
  RingBufferSink outer;
  ScopedTraceSink a(&outer);
  {
    RingBufferSink inner;
    ScopedTraceSink b(&inner);
    EXPECT_EQ(trace_sink(), &inner);
  }
  EXPECT_EQ(trace_sink(), &outer);
}

// ---------------------------------------------------------------------
// Concurrency: the TSan target. Counters must not lose increments,
// histograms must not lose records, span emission must be race-free.

TEST(Concurrency, CountersAndHistogramsLoseNothing) {
  Registry reg;
  Counter& c = reg.counter("race.count");
  Histogram& h = reg.histogram("race.lat_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  const HistogramSnapshot s = h.snapshot("race.lat_us");
  std::int64_t bucket_total = 0;
  for (const std::int64_t n : s.counts) bucket_total += n;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(kThreads * kPerThread - 1));
}

// Regression: snapshots taken while record() is mid-flight must stay
// internally consistent. count_ used to be bumped before min_/max_/sum_,
// so a concurrent snapshot could observe count > 0 with min still at
// +inf -- and Registry::to_json would then emit a bare `inf`, which is
// not valid JSON. record() now publishes the extrema first and
// snapshot() sanitizes any torn read down to the mean.
TEST(Concurrency, SnapshotUnderLoadStaysFiniteAndOrdered) {
  Registry reg;
  Histogram& h = reg.histogram("race.snapshot_us");
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      double v = static_cast<double>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(v);
        v += 1.0;
        if (v > 1e6) v = static_cast<double>(t);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    const HistogramSnapshot s = h.snapshot("race.snapshot_us");
    if (s.count == 0) continue;
    EXPECT_TRUE(std::isfinite(s.min)) << "iteration " << i;
    EXPECT_TRUE(std::isfinite(s.max)) << "iteration " << i;
    EXPECT_LE(s.min, s.max) << "iteration " << i;
    EXPECT_TRUE(std::isfinite(s.percentile(0.99))) << "iteration " << i;
    // to_json over the live registry must never emit a bare inf/nan.
    const std::string json = reg.snapshot().to_json();
    EXPECT_EQ(json.find("inf"), std::string::npos) << "iteration " << i;
    EXPECT_EQ(json.find("nan"), std::string::npos) << "iteration " << i;
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

TEST(Concurrency, RegistrationRacesResolveToOneInstrument) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] { seen[static_cast<std::size_t>(t)] =
                                      &reg.counter("race.register"); });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
}

TEST(Concurrency, SpanEmissionFromManyThreads) {
  RingBufferSink sink(100000);
  ScopedTraceSink scoped(&sink);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        Span span(next_trace_id(), "race.span");
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(sink.spans().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.dropped(), 0);
}

}  // namespace
}  // namespace lcrs::obs
