// Tests for common/sync.h: annotated Mutex/MutexLock/CondVar semantics
// and the runtime lock-order deadlock detector. The ABBA cases
// deliberately record conflicting acquisition orders and assert the
// checker reports them *before* anything blocks -- the whole point is
// catching deadlocks whose interleaving never fires in a test run.

#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"

// TSan ships its own lock-order-inversion detector, and two tests below
// *complete* a reversed blocking acquisition on purpose (ours allows it:
// try_lock exemption / checker disabled). Those trip TSan at the pthread
// level, so they skip under it. The detection tests (ABBA, cycle) do NOT
// skip: the handler throws before the underlying pthread lock is taken,
// so no inversion ever reaches TSan.
#if defined(__SANITIZE_THREAD__)
#define LCRS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LCRS_TSAN 1
#endif
#endif

#if defined(LCRS_TSAN)
#define LCRS_SKIP_UNDER_TSAN()                                      \
  GTEST_SKIP() << "intentionally completes a reversed lock order; " \
                  "TSan's own deadlock detector flags it"
#else
#define LCRS_SKIP_UNDER_TSAN() (void)0
#endif

namespace {

using lcrs::CondVar;
using lcrs::Mutex;
using lcrs::MutexLock;
namespace sync = lcrs::sync;

struct ViolationError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Handlers must be plain function pointers; tests capture through these.
// Only the thread performing the offending acquisition runs the handler,
// and every test below triggers violations from the main thread only.
std::string g_last_report;  // NOLINT(cert-err58-cpp)

void throwing_handler(const std::string& report) {
  g_last_report = report;
  throw ViolationError(report);
}

void recording_handler(const std::string& report) { g_last_report = report; }

/// Scoped "clean room": empty graph, chosen handler, checking on.
class CheckerFixture {
 public:
  explicit CheckerFixture(sync::LockOrderHandler handler)
      : handler_scope_(handler) {
    sync::reset_lock_order_graph_for_testing();
    g_last_report.clear();
  }
  ~CheckerFixture() { sync::reset_lock_order_graph_for_testing(); }

 private:
  sync::ScopedLockOrderChecking checking_{true};
  sync::ScopedLockOrderHandler handler_scope_;
};

/// Records the order a -> b from a helper thread, then returns.
void record_order(Mutex& a, Mutex& b) {
  std::thread t([&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  t.join();
}

TEST(SyncMutex, BasicMutualExclusion) {
  Mutex mu("test.sync.basic");
  EXPECT_STREQ(mu.site(), "test.sync.basic");
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4 * 2000);
}

TEST(SyncMutex, SameSiteSharesOneGraphNode) {
  Mutex a("test.sync.shared_site");
  Mutex b("test.sync.shared_site");
  EXPECT_EQ(a.site_id(), b.site_id());
  Mutex c("test.sync.other_site");
  EXPECT_NE(a.site_id(), c.site_id());
}

TEST(SyncMutex, TryLockContendedAndUncontended) {
  Mutex mu("test.sync.trylock");
  ASSERT_TRUE(mu.try_lock());
  std::atomic<bool> other_failed{false};
  std::thread t([&] { other_failed = !mu.try_lock(); });
  t.join();
  EXPECT_TRUE(other_failed.load());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncMutex, UnlocksOnExceptionUnwind) {
  Mutex mu("test.sync.unwind");
  try {
    MutexLock lock(mu);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(mu.try_lock());  // would fail (or self-report) if leaked
  mu.unlock();
}

TEST(SyncCondVar, SignalsAcrossThreads) {
  Mutex mu("test.sync.cv");
  CondVar cv;
  bool ready = false;
  std::int64_t observed = -1;
  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(LockOrderChecker, RecordsEdgesForNestedAcquisitions) {
  CheckerFixture fixture(&recording_handler);
  Mutex a("test.sync.edges_a");
  Mutex b("test.sync.edges_b");
  EXPECT_EQ(sync::lock_order_edge_count(), 0u);
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_EQ(sync::lock_order_edge_count(), 1u);
  // Same order again: no duplicate edge, no report.
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_EQ(sync::lock_order_edge_count(), 1u);
  EXPECT_TRUE(g_last_report.empty()) << g_last_report;
}

TEST(LockOrderChecker, DetectsAbba) {
  CheckerFixture fixture(&throwing_handler);
  Mutex a("test.sync.abba_a");
  Mutex b("test.sync.abba_b");
  record_order(a, b);

  MutexLock lb(b);
  EXPECT_THROW(a.lock(), ViolationError);
  EXPECT_NE(g_last_report.find("test.sync.abba_a"), std::string::npos)
      << g_last_report;
  EXPECT_NE(g_last_report.find("test.sync.abba_b"), std::string::npos)
      << g_last_report;
  EXPECT_NE(g_last_report.find("ABBA"), std::string::npos) << g_last_report;
  // The handler fired *before* the acquisition: a is not held, and the
  // held set is intact -- a consistent-order reacquisition still works.
  EXPECT_TRUE(a.try_lock());
  a.unlock();
}

TEST(LockOrderChecker, DetectsThreeLockCycleWithPath) {
  CheckerFixture fixture(&throwing_handler);
  Mutex a("test.sync.cycle_a");
  Mutex b("test.sync.cycle_b");
  Mutex c("test.sync.cycle_c");
  record_order(a, b);
  record_order(b, c);

  MutexLock lc(c);
  EXPECT_THROW(a.lock(), ViolationError);
  // The report shows the recorded path a -> b -> c that conflicts with
  // acquiring a while holding c.
  EXPECT_NE(g_last_report.find("'test.sync.cycle_a' -> 'test.sync.cycle_b' "
                               "-> 'test.sync.cycle_c'"),
            std::string::npos)
      << g_last_report;
}

TEST(LockOrderChecker, DetectsRecursiveAcquisition) {
  CheckerFixture fixture(&throwing_handler);
  Mutex mu("test.sync.recursive");
  MutexLock lock(mu);
  EXPECT_THROW(mu.lock(), ViolationError);
  EXPECT_NE(g_last_report.find("recursive"), std::string::npos)
      << g_last_report;
}

TEST(LockOrderChecker, DetectsSameSiteNesting) {
  CheckerFixture fixture(&throwing_handler);
  Mutex first("test.sync.same_site_nested");
  Mutex second("test.sync.same_site_nested");
  MutexLock lock(first);
  EXPECT_THROW(second.lock(), ViolationError);
  EXPECT_NE(g_last_report.find("same site"), std::string::npos)
      << g_last_report;
}

TEST(LockOrderChecker, TryLockAddsNoOrderEdge) {
  LCRS_SKIP_UNDER_TSAN();
  CheckerFixture fixture(&throwing_handler);
  Mutex a("test.sync.try_a");
  Mutex b("test.sync.try_b");
  {
    MutexLock la(a);
    ASSERT_TRUE(b.try_lock());  // try-and-back-off: deadlock-free
    b.unlock();
  }
  EXPECT_EQ(sync::lock_order_edge_count(), 0u);
  // The reverse blocking order is therefore still allowed.
  MutexLock lb(b);
  EXPECT_NO_THROW(a.lock());
  a.unlock();
}

TEST(LockOrderChecker, DisabledRecordsAndReportsNothing) {
  LCRS_SKIP_UNDER_TSAN();
  sync::ScopedLockOrderHandler handler_scope(&recording_handler);
  sync::reset_lock_order_graph_for_testing();
  g_last_report.clear();
  {
    sync::ScopedLockOrderChecking off(false);
    Mutex a("test.sync.off_a");
    Mutex b("test.sync.off_b");
    {
      MutexLock la(a);
      MutexLock lb(b);
    }
    {
      MutexLock lb(b);
      MutexLock la(a);  // ABBA, but the checker is off
    }
    EXPECT_EQ(sync::lock_order_edge_count(), 0u);
  }
  EXPECT_TRUE(g_last_report.empty()) << g_last_report;
  sync::reset_lock_order_graph_for_testing();
}

TEST(LockOrderChecker, HandlerScopesRestorePrevious) {
  sync::LockOrderHandler prev = sync::set_lock_order_handler(nullptr);
  {
    sync::ScopedLockOrderHandler outer(&recording_handler);
    {
      sync::ScopedLockOrderHandler inner(&throwing_handler);
      EXPECT_EQ(sync::set_lock_order_handler(&throwing_handler),
                &throwing_handler);
    }
    EXPECT_EQ(sync::set_lock_order_handler(&recording_handler),
              &recording_handler);
  }
  EXPECT_EQ(sync::set_lock_order_handler(prev), nullptr);
}

// Death test: with no handler installed the checker prints both orders
// and aborts -- the production behavior. Skipped under TSan (fork-based
// death tests and TSan do not mix).
#if !defined(LCRS_TSAN) && GTEST_HAS_DEATH_TEST
TEST(LockOrderCheckerDeathTest, DefaultHandlerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sync::ScopedLockOrderChecking checking(true);
  EXPECT_DEATH(
      {
        sync::reset_lock_order_graph_for_testing();
        Mutex a("test.sync.death_a");
        Mutex b("test.sync.death_b");
        record_order(a, b);
        MutexLock lb(b);
        a.lock();
      },
      "lock-order violation");
}
#endif

// Multi-thread hammer: consistent lock orders plus condvar traffic from
// 8 threads, with the checker on. Must finish with the right sum, no
// violation report, and stay TSan-clean (scripts/check_tsan.sh runs this
// suite).
TEST(LockOrderChecker, HammerConsistentOrdersStaysClean) {
  CheckerFixture fixture(&recording_handler);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  Mutex outer("test.sync.hammer_outer");
  Mutex inner("test.sync.hammer_inner");
  CondVar cv;
  std::int64_t total = 0;
  std::int64_t turnstile = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        {
          MutexLock lo(outer);
          MutexLock li(inner);
          ++total;
        }
        {
          MutexLock li(inner);
          ++turnstile;
        }
        cv.notify_all();
      }
    });
  }
  {
    MutexLock li(inner);
    while (turnstile < kThreads) cv.wait(inner);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total, static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(sync::lock_order_edge_count(), 1u);  // outer -> inner only
  EXPECT_TRUE(g_last_report.empty()) << g_last_report;
}

// The parallel_for worker pool runs on lcrs::Mutex/CondVar; hammer it
// with the checker enabled to prove the pool adds no ordering hazards
// (pool mutex and job mutex are never nested).
TEST(LockOrderChecker, ParallelForPoolStaysClean) {
  CheckerFixture fixture(&recording_handler);
  const int prev = lcrs::parallel_thread_count();
  lcrs::set_parallel_thread_count(4);
  std::vector<std::int64_t> out(1 << 12, 0);
  for (int round = 0; round < 20; ++round) {
    lcrs::parallel_for(static_cast<std::int64_t>(out.size()),
                       [&](std::int64_t begin, std::int64_t end) {
                         for (std::int64_t i = begin; i < end; ++i) {
                           out[static_cast<std::size_t>(i)] += i;
                         }
                       });
  }
  lcrs::set_parallel_thread_count(prev);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 20 * static_cast<std::int64_t>(i));
  }
  EXPECT_TRUE(g_last_report.empty()) << g_last_report;
}

}  // namespace
