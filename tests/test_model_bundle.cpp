// Versioned model-bundle tests (core/checkpoint.h, "LCRB"): the on-disk
// artifact the edge server's ModelRegistry hot-swaps.
//
// Properties, per architecture in the zoo:
//   * save -> load -> save is byte-identical (the format is canonical),
//     and the loaded network is weight-for-weight the one saved;
//   * every strict prefix of a valid bundle is rejected with
//     lcrs::Error (sampled like test_truncation.cpp);
//   * the canonical-form rules (id 0 reserved, version >= 1, name cap)
//     hold symmetrically on save and load, so neither side can produce
//     what the other rejects.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "core/checkpoint.h"
#include "models/zoo.h"

namespace lcrs {
namespace {

using Bytes = std::vector<std::uint8_t>;

core::CompositeNetwork fresh_net(models::Arch arch, std::uint64_t seed) {
  Rng rng(seed);
  return core::CompositeNetwork::build(models::small_config(arch), rng);
}

Bytes bundle_for(core::CompositeNetwork& net, const models::ModelConfig& cfg,
                 const core::BundleInfo& info) {
  return core::save_bundle(
      net, core::Checkpoint{cfg, models::default_branch(cfg.arch), 0.1},
      info);
}

Bytes prefix_of(const Bytes& b, std::size_t n) {
  return Bytes(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(n));
}

/// Header bytes exhaustively, then a stride, then the tail (mirrors
/// test_truncation.cpp's sampling for multi-KB artifacts).
std::vector<std::size_t> sampled_offsets(std::size_t size,
                                         std::size_t stride) {
  std::vector<std::size_t> offs;
  for (std::size_t i = 0; i < size && i < 200; ++i) offs.push_back(i);
  for (std::size_t i = 200; i < size; i += stride) offs.push_back(i);
  for (std::size_t i = size > 64 ? size - 64 : 0; i < size; ++i) {
    offs.push_back(i);
  }
  return offs;
}

TEST(ModelBundle, RoundTripByteIdenticalEveryArch) {
  std::uint32_t next_id = 1;
  for (const models::Arch arch : models::all_archs()) {
    const models::ModelConfig cfg = models::small_config(arch);
    core::CompositeNetwork net = fresh_net(arch, 100 + next_id);
    const core::BundleInfo info{next_id, next_id + 10,
                                std::string("zoo-") +
                                    models::arch_name(arch)};
    const Bytes bytes = bundle_for(net, cfg, info);

    core::LoadedBundle loaded = core::load_bundle(bytes);
    EXPECT_EQ(loaded.info.model_id, info.model_id);
    EXPECT_EQ(loaded.info.version, info.version);
    EXPECT_EQ(loaded.info.name, info.name);
    EXPECT_EQ(loaded.loaded.ckpt.config.arch, arch);

    // Idempotent: re-saving the loaded bundle reproduces the bytes
    // exactly, so load dropped or defaulted nothing.
    const Bytes resaved = core::save_bundle(
        loaded.loaded.net, loaded.loaded.ckpt, loaded.info);
    EXPECT_EQ(resaved, bytes) << models::arch_name(arch);

    // And the weights came through bit-exact: both networks produce
    // identical logits on the same input.
    Rng rng(7);
    const Tensor x = Tensor::randn(
        Shape{2, cfg.in_channels, cfg.in_h, cfg.in_w}, rng);
    const Tensor a = net.forward(x, false).main_logits;
    const Tensor b = loaded.loaded.net.forward(x, false).main_logits;
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<std::size_t>(a.numel()) *
                              sizeof(float)),
              0)
        << models::arch_name(arch);
    ++next_id;
  }
}

TEST(ModelBundle, EveryPrefixRejectedSampled) {
  const models::ModelConfig cfg = models::small_config(models::Arch::kLeNet);
  core::CompositeNetwork net = fresh_net(models::Arch::kLeNet, 21);
  const Bytes bytes = bundle_for(net, cfg, core::BundleInfo{5, 3, "lenet"});
  ASSERT_NO_THROW((void)core::load_bundle(bytes));
  for (const std::size_t n : sampled_offsets(bytes.size(), 4099)) {
    EXPECT_THROW((void)core::load_bundle(prefix_of(bytes, n)), Error)
        << "prefix length " << n << " of " << bytes.size();
  }
}

TEST(ModelBundle, TrailingByteRejected) {
  const models::ModelConfig cfg = models::small_config(models::Arch::kLeNet);
  core::CompositeNetwork net = fresh_net(models::Arch::kLeNet, 22);
  Bytes bytes = bundle_for(net, cfg, core::BundleInfo{5, 3, "lenet"});
  bytes.push_back(0xAA);
  EXPECT_THROW((void)core::load_bundle(bytes), Error);
}

TEST(ModelBundle, BadMagicRejected) {
  const models::ModelConfig cfg = models::small_config(models::Arch::kLeNet);
  core::CompositeNetwork net = fresh_net(models::Arch::kLeNet, 23);
  Bytes bytes = bundle_for(net, cfg, core::BundleInfo{5, 3, "lenet"});
  bytes[0] ^= 0xFF;
  EXPECT_THROW((void)core::load_bundle(bytes), Error);
  EXPECT_FALSE(core::looks_like_bundle(bytes));
}

TEST(ModelBundle, CanonicalFormRulesSymmetric) {
  const models::ModelConfig cfg = models::small_config(models::Arch::kLeNet);
  core::CompositeNetwork net = fresh_net(models::Arch::kLeNet, 24);
  const core::Checkpoint ckpt{cfg, models::default_branch(cfg.arch), 0.1};

  // Save-side rejections.
  EXPECT_THROW(
      (void)core::save_bundle(net, ckpt, core::BundleInfo{0, 1, "x"}),
      InvalidArgument);
  EXPECT_THROW(
      (void)core::save_bundle(net, ckpt, core::BundleInfo{1, 0, "x"}),
      InvalidArgument);
  EXPECT_THROW((void)core::save_bundle(
                   net, ckpt,
                   core::BundleInfo{1, 1, std::string(257, 'n')}),
               InvalidArgument);
  // The boundary name length is fine.
  EXPECT_NO_THROW((void)core::save_bundle(
      net, ckpt, core::BundleInfo{1, 1, std::string(256, 'n')}));

  // Load-side rejections of the same rules, built by patching the
  // fixed-offset header fields ([magic][format-version][id][version]).
  const Bytes good = bundle_for(net, cfg, core::BundleInfo{1, 1, "x"});
  Bytes zero_id = good;
  for (std::size_t i = 8; i < 12; ++i) zero_id[i] = 0;
  EXPECT_THROW((void)core::load_bundle(zero_id), Error);
  Bytes zero_version = good;
  for (std::size_t i = 12; i < 16; ++i) zero_version[i] = 0;
  EXPECT_THROW((void)core::load_bundle(zero_version), Error);
}

TEST(ModelBundle, LooksLikeBundleDistinguishesCheckpoints) {
  const models::ModelConfig cfg = models::small_config(models::Arch::kLeNet);
  core::CompositeNetwork net = fresh_net(models::Arch::kLeNet, 25);
  const core::Checkpoint ckpt{cfg, models::default_branch(cfg.arch), 0.1};
  const Bytes bundle =
      core::save_bundle(net, ckpt, core::BundleInfo{1, 1, "x"});
  const Bytes checkpoint = core::save_composite(net, ckpt);
  EXPECT_TRUE(core::looks_like_bundle(bundle));
  EXPECT_FALSE(core::looks_like_bundle(checkpoint));
  EXPECT_FALSE(core::looks_like_bundle({}));
  EXPECT_FALSE(core::looks_like_bundle({0x4c, 0x43}));
}

TEST(ModelBundle, FileRoundTrip) {
  const models::ModelConfig cfg = models::small_config(models::Arch::kLeNet);
  core::CompositeNetwork net = fresh_net(models::Arch::kLeNet, 26);
  const core::Checkpoint ckpt{cfg, models::default_branch(cfg.arch), 0.1};
  const std::string path =
      testing::TempDir() + "/lcrs_test_model_bundle.bundle";
  core::save_bundle_file(net, ckpt, core::BundleInfo{9, 4, "file"}, path);
  core::LoadedBundle loaded = core::load_bundle_file(path);
  EXPECT_EQ(loaded.info.model_id, 9u);
  EXPECT_EQ(loaded.info.version, 4u);
  EXPECT_EQ(loaded.info.name, "file");
}

}  // namespace
}  // namespace lcrs
