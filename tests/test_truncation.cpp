// Truncation property tests: every strict prefix of a valid serialized
// artifact must be rejected with lcrs::Error -- no foreign exception
// escaping, no crash -- and a rejected parse must leave the destination
// object untouched (the strong guarantee load_params documents).
//
// The fuzz harnesses (fuzz/) probe the same parsers with arbitrary
// bytes; this test nails the one structured input family fuzzing only
// samples: the exact truncation boundary at every byte offset.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "core/checkpoint.h"
#include "nn/model_io.h"
#include "tensor/serialize.h"
#include "webinfer/export.h"

namespace lcrs {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes prefix_of(const Bytes& b, std::size_t n) {
  return Bytes(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(n));
}

/// Offsets to test for artifacts too large for the exhaustive loop:
/// every byte of the header region, a stride through the middle, and
/// the final bytes (where the last stage's payload and the at_end check
/// live).
std::vector<std::size_t> sampled_offsets(std::size_t size,
                                         std::size_t stride = 251) {
  std::vector<std::size_t> offs;
  for (std::size_t i = 0; i < size && i < 200; ++i) offs.push_back(i);
  for (std::size_t i = 200; i < size; i += stride) offs.push_back(i);
  for (std::size_t i = size > 64 ? size - 64 : 0; i < size; ++i) {
    offs.push_back(i);
  }
  return offs;
}

TEST(Truncation, EveryTensorPrefixRejected) {
  Rng rng(11);
  ByteWriter w;
  write_tensor(w, Tensor::randn(Shape{3, 4, 5}, rng));
  const Bytes& valid = w.bytes();
  for (std::size_t n = 0; n < valid.size(); ++n) {
    const Bytes p = prefix_of(valid, n);
    ByteReader r(p);
    EXPECT_THROW((void)read_tensor(r), Error) << "prefix length " << n;
    // Strong guarantee: the failed parse consumed nothing observable --
    // a fresh reader over the same prefix behaves identically.
    ByteReader r2(p);
    EXPECT_THROW((void)read_tensor(r2), Error);
  }
}

TEST(Truncation, EveryCheckpointPrefixRejectedSampled) {
  Rng rng(12);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const Bytes ckpt = core::save_composite(
      net, core::Checkpoint{cfg, models::default_branch(cfg.arch), 0.05});
  ASSERT_NO_THROW((void)core::load_composite(ckpt));
  // Wide stride: every prefix that reaches a stage blob pays a full
  // network rebuild before the parse can fail, so keep the sample small
  // enough for the unit tier while still crossing every stage boundary.
  for (const std::size_t n : sampled_offsets(ckpt.size(), 4099)) {
    EXPECT_THROW((void)core::load_composite(prefix_of(ckpt, n)), Error)
        << "prefix length " << n << " of " << ckpt.size();
  }
}

TEST(Truncation, EveryWebModelPrefixRejectedSampled) {
  Rng rng(13);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const Bytes blob =
      webinfer::serialize(webinfer::export_browser_model(net, 1, 28, 28));
  ASSERT_NO_THROW((void)webinfer::deserialize(blob));
  for (const std::size_t n : sampled_offsets(blob.size())) {
    EXPECT_THROW((void)webinfer::deserialize(prefix_of(blob, n)), Error)
        << "prefix length " << n << " of " << blob.size();
  }
}

/// Byte-exact snapshot of a layer's parameters and state tensors.
std::vector<Tensor> snapshot(nn::Layer& layer) {
  std::vector<Tensor> out;
  for (const nn::Param* p : layer.params()) out.push_back(p->value);
  for (const auto& s : layer.state_tensors()) out.push_back(*s.tensor);
  return out;
}

void expect_unchanged(nn::Layer& layer, const std::vector<Tensor>& before) {
  std::size_t i = 0;
  for (const nn::Param* p : layer.params()) {
    ASSERT_LT(i, before.size());
    ASSERT_EQ(p->value.shape(), before[i].shape());
    EXPECT_EQ(std::memcmp(p->value.data(), before[i].data(),
                          static_cast<std::size_t>(before[i].numel()) *
                              sizeof(float)),
              0)
        << "param " << p->name << " mutated by a rejected load";
    ++i;
  }
  for (const auto& s : layer.state_tensors()) {
    ASSERT_LT(i, before.size());
    EXPECT_EQ(std::memcmp(s.tensor->data(), before[i].data(),
                          static_cast<std::size_t>(before[i].numel()) *
                              sizeof(float)),
              0)
        << "state " << s.name << " mutated by a rejected load";
    ++i;
  }
}

TEST(Truncation, LoadParamsIsTransactional) {
  // Source and destination networks have different weights, so any
  // partially-applied load is observable as a changed tensor.
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  Rng rng_src(14), rng_dst(15);
  core::CompositeNetwork src = core::CompositeNetwork::build(cfg, rng_src);
  core::CompositeNetwork dst = core::CompositeNetwork::build(cfg, rng_dst);
  const Bytes params = nn::save_params(src.binary_branch());

  const std::vector<Tensor> before = snapshot(dst.binary_branch());
  for (const std::size_t n : sampled_offsets(params.size())) {
    EXPECT_THROW(nn::load_params(dst.binary_branch(), prefix_of(params, n)),
                 Error)
        << "prefix length " << n;
    expect_unchanged(dst.binary_branch(), before);
  }
  // Trailing garbage is also rejected without mutation.
  Bytes trailing = params;
  trailing.push_back(0xAA);
  EXPECT_THROW(nn::load_params(dst.binary_branch(), trailing), Error);
  expect_unchanged(dst.binary_branch(), before);

  // And the pristine blob still applies: afterwards dst == src bit-wise.
  ASSERT_NO_THROW(nn::load_params(dst.binary_branch(), params));
  EXPECT_EQ(nn::save_params(dst.binary_branch()), params);
}

}  // namespace
}  // namespace lcrs
