// Numerical gradient checks: for every differentiable layer, the analytic
// backward pass must match central finite differences of the scalar loss
// sum(w . forward(x)) for random probe weights w.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/numerics.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace lcrs::nn {
namespace {

// The whole suite runs with the numerics sanitizer active: every forward
// and backward probed here must stay finite, and a regression that breeds
// NaNs now fails with layer attribution instead of a tolerance miss.
[[maybe_unused]] const bool kNumericsOn =
    (numerics::set_enabled(true), true);

double probe_loss(Layer& layer, const Tensor& x, const Tensor& w) {
  const Tensor y = layer.forward(x, /*train=*/true);
  double loss = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    loss += static_cast<double>(w[i]) * static_cast<double>(y[i]);
  }
  return loss;
}

/// Checks d loss / d input and d loss / d params against finite
/// differences. `tol` is the relative tolerance per element.
void check_gradients(Layer& layer, Tensor x, const Shape& out_shape,
                     double tol = 2e-2, double eps = 1e-3) {
  Rng rng(0xBEEF);
  const Tensor w = Tensor::randn(out_shape, rng);

  layer.zero_grad();
  const Tensor y = layer.forward(x, true);
  ASSERT_EQ(y.shape(), out_shape);
  const Tensor grad_x = layer.backward(w);
  ASSERT_EQ(grad_x.shape(), x.shape());

  auto expect_matches = [&](double analytic, double numeric,
                            const std::string& what) {
    const double scale = std::max({1.0, std::fabs(analytic),
                                   std::fabs(numeric)});
    EXPECT_NEAR(analytic, numeric, tol * scale) << what;
  };

  // Input gradient: probe a deterministic subset of coordinates.
  const std::int64_t stride = std::max<std::int64_t>(1, x.numel() / 24);
  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double up = probe_loss(layer, x, w);
    x[i] = orig - static_cast<float>(eps);
    const double down = probe_loss(layer, x, w);
    x[i] = orig;
    expect_matches(grad_x[i], (up - down) / (2 * eps),
                   "input grad at " + std::to_string(i));
  }

  // Parameter gradients (analytic grads were accumulated above; numeric
  // probes re-run the forward with a nudged parameter).
  layer.zero_grad();
  layer.forward(x, true);
  layer.backward(w);
  for (Param* p : layer.params()) {
    const std::int64_t pstride = std::max<std::int64_t>(1, p->numel() / 16);
    for (std::int64_t i = 0; i < p->numel(); i += pstride) {
      const float orig = p->value[i];
      p->value[i] = orig + static_cast<float>(eps);
      const double up = probe_loss(layer, x, w);
      p->value[i] = orig - static_cast<float>(eps);
      const double down = probe_loss(layer, x, w);
      p->value[i] = orig;
      expect_matches(p->grad[i], (up - down) / (2 * eps),
                     p->name + " grad at " + std::to_string(i));
    }
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear lin(6, 4, rng);
  check_gradients(lin, Tensor::randn(Shape{3, 6}, rng), Shape{3, 4});
}

TEST(GradCheck, LinearNoBias) {
  Rng rng(2);
  Linear lin(5, 3, rng, /*bias=*/false);
  check_gradients(lin, Tensor::randn(Shape{2, 5}, rng), Shape{2, 3});
}

struct ConvParam {
  std::int64_t in_c, out_c, kernel, stride, pad, hw;
};

class ConvGrad : public ::testing::TestWithParam<ConvParam> {};

TEST_P(ConvGrad, MatchesFiniteDifferences) {
  const ConvParam p = GetParam();
  Rng rng(3);
  Conv2d conv(p.in_c, p.out_c, p.kernel, p.stride, p.pad, p.hw, p.hw, rng);
  const std::int64_t oh = conv.geometry().out_h();
  check_gradients(conv,
                  Tensor::randn(Shape{2, p.in_c, p.hw, p.hw}, rng),
                  Shape{2, p.out_c, oh, oh});
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGrad,
    ::testing::Values(ConvParam{1, 2, 3, 1, 1, 6}, ConvParam{2, 3, 3, 1, 0, 7},
                      ConvParam{3, 2, 5, 1, 2, 8}, ConvParam{2, 4, 3, 2, 1, 8},
                      ConvParam{1, 1, 1, 1, 0, 5}));

TEST(GradCheck, ReLU) {
  Rng rng(4);
  ReLU relu;
  // Offset inputs away from the kink at 0 for a clean finite difference.
  Tensor x = Tensor::randn(Shape{3, 7}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.1f;
  }
  check_gradients(relu, x, Shape{3, 7});
}

TEST(GradCheck, Tanh) {
  Rng rng(5);
  Tanh tanh_layer;
  check_gradients(tanh_layer, Tensor::randn(Shape{4, 5}, rng), Shape{4, 5});
}

TEST(GradCheck, HardTanh) {
  Rng rng(6);
  HardTanh ht;
  Tensor x = Tensor::randn(Shape{3, 6}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(std::fabs(x[i]) - 1.0f) < 0.05f) x[i] = 0.5f;  // off kinks
  }
  check_gradients(ht, x, Shape{3, 6});
}

TEST(GradCheck, MaxPool) {
  Rng rng(7);
  MaxPool2d pool(2, 2);
  check_gradients(pool, Tensor::randn(Shape{2, 3, 6, 6}, rng),
                  Shape{2, 3, 3, 3});
}

TEST(GradCheck, AvgPool) {
  Rng rng(8);
  AvgPool2d pool(2, 2);
  check_gradients(pool, Tensor::randn(Shape{2, 2, 6, 6}, rng),
                  Shape{2, 2, 3, 3});
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(9);
  GlobalAvgPool gap;
  check_gradients(gap, Tensor::randn(Shape{2, 4, 3, 3}, rng), Shape{2, 4});
}

TEST(GradCheck, BatchNorm4d) {
  Rng rng(10);
  BatchNorm bn(3);
  check_gradients(bn, Tensor::randn(Shape{4, 3, 4, 4}, rng),
                  Shape{4, 3, 4, 4}, /*tol=*/4e-2);
}

TEST(GradCheck, BatchNorm2d) {
  Rng rng(11);
  BatchNorm bn(6);
  check_gradients(bn, Tensor::randn(Shape{8, 6}, rng), Shape{8, 6},
                  /*tol=*/4e-2);
}

TEST(GradCheck, ResidualBlockIdentity) {
  Rng rng(12);
  ResidualBlock block(4, 4, 1, 6, 6, rng);
  check_gradients(block, Tensor::randn(Shape{2, 4, 6, 6}, rng),
                  Shape{2, 4, 6, 6}, /*tol=*/6e-2);
}

TEST(GradCheck, ResidualBlockDownsample) {
  Rng rng(13);
  ResidualBlock block(3, 6, 2, 8, 8, rng);
  check_gradients(block, Tensor::randn(Shape{2, 3, 8, 8}, rng),
                  Shape{2, 6, 4, 4}, /*tol=*/6e-2);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(14);
  Sequential seq;
  seq.emplace<Conv2d>(2, 3, 3, 1, 1, 6, 6, rng);
  seq.emplace<Tanh>();
  seq.emplace<Flatten>();
  seq.emplace<Linear>(3 * 36, 4, rng);
  check_gradients(seq, Tensor::randn(Shape{2, 2, 6, 6}, rng), Shape{2, 4},
                  /*tol=*/4e-2);
}

}  // namespace
}  // namespace lcrs::nn
