// Edge runtime tests: protocol frames, TCP transport, the live
// EdgeServer/BrowserClient loop, agreement between the socket runtime and
// the in-process Algorithm 2, and the simulated LocalRuntime.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <set>
#include <thread>

#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/stopwatch.h"
#include "common/sync.h"

#include "core/inference.h"
#include "data/synthetic.h"
#include "edge/client.h"
#include "edge/local_runtime.h"
#include "edge/server.h"
#include "tensor/tensor_ops.h"
#include "webinfer/export.h"

namespace lcrs::edge {
namespace {

TEST(Protocol, FrameRoundTrip) {
  Frame f;
  f.type = MsgType::kCompleteRequest;
  f.payload = {1, 2, 3, 4, 5};
  const Frame back = decode_frame(encode_frame(f));
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.payload, f.payload);
}

TEST(Protocol, EmptyPayloadFrames) {
  const Frame back = decode_frame(encode_frame(Frame{MsgType::kPing, {}}));
  EXPECT_EQ(back.type, MsgType::kPing);
  EXPECT_TRUE(back.payload.empty());
}

TEST(Protocol, BadMagicAndTypeRejected) {
  auto bytes = encode_frame(Frame{MsgType::kPong, {9}});
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decode_frame(bytes), ParseError);

  auto bytes2 = encode_frame(Frame{MsgType::kPong, {9}});
  bytes2[4] = 200;  // invalid type
  EXPECT_THROW(decode_frame(bytes2), ParseError);
}

TEST(Protocol, TracedFrameRoundTripsV2) {
  Frame f;
  f.type = MsgType::kCompleteRequest;
  f.payload = {7, 8, 9};
  f.trace_id = 0xdeadbeefcafe0001ull;
  const auto bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytesV2 + f.payload.size());
  const Frame back = decode_frame(bytes);
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.payload, f.payload);
  EXPECT_EQ(back.trace_id, f.trace_id);
}

TEST(Protocol, UntracedFrameStaysByteIdenticalV1) {
  // trace_id == 0 must encode to the exact v1 layout: old peers keep
  // decoding frames from new senders.
  Frame f;
  f.type = MsgType::kPing;
  f.payload = {1, 2};
  const auto bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + f.payload.size());
  const Frame back = decode_frame(bytes);
  EXPECT_EQ(back.trace_id, 0u);
  EXPECT_EQ(back.payload, f.payload);
}

TEST(Protocol, HeaderVersionDetection) {
  const auto v1 = encode_frame(Frame{MsgType::kPing, {}});
  const auto v2 = encode_frame(Frame{MsgType::kPing, {}, 42});
  const auto v3 = encode_frame(Frame{MsgType::kPing, {}, 42, 7});
  EXPECT_EQ(frame_header_version(v1.data()), 1);
  EXPECT_EQ(frame_header_version(v2.data()), 2);
  EXPECT_EQ(frame_header_version(v3.data()), 3);
  auto junk = v1;
  junk[0] ^= 0xFF;
  EXPECT_THROW(frame_header_version(junk.data()), ParseError);
}

TEST(Protocol, V2ZeroTraceIdRejected) {
  // A v2 header exists *because* the frame is traced; zero would alias
  // "untraced" and break the v1/v2 dispatch invariant.
  auto bytes = encode_frame(Frame{MsgType::kPong, {5}, 99});
  for (int i = 0; i < 8; ++i) bytes[5 + i] = 0;  // zero the trace id field
  EXPECT_THROW(decode_frame(bytes), ParseError);
}

TEST(Protocol, V1V2GoldenBytesUnchanged) {
  // Frozen wire bytes from before the v3 header existed: adding the
  // model id must not perturb a single v1/v2 byte in either direction.
  const std::vector<std::uint8_t> golden_v1 = {
      0x46, 0x52, 0x43, 0x4c,  // "LCRF" little-endian
      0x00,                    // kPing
      0x00, 0x00, 0x00, 0x00,  // payload size 0
  };
  EXPECT_EQ(encode_frame(Frame{MsgType::kPing, {}}), golden_v1);
  const Frame v1 = decode_frame(golden_v1);
  EXPECT_EQ(v1.type, MsgType::kPing);
  EXPECT_EQ(v1.trace_id, 0u);
  EXPECT_EQ(v1.model_id, 0u);

  const std::vector<std::uint8_t> golden_v2 = {
      0x32, 0x56, 0x43, 0x4c,                          // "LCV2" LE
      0x01,                                            // kPong
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // trace id LE
      0x01, 0x00, 0x00, 0x00,                          // payload size 1
      0x09,                                            // payload
  };
  EXPECT_EQ(encode_frame(Frame{MsgType::kPong, {9}, 0x0102030405060708ull}),
            golden_v2);
  const Frame v2 = decode_frame(golden_v2);
  EXPECT_EQ(v2.type, MsgType::kPong);
  EXPECT_EQ(v2.trace_id, 0x0102030405060708ull);
  EXPECT_EQ(v2.model_id, 0u);
}

TEST(Protocol, TaggedFrameRoundTripsV3) {
  Frame f;
  f.type = MsgType::kCompleteRequest;
  f.payload = {7, 8, 9};
  f.trace_id = 0xdeadbeefcafe0001ull;
  f.model_id = 12;
  const auto bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytesV3 + f.payload.size());
  const Frame back = decode_frame(bytes);
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.payload, f.payload);
  EXPECT_EQ(back.trace_id, f.trace_id);
  EXPECT_EQ(back.model_id, f.model_id);
}

TEST(Protocol, TaggedUntracedFrameStillUsesV3) {
  // A model id needs the wide header even when untraced; the reserved
  // zero trace id is legal in v3 (only v2 forbids it).
  Frame f;
  f.type = MsgType::kCompleteRequest;
  f.payload = {1};
  f.model_id = 3;
  const auto bytes = encode_frame(f);
  EXPECT_EQ(frame_header_version(bytes.data()), 3);
  const Frame back = decode_frame(bytes);
  EXPECT_EQ(back.model_id, 3u);
  EXPECT_EQ(back.trace_id, 0u);
}

TEST(Protocol, DefaultModelEncodesByteIdenticalToV1V2) {
  // model_id == 0 routes to the default model and must never widen the
  // header: v2 peers see bit-for-bit what they saw before this header
  // version existed.
  Frame traced;
  traced.type = MsgType::kCompleteResponse;
  traced.payload = {4, 5};
  traced.trace_id = 77;
  const auto with_field = encode_frame(traced);
  EXPECT_EQ(frame_header_version(with_field.data()), 2);
  EXPECT_EQ(with_field.size(), kFrameHeaderBytesV2 + traced.payload.size());

  Frame plain;
  plain.type = MsgType::kPing;
  plain.payload = {};
  EXPECT_EQ(frame_header_version(encode_frame(plain).data()), 1);
}

TEST(Protocol, V3ZeroModelIdRejected) {
  // A v3 header exists *because* the frame is model-tagged; zero would
  // alias the default route and break encode/decode canonicality.
  auto bytes = encode_frame(Frame{MsgType::kPong, {5}, 99, 6});
  for (int i = 0; i < 4; ++i) bytes[5 + i] = 0;  // zero the model id field
  EXPECT_THROW(decode_frame(bytes), ParseError);
}

TEST(Protocol, V3TruncatedHeaderRejected) {
  const auto bytes = encode_frame(Frame{MsgType::kPing, {}, 0, 6});
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW(
        decode_frame({bytes.begin(),
                      bytes.begin() + static_cast<std::ptrdiff_t>(n)}),
        ParseError)
        << "prefix " << n;
  }
}

TEST(Protocol, ModelUnavailableRoundTrip) {
  const auto payload = make_model_unavailable(41);
  EXPECT_EQ(parse_model_unavailable(payload), 41u);
  EXPECT_THROW(parse_model_unavailable({1, 2}), ParseError);
  auto trailing = payload;
  trailing.push_back(0);
  EXPECT_THROW(parse_model_unavailable(trailing), ParseError);
}

TEST(Tcp, TraceIdSurvivesTheSocket) {
  Listener listener(0);
  std::thread server([&] {
    Socket conn = listener.accept_one();
    auto frame = conn.recv_frame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->trace_id, 0x1234567890abcdefull);
    // Echo the id back the way EdgeServer does.
    conn.send_frame(Frame{MsgType::kPong, frame->payload, frame->trace_id});
  });
  Socket client = connect_local(listener.port());
  client.send_frame(Frame{MsgType::kPing, {3}, 0x1234567890abcdefull});
  auto reply = client.recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->trace_id, 0x1234567890abcdefull);
  server.join();
}

TEST(Protocol, CompletePayloadsRoundTrip) {
  Rng rng(1);
  const Tensor shared = Tensor::randn(Shape{1, 6, 14, 14}, rng);
  const Tensor back = parse_complete_request(make_complete_request(shared));
  EXPECT_EQ(max_abs_diff(shared, back), 0.0f);

  CompleteResponse resp;
  resp.label = 7;
  resp.probabilities = Tensor::rand(Shape{1, 10}, rng);
  const CompleteResponse rback =
      parse_complete_response(make_complete_response(resp));
  EXPECT_EQ(rback.label, 7);
  EXPECT_EQ(max_abs_diff(rback.probabilities, resp.probabilities), 0.0f);
}

TEST(Tcp, LoopbackFrameExchange) {
  Listener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::thread server([&] {
    Socket conn = listener.accept_one();
    ASSERT_TRUE(conn.valid());
    auto frame = conn.recv_frame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::kPing);
    conn.send_frame(Frame{MsgType::kPong, frame->payload});
  });

  Socket client = connect_local(listener.port());
  client.send_frame(Frame{MsgType::kPing, {42, 43}});
  auto reply = client.recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kPong);
  EXPECT_EQ(reply->payload, (std::vector<std::uint8_t>{42, 43}));
  server.join();
}

TEST(Tcp, CleanEofReturnsNullopt) {
  Listener listener(0);
  std::thread server([&] {
    Socket conn = listener.accept_one();
    // Close immediately without sending anything.
  });
  Socket client = connect_local(listener.port());
  server.join();
  EXPECT_FALSE(client.recv_frame().has_value());
}

TEST(Tcp, ConnectToDeadPortThrows) {
  // Grab an ephemeral port, then close the listener to free it.
  std::uint16_t dead_port;
  {
    Listener l(0);
    dead_port = l.port();
    l.shutdown_now();
  }
  EXPECT_THROW(connect_local(dead_port), IoError);
}

core::CompositeNetwork make_net(Rng& rng) {
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  return core::CompositeNetwork::build(cfg, rng);
}

TEST(EdgeServer, ServesCompletionsAndCounts) {
  Rng rng(2);
  core::CompositeNetwork net = make_net(rng);
  EdgeServer server(0, [&](const Tensor& shared) {
    const Tensor logits = net.forward_main_from_shared(shared);
    CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  });

  Socket conn = connect_local(server.port());
  const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  const Tensor shared = net.shared_stage().forward(x, false);
  conn.send_frame(
      Frame{MsgType::kCompleteRequest, make_complete_request(shared)});
  auto reply = conn.recv_frame();
  ASSERT_TRUE(reply.has_value());
  const CompleteResponse resp = parse_complete_response(reply->payload);

  // The served answer matches a local main-branch forward exactly.
  const Tensor local_logits = net.forward_main_from_shared(shared);
  EXPECT_EQ(resp.label, argmax(softmax_rows(local_logits)));
  conn.close_now();
  // Poll until the server has recorded the request.
  for (int i = 0; i < 100 && server.requests_served() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.requests_served(), 1);
}

TEST(EndToEnd, SocketRuntimeMatchesInProcessAlgorithm2) {
  Rng rng(3);
  core::CompositeNetwork net = make_net(rng);
  // Warm batchnorm-free LeNet needs no stat warmup; export directly.
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};

  EdgeServer server(0, [&](const Tensor& shared) {
    const Tensor logits = net.forward_main_from_shared(shared);
    CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  });

  const core::ExitPolicy policy{0.6};
  BrowserClient client(std::move(engine), policy, server.port());

  const Tensor batch = Tensor::randn(Shape{12, 1, 28, 28}, rng);
  int agreements = 0;
  for (std::int64_t i = 0; i < 12; ++i) {
    const Tensor sample = batch.slice_outer(i, i + 1);
    const ClientResult via_socket = client.classify(sample);
    const core::InferenceResult via_core =
        core::collaborative_infer(net, policy, sample);
    EXPECT_EQ(via_socket.exit_point, via_core.exit_point) << "sample " << i;
    if (via_socket.label == via_core.predicted) ++agreements;
  }
  // Engine vs framework float noise can flip a rare argmax tie, but the
  // overwhelming majority must agree.
  EXPECT_GE(agreements, 11);
  EXPECT_GE(client.exit_fraction(), 0.0);
  EXPECT_LE(client.exit_fraction(), 1.0);
}

TEST(EndToEnd, ForcedMissAlwaysAsksServer) {
  Rng rng(4);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};
  EdgeServer server(0, [&](const Tensor& shared) {
    const Tensor logits = net.forward_main_from_shared(shared);
    CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  });
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                       server.port());
  for (int i = 0; i < 3; ++i) {
    const ClientResult r =
        client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
    EXPECT_EQ(r.exit_point, core::ExitPoint::kMainBranch);
  }
  EXPECT_DOUBLE_EQ(client.exit_fraction(), 0.0);
  for (int i = 0; i < 100 && server.requests_served() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.requests_served(), 3);
}

TEST(EndToEnd, ClientModelIdRoutesAndUnavailableFallsBack) {
  Rng rng(61);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};

  // The only registered model is id 5 -- there is no default, so an
  // untagged client would be rejected too.
  auto registry = std::make_shared<ModelRegistry>();
  registry->install(ServableModel::from_fn(
      5, 1, "m5", per_sample_batch([&net](const Tensor& shared) {
        const Tensor logits = net.forward_main_from_shared(shared);
        CompleteResponse r;
        r.probabilities = softmax_rows(logits);
        r.label = argmax(r.probabilities);
        return r;
      })));
  EdgeServer server(0, registry, ServerOptions{});

  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.deadline_ms = 2000.0;
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                       server.port(), retry);
  client.set_model_id(5);
  EXPECT_EQ(client.model_id(), 5u);
  const ClientResult ok =
      client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
  EXPECT_EQ(ok.exit_point, core::ExitPoint::kMainBranch);
  EXPECT_EQ(client.stats().model_unavailable, 0);

  // Retagging to an unregistered id: every attempt draws
  // kModelUnavailable and the client degrades to the binary branch --
  // never misrouted to model 5, never a dropped connection.
  client.set_model_id(99);
  const ClientResult fb =
      client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
  EXPECT_EQ(fb.exit_point, core::ExitPoint::kBinaryBranchFallback);
  EXPECT_EQ(client.stats().model_unavailable, retry.max_attempts);

  server.stop();
  EXPECT_EQ(server.stats().requests_served, 1);
  EXPECT_EQ(server.stats().rejected_unknown_model, retry.max_attempts);
}

TEST(EndToEnd, StitchedTraceSpansClientAndServer) {
  // The observability acceptance test: one request's trace id must show
  // up in BOTH client-side and server-side spans, every pipeline stage
  // must record non-zero duration, and the exit counters must account
  // for every request.
  Rng rng(50);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};

  obs::RingBufferSink sink;
  obs::ScopedTraceSink scoped(&sink);
  obs::Registry::global().reset_values();

  EdgeServer server(0, [&](const Tensor& shared) {
    const Tensor logits = net.forward_main_from_shared(shared);
    CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  });
  // tau = 0 forces every request through the full collaborative path so
  // the server-side spans are guaranteed to exist.
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                       server.port());

  constexpr int kRequests = 3;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < kRequests; ++i) {
    const ClientResult r =
        client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
    EXPECT_NE(r.trace_id, 0u);
    ids.insert(r.trace_id);
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kRequests));
  server.stop();  // settle the server-side spans and counters

  const std::vector<obs::SpanRecord> spans = sink.spans();
  for (const std::uint64_t id : ids) {
    std::set<std::string> stages;
    for (const auto& s : spans) {
      if (s.trace_id != id) continue;
      EXPECT_GT(s.end_ns, s.start_ns) << s.name;  // non-zero duration
      stages.insert(s.name);
    }
    // Client-side stages...
    EXPECT_TRUE(stages.count(obs::names::kSpanClientConv1)) << id;
    EXPECT_TRUE(stages.count(obs::names::kSpanClientBinaryBranch)) << id;
    EXPECT_TRUE(stages.count(obs::names::kSpanClientSerialize)) << id;
    EXPECT_TRUE(stages.count(obs::names::kSpanClientNetwork)) << id;
    // ...and server-side stages stitched under the SAME id.
    EXPECT_TRUE(stages.count(obs::names::kSpanEdgeDeserialize)) << id;
    EXPECT_TRUE(stages.count(obs::names::kSpanEdgeComplete)) << id;
    EXPECT_TRUE(stages.count(obs::names::kSpanEdgeSerialize)) << id;
  }

  // Exit counters account for every request, and the client/server
  // registries agree on the traffic that flowed between them.
  const obs::Snapshot snap = client.metrics().snapshot();
  const auto* binary = snap.find_counter(obs::names::kClientExitBinary);
  const auto* main_exit = snap.find_counter(obs::names::kClientExitMain);
  const auto* fallback = snap.find_counter(obs::names::kClientExitFallback);
  const std::int64_t exits = (binary != nullptr ? binary->value : 0) +
                             (main_exit != nullptr ? main_exit->value : 0) +
                             (fallback != nullptr ? fallback->value : 0);
  EXPECT_EQ(exits, kRequests);
  ASSERT_NE(snap.find_counter(obs::names::kClientRequests), nullptr);
  EXPECT_EQ(snap.find_counter(obs::names::kClientRequests)->value, kRequests);

  const obs::Snapshot server_snap = server.metrics().snapshot();
  ASSERT_NE(server_snap.find_counter(obs::names::kServerRequests), nullptr);
  EXPECT_EQ(server_snap.find_counter(obs::names::kServerRequests)->value,
            kRequests);

  // The global registry mirrors both sides and the shared exit recorder.
  const obs::Snapshot global = obs::Registry::global().snapshot();
  const auto* gexit = global.find_counter(obs::names::kExitMain);
  ASSERT_NE(gexit, nullptr);
  EXPECT_EQ(gexit->value, kRequests);
  const auto* gentropy = global.find_histogram(obs::names::kExitEntropy);
  ASSERT_NE(gentropy, nullptr);
  EXPECT_EQ(gentropy->count, kRequests);
}

TEST(EndToEnd, FallbackPathRecordsExitCounter) {
  // A dead edge forces kBinaryBranchFallback; the per-ExitPoint counters
  // and entropy histogram must record the degraded path too.
  Rng rng(51);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};
  std::uint16_t dead_port;
  {
    Listener l(0);
    dead_port = l.port();
    l.shutdown_now();
  }
  RetryPolicy retry;
  retry.max_attempts = 1;
  retry.deadline_ms = 500.0;
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0}, dead_port,
                       retry);
  const ClientResult r =
      client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
  EXPECT_EQ(r.exit_point, core::ExitPoint::kBinaryBranchFallback);
  const obs::Snapshot snap = client.metrics().snapshot();
  ASSERT_NE(snap.find_counter(obs::names::kClientExitFallback), nullptr);
  EXPECT_EQ(snap.find_counter(obs::names::kClientExitFallback)->value, 1);
}

TEST(EdgeServer, ServesConcurrentClients) {
  Rng rng(21);
  core::CompositeNetwork net = make_net(rng);
  // Eval-mode forwards are thread-safe (all layer caching is train-gated),
  // so completions run genuinely in parallel.
  EdgeServer server(0, [&](const Tensor& shared) {
    const Tensor logits = net.forward_main_from_shared(shared);
    CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  });

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 5;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Rng crng(100 + c);
        Socket conn = connect_local(server.port());
        core::CompositeNetwork& shared_net = net;
        for (int i = 0; i < kRequestsEach; ++i) {
          const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, crng);
          const Tensor shared = shared_net.shared_stage().forward(x, false);
          conn.send_frame(Frame{MsgType::kCompleteRequest,
                                make_complete_request(shared)});
          auto reply = conn.recv_frame();
          if (!reply.has_value() ||
              reply->type != MsgType::kCompleteResponse) {
            ++failures;
            return;
          }
          const CompleteResponse resp =
              parse_complete_response(reply->payload);
          const Tensor local = shared_net.forward_main_from_shared(shared);
          if (resp.label != argmax(softmax_rows(local))) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int i = 0;
       i < 200 && server.requests_served() < kClients * kRequestsEach; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.requests_served(), kClients * kRequestsEach);
  EXPECT_EQ(server.connections_accepted(), kClients);
}

TEST(EdgeServer, SerializeCompletionGuardsSharedState) {
  int concurrent = 0;
  int max_concurrent = 0;
  lcrs::Mutex probe_mutex{"test.edge.probe"};
  CompletionFn raw = [&](const Tensor&) {
    {
      lcrs::MutexLock lock(probe_mutex);
      ++concurrent;
      max_concurrent = std::max(max_concurrent, concurrent);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      lcrs::MutexLock lock(probe_mutex);
      --concurrent;
    }
    CompleteResponse r;
    r.label = 1;
    r.probabilities = Tensor::ones(Shape{1, 2});
    return r;
  };
  EdgeServer server(0, serialize_completion(std::move(raw)));

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      Socket conn = connect_local(server.port());
      conn.send_frame(Frame{MsgType::kCompleteRequest,
                            make_complete_request(Tensor{Shape{1, 2}})});
      (void)conn.recv_frame();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(max_concurrent, 1);  // serialized despite concurrent clients
  // The served counter increments after the reply is written; poll.
  for (int i = 0; i < 200 && server.requests_served() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.requests_served(), 3);
}

TEST(LocalRuntime, TimelineReflectsExitDecision) {
  Rng rng(5);
  core::CompositeNetwork net = make_net(rng);
  LocalRuntime always_exit(net, core::ExitPolicy{1.1},
                           sim::CostModel::paper_default(),
                           Shape{1, 28, 28});
  LocalRuntime never_exit(net, core::ExitPolicy{0.0},
                          sim::CostModel::paper_default(), Shape{1, 28, 28});

  const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  const SimStep fast = always_exit.classify(x, rng);
  EXPECT_EQ(fast.exit_point, core::ExitPoint::kBinaryBranch);
  EXPECT_EQ(fast.upload_ms, 0.0);
  EXPECT_EQ(fast.edge_ms, 0.0);
  EXPECT_GT(fast.browser_ms, 0.0);

  const SimStep slow = never_exit.classify(x, rng);
  EXPECT_EQ(slow.exit_point, core::ExitPoint::kMainBranch);
  EXPECT_GT(slow.upload_ms, 0.0);
  EXPECT_GT(slow.total_ms(), fast.total_ms());
}

TEST(LocalRuntime, JitteredUploadsStayWithinLinkBounds) {
  Rng rng(31);
  core::CompositeNetwork net = make_net(rng);
  sim::LinkSpec link = sim::lte_4g();
  link.jitter_frac = 0.2;
  LocalRuntime runtime(net, core::ExitPolicy{0.0},  // force collaboration
                       sim::CostModel{sim::mobile_web_browser(),
                                      sim::edge_server(), link},
                       Shape{1, 28, 28});
  const sim::NetworkModel clean{sim::lte_4g()};
  const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  // Every upload must fall within +-20% of the deterministic time.
  const SimStep probe = runtime.classify(x, rng);
  ASSERT_GT(probe.upload_ms, 0.0);
  double lo = probe.upload_ms, hi = probe.upload_ms;
  for (int i = 0; i < 30; ++i) {
    const double up = runtime.classify(x, rng).upload_ms;
    lo = std::min(lo, up);
    hi = std::max(hi, up);
  }
  EXPECT_GT(hi, lo);  // jitter actually varies
  const double base = (lo + hi) / 2.0;
  EXPECT_GE(lo, base * 0.75);
  EXPECT_LE(hi, base * 1.25);
}

// ---------------------------------------------------------------------
// Failure paths: deadlines, fault injection, retry/fallback, shutdown.

/// Runs `fn` on a worker thread; returns false if it is still running
/// after `timeout_ms` (the worker is detached so the suite can report the
/// failure instead of hanging).
template <typename Fn>
bool finishes_within(Fn&& fn, int timeout_ms) {
  std::packaged_task<void()> task(std::forward<Fn>(fn));
  std::future<void> fut = task.get_future();
  std::thread t(std::move(task));
  const bool done = fut.wait_for(std::chrono::milliseconds(timeout_ms)) ==
                    std::future_status::ready;
  if (done) {
    t.join();
  } else {
    t.detach();
  }
  return done;
}

CompletionFn completion_for(core::CompositeNetwork& net) {
  return [&net](const Tensor& shared) {
    const Tensor logits = net.forward_main_from_shared(shared);
    CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  };
}

RetryPolicy fast_retry(double deadline_ms) {
  RetryPolicy p;
  p.max_attempts = 3;
  p.initial_backoff_ms = 2.0;
  p.max_backoff_ms = 10.0;
  p.deadline_ms = deadline_ms;
  return p;
}

TEST(Deadline, ExpiryAndRemaining) {
  EXPECT_TRUE(Deadline().is_infinite());
  EXPECT_FALSE(Deadline::infinite().expired());
  EXPECT_TRUE(Deadline::after_ms(-1.0).expired());
  const Deadline d = Deadline::after_ms(10000.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 5000.0);
  EXPECT_LE(d.remaining_ms(), 10000.0);
  EXPECT_DOUBLE_EQ(Deadline::after_ms(-1.0).remaining_ms(), 0.0);
}

TEST(Tcp, RecvFrameDeadlineThrowsTimeout) {
  // Hold the peer open but silent so recv blocks until the deadline.
  Listener quiet(0);
  std::thread holder([&] {
    Socket conn = quiet.accept_one();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  });
  Socket client = connect_local(quiet.port());
  Stopwatch watch;
  EXPECT_THROW((void)client.recv_frame(Deadline::after_ms(50.0)),
               TimeoutError);
  EXPECT_LT(watch.millis(), 250.0);  // expired near the deadline, not 300ms
  holder.join();
}

TEST(Tcp, TimeoutErrorIsAnIoError) {
  // Retry/fallback handlers catch IoError; deadlines must be included.
  EXPECT_THROW(
      { throw TimeoutError("t"); }, IoError);
}

TEST(FaultInjector, DeterministicActionsAndCounters) {
  sim::FaultSpec always_drop;
  always_drop.drop_prob = 1.0;
  FaultInjector fi(always_drop, 7);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fi.next_send_action(), FaultInjector::Action::kDrop);
  }
  EXPECT_EQ(fi.frames_dropped(), 5);
  EXPECT_EQ(fi.connections_closed(), 0);

  sim::FaultSpec always_close;
  always_close.close_prob = 1.0;
  FaultInjector fc(always_close, 7);
  EXPECT_EQ(fc.next_send_action(), FaultInjector::Action::kCloseMidFrame);
  EXPECT_EQ(fc.connections_closed(), 1);

  sim::FaultSpec bad;
  bad.drop_prob = 1.5;
  EXPECT_THROW(FaultInjector(bad, 0), Error);
}

TEST(RetryPolicyTest, ValidatesAndNoRetryPreset) {
  RetryPolicy bad;
  bad.max_attempts = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = RetryPolicy();
  bad.backoff_multiplier = 0.5;
  EXPECT_THROW(bad.validate(), Error);
  const RetryPolicy one = RetryPolicy::no_retry();
  EXPECT_EQ(one.max_attempts, 1);
  one.validate();
}

TEST(EndToEnd, ServerKilledMidRequestFallsBackToBinary) {
  Rng rng(41);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};
  // Completions stall so the kill lands while a request is in flight.
  auto server = std::make_unique<EdgeServer>(0, [&](const Tensor& shared) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return completion_for(net)(shared);
  });

  // Force every sample to the edge path.
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                       server->port(), fast_retry(1000.0));

  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    server->stop();
  });
  const Tensor sample = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  Stopwatch watch;
  const ClientResult r = client.classify(sample);  // must not throw
  killer.join();

  EXPECT_EQ(r.exit_point, core::ExitPoint::kBinaryBranchFallback);
  EXPECT_LT(watch.millis(), 1500.0);  // bounded by the edge-path deadline
  EXPECT_EQ(client.fallbacks(), 1);
  EXPECT_GE(client.stats().retries, 1);

  // Fallback correctness: the degraded answer IS the binary branch's
  // prediction (always-exit policy reproduces pure binary inference).
  const core::InferenceResult binary =
      core::collaborative_infer(net, core::ExitPolicy{1.1}, sample);
  EXPECT_EQ(r.label, binary.predicted);
  EXPECT_EQ(r.label, argmax(r.probabilities));
}

TEST(EndToEnd, SlowServerTripsClientDeadline) {
  Rng rng(42);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};
  EdgeServer server(0, [&](const Tensor& shared) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    return completion_for(net)(shared);
  });

  RetryPolicy retry = fast_retry(60.0);
  retry.max_attempts = 2;
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                       server.port(), retry);
  Stopwatch watch;
  const ClientResult r =
      client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
  const double elapsed = watch.millis();
  EXPECT_EQ(r.exit_point, core::ExitPoint::kBinaryBranchFallback);
  // The deadline, not the server's 400 ms stall, bounds the call.
  EXPECT_LT(elapsed, 300.0);
  EXPECT_EQ(client.fallbacks(), 1);
}

TEST(EndToEnd, ReconnectAfterMidRequestErrorThenSucceed) {
  Rng rng(43);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};

  // A hand-rolled flaky server: connection 1 reads the request and closes
  // without replying; connection 2 serves correctly. The client must
  // abandon the desynced cached socket and reconnect.
  Listener listener(0);
  std::thread flaky([&] {
    {
      Socket c = listener.accept_one();
      (void)c.recv_frame();  // swallow the request, reply with nothing
    }
    Socket c = listener.accept_one();
    auto f = c.recv_frame();
    ASSERT_TRUE(f.has_value());
    CompleteResponse resp;
    resp.label = 4;
    resp.probabilities = Tensor::ones(Shape{1, 10});
    c.send_frame(
        Frame{MsgType::kCompleteResponse, make_complete_response(resp)});
  });

  BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                       listener.port(), fast_retry(2000.0));
  const ClientResult r =
      client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
  flaky.join();
  EXPECT_EQ(r.exit_point, core::ExitPoint::kMainBranch);
  EXPECT_EQ(r.label, 4);
  EXPECT_GE(client.stats().retries, 1);
  EXPECT_GE(client.stats().reconnects, 1);
  EXPECT_EQ(client.fallbacks(), 0);
}

TEST(EndToEnd, InjectedDropsFallBackUnderDeadline) {
  Rng rng(44);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};
  EdgeServer server(0, completion_for(net));

  sim::FaultSpec black_hole;
  black_hole.drop_prob = 1.0;  // every request frame vanishes in transit
  FaultInjector fi(black_hole, 9);
  RetryPolicy retry = fast_retry(80.0);
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                       server.port(), retry);
  {
    FaultInjector::Scope scope(fi);
    const ClientResult r =
        client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
    EXPECT_EQ(r.exit_point, core::ExitPoint::kBinaryBranchFallback);
  }
  EXPECT_GE(fi.frames_dropped(), 1);
  EXPECT_EQ(server.requests_served(), 0);
}

TEST(EndToEnd, InjectedMidFrameCloseIsCountedAsServerError) {
  Rng rng(45);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};
  EdgeServer server(0, completion_for(net));

  sim::FaultSpec tear_down;
  tear_down.close_prob = 1.0;  // every send dies mid-frame
  FaultInjector fi(tear_down, 10);
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                       server.port(), fast_retry(500.0));
  {
    FaultInjector::Scope scope(fi);
    const ClientResult r =
        client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
    EXPECT_EQ(r.exit_point, core::ExitPoint::kBinaryBranchFallback);
  }
  EXPECT_GE(fi.connections_closed(), 1);
  // The server saw the torn connections as mid-message EOFs.
  for (int i = 0; i < 200 && server.stats().connection_errors < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().connection_errors, 1);
}

TEST(EdgeServer, StopWithIdleConnectionReturnsPromptly) {
  // Regression: stop() used to join a connection thread blocked forever
  // in recv_frame on an idle client connection.
  auto server = std::make_unique<EdgeServer>(0, [](const Tensor&) {
    return CompleteResponse{0, Tensor::ones(Shape{1, 2})};
  });
  Socket idle_client = connect_local(server->port());
  for (int i = 0; i < 200 && server->connections_accepted() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server->connections_accepted(), 1);

  EdgeServer* raw = server.get();
  const bool stopped = finishes_within([raw] { raw->stop(); }, 5000);
  EXPECT_TRUE(stopped) << "stop() hung on an idle connection";
  if (!stopped) {
    (void)server.release();  // destructor would hang too; leak and fail
  }
}

TEST(EdgeServer, ShutdownFrameClosesPeerConnectionsAndStopConverges) {
  auto server = std::make_unique<EdgeServer>(0, [](const Tensor&) {
    return CompleteResponse{0, Tensor::ones(Shape{1, 2})};
  });
  Socket bystander = connect_local(server->port());
  Socket controller = connect_local(server->port());
  for (int i = 0; i < 200 && server->connections_accepted() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server->connections_accepted(), 2);

  controller.send_frame(Frame{MsgType::kShutdown, {}});
  // The *other* connection must be closed by the server, not linger until
  // its client hangs up.
  EXPECT_FALSE(bystander.recv_frame(Deadline::after_ms(3000.0)).has_value());

  EdgeServer* raw = server.get();
  const bool stopped = finishes_within([raw] { raw->stop(); }, 5000);
  EXPECT_TRUE(stopped) << "stop() did not converge after kShutdown";
  if (!stopped) (void)server.release();
}

TEST(EdgeServer, StatsSnapshotTracksCompletions) {
  Rng rng(46);
  core::CompositeNetwork net = make_net(rng);
  EdgeServer server(0, completion_for(net));
  Socket conn = connect_local(server.port());
  const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  const Tensor shared = net.shared_stage().forward(x, false);
  conn.send_frame(
      Frame{MsgType::kCompleteRequest, make_complete_request(shared)});
  ASSERT_TRUE(conn.recv_frame().has_value());
  for (int i = 0; i < 200 && server.stats().requests_served < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.requests_served, 1);
  EXPECT_EQ(s.connections_accepted, 1);
  EXPECT_GE(s.total_completion_ms, 0.0);
  EXPECT_EQ(s.mean_completion_ms(), s.total_completion_ms);
}

TEST(EndToEnd, FallbackDisabledRethrows) {
  Rng rng(47);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};
  std::uint16_t dead_port;
  {
    Listener l(0);
    dead_port = l.port();
    l.shutdown_now();
  }
  RetryPolicy strict = RetryPolicy::no_retry();
  strict.fallback_to_binary = false;
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0}, dead_port,
                       strict);
  EXPECT_THROW(client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng)),
               IoError);
  EXPECT_EQ(client.fallbacks(), 0);
}

// ---------------------------------------------------------------------
// Worker pool, cross-connection batching, and kBusy admission control.

TEST(Protocol, BusyReplyRoundTrip) {
  EXPECT_EQ(parse_busy_reply(make_busy_reply(0)), 0u);
  EXPECT_EQ(parse_busy_reply(make_busy_reply(250)), 250u);
  auto bytes = make_busy_reply(5);
  bytes.push_back(0);  // trailing garbage
  EXPECT_THROW(parse_busy_reply(bytes), ParseError);
  EXPECT_THROW(parse_busy_reply({1, 2}), ParseError);  // truncated
}

TEST(ServerOptionsTest, ValidatesBounds) {
  ServerOptions bad;
  bad.num_workers = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = ServerOptions();
  bad.max_batch = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = ServerOptions();
  bad.max_wait_us = -1.0;
  EXPECT_THROW(bad.validate(), Error);
  ServerOptions().validate();  // defaults are valid
}

/// Blocks the FIRST completion (or batch) until release(); later calls
/// pass straight through. Lets tests hold the single worker hostage
/// while they stage requests in the central queue.
class CompletionGate {
 public:
  void enter() {
    lcrs::MutexLock lock(mutex_);
    if (entered_) return;
    entered_ = true;
    cv_.notify_all();
    while (!released_) cv_.wait(mutex_);
  }
  void await_entered() {
    lcrs::MutexLock lock(mutex_);
    while (!entered_) cv_.wait(mutex_);
  }
  void release() {
    lcrs::MutexLock lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  lcrs::Mutex mutex_{"test.edge.gate"};
  lcrs::CondVar cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(EdgeServer, FullQueueAnswersBusyAndRecovers) {
  Rng rng(60);
  core::CompositeNetwork net = make_net(rng);
  CompletionGate gate;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  opts.busy_retry_after_ms = 7;
  EdgeServer server(
      0,
      CompletionFn([&](const Tensor& shared) {
        gate.enter();
        return completion_for(net)(shared);
      }),
      opts);

  const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  const Tensor shared = net.shared_stage().forward(x, false);
  const auto request =
      Frame{MsgType::kCompleteRequest, make_complete_request(shared)};

  // Request A: popped by the lone worker, which then blocks in the gate.
  Socket a = connect_local(server.port());
  a.send_frame(request);
  gate.await_entered();
  // Request B: sits in the queue, filling it to capacity.
  Socket b = connect_local(server.port());
  b.send_frame(request);
  for (int i = 0; i < 2000 && server.queue_depth() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.queue_depth(), 1);
  // Request C: queue full -> deterministic kBusy with the retry hint.
  Socket c = connect_local(server.port());
  c.send_frame(request);
  auto busy = c.recv_frame(Deadline::after_ms(5000.0));
  ASSERT_TRUE(busy.has_value());
  EXPECT_EQ(busy->type, MsgType::kBusy);
  EXPECT_EQ(parse_busy_reply(busy->payload), 7u);
  EXPECT_EQ(server.rejected_busy(), 1);

  // The rejected connection stays healthy: after the gate opens and the
  // queue drains, the SAME socket gets a correct completion.
  gate.release();
  auto ra = a.recv_frame(Deadline::after_ms(5000.0));
  auto rb = b.recv_frame(Deadline::after_ms(5000.0));
  ASSERT_TRUE(ra.has_value() && rb.has_value());
  c.send_frame(request);
  auto rc = c.recv_frame(Deadline::after_ms(5000.0));
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->type, MsgType::kCompleteResponse);
  const CompleteResponse resp = parse_complete_response(rc->payload);
  const Tensor local = softmax_rows(net.forward_main_from_shared(shared));
  EXPECT_EQ(resp.label, argmax(local));
  EXPECT_EQ(max_abs_diff(resp.probabilities, local), 0.0f);
  for (int i = 0; i < 200 && server.requests_served() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.requests_served(), 3);
}

TEST(EdgeServer, BatchesFormAcrossConnectionsBitExactly) {
  Rng rng(61);
  core::CompositeNetwork net = make_net(rng);
  CompletionGate gate;
  BatchCompletionFn batched = main_branch_batch_completion(net);
  ServerOptions opts;
  opts.num_workers = 1;  // one worker => while it is gated, requests pile up
  opts.max_batch = 8;
  EdgeServer server(
      0,
      BatchCompletionFn([&](const Tensor& batch) {
        gate.enter();
        return batched(batch);
      }),
      opts);

  // Warmup request holds the worker inside the gate.
  const Tensor wx = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  const Tensor wshared = net.shared_stage().forward(wx, false);
  Socket warm = connect_local(server.port());
  warm.send_frame(
      Frame{MsgType::kCompleteRequest, make_complete_request(wshared)});
  gate.await_entered();

  // Stage K requests from K distinct connections; they must all be
  // waiting in the queue when the gate opens.
  constexpr int kClients = 4;
  std::vector<Socket> conns;
  std::vector<Tensor> shareds;
  for (int i = 0; i < kClients; ++i) {
    const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
    shareds.push_back(net.shared_stage().forward(x, false));
    conns.push_back(connect_local(server.port()));
    conns.back().send_frame(Frame{MsgType::kCompleteRequest,
                                  make_complete_request(shareds.back())});
  }
  for (int i = 0; i < 5000 && server.queue_depth() < kClients; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.queue_depth(), kClients);

  gate.release();
  // Each reply is bit-identical to completing that request alone, even
  // though all K rode one batched forward.
  for (int i = 0; i < kClients; ++i) {
    auto reply = conns[static_cast<std::size_t>(i)].recv_frame(
        Deadline::after_ms(10000.0));
    ASSERT_TRUE(reply.has_value()) << "client " << i;
    const CompleteResponse resp = parse_complete_response(reply->payload);
    const Tensor local = softmax_rows(
        net.forward_main_from_shared(shareds[static_cast<std::size_t>(i)]));
    EXPECT_EQ(resp.label, argmax(local)) << "client " << i;
    EXPECT_EQ(max_abs_diff(resp.probabilities, local), 0.0f)
        << "client " << i;
  }
  for (int i = 0; i < 200 && server.requests_served() < kClients + 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.requests_served(), kClients + 1);
  // Warmup dispatched alone; the staged K coalesced into ONE batch.
  EXPECT_EQ(server.batches_dispatched(), 2);
}

TEST(EndToEnd, ClientRetriesThroughBusyAndSucceeds) {
  Rng rng(62);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};
  CompletionGate gate;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  opts.busy_retry_after_ms = 1;
  EdgeServer server(
      0,
      CompletionFn([&](const Tensor& shared) {
        gate.enter();
        return completion_for(net)(shared);
      }),
      opts);

  // Occupy the worker and fill the queue with raw requests.
  const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  const Tensor shared = net.shared_stage().forward(x, false);
  const auto request =
      Frame{MsgType::kCompleteRequest, make_complete_request(shared)};
  Socket a = connect_local(server.port());
  a.send_frame(request);
  gate.await_entered();
  Socket b = connect_local(server.port());
  b.send_frame(request);
  for (int i = 0; i < 2000 && server.queue_depth() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.queue_depth(), 1);

  RetryPolicy retry;
  retry.max_attempts = 8;
  retry.initial_backoff_ms = 5.0;
  retry.max_backoff_ms = 20.0;
  retry.deadline_ms = 10000.0;
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                       server.port(), retry);
  std::thread classifier([&] {
    const ClientResult r =
        client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
    // After the gate opens, a retry must land a real main-branch answer.
    EXPECT_EQ(r.exit_point, core::ExitPoint::kMainBranch);
  });
  // Release the gate as soon as the client has eaten one kBusy.
  for (int i = 0; i < 5000 && server.rejected_busy() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.rejected_busy(), 1);
  gate.release();
  classifier.join();
  (void)a.recv_frame(Deadline::after_ms(5000.0));
  (void)b.recv_frame(Deadline::after_ms(5000.0));
  EXPECT_GE(client.stats().busy_rejections, 1);
  EXPECT_EQ(client.fallbacks(), 0);
}

TEST(LocalRuntime, AmortizedLoadScalesWithSession) {
  Rng rng(6);
  core::CompositeNetwork net = make_net(rng);
  sim::Scenario short_session;
  short_session.session_samples = 10;
  sim::Scenario long_session;
  long_session.session_samples = 1000;
  LocalRuntime a(net, core::ExitPolicy{0.5}, sim::CostModel::paper_default(),
                 Shape{1, 28, 28}, short_session);
  LocalRuntime b(net, core::ExitPolicy{0.5}, sim::CostModel::paper_default(),
                 Shape{1, 28, 28}, long_session);
  EXPECT_GT(a.amortized_load_ms(), b.amortized_load_ms());
  EXPECT_EQ(a.browser_model_bytes(), b.browser_model_bytes());
}

}  // namespace
}  // namespace lcrs::edge
