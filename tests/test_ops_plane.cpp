// Ops-plane unit tests: the hardened HTTP request parser, Prometheus
// text exposition conformance (golden file + structural properties),
// ops_respond routing, the flight recorder's retention semantics, and
// the process-level gauges. No sockets here -- the live-endpoint and
// load behaviour is covered by test_ops_http.cpp (integration tier).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/obs/flight_recorder.h"
#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/obs/ops_server.h"
#include "common/obs/trace.h"
#include "common/simd.h"

namespace lcrs::obs {
namespace {

// ------------------------------------------------------------ HTTP parser

TEST(OpsHttpParser, AcceptsMinimalGet) {
  const auto req = parse_http_request("GET /metrics HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/metrics");
}

TEST(OpsHttpParser, AcceptsHeadersAndHttp11) {
  const auto req = parse_http_request(
      "GET /metrics.json HTTP/1.1\r\n"
      "Host: 127.0.0.1:9900\r\n"
      "User-Agent: Prometheus/2.0\r\n"
      "Accept: */*\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->target, "/metrics.json");
}

TEST(OpsHttpParser, StripsQueryString) {
  const auto req = parse_http_request("GET /metrics?format=x HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->target, "/metrics?format=x");
  EXPECT_EQ(request_path(*req), "/metrics");
}

TEST(OpsHttpParser, RejectsMalformedHeads) {
  const char* bad[] = {
      "",                                      // empty
      "GET /metrics\r\n\r\n",                  // missing version
      "get /metrics HTTP/1.0\r\n\r\n",         // lowercase method
      "GET metrics HTTP/1.0\r\n\r\n",          // relative target
      "GET /a b HTTP/1.0\r\n\r\n",             // extra token
      "GET /metrics ICE/1.0\r\n\r\n",          // non-HTTP version
      "GET /metrics HTTP/11\r\n\r\n",          // malformed version digits
      "GET /\x01 HTTP/1.0\r\n\r\n",            // control byte in target
      "GET / HTTP/1.0\r\nnocolon\r\n\r\n",     // colonless header
      "GET / HTTP/1.0\r\n: empty\r\n\r\n",     // empty header name
      "GET / HTTP/1.0\r\nX-A: b\r\n c\r\n\r\n",  // obsolete line folding
      "GET / HTTP/1.0\r\nX: a\x07z\r\n\r\n",   // control byte in value
  };
  for (const char* head : bad) {
    EXPECT_FALSE(parse_http_request(head).has_value()) << head;
  }
}

TEST(OpsHttpParser, RejectsOversizedMethodAndTarget) {
  const std::string long_method(17, 'G');
  EXPECT_FALSE(
      parse_http_request(long_method + " / HTTP/1.0\r\n\r\n").has_value());
  const std::string long_target = "/" + std::string(1025, 'a');
  EXPECT_FALSE(
      parse_http_request("GET " + long_target + " HTTP/1.0\r\n\r\n")
          .has_value());
}

TEST(OpsHttp, RenderResponseShape) {
  HttpResponse resp;
  resp.status = 404;
  resp.body = "not found\n";
  const std::string wire = render_http_response(resp);
  EXPECT_EQ(wire.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - resp.body.size()), resp.body);
}

// -------------------------------------------------- Prometheus exposition

TEST(Prometheus, NameMapping) {
  EXPECT_EQ(prometheus_name("edge.server.requests"),
            "lcrs_edge_server_requests");
  EXPECT_EQ(prometheus_name("process.uptime_seconds"),
            "lcrs_process_uptime_seconds");
  // Belt-and-braces: characters outside the exposition alphabet are
  // squashed rather than emitted.
  EXPECT_EQ(prometheus_name("a b\"c"), "lcrs_a_b_c");
}

TEST(Prometheus, LabelValueEscaping) {
  EXPECT_EQ(prometheus_escape_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label_value("a\nb"), "a\\nb");
}

TEST(Prometheus, GoldenExposition) {
  // One of each instrument kind with hand-computable values; the
  // exposition must match byte-for-byte. Registry snapshots sort by
  // name, so the golden is stable.
  Registry reg;
  reg.counter("edge.server.requests").add(3);
  reg.gauge("edge.server.queue_depth").set(2.5);
  auto& h = reg.histogram("edge.server.batch_size", {1.0, 2.5});
  h.record(0.5);
  h.record(2.0);
  h.record(7.0);

  const std::string expected =
      "# TYPE lcrs_edge_server_requests counter\n"
      "lcrs_edge_server_requests 3\n"
      "# TYPE lcrs_edge_server_queue_depth gauge\n"
      "lcrs_edge_server_queue_depth 2.5\n"
      "# TYPE lcrs_edge_server_batch_size histogram\n"
      "lcrs_edge_server_batch_size_bucket{le=\"1\"} 1\n"
      "lcrs_edge_server_batch_size_bucket{le=\"2.5\"} 2\n"
      "lcrs_edge_server_batch_size_bucket{le=\"+Inf\"} 3\n"
      "lcrs_edge_server_batch_size_sum 9.5\n"
      "lcrs_edge_server_batch_size_count 3\n";
  EXPECT_EQ(render_prometheus(reg.snapshot()), expected);
}

TEST(Prometheus, BucketsAreCumulativeAndInfEqualsCount) {
  // Structural conformance on the default latency buckets: bucket
  // counts never decrease with increasing `le`, and the +Inf bucket
  // equals _count exactly.
  Registry reg;
  auto& h = reg.histogram("edge.server.wait_us");
  for (int i = 0; i < 500; ++i) h.record(static_cast<double>(i * 37 % 20000));

  const std::string text = render_prometheus(reg.snapshot());
  std::int64_t prev = -1;
  std::int64_t inf_value = -1;
  std::size_t pos = 0;
  int buckets = 0;
  while ((pos = text.find("_bucket{le=\"", pos)) != std::string::npos) {
    const std::size_t close = text.find("\"} ", pos);
    ASSERT_NE(close, std::string::npos);
    const std::string le = text.substr(pos + 12, close - pos - 12);
    const std::int64_t value = std::stoll(text.substr(close + 3));
    EXPECT_GE(value, prev) << "bucket counts must be cumulative at le=" << le;
    prev = value;
    if (le == "+Inf") inf_value = value;
    ++buckets;
    pos = close;
  }
  EXPECT_GT(buckets, 10);
  ASSERT_NE(inf_value, -1);
  const std::size_t count_pos = text.find("_count ");
  ASSERT_NE(count_pos, std::string::npos);
  EXPECT_EQ(std::stoll(text.substr(count_pos + 7)), inf_value);
  EXPECT_EQ(inf_value, 500);
}

// ------------------------------------------------------------ ops_respond

OpsHooks fixture_hooks(const Registry* reg, const FlightRecorder* rec) {
  OpsHooks hooks;
  hooks.registry = reg;
  hooks.recorder = rec;
  return hooks;
}

TEST(OpsRespond, RoutesEveryEndpoint) {
  Registry reg;
  reg.counter("edge.server.requests").add(7);
  FlightRecorder rec;
  rec.on_span(SpanRecord{42, "edge.complete", 100, 900});
  rec.finish(42, false, "edge.served");
  const OpsHooks hooks = fixture_hooks(&reg, &rec);

  const auto get = [&](const std::string& path) {
    return ops_respond(HttpRequest{"GET", path}, hooks);
  };

  const HttpResponse metrics = get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("lcrs_edge_server_requests 7"),
            std::string::npos);

  const HttpResponse json = get("/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("edge.server.requests"), std::string::npos);

  EXPECT_EQ(get("/healthz").body, "ok\n");
  EXPECT_EQ(get("/readyz").status, 200);  // no hook = always ready

  const HttpResponse tracez = get("/tracez");
  EXPECT_EQ(tracez.content_type, "application/json");
  EXPECT_NE(tracez.body.find("\"trace_id\":42"), std::string::npos);
  EXPECT_NE(tracez.body.find("edge.served"), std::string::npos);

  EXPECT_NE(get("/statusz").body.find("uptime_seconds"), std::string::npos);
  EXPECT_NE(get("/").body.find("/tracez"), std::string::npos);
  EXPECT_EQ(get("/nope").status, 404);
  EXPECT_EQ(get("/metrics/").status, 404);
}

TEST(OpsRespond, ReadinessHookAndMethodGate) {
  bool ready = true;
  OpsHooks hooks;
  hooks.ready = [&ready] { return ready; };
  EXPECT_EQ(ops_respond(HttpRequest{"GET", "/readyz"}, hooks).status, 200);
  EXPECT_EQ(ops_respond(HttpRequest{"GET", "/readyz"}, hooks).body, "ready\n");
  ready = false;
  const HttpResponse draining = ops_respond(HttpRequest{"GET", "/readyz"},
                                            hooks);
  EXPECT_EQ(draining.status, 503);
  EXPECT_EQ(draining.body, "draining\n");

  EXPECT_EQ(ops_respond(HttpRequest{"POST", "/metrics"}, hooks).status, 405);
  EXPECT_EQ(ops_respond(HttpRequest{"DELETE", "/healthz"}, hooks).status, 405);
}

TEST(OpsRespond, StatusJsonHookWins) {
  OpsHooks hooks;
  hooks.status_json = [] { return std::string("{\"custom\":true}"); };
  EXPECT_EQ(ops_respond(HttpRequest{"GET", "/statusz"}, hooks).body,
            "{\"custom\":true}");
}

// -------------------------------------------------------- flight recorder

SpanRecord span(std::uint64_t id, const std::string& name,
                std::int64_t start_ns, std::int64_t end_ns) {
  return SpanRecord{id, name, start_ns, end_ns};
}

TEST(FlightRecorder, StitchedLatencyIsSpanExtent) {
  FlightRecorder rec;
  rec.on_span(span(1, "client.conv1", 1000, 2000));
  rec.on_span(span(1, "edge.complete", 1500, 9000));
  rec.on_span(span(1, "client.network", 1200, 11000));
  rec.finish(1, false, "edge.served");

  const FlightDump dump = rec.dump();
  ASSERT_EQ(dump.recent.size(), 1u);
  const FlightTrace& t = dump.recent[0];
  EXPECT_EQ(t.trace_id, 1u);
  // max(end) - min(start) = 11000 - 1000 = 10 us, not any single stage.
  EXPECT_DOUBLE_EQ(t.latency_us, 10.0);
  EXPECT_TRUE(t.finished);
  EXPECT_FALSE(t.error);
  // dump() sorts spans by start time regardless of arrival order.
  ASSERT_EQ(t.spans.size(), 3u);
  EXPECT_EQ(t.spans[0].name, "client.conv1");
  EXPECT_EQ(t.spans[1].name, "client.network");
  EXPECT_EQ(t.spans[2].name, "edge.complete");
}

TEST(FlightRecorder, SlowestNSurvivesChurn) {
  // 200 traces churn through small retention sets; the slowest set must
  // end up holding exactly the N largest latencies, descending, even
  // though the recent ring only remembers the last few.
  FlightRecorderOptions opts;
  opts.recent_capacity = 4;
  opts.slowest_capacity = 5;
  FlightRecorder rec(opts);

  // Latencies 1us..200us in a scrambled deterministic order.
  std::vector<int> latencies;
  for (int i = 0; i < 200; ++i) latencies.push_back((i * 73) % 200 + 1);
  for (int i = 0; i < 200; ++i) {
    const auto id = static_cast<std::uint64_t>(i + 1);
    rec.on_span(span(id, "edge.complete", 0, latencies[i] * 1000));
    rec.finish(id, false, "edge.served");
  }

  const FlightDump dump = rec.dump();
  EXPECT_EQ(dump.recent.size(), 4u);
  EXPECT_EQ(dump.traces_finished, 200);
  ASSERT_EQ(dump.slowest.size(), 5u);
  for (std::size_t i = 0; i < dump.slowest.size(); ++i) {
    EXPECT_DOUBLE_EQ(dump.slowest[i].latency_us,
                     static_cast<double>(200 - i));
  }
  ASSERT_NE(dump.slowest_trace(), nullptr);
  EXPECT_DOUBLE_EQ(dump.slowest_trace()->latency_us, 200.0);
}

TEST(FlightRecorder, ErrorsAlwaysRetained) {
  // Error traces are kept in their own ring even when they are neither
  // recent nor slow; beyond capacity the oldest error drops first.
  FlightRecorderOptions opts;
  opts.recent_capacity = 2;
  opts.slowest_capacity = 2;
  opts.error_capacity = 3;
  FlightRecorder rec(opts);

  // Three fast errors, then a flood of slow successes.
  for (std::uint64_t id = 1; id <= 4; ++id) {
    rec.on_span(span(id, "client.network", 0, 1000));
    rec.finish(id, true, "client.error: boom" + std::to_string(id));
  }
  for (std::uint64_t id = 100; id < 150; ++id) {
    rec.on_span(span(id, "edge.complete", 0, 1000000));
    rec.finish(id, false, "edge.served");
  }

  const FlightDump dump = rec.dump();
  ASSERT_EQ(dump.errors.size(), 3u);  // oldest error (id 1) evicted
  EXPECT_EQ(dump.errors[0].trace_id, 2u);
  EXPECT_EQ(dump.errors[2].trace_id, 4u);
  for (const auto& e : dump.errors) {
    EXPECT_TRUE(e.error);
    EXPECT_NE(e.tag.find("client.error"), std::string::npos);
  }
  // The successes crowded the errors out of recent and slowest.
  for (const auto& t : dump.recent) EXPECT_FALSE(t.error);
  for (const auto& t : dump.slowest) EXPECT_FALSE(t.error);
}

TEST(FlightRecorder, FinishMergesBothEnds) {
  // Server and client both finish the same trace: error flags OR, tags
  // join, and the merged trace is retained once, not twice.
  FlightRecorder rec;
  rec.on_span(span(9, "edge.complete", 0, 5000));
  rec.finish(9, false, "edge.served");
  rec.finish(9, true, "client.fallback: timeout");

  const FlightDump dump = rec.dump();
  EXPECT_EQ(dump.traces_finished, 1);
  ASSERT_EQ(dump.recent.size(), 1u);
  const FlightTrace& t = dump.recent[0];
  EXPECT_TRUE(t.error);
  EXPECT_EQ(t.tag, "edge.served,client.fallback: timeout");
  // The late error also lands the trace in the error ring.
  ASSERT_EQ(dump.errors.size(), 1u);
  EXPECT_EQ(dump.errors[0].trace_id, 9u);
}

TEST(FlightRecorder, LateSpanMergesAndRecompetes) {
  // On loopback the client.network span often closes after the server
  // finishes the trace. The late span must extend the stitched latency
  // and re-compete for the slowest set.
  FlightRecorderOptions opts;
  opts.slowest_capacity = 1;
  FlightRecorder rec(opts);

  rec.on_span(span(1, "edge.complete", 0, 50000));
  rec.finish(1, false, "edge.served");
  rec.on_span(span(2, "edge.complete", 0, 10000));
  rec.finish(2, false, "edge.served");
  ASSERT_EQ(rec.dump().slowest.size(), 1u);
  EXPECT_EQ(rec.dump().slowest[0].trace_id, 1u);

  // Trace 2's network span arrives late and makes it the slowest.
  rec.on_span(span(2, "client.network", 0, 90000));
  const FlightDump dump = rec.dump();
  ASSERT_EQ(dump.slowest.size(), 1u);
  EXPECT_EQ(dump.slowest[0].trace_id, 2u);
  EXPECT_DOUBLE_EQ(dump.slowest[0].latency_us, 90.0);
  EXPECT_EQ(dump.slowest[0].spans.size(), 2u);
}

TEST(FlightRecorder, UnknownFinishKeepsTheTag) {
  FlightRecorder rec;
  rec.finish(77, true, "client.error: connect refused");
  const FlightDump dump = rec.dump();
  ASSERT_EQ(dump.errors.size(), 1u);
  EXPECT_EQ(dump.errors[0].trace_id, 77u);
  EXPECT_TRUE(dump.errors[0].spans.empty());
  EXPECT_DOUBLE_EQ(dump.errors[0].latency_us, 0.0);
}

TEST(FlightRecorder, PendingEvictionIsBoundedAndCounted) {
  FlightRecorderOptions opts;
  opts.max_pending = 8;
  FlightRecorder rec(opts);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    rec.on_span(span(id, "client.conv1", 0, 1000));
  }
  const FlightDump dump = rec.dump();
  EXPECT_EQ(dump.pending, 8);
  EXPECT_EQ(dump.traces_dropped, 12);
}

TEST(FlightRecorder, SpanCapPerTrace) {
  FlightRecorderOptions opts;
  opts.max_spans_per_trace = 4;
  FlightRecorder rec(opts);
  for (int i = 0; i < 10; ++i) {
    rec.on_span(span(5, "edge.complete", i * 10, i * 10 + 5));
  }
  rec.finish(5, false, "edge.served");
  const FlightDump dump = rec.dump();
  ASSERT_EQ(dump.recent.size(), 1u);
  EXPECT_EQ(dump.recent[0].spans.size(), 4u);
  EXPECT_EQ(dump.recent[0].spans_dropped, 6);
}

TEST(FlightRecorder, IgnoresTraceIdZeroAndClears) {
  FlightRecorder rec;
  rec.on_span(span(0, "untraced", 0, 1000));
  rec.finish(0, true, "ignored");
  EXPECT_EQ(rec.dump().pending, 0);
  EXPECT_EQ(rec.dump().traces_finished, 0);

  rec.on_span(span(1, "edge.complete", 0, 1000));
  rec.finish(1, false, "edge.served");
  EXPECT_EQ(rec.dump().traces_finished, 1);
  rec.clear();
  const FlightDump dump = rec.dump();
  EXPECT_TRUE(dump.recent.empty());
  EXPECT_TRUE(dump.slowest.empty());
  EXPECT_TRUE(dump.errors.empty());
  EXPECT_EQ(dump.pending, 0);
}

TEST(FlightRecorder, DumpJsonIsWellFormed) {
  FlightRecorder rec;
  rec.on_span(span(3, "edge.complete", 100, 900));
  rec.finish(3, true, "tag with \"quotes\" and \\slashes\\");
  const std::string json = rec.dump().to_json();
  EXPECT_NE(json.find("\"slowest\""), std::string::npos);
  EXPECT_NE(json.find("\"recent\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\slashes\\\\"), std::string::npos);
  // Balanced braces is a cheap proxy for structural validity here; the
  // integration test parses /tracez output with a real JSON parser via
  // scripts/validate_prometheus.py's sibling checks.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(FlightRecorder, GatingStopsTheGlobalTap) {
  FlightRecorder::global().clear();
  {
    ScopedFlightRecording off(false);
    Span s(next_trace_id(), names::kSpanClientConv1);
  }
  EXPECT_EQ(FlightRecorder::global().dump().pending, 0);

  ScopedFlightRecording on(true);
  const std::uint64_t id = next_trace_id();
  { Span s(id, names::kSpanClientConv1); }
  flight_record_finish(id, false, "edge.served");
  const FlightDump dump = FlightRecorder::global().dump();
  EXPECT_EQ(dump.pending, 0);
  bool found = false;
  for (const auto& t : dump.recent) found = found || t.trace_id == id;
  EXPECT_TRUE(found);
  FlightRecorder::global().clear();
}

// --------------------------------------------------------- process gauges

TEST(ProcessGauges, RegisteredAndRefreshed) {
  register_process_gauges();
  update_process_gauges();
  const Snapshot snap = Registry::global().snapshot();

  const auto* uptime = snap.find_gauge(names::kProcessUptimeSeconds);
  ASSERT_NE(uptime, nullptr);
  EXPECT_GT(uptime->value, 0.0);

  const auto* level = snap.find_gauge(names::kProcessSimdLevel);
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->value, static_cast<double>(
                              static_cast<int>(simd::active_level())));

  const auto* threads = snap.find_gauge(names::kProcessHardwareThreads);
  ASSERT_NE(threads, nullptr);
  EXPECT_GE(threads->value, 1.0);

  ASSERT_NE(snap.find_gauge(names::kProcessBuildDebug), nullptr);
}

TEST(ProcessGauges, SimdLevelTracksForcedOverride) {
  register_process_gauges();
  simd::ScopedForcedLevel force(simd::Level::kScalar);
  update_process_gauges();
  const Snapshot snap = Registry::global().snapshot();
  const auto* level = snap.find_gauge(names::kProcessSimdLevel);
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->value,
            static_cast<double>(static_cast<int>(simd::Level::kScalar)));
}

}  // namespace
}  // namespace lcrs::obs
