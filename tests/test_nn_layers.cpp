// Behavioural tests of the nn layers (shapes, semantics, caching rules).
// Gradient correctness is covered separately in test_gradcheck.cpp.
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/model_io.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace lcrs::nn {
namespace {

TEST(Conv2d, OutputShapeAndBias) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, 16, 16, rng);
  const Tensor x = Tensor::randn(Shape{2, 3, 16, 16}, rng);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 16, 16}));
  EXPECT_EQ(conv.param_count(), 8 * 3 * 9 + 8);
  EXPECT_EQ(conv.flops_per_sample(), 2 * 8 * 27 * 256 + 8 * 256);
}

TEST(Conv2d, BiasShiftsOutput) {
  Rng rng(1);
  Conv2d conv(1, 1, 1, 1, 0, 4, 4, rng);
  conv.weight().value.fill(0.0f);
  conv.bias_param().value[0] = 3.5f;
  const Tensor y = conv.forward(Tensor{Shape{1, 1, 4, 4}}, false);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 3.5f);
}

TEST(Conv2d, WrongInputShapeThrows) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, 16, 16, rng);
  EXPECT_THROW(conv.forward(Tensor{Shape{1, 3, 8, 8}}, false), Error);
  EXPECT_THROW(conv.forward(Tensor{Shape{3, 16, 16}}, false), Error);
}

TEST(Conv2d, BackwardWithoutForwardThrows) {
  Rng rng(1);
  Conv2d conv(1, 2, 3, 1, 1, 8, 8, rng);
  EXPECT_THROW(conv.backward(Tensor{Shape{1, 2, 8, 8}}), Error);
}

TEST(Linear, MatchesManualAffine) {
  Rng rng(2);
  Linear lin(3, 2, rng);
  lin.weight().value.fill(0.0f);
  lin.weight().value.at2(0, 1) = 2.0f;  // y0 = 2 * x1
  lin.bias_param().value[1] = -1.0f;    // y1 = -1
  Tensor x{Shape{1, 3}};
  x[1] = 4.0f;
  const Tensor y = lin.forward(x, false);
  EXPECT_EQ(y.at2(0, 0), 8.0f);
  EXPECT_EQ(y.at2(0, 1), -1.0f);
}

TEST(Activations, ReLUClampsNegatives) {
  ReLU relu;
  Tensor x{Shape{4}};
  x[0] = -2.0f; x[1] = 0.0f; x[2] = 3.0f; x[3] = -0.1f;
  const Tensor y = relu.forward(x, true);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 3.0f);
  Tensor g = Tensor::ones(Shape{4});
  const Tensor gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[2], 1.0f);
}

TEST(Activations, HardTanhClampsAndGates) {
  HardTanh ht;
  Tensor x{Shape{3}};
  x[0] = -5.0f; x[1] = 0.5f; x[2] = 2.0f;
  const Tensor y = ht.forward(x, true);
  EXPECT_EQ(y[0], -1.0f);
  EXPECT_EQ(y[1], 0.5f);
  EXPECT_EQ(y[2], 1.0f);
  const Tensor gx = ht.backward(Tensor::ones(Shape{3}));
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 1.0f);
  EXPECT_EQ(gx[2], 0.0f);
}

TEST(MaxPool, PicksWindowMaxAndRoutesGradient) {
  MaxPool2d pool(2, 2);
  Tensor x{Shape{1, 1, 2, 2}};
  x[0] = 1.0f; x[1] = 5.0f; x[2] = 2.0f; x[3] = 3.0f;
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_EQ(y[0], 5.0f);
  Tensor g{Shape{1, 1, 1, 1}};
  g[0] = 7.0f;
  const Tensor gx = pool.backward(g);
  EXPECT_EQ(gx[1], 7.0f);
  EXPECT_EQ(gx[0], 0.0f);
}

TEST(AvgPool, AveragesWindow) {
  AvgPool2d pool(2, 2);
  Tensor x{Shape{1, 1, 2, 2}};
  x[0] = 1.0f; x[1] = 2.0f; x[2] = 3.0f; x[3] = 6.0f;
  EXPECT_EQ(pool.forward(x, false)[0], 3.0f);
}

TEST(GlobalAvgPool, CollapsesSpatialDims) {
  GlobalAvgPool gap;
  Tensor x{Shape{1, 2, 2, 2}};
  for (std::int64_t i = 0; i < 4; ++i) x[i] = 2.0f;       // channel 0
  for (std::int64_t i = 4; i < 8; ++i) x[i] = 4.0f;       // channel 1
  const Tensor y = gap.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_EQ(y.at2(0, 0), 2.0f);
  EXPECT_EQ(y.at2(0, 1), 4.0f);
  const Tensor gx = gap.backward(Tensor::ones(Shape{1, 2}));
  EXPECT_EQ(gx[0], 0.25f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten fl;
  const Tensor x = Tensor::ones(Shape{2, 3, 4, 4});
  const Tensor y = fl.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  EXPECT_EQ(fl.backward(y).shape(), x.shape());
}

TEST(BatchNorm, NormalizesBatchStatistics) {
  Rng rng(3);
  BatchNorm bn(4);
  const Tensor x = Tensor::randn(Shape{16, 4, 5, 5}, rng, 3.0f, 2.0f);
  const Tensor y = bn.forward(x, true);
  // Per-channel output should be ~N(0,1) since gamma=1, beta=0.
  const std::int64_t spatial = 25;
  for (std::int64_t c = 0; c < 4; ++c) {
    double m = 0.0, v = 0.0;
    for (std::int64_t b = 0; b < 16; ++b) {
      for (std::int64_t i = 0; i < spatial; ++i) {
        m += static_cast<double>(y[(b * 4 + c) * spatial + i]);
      }
    }
    m /= 16.0 * static_cast<double>(spatial);
    for (std::int64_t b = 0; b < 16; ++b) {
      for (std::int64_t i = 0; i < spatial; ++i) {
        const double d =
            static_cast<double>(y[(b * 4 + c) * spatial + i]) - m;
        v += d * d;
      }
    }
    v /= 16.0 * spatial;
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v, 1.0, 1e-2);
  }
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  Rng rng(4);
  BatchNorm bn(2);
  // Train a few batches so running stats move toward (5, ~1).
  for (int i = 0; i < 200; ++i) {
    const Tensor x = Tensor::randn(Shape{8, 2, 3, 3}, rng, 5.0f, 1.0f);
    bn.forward(x, true);
  }
  const Tensor probe = Tensor::full(Shape{1, 2, 3, 3}, 5.0f);
  const Tensor y = bn.forward(probe, false);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 0.0f, 0.2f);
}

TEST(BatchNorm, AcceptsRank2Input) {
  Rng rng(5);
  BatchNorm bn(8);
  const Tensor x = Tensor::randn(Shape{16, 8}, rng);
  EXPECT_EQ(bn.forward(x, true).shape(), x.shape());
}

TEST(Dropout, InferenceIsIdentity) {
  Rng rng(6);
  Dropout drop(0.5f, rng);
  const Tensor x = Tensor::randn(Shape{100}, rng);
  EXPECT_EQ(max_abs_diff(drop.forward(x, false), x), 0.0f);
}

TEST(Dropout, TrainDropsAndRescales) {
  Rng rng(7);
  Dropout drop(0.5f, rng);
  const Tensor x = Tensor::ones(Shape{10000});
  const Tensor y = drop.forward(x, true);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // survivors scaled by 1/(1-p)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.05);
}

TEST(Dropout, InvalidProbabilityThrows) {
  Rng rng(8);
  EXPECT_THROW(Dropout(1.0f, rng), Error);
  EXPECT_THROW(Dropout(-0.1f, rng), Error);
}

TEST(Sequential, ChainsAndCollectsParams) {
  Rng rng(9);
  Sequential seq;
  seq.emplace<Conv2d>(1, 4, 3, 1, 1, 8, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Flatten>();
  seq.emplace<Linear>(4 * 64, 10, rng);
  const Tensor y = seq.forward(Tensor::randn(Shape{2, 1, 8, 8}, rng), false);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
  EXPECT_EQ(seq.params().size(), 4u);  // conv w+b, linear w+b
  EXPECT_GT(seq.flops_per_sample(), 0);
}

TEST(Sequential, PrefixSuffixComposition) {
  Rng rng(10);
  Sequential seq;
  seq.emplace<Conv2d>(1, 4, 3, 1, 1, 8, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Flatten>();
  seq.emplace<Linear>(4 * 64, 10, rng);
  const Tensor x = Tensor::randn(Shape{1, 1, 8, 8}, rng);
  const Tensor whole = seq.forward(x, false);
  const Tensor mid = seq.forward_prefix(x, 2);
  const Tensor stitched = seq.forward_suffix(mid, 2);
  EXPECT_LT(max_abs_diff(whole, stitched), 1e-5f);
}

TEST(Residual, ShapePreservingAndDownsampling) {
  Rng rng(11);
  ResidualBlock same(8, 8, 1, 16, 16, rng);
  const Tensor x = Tensor::randn(Shape{2, 8, 16, 16}, rng);
  EXPECT_EQ(same.forward(x, false).shape(), x.shape());

  ResidualBlock down(8, 16, 2, 16, 16, rng);
  EXPECT_EQ(down.forward(x, false).shape(), (Shape{2, 16, 8, 8}));
  EXPECT_GT(down.params().size(), same.params().size());
}

TEST(ModelIo, SaveLoadRoundTrip) {
  Rng rng(12);
  Sequential a;
  a.emplace<Conv2d>(1, 4, 3, 1, 1, 8, 8, rng);
  a.emplace<Flatten>();
  a.emplace<Linear>(4 * 64, 5, rng);
  Rng rng2(99);
  Sequential b;
  b.emplace<Conv2d>(1, 4, 3, 1, 1, 8, 8, rng2);
  b.emplace<Flatten>();
  b.emplace<Linear>(4 * 64, 5, rng2);

  const auto bytes = save_params(a);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()),
            serialized_param_bytes(a));
  load_params(b, bytes);

  const Tensor x = Tensor::randn(Shape{1, 1, 8, 8}, rng);
  EXPECT_EQ(max_abs_diff(a.forward(x, false), b.forward(x, false)), 0.0f);
}

TEST(ModelIo, MismatchedModelThrows) {
  Rng rng(13);
  Sequential a;
  a.emplace<Linear>(4, 2, rng);
  Sequential b;
  b.emplace<Linear>(4, 3, rng);
  EXPECT_THROW(load_params(b, save_params(a)), ParseError);
}

}  // namespace
}  // namespace lcrs::nn
