// Hot-swap-under-load harness (load tier): the headline proof for the
// multi-model serving registry (edge/model_registry.h).
//
// 16 raw-socket clients split across 2 models hammer one EdgeServer
// while a swapper thread keeps installing new versions of both models.
// Completions are synthetic and *tagged*: every response encodes
// (model id, version, row checksum) in its label and probabilities, so
// the clients can verify, per response,
//
//   * no dropped connections: every request gets a reply (kBusy is
//     retried; an EOF or timeout fails the test);
//   * no cross-model misroutes: the frame header echoes the request's
//     model id and the label's embedded model id matches it;
//   * bit-exactness against the serving version: the response is
//     recomputed from the request tensor and the version the server
//     claims served it, and must match exactly -- a batch mixing two
//     snapshots or a swap retargeting an in-flight request cannot pass;
//   * monotonic version visibility: the version serving a client's
//     requests never decreases.
//
// After the flood, the registry's live_models() gauge must fall back to
// size(): every displaced snapshot's memory is released once its last
// in-flight batch drains.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "edge/model_registry.h"
#include "edge/server.h"
#include "edge/tcp.h"

namespace lcrs {
namespace {

constexpr int kClients = 16;
constexpr int kRequestsPerClient = 40;
constexpr double kIoDeadlineMs = 10000.0;
constexpr std::uint32_t kModelIds[] = {1, 2};

/// Row checksum both sides compute from bit-identical floats.
std::int64_t row_hash(const float* p, std::int64_t n) {
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) sum += static_cast<double>(p[i]);
  const std::int64_t h = std::llround(sum * 16.0) % 10000;
  return h < 0 ? h + 10000 : h;
}

std::int64_t tagged_label(std::uint32_t model_id, std::uint32_t version,
                          std::int64_t hash) {
  return static_cast<std::int64_t>(model_id) * 1000000 +
         static_cast<std::int64_t>(version) * 10000 + hash;
}

/// The exact response bytes version `version` of model `model_id`
/// produces for one request row -- used by the server's completion and
/// re-derived by the client for the bit-exactness check.
edge::CompleteResponse tagged_response(std::uint32_t model_id,
                                       std::uint32_t version,
                                       const float* row, std::int64_t n) {
  edge::CompleteResponse r;
  r.label = tagged_label(model_id, version, row_hash(row, n));
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) sum += static_cast<double>(row[i]);
  r.probabilities = Tensor(
      Shape{3}, std::vector<float>{static_cast<float>(model_id),
                                   static_cast<float>(version),
                                   static_cast<float>(sum)});
  return r;
}

std::shared_ptr<const edge::ServableModel> tagged_model(
    std::uint32_t model_id, std::uint32_t version) {
  return edge::ServableModel::from_fn(
      model_id, version, "tagged-" + std::to_string(model_id),
      [model_id, version](const Tensor& batch) {
        const std::int64_t k = batch.dim(0);
        const std::int64_t per = batch.numel() / k;
        std::vector<edge::CompleteResponse> out;
        out.reserve(static_cast<std::size_t>(k));
        for (std::int64_t i = 0; i < k; ++i) {
          out.push_back(tagged_response(model_id, version,
                                        batch.data() + i * per, per));
        }
        return out;
      });
}

struct ClientReport {
  std::int64_t completions = 0;
  std::int64_t busy_retries = 0;
  std::string failure;  // empty = clean run
};

void run_client(std::uint16_t port, int client_idx, ClientReport* report) {
  const std::uint32_t model_id = kModelIds[client_idx % 2];
  try {
    edge::Socket sock = edge::connect_local(port);
    Rng rng(9000 + static_cast<std::uint64_t>(client_idx));
    std::uint32_t last_version = 0;
    for (int r = 0; r < kRequestsPerClient; ++r) {
      const Tensor t = Tensor::randn(Shape{1, 2, 4, 4}, rng);
      for (;;) {  // retry loop for kBusy
        sock.send_frame(
            edge::Frame{edge::MsgType::kCompleteRequest,
                        edge::make_complete_request(t),
                        /*trace_id=*/0, model_id},
            edge::Deadline::after_ms(kIoDeadlineMs));
        const std::optional<edge::Frame> reply =
            sock.recv_frame(edge::Deadline::after_ms(kIoDeadlineMs));
        if (!reply.has_value()) {
          report->failure = "connection dropped mid-run";
          return;
        }
        if (reply->model_id != model_id) {
          report->failure = "reply header echoes wrong model id";
          return;
        }
        if (reply->type == edge::MsgType::kBusy) {
          ++report->busy_retries;
          std::this_thread::sleep_for(std::chrono::milliseconds(
              edge::parse_busy_reply(reply->payload)));
          continue;
        }
        if (reply->type != edge::MsgType::kCompleteResponse) {
          report->failure = "unexpected reply type";
          return;
        }
        const edge::CompleteResponse resp =
            edge::parse_complete_response(reply->payload);
        // Which version claims to have served this? Decode, then demand
        // the whole response is bit-exact for that version.
        const auto version =
            static_cast<std::uint32_t>((resp.label / 10000) % 100);
        const edge::CompleteResponse expect =
            tagged_response(model_id, version, t.data(), t.numel());
        if (resp.label != expect.label) {
          report->failure = "label mismatch: misroute or mixed batch";
          return;
        }
        if (resp.probabilities.shape() != expect.probabilities.shape() ||
            std::memcmp(resp.probabilities.data(),
                        expect.probabilities.data(),
                        sizeof(float) * 3) != 0) {
          report->failure =
              "response not bit-exact against the serving version";
          return;
        }
        if (version < last_version) {
          report->failure = "version went backwards (stale snapshot "
                            "served after a newer one)";
          return;
        }
        last_version = version;
        ++report->completions;
        break;
      }
    }
  } catch (const Error& e) {
    report->failure = e.what();
  }
}

TEST(ModelSwap, SwapUnderLoadNoDropsNoMisroutes) {
  auto registry = std::make_shared<edge::ModelRegistry>();
  // Version space: tagged_label gives versions two decimal digits, and
  // the swapper stays well below that.
  std::uint32_t versions[] = {1, 1};
  registry->install(tagged_model(kModelIds[0], versions[0]));
  registry->install(tagged_model(kModelIds[1], versions[1]));

  edge::ServerOptions opts;
  opts.num_workers = 4;
  opts.max_batch = 4;
  opts.max_wait_us = 50.0;
  opts.queue_capacity = 64;
  opts.busy_retry_after_ms = 1;
  edge::EdgeServer server(0, registry, opts);

  std::atomic<bool> stop_swapper{false};
  std::atomic<std::int64_t> swaps{0};
  std::thread swapper([&] {
    int which = 0;
    while (!stop_swapper.load(std::memory_order_acquire)) {
      // Alternate models; each install retires the incumbent snapshot
      // while its in-flight batches drain against it.
      if (versions[which] < 80) {
        ++versions[which];
        registry->install(tagged_model(kModelIds[which], versions[which]));
        swaps.fetch_add(1, std::memory_order_relaxed);
      }
      which = 1 - which;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<ClientReport> reports(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back(run_client, server.port(), i, &reports[i]);
  }
  for (auto& c : clients) c.join();
  stop_swapper.store(true, std::memory_order_release);
  swapper.join();

  std::int64_t total = 0;
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(reports[i].failure, "") << "client " << i;
    EXPECT_EQ(reports[i].completions, kRequestsPerClient) << "client " << i;
    total += reports[i].completions;
  }
  EXPECT_EQ(total, kClients * kRequestsPerClient);
  EXPECT_GT(swaps.load(), 0) << "swapper never flipped a version -- the "
                                "test did not exercise hot swap";

  // Drain: once no batch is in flight, every retired snapshot's last
  // strong reference is gone and the live gauge falls back to the
  // registered count. Bounded poll, not a sleep.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (registry->live_models() != registry->size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(registry->live_models(), registry->size())
      << "retired model snapshots still pinned after the flood drained";

  server.stop();
  EXPECT_EQ(server.stats().requests_served, total);
}

/// A client whose model is evicted mid-flood keeps its connection and
/// starts drawing kModelUnavailable -- requests are rejected, never
/// dropped or misrouted to another model.
TEST(ModelSwap, EvictionRejectsWithoutDroppingConnections) {
  auto registry = std::make_shared<edge::ModelRegistry>();
  registry->install(tagged_model(1, 1));
  registry->install(tagged_model(2, 1));

  edge::ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 32;
  edge::EdgeServer server(0, registry, opts);

  edge::Socket sock = edge::connect_local(server.port());
  Rng rng(31);
  const Tensor t = Tensor::randn(Shape{1, 2, 4, 4}, rng);

  auto roundtrip = [&](std::uint32_t model_id) {
    sock.send_frame(edge::Frame{edge::MsgType::kCompleteRequest,
                                edge::make_complete_request(t),
                                /*trace_id=*/0, model_id},
                    edge::Deadline::after_ms(kIoDeadlineMs));
    const std::optional<edge::Frame> reply =
        sock.recv_frame(edge::Deadline::after_ms(kIoDeadlineMs));
    EXPECT_TRUE(reply.has_value());
    return reply;
  };

  auto reply = roundtrip(2);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, edge::MsgType::kCompleteResponse);

  EXPECT_TRUE(registry->evict(2));
  EXPECT_FALSE(registry->evict(2));  // second evict: nothing left

  reply = roundtrip(2);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, edge::MsgType::kModelUnavailable);
  EXPECT_EQ(edge::parse_model_unavailable(reply->payload), 2u);
  EXPECT_EQ(reply->model_id, 2u);

  // The same connection still completes against the surviving model.
  reply = roundtrip(1);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, edge::MsgType::kCompleteResponse);

  server.stop();
  EXPECT_EQ(server.stats().rejected_unknown_model, 1);
}

}  // namespace
}  // namespace lcrs
