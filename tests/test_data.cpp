// Dataset substrate tests: synthetic generators, augmentation ops, logo
// data, and dataset utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "data/augment.h"
#include "data/dataset.h"
#include "data/logo.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace lcrs::data {
namespace {

TEST(Synthetic, PresetsMatchPaperShapes) {
  EXPECT_EQ(mnist_like().channels, 1);
  EXPECT_EQ(mnist_like().height, 28);
  EXPECT_EQ(mnist_like().num_classes, 10);
  EXPECT_EQ(fashion_mnist_like().channels, 1);
  EXPECT_EQ(cifar10_like().channels, 3);
  EXPECT_EQ(cifar10_like().height, 32);
  EXPECT_EQ(cifar100_like().num_classes, 100);
}

TEST(Synthetic, SpecLookupByName) {
  EXPECT_EQ(spec_by_name("MNIST").name, "synthetic-mnist");
  EXPECT_EQ(spec_by_name("CIFAR100").num_classes, 100);
  EXPECT_THROW(spec_by_name("ImageNet"), InvalidArgument);
}

TEST(Synthetic, GeneratesBalancedLabeledData) {
  Rng rng(1);
  const Dataset ds = make_synthetic(mnist_like(), 200, rng);
  EXPECT_EQ(ds.size(), 200);
  EXPECT_EQ(ds.images.shape(), (Shape{200, 1, 28, 28}));
  const auto hist = class_histogram(ds);
  for (const auto h : hist) EXPECT_EQ(h, 20);
}

TEST(Synthetic, PixelsAreBounded) {
  Rng rng(2);
  const Dataset ds = make_synthetic(cifar10_like(), 50, rng);
  for (std::int64_t i = 0; i < ds.images.numel(); ++i) {
    EXPECT_GE(ds.images[i], -1.0f);
    EXPECT_LE(ds.images[i], 1.0f);
  }
}

TEST(Synthetic, SameSeedSameData) {
  Rng a(7), b(7);
  const Dataset da = make_synthetic(mnist_like(), 30, a);
  const Dataset db = make_synthetic(mnist_like(), 30, b);
  EXPECT_EQ(max_abs_diff(da.images, db.images), 0.0f);
  EXPECT_EQ(da.labels, db.labels);
}

TEST(Synthetic, ClassesAreSeparable) {
  // Same-class samples must be closer to each other than to other
  // classes on average; otherwise nothing could learn the data.
  Rng rng(3);
  const Dataset ds = make_synthetic(mnist_like(), 100, rng);
  const std::int64_t sample = ds.images.numel() / ds.size();
  double intra = 0.0, inter = 0.0;
  std::int64_t n_intra = 0, n_inter = 0;
  for (std::int64_t i = 0; i < 40; ++i) {
    for (std::int64_t j = i + 1; j < 40; ++j) {
      double d = 0.0;
      for (std::int64_t p = 0; p < sample; ++p) {
        const double diff =
            ds.images[i * sample + p] - ds.images[j * sample + p];
        d += diff * diff;
      }
      if (ds.labels[static_cast<std::size_t>(i)] ==
          ds.labels[static_cast<std::size_t>(j)]) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / static_cast<double>(n_intra),
            inter / static_cast<double>(n_inter));
}

TEST(Synthetic, Cifar10IsHarderThanMnist) {
  // Difficulty knob sanity: more shared background + noise means lower
  // separation ratio for the CIFAR-like presets.
  auto ratio = [](const SyntheticSpec& spec) {
    Rng rng(4);
    const Dataset ds = make_synthetic(spec, 120, rng);
    const std::int64_t sample = ds.images.numel() / ds.size();
    double intra = 0.0, inter = 0.0;
    std::int64_t ni = 0, nj = 0;
    for (std::int64_t i = 0; i < 60; ++i) {
      for (std::int64_t j = i + 1; j < 60; ++j) {
        double d = 0.0;
        for (std::int64_t p = 0; p < sample; ++p) {
          const double diff =
              ds.images[i * sample + p] - ds.images[j * sample + p];
          d += diff * diff;
        }
        if (ds.labels[static_cast<std::size_t>(i)] ==
            ds.labels[static_cast<std::size_t>(j)]) {
          intra += d; ++ni;
        } else {
          inter += d; ++nj;
        }
      }
    }
    return (inter / static_cast<double>(nj)) /
           (intra / static_cast<double>(ni));
  };
  EXPECT_GT(ratio(mnist_like()), ratio(cifar10_like()));
}

TEST(Dataset, SliceAndLabelSlice) {
  Rng rng(5);
  const Dataset ds = make_synthetic(mnist_like(), 20, rng);
  const Dataset s = ds.slice(5, 10);
  EXPECT_EQ(s.size(), 10);
  EXPECT_EQ(s.labels[0], ds.labels[5]);
  EXPECT_EQ(ds.label_slice(5, 3),
            (std::vector<std::int64_t>{ds.labels[5], ds.labels[6],
                                       ds.labels[7]}));
  EXPECT_THROW(ds.slice(15, 10), Error);
}

TEST(Dataset, ShuffleKeepsPairsTogether) {
  Rng rng(6);
  Dataset ds = make_synthetic(mnist_like(), 40, rng);
  // Tag each image's first pixel with its label so we can verify pairing.
  const std::int64_t sample = ds.images.numel() / ds.size();
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    ds.images[i * sample] =
        static_cast<float>(ds.labels[static_cast<std::size_t>(i)]) / 100.0f;
  }
  shuffle(ds, rng);
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_FLOAT_EQ(
        ds.images[i * sample],
        static_cast<float>(ds.labels[static_cast<std::size_t>(i)]) / 100.0f);
  }
}

TEST(Dataset, SplitAndConcatRoundTrip) {
  Rng rng(7);
  const Dataset ds = make_synthetic(mnist_like(), 30, rng);
  const auto [a, b] = split(ds, 12);
  EXPECT_EQ(a.size(), 12);
  EXPECT_EQ(b.size(), 18);
  const Dataset joined = concat(a, b);
  EXPECT_EQ(max_abs_diff(joined.images, ds.images), 0.0f);
  EXPECT_EQ(joined.labels, ds.labels);
}

TEST(Augment, FlipTwiceIsIdentity) {
  Rng rng(8);
  const Tensor img = Tensor::randn(Shape{3, 8, 8}, rng);
  EXPECT_EQ(max_abs_diff(flip_horizontal(flip_horizontal(img)), img), 0.0f);
  EXPECT_EQ(max_abs_diff(flip_vertical(flip_vertical(img)), img), 0.0f);
}

TEST(Augment, IntegerTranslationShiftsExactly) {
  Tensor img{Shape{1, 4, 4}};
  img[5] = 1.0f;  // pixel (1,1)
  const Tensor t = translate(img, 1.0, 2.0);
  EXPECT_FLOAT_EQ(t[2 * 4 + 3], 1.0f);  // now at (2,3)
  EXPECT_FLOAT_EQ(t[5], 0.0f);
}

TEST(Augment, ZeroRotationIsIdentity) {
  Rng rng(9);
  const Tensor img = Tensor::randn(Shape{1, 9, 9}, rng);
  EXPECT_LT(max_abs_diff(rotate(img, 0.0), img), 1e-6f);
}

TEST(Augment, Rotation90MovesCorners) {
  Tensor img{Shape{1, 5, 5}};
  img[0 * 5 + 4] = 1.0f;  // top-right, i.e. (row 0, col 4)
  const Tensor r = rotate(img, 90.0);
  // In image (y-down) coordinates a +90 degree rotation sends the
  // top-right corner to the bottom-right.
  EXPECT_NEAR(r[4 * 5 + 4], 1.0f, 1e-5);
  EXPECT_NEAR(r[0 * 5 + 4], 0.0f, 1e-5);
}

TEST(Augment, UnitZoomIsIdentity) {
  Rng rng(10);
  const Tensor img = Tensor::randn(Shape{2, 7, 7}, rng);
  EXPECT_LT(max_abs_diff(zoom(img, 1.0), img), 1e-6f);
}

TEST(Augment, ColorPerturbPreservesShapePerChannel) {
  Rng rng(11);
  const Tensor img = Tensor::ones(Shape{3, 4, 4});
  const Tensor c = color_perturb(img, rng, 0.5, 0.5);
  // Inside each channel the transform is affine on a constant image, so
  // all pixels of a channel stay equal.
  for (std::int64_t ch = 0; ch < 3; ++ch) {
    const float v0 = c[ch * 16];
    for (std::int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(c[ch * 16 + i], v0);
  }
}

TEST(Augment, DatasetExpansionMultipliesSize) {
  Rng rng(12);
  const Dataset ds = make_synthetic(mnist_like(), 10, rng);
  AugmentParams params;
  const Dataset aug = augment_dataset(ds, 5, params, rng);
  EXPECT_EQ(aug.size(), 50);
  // Labels replicate blockwise.
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    for (std::int64_t k = 0; k < 5; ++k) {
      EXPECT_EQ(aug.labels[static_cast<std::size_t>(i * 5 + k)],
                ds.labels[static_cast<std::size_t>(i)]);
    }
  }
}

class AugmentAngles : public ::testing::TestWithParam<double> {};

TEST_P(AugmentAngles, RotateThenUnrotateRestoresInterior) {
  // Composition property: rotate(a) then rotate(-a) is identity up to
  // resampling blur; check the interior (borders lose data to zero fill).
  const double angle = GetParam();
  Rng rng(40);
  Tensor img{Shape{1, 16, 16}};
  // Smooth image so bilinear round-trips are tight.
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      img[y * 16 + x] = static_cast<float>(
          0.5 * std::sin(0.4 * static_cast<double>(y)) +
          0.5 * std::cos(0.3 * static_cast<double>(x)));
    }
  }
  const Tensor round = rotate(rotate(img, angle), -angle);
  double err = 0.0;
  std::int64_t count = 0;
  for (std::int64_t y = 4; y < 12; ++y) {
    for (std::int64_t x = 4; x < 12; ++x) {
      err += static_cast<double>(
          std::fabs(round[y * 16 + x] - img[y * 16 + x]));
      ++count;
    }
  }
  EXPECT_LT(err / static_cast<double>(count), 0.05) << "angle " << angle;
}

INSTANTIATE_TEST_SUITE_P(Angles, AugmentAngles,
                         ::testing::Values(5.0, 15.0, 30.0, 45.0, 90.0));

TEST(Augment, ZoomOutThenInRestoresInterior) {
  Tensor img{Shape{1, 16, 16}};
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      img[y * 16 + x] = static_cast<float>(
          0.5 * std::sin(0.3 * static_cast<double>(y)) -
          0.5 * std::cos(0.25 * static_cast<double>(x)));
    }
  }
  const Tensor round = zoom(zoom(img, 0.8), 1.25);
  double err = 0.0;
  std::int64_t count = 0;
  for (std::int64_t y = 5; y < 11; ++y) {
    for (std::int64_t x = 5; x < 11; ++x) {
      err += static_cast<double>(
          std::fabs(round[y * 16 + x] - img[y * 16 + x]));
      ++count;
    }
  }
  EXPECT_LT(err / static_cast<double>(count), 0.08);
}

TEST(Augment, RandomAugmentPreservesShapeAndFiniteness) {
  Rng rng(41);
  const Tensor img = Tensor::randn(Shape{3, 20, 20}, rng);
  AugmentParams params;
  params.flip_v_prob = 0.5;
  for (int trial = 0; trial < 20; ++trial) {
    const Tensor out = random_augment(img, params, rng);
    ASSERT_EQ(out.shape(), img.shape());
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(out[i]));
    }
  }
}

TEST(Synthetic, ConfusionKnobValidation) {
  SyntheticSpec s = mnist_like();
  s.confusion = 1.0;
  EXPECT_THROW(s.validate(), Error);
  s.confusion = 0.5;
  s.contrast_jitter = 1.0;
  EXPECT_THROW(s.validate(), Error);
}

TEST(Logo, BrandArtworkIsDeterministicAndDistinct) {
  LogoSpec spec;
  const Tensor a1 = render_logo(spec, 0);
  const Tensor a2 = render_logo(spec, 0);
  EXPECT_EQ(max_abs_diff(a1, a2), 0.0f);
  const Tensor b = render_logo(spec, 1);
  EXPECT_GT(max_abs_diff(a1, b), 0.1f);
}

TEST(Logo, NamesIncludePaperBrands) {
  LogoSpec spec;
  const auto names = brand_names(spec);
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "ChinaMobile");
  EXPECT_EQ(names[1], "FenJiu");
}

TEST(Logo, MakeLogoDataProducesTrainTestSplit) {
  LogoSpec spec;
  spec.num_brands = 4;
  spec.base_per_brand = 4;
  spec.augment_copies = 5;
  Rng rng(13);
  const LogoData data = make_logo_data(spec, rng);
  EXPECT_EQ(data.train.size() + data.test.size(), 4 * 4 * 5);
  EXPECT_EQ(data.train.num_classes, 4);
  EXPECT_GT(data.test.size(), 0);
  data.train.check();
  data.test.check();
}

}  // namespace
}  // namespace lcrs::data
