// Property tests: every GEMM variant must match the naive oracle across a
// sweep of shapes, including degenerate and non-tile-aligned ones.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace lcrs {
namespace {

using GemmShape = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

class GemmShapes : public ::testing::TestWithParam<GemmShape> {};

std::vector<float> random_matrix(std::int64_t n, Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

void expect_near_all(const std::vector<float>& a, const std::vector<float>& b,
                     float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

TEST_P(GemmShapes, BlockedMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 10007 + k * 101 + n);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c_fast(static_cast<std::size_t>(m * n), 1.0f);
  std::vector<float> c_ref(static_cast<std::size_t>(m * n), 1.0f);
  gemm(a.data(), b.data(), c_fast.data(), m, k, n);
  gemm_naive(a.data(), b.data(), c_ref.data(), m, k, n);
  expect_near_all(c_fast, c_ref, 1e-3f * static_cast<float>(k));
}

TEST_P(GemmShapes, TransposedAMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  const auto at = random_matrix(k * m, rng);  // stored [k x m]
  const auto b = random_matrix(k * n, rng);
  // Build the explicit transpose for the oracle.
  std::vector<float> a(static_cast<std::size_t>(m * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < m; ++i) a[i * k + kk] = at[kk * m + i];
  }
  std::vector<float> c_fast(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> c_ref(static_cast<std::size_t>(m * n), 0.0f);
  gemm_at(at.data(), b.data(), c_fast.data(), m, k, n);
  gemm_naive(a.data(), b.data(), c_ref.data(), m, k, n);
  expect_near_all(c_fast, c_ref, 1e-3f * static_cast<float>(k));
}

TEST_P(GemmShapes, TransposedBMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(3 * m + 5 * k + 7 * n);
  const auto a = random_matrix(m * k, rng);
  const auto bt = random_matrix(n * k, rng);  // stored [n x k]
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t kk = 0; kk < k; ++kk) b[kk * n + j] = bt[j * k + kk];
  }
  std::vector<float> c_fast(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> c_ref(static_cast<std::size_t>(m * n), 0.0f);
  gemm_bt(a.data(), bt.data(), c_fast.data(), m, k, n);
  gemm_naive(a.data(), b.data(), c_ref.data(), m, k, n);
  expect_near_all(c_fast, c_ref, 1e-3f * static_cast<float>(k));
}

TEST_P(GemmShapes, BetaOneAccumulates) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * k * n + 1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n), 2.0f);
  std::vector<float> ref(static_cast<std::size_t>(m * n), 2.0f);
  gemm(a.data(), b.data(), c.data(), m, k, n, /*beta=*/1.0f);
  gemm_naive(a.data(), b.data(), ref.data(), m, k, n, /*beta=*/1.0f);
  expect_near_all(c, ref, 1e-3f * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{1, 64, 1},
                      GemmShape{3, 5, 7}, GemmShape{16, 16, 16},
                      GemmShape{64, 64, 64}, GemmShape{65, 63, 67},
                      GemmShape{128, 27, 196}, GemmShape{10, 400, 120},
                      GemmShape{2, 130, 257}));

// TSan gate for the kernel thread pool (scripts/check_tsan.sh): force a
// multi-worker pool so the blocked GEMM genuinely fans out even on
// single-core hosts, and pin the result against the serial oracle. A data
// race in the pool or an overlapping row partition shows up here either
// as a TSan report or as a mismatch.
TEST(GemmParallel, ForcedFourWorkerPoolMatchesNaive) {
  const int prev = parallel_thread_count();
  set_parallel_thread_count(4);
  const std::int64_t m = 67, k = 45, n = 53;
  Rng rng(0x9ea11e1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c_fast(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> c_ref(static_cast<std::size_t>(m * n), 0.0f);
  gemm(a.data(), b.data(), c_fast.data(), m, k, n);
  set_parallel_thread_count(1);
  gemm_naive(a.data(), b.data(), c_ref.data(), m, k, n);
  set_parallel_thread_count(prev);
  expect_near_all(c_fast, c_ref, 1e-3f * static_cast<float>(k));
}

// Every SIMD level the running host can actually execute; kScalar first
// so the reference output in the sweeps below comes from the portable
// loop.
std::vector<simd::Level> testable_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  for (const simd::Level l :
       {simd::Level::kSse, simd::Level::kAvx2, simd::Level::kNeon}) {
    if (simd::level_available(l)) levels.push_back(l);
  }
  return levels;
}

// Cross-level float tolerance (documented in DESIGN.md "SIMD kernel
// layer"): levels differ only by FMA-vs-mul+add rounding inside one
// ascending-k chain, so the error budget scales with k. Same bound the
// oracle comparisons above use.
TEST_P(GemmShapes, AllDispatchLevelsMatchForcedScalar) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 31 + k * 17 + n * 13);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c_scalar(static_cast<std::size_t>(m * n), 0.0f);
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    gemm(a.data(), b.data(), c_scalar.data(), m, k, n);
  }
  for (const simd::Level level : testable_levels()) {
    simd::ScopedForcedLevel force(level);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    gemm(a.data(), b.data(), c.data(), m, k, n);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], c_scalar[i], 1e-3f * static_cast<float>(k))
          << "level " << simd::level_name(level) << " index " << i;
    }
  }
}

TEST_P(GemmShapes, PackedAMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7001 + k * 53 + n * 29);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  const PackedA packed = pack_a_panels(a.data(), m, k);
  EXPECT_EQ(packed.m, m);
  EXPECT_EQ(packed.k, k);
  std::vector<float> c(static_cast<std::size_t>(m * n), 99.0f);
  std::vector<float> ref(static_cast<std::size_t>(m * n), 0.0f);
  gemm_packed_a(packed, b.data(), c.data(), n);
  gemm_naive(a.data(), b.data(), ref.data(), m, k, n);
  expect_near_all(c, ref, 1e-3f * static_cast<float>(k));
}

TEST_P(GemmShapes, PackedAAllDispatchLevelsMatchForcedScalar) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 131 + k * 37 + n * 3);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  const PackedA packed = pack_a_panels(a.data(), m, k);
  std::vector<float> c_scalar(static_cast<std::size_t>(m * n), 0.0f);
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    gemm_packed_a(packed, b.data(), c_scalar.data(), n);
  }
  for (const simd::Level level : testable_levels()) {
    simd::ScopedForcedLevel force(level);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    gemm_packed_a(packed, b.data(), c.data(), n);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], c_scalar[i], 1e-3f * static_cast<float>(k))
          << "level " << simd::level_name(level) << " index " << i;
    }
  }
}

// Panel rows beyond m are zero padding; every non-multiple-of-4 m must
// still produce exactly m rows of output and never read or write past
// them. The canary values around C catch stray panel-row stores.
TEST(GemmPackedA, RaggedPanelRowsDoNotOverrunOutput) {
  Rng rng(0xcafe);
  const std::int64_t k = 33, n = 19;
  for (const std::int64_t m : {1, 2, 3, 5, 6, 7, 65}) {
    const auto a = random_matrix(m * k, rng);
    const auto b = random_matrix(k * n, rng);
    std::vector<float> guarded(static_cast<std::size_t>((m + 2) * n),
                               -777.0f);
    float* c = guarded.data() + n;  // one canary row before and after
    const PackedA packed = pack_a_panels(a.data(), m, k);
    gemm_packed_a(packed, b.data(), c, n);
    std::vector<float> ref(static_cast<std::size_t>(m * n), 0.0f);
    gemm_naive(a.data(), b.data(), ref.data(), m, k, n);
    for (std::int64_t i = 0; i < m * n; ++i) {
      ASSERT_NEAR(c[i], ref[i], 1e-3f * static_cast<float>(k))
          << "m=" << m << " index " << i;
    }
    for (std::int64_t j = 0; j < n; ++j) {
      ASSERT_EQ(guarded[static_cast<std::size_t>(j)], -777.0f)
          << "m=" << m << ": kernel wrote before row 0";
      ASSERT_EQ(guarded[static_cast<std::size_t>((m + 1) * n + j)], -777.0f)
          << "m=" << m << ": padded panel row leaked past row m-1";
    }
  }
}

TEST(Matmul, TensorWrapper) {
  Rng rng(9);
  const Tensor a = Tensor::randn(Shape{4, 6}, rng);
  const Tensor b = Tensor::randn(Shape{6, 3}, rng);
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{4, 3}));
  // One spot value against a manual dot product.
  float dot = 0.0f;
  for (std::int64_t kk = 0; kk < 6; ++kk) dot += a.at2(1, kk) * b.at2(kk, 2);
  EXPECT_NEAR(c.at2(1, 2), dot, 1e-4);
}

TEST(Matmul, MismatchThrows) {
  Rng rng(9);
  const Tensor a = Tensor::randn(Shape{4, 6}, rng);
  const Tensor b = Tensor::randn(Shape{5, 3}, rng);
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Matmul, MatmulBtEqualsExplicitTranspose) {
  Rng rng(11);
  const Tensor a = Tensor::randn(Shape{5, 8}, rng);
  const Tensor bt = Tensor::randn(Shape{7, 8}, rng);
  Tensor b{Shape{8, 7}};
  for (std::int64_t i = 0; i < 7; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) b.at2(j, i) = bt.at2(i, j);
  }
  EXPECT_LT(max_abs_diff(matmul_bt(a, bt), matmul(a, b)), 1e-4f);
}

}  // namespace
}  // namespace lcrs
