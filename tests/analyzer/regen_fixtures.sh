#!/usr/bin/env bash
# Regenerates fixtures/*.ast.json from the fixture .cpp sources with a
# real clang. The committed JSON dumps are hand-modeled on the clang
# AST schema so the suite runs on gcc-only machines; use this script to
# cross-check them against a live clang when one is available, then
# diff the analyzer's findings rather than the raw JSON (real dumps
# carry builtins and stdlib subtrees the hand-modeled ones omit).
#
# Each fixture source declares its in-repo identity in a
# `// fixture-path: src/...` comment; the sources are laid out under a
# temp root at those paths so the path-scoped checks (kernel file
# prefixes, catalogue scope) see the names they key on.
set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
FIXTURES="$HERE/fixtures"
OUT="${1:-$HERE/regen-out}"

CLANG=""
for c in clang++ clang++-19 clang++-18 clang++-17 clang++-16 clang++-15; do
    if command -v "$c" >/dev/null 2>&1; then CLANG="$c"; break; fi
done
if [ -z "$CLANG" ]; then
    echo "regen_fixtures: no clang++ on PATH; the committed dumps stay" >&2
    echo "authoritative (this script only cross-checks against clang)" >&2
    exit 0
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
mkdir -p "$OUT"

# Minimal stub header so the fixture sources parse stand-alone.
mkdir -p "$TMP/src/common"
cat > "$TMP/src/common/fixture_stubs.h" <<'EOF'
#pragma once
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>
#include <immintrin.h>
#define LCRS_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define LCRS_CHECK(cond)                                        \
  if (!(cond)) {                                                \
    std::string lcrs_check_msg(#cond);                          \
    ::lcrs::detail::throw_check_failure(lcrs_check_msg.c_str()); \
  }
namespace lcrs {
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex&) {} };
struct ByteReader {
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::size_t remaining() const;
};
namespace detail { [[noreturn]] void throw_check_failure(const char*); }
namespace obs {
struct Counter {};
struct Registry { Counter* counter(const std::string&); };
struct Span { explicit Span(const std::string&); };
namespace names {
inline constexpr const char* kFixtureCount = "fixture.count";
inline constexpr const char* kFixtureSpan = "fixture.span";
}  // namespace names
}  // namespace obs
}  // namespace lcrs
inline lcrs::Mutex g_mu;
EOF

for src in "$FIXTURES"/*.cpp; do
    name="$(basename "$src" .cpp)"
    rel="$(sed -n 's|^// fixture-path: \(src/[^ ]*\).*|\1|p' "$src" | head -1)"
    [ -n "$rel" ] || { echo "no fixture-path in $src" >&2; exit 1; }
    mkdir -p "$TMP/$(dirname "$rel")"
    { echo '#include "src/common/fixture_stubs.h"'; cat "$src"; } \
        > "$TMP/$rel"
    "$CLANG" -x c++ -std=c++17 -fsyntax-only -Wno-everything \
        -Wthread-safety -I"$TMP" -Xclang -ast-dump=json "$TMP/$rel" \
        > "$OUT/$name.live.json" || {
            echo "regen_fixtures: clang rejected $rel" >&2; exit 1; }
    echo "dumped $name -> $OUT/$name.live.json"
done

echo "Now compare semantics, e.g.:"
echo "  python3 scripts/analyzer --ast $OUT/*.live.json \\"
echo "      --no-suppressions --repo-root $TMP"
