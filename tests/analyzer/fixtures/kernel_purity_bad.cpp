// fixture-path: src/common/simd_fixture_bad.cpp (bad_kernel) and
//               src/fixture/intrinsic_leak.cpp (leak_intrinsics)
// kernel-purity negative fixture, both obligations:
//   * bad_kernel lives in a src/common/simd* file and allocates, grows
//     a container, takes a lock, and throws -- four purity findings;
//   * leak_intrinsics lives OUTSIDE the confined files and uses a
//     vendor vector type plus a raw intrinsic -- two confinement
//     findings. (One TU, two files: the dump attributes each function
//     to its own header/source, which also exercises the incremental
//     location state.)
void bad_kernel(float* data, std::size_t n) {
  std::vector<float> scratch(n);   // line 5: allocating local
  scratch.push_back(0.0f);         // line 6: grows a container
  lcrs::MutexLock lk(g_mu);        // line 7: takes a lock
  if (n == 0) {
    throw 1;                       // line 9: throws directly
  }
}

void leak_intrinsics(const float* a, float* c) {
  __m256 va;                       // line 16: vendor vector type
  va = _mm256_loadu_ps(a);         // line 17: raw intrinsic
}
