// fixture-path: src/fixture/metric_catalogue_ok.cpp
// metric-catalogue positive fixture: both names resolve through
// DeclRefExprs to catalogue constants, no literal in either argument
// subtree.
void register_ok(lcrs::obs::Registry& reg) {
  reg.counter(lcrs::obs::names::kFixtureCount);   // line 5: ok
  lcrs::obs::Span span(lcrs::obs::names::kFixtureSpan);  // line 6: ok
}
