// fixture-path: src/fixture/metric_catalogue_bad.cpp
// metric-catalogue negative fixture: a string literal smuggled through
// an implicit conversion into a Registry::counter registration, and a
// literal naming a Span.
void register_bad(lcrs::obs::Registry& reg) {
  reg.counter("fixture.bad.count");        // line 5: finding (counter)
  lcrs::obs::Span span("fixture.bad.span");  // line 6: finding (Span)
}
