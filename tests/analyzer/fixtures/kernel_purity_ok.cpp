// fixture-path: src/common/simd_fixture_ok.cpp
// kernel-purity positive fixture: pure arithmetic, plus an LCRS_CHECK
// expansion whose nodes are *spelled* in src/common/error.h (macro
// spellingLoc) -- the std::string local and throw_check_failure call
// the macro produces are sanctioned and must not be reported.
void ok_kernel(const float* a, const float* b, float* c) {
  float acc = a[0] + b[0];   // line 5
  LCRS_CHECK(c != nullptr);  // line 6: sanctioned expansion
  c[0] = acc;                // line 7
}
