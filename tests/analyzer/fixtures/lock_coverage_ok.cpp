// fixture-path: src/fixture/lock_coverage_ok.cpp
// lock-coverage positive fixture: every field of the lock-owning class
// is annotated, atomic, or const; Plain owns no mutex, so its bare
// field is out of scope by design.
class GoodCache {
 private:
  lcrs::Mutex mu_;
  std::vector<int> entries_ LCRS_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> hits_{0};
  const std::size_t limit_ = 64;
};

class Plain {
  std::vector<int> items_;  // no mutex in this class: not reported
};
