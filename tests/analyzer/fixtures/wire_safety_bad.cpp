// fixture-path: src/fixture/wire_safety_bad.cpp
// wire-safety negative fixture: four unguarded uses of wire-derived
// lengths -- resize, reserve via a derived local, sized container
// construction, and a loop bound.
void parse_bad(lcrs::ByteReader& r, std::vector<std::uint8_t>& out) {
  const std::uint32_t n = r.read_u32();   // line 5: taints n
  const std::size_t total = n * 4;        // line 6: taint propagates
  out.resize(n);                          // line 7: finding (n)
  out.reserve(total);                     // line 8: finding (total)
  const std::uint64_t m = r.read_u64();   // line 9: taints m
  std::vector<std::uint8_t> payload(m);   // line 10: finding (m)
}

void copy_loop_bad(lcrs::ByteReader& r, std::uint8_t* dst) {
  const std::uint16_t count = r.read_u16();     // line 16: taints count
  for (std::uint16_t i = 0; i < count; ++i) {   // line 17: finding
  }
}
