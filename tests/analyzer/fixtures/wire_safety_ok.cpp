// fixture-path: src/fixture/wire_safety_ok.cpp
// wire-safety positive fixture: the if-guard between the read and both
// uses clears the taint, exactly like the hand-written ParseError
// guards and the `if (!(cond))` that LCRS_CHECK expands to.
void parse_ok(lcrs::ByteReader& r, std::vector<std::uint8_t>& out) {
  const std::uint32_t n = r.read_u32();   // line 5: taints n
  if (n > r.remaining()) {                // line 6: guard clears n
    return;
  }
  out.resize(n);                          // line 9: ok
  std::vector<std::uint8_t> payload(n);   // line 10: ok
}
