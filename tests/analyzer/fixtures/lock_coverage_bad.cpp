// fixture-path: src/fixture/lock_coverage_bad.cpp
// lock-coverage negative fixture. BadCache owns a Mutex but leaves two
// mutable fields unannotated: `entries_` must be reported, and
// `generation_` is suppressed in fixtures/suppressions.txt to exercise
// the suppression machinery. The AST JSON next to this file is the
// authoritative fixture; this source documents what it models.
class BadCache {
 public:
  explicit BadCache(std::size_t limit) : limit_(limit) {}

 private:
  lcrs::Mutex mu_;
  std::vector<int> entries_;                        // finding
  std::uint64_t generation_ = 0;                    // finding, suppressed
  std::uint64_t hits_ LCRS_GUARDED_BY(mu_) = 0;     // ok: annotated
  const std::size_t limit_;                         // ok: const
  std::atomic<bool> ready_{false};                  // ok: atomic
};
