#!/usr/bin/env python3
"""ctest entry for the lcrs-analyzer fixture suite (`analyzer_fixtures`).

Runs the analyzer over the committed clang-schema AST dumps in
fixtures/ -- no clang needed, so this pins the check semantics on
gcc-only machines -- and compares the finding projection
(check, file, line, symbol, suppressed) against expected/findings.json.

Three assertions:
  1. the full run (ok + bad fixtures, fixture suppressions) produces
     exactly the golden findings, exit code 1, and exactly one unused
     suppression entry surfaced as a note;
  2. the ok-only run is clean: zero findings, exit code 0;
  3. --strict-suppressions upgrades the stale entry to a failure.

After an intentional check change, regenerate the golden with
    python3 tests/analyzer/run_fixture_tests.py --update
and review the diff like any other code change.
"""

import json
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
GOLDEN = HERE / "expected" / "findings.json"

sys.path.insert(0, str(HERE.parent.parent / "scripts"))
from analyzer.cli import main as analyzer_main  # noqa: E402

PROJECTION = ("check", "file", "line", "symbol", "suppressed")


def run_analyzer(asts, extra):
    with tempfile.TemporaryDirectory() as td:
        report_path = Path(td) / "report.json"
        rc = analyzer_main([
            "--ast", *[str(p) for p in asts],
            "--json", str(report_path), *extra,
        ])
        return rc, json.loads(report_path.read_text())


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    update = "--update" in sys.argv[1:]
    all_asts = sorted(FIXTURES.glob("*.ast.json"))
    ok_asts = [p for p in all_asts if p.name.endswith("_ok.ast.json")]
    if len(all_asts) < 8 or not ok_asts:
        fail(f"fixture set incomplete: {[p.name for p in all_asts]}")

    # 1. Full run against the golden projection.
    rc, report = run_analyzer(
        all_asts, ["--suppressions", str(FIXTURES / "suppressions.txt")])
    got = [{k: f[k] for k in PROJECTION} for f in report["findings"]]
    if update:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(got, indent=2) + "\n")
        print(f"updated {GOLDEN} with {len(got)} findings")
        return
    want = json.loads(GOLDEN.read_text())
    if got != want:
        def keyed(rows):
            return {(r["check"], r["file"], r["line"], r["symbol"]): r
                    for r in rows}
        gk, wk = keyed(got), keyed(want)
        for k in sorted(wk.keys() - gk.keys()):
            print(f"  missing: {wk[k]}")
        for k in sorted(gk.keys() - wk.keys()):
            print(f"  unexpected: {gk[k]}")
        for k in sorted(gk.keys() & wk.keys()):
            if gk[k] != wk[k]:
                print(f"  changed: {wk[k]} -> {gk[k]}")
        fail("finding projection diverged from expected/findings.json "
             "(rerun with --update after an intentional check change)")
    if rc != 1:
        fail(f"full run exit code {rc}, want 1 (unsuppressed findings)")
    if report["summary"]["tu_errors"] != 0:
        fail(f"TU errors in fixture run: {report['errors']}")
    if len(report["unused_suppressions"]) != 1:
        fail("want exactly 1 unused suppression note, got "
             f"{report['unused_suppressions']}")

    # 2. ok-only fixtures are clean.
    rc, report = run_analyzer(ok_asts, ["--no-suppressions"])
    if rc != 0 or report["findings"]:
        fail(f"ok fixtures not clean: rc={rc} "
             f"findings={report['findings']}")

    # 3. The stale entry fails the run under --strict-suppressions.
    rc, _ = run_analyzer(
        ok_asts, ["--suppressions", str(FIXTURES / "suppressions.txt"),
                  "--strict-suppressions"])
    if rc != 1:
        fail(f"--strict-suppressions exit code {rc}, want 1")

    print(f"analyzer_fixtures: {len(all_asts)} TU fixtures, "
          f"{len(want)} golden findings, all assertions passed")


if __name__ == "__main__":
    main()
