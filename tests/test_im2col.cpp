// im2col / col2im correctness: lowered GEMM convolution must match a
// direct sliding-window reference, and col2im must be the exact adjoint.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"

namespace lcrs {
namespace {

// (in_c, in_h, in_w, kernel, stride, pad)
using ConvCase =
    std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t,
               std::int64_t, std::int64_t>;

class Im2ColCases : public ::testing::TestWithParam<ConvCase> {};

/// Direct convolution of one image with one filter bank (reference).
std::vector<float> direct_conv(const std::vector<float>& image,
                               const std::vector<float>& weight,
                               std::int64_t out_c, const ConvGeom& g) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::vector<float> out(static_cast<std::size_t>(out_c * oh * ow), 0.0f);
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        float acc = 0.0f;
        for (std::int64_t c = 0; c < g.in_c; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
            const std::int64_t iy = y * g.stride + ky - g.pad;
            if (iy < 0 || iy >= g.in_h) continue;
            for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
              const std::int64_t ix = x * g.stride + kx - g.pad;
              if (ix < 0 || ix >= g.in_w) continue;
              acc += image[(c * g.in_h + iy) * g.in_w + ix] *
                     weight[((oc * g.in_c + c) * g.kernel + ky) * g.kernel +
                            kx];
            }
          }
        }
        out[(oc * oh + y) * ow + x] = acc;
      }
    }
  }
  return out;
}

TEST_P(Im2ColCases, LoweredConvMatchesDirect) {
  const auto [in_c, in_h, in_w, kernel, stride, pad] = GetParam();
  const ConvGeom g{in_c, in_h, in_w, kernel, stride, pad};
  g.validate();
  const std::int64_t out_c = 5;
  Rng rng(in_c * 100 + kernel * 10 + stride);

  std::vector<float> image(static_cast<std::size_t>(in_c * in_h * in_w));
  for (auto& v : image) v = static_cast<float>(rng.normal());
  std::vector<float> weight(
      static_cast<std::size_t>(out_c * g.patch_size()));
  for (auto& v : weight) v = static_cast<float>(rng.normal());

  const std::int64_t pixels = g.out_h() * g.out_w();
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size() * pixels));
  im2col(image.data(), g, cols.data());
  std::vector<float> lowered(static_cast<std::size_t>(out_c * pixels), 0.0f);
  gemm_naive(weight.data(), cols.data(), lowered.data(), out_c,
             g.patch_size(), pixels);

  const auto ref = direct_conv(image, weight, out_c, g);
  ASSERT_EQ(lowered.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(lowered[i], ref[i], 1e-3) << "pixel " << i;
  }
}

TEST_P(Im2ColCases, Col2ImIsAdjoint) {
  // Adjoint identity: <im2col(x), y> == <x, col2im(y)> for all x, y.
  const auto [in_c, in_h, in_w, kernel, stride, pad] = GetParam();
  const ConvGeom g{in_c, in_h, in_w, kernel, stride, pad};
  Rng rng(42);

  const std::int64_t image_n = in_c * in_h * in_w;
  const std::int64_t cols_n = g.patch_size() * g.out_h() * g.out_w();
  std::vector<float> x(static_cast<std::size_t>(image_n));
  std::vector<float> y(static_cast<std::size_t>(cols_n));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());

  std::vector<float> ax(static_cast<std::size_t>(cols_n));
  im2col(x.data(), g, ax.data());
  std::vector<float> aty(static_cast<std::size_t>(image_n), 0.0f);
  col2im(y.data(), g, aty.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols_n; ++i) {
    lhs += static_cast<double>(ax[i]) * static_cast<double>(y[i]);
  }
  for (std::int64_t i = 0; i < image_n; ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(aty[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColCases,
    ::testing::Values(ConvCase{1, 8, 8, 3, 1, 1}, ConvCase{3, 9, 7, 3, 1, 0},
                      ConvCase{2, 12, 12, 5, 1, 2},
                      ConvCase{4, 16, 16, 3, 2, 1},
                      ConvCase{1, 28, 28, 5, 1, 2},
                      ConvCase{3, 32, 32, 3, 1, 1},
                      ConvCase{8, 10, 10, 1, 1, 0},
                      ConvCase{2, 7, 7, 7, 1, 3}));

TEST(ConvGeom, OutputMath) {
  const ConvGeom g{3, 32, 32, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 16);
  EXPECT_EQ(g.out_w(), 16);
  EXPECT_EQ(g.patch_size(), 27);
}

TEST(ConvGeom, InvalidThrows) {
  EXPECT_THROW((ConvGeom{0, 8, 8, 3, 1, 1}).validate(), Error);
  EXPECT_THROW((ConvGeom{1, 2, 2, 5, 1, 0}).validate(), Error);
  EXPECT_THROW((ConvGeom{1, 8, 8, 3, 0, 0}).validate(), Error);
}

TEST(Im2Col, ZeroPaddingWritesZeros) {
  const ConvGeom g{1, 2, 2, 3, 1, 1};
  std::vector<float> image{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> cols(static_cast<std::size_t>(9 * g.out_h() * g.out_w()));
  im2col(image.data(), g, cols.data());
  // Top-left output pixel, top-left kernel tap looks at (-1, -1) -> 0.
  EXPECT_EQ(cols[0], 0.0f);
}

}  // namespace
}  // namespace lcrs
