// Model zoo tests: every architecture builds and runs at every dataset
// geometry, the conv1/rest split matches the monolithic build, accounting
// is consistent, and full-width model sizes land in the paper's ballpark.
#include <gtest/gtest.h>

#include "models/accounting.h"
#include "models/zoo.h"
#include "tensor/tensor_ops.h"

namespace lcrs::models {
namespace {

struct ZooCase {
  Arch arch;
  std::int64_t channels, hw, classes;
};

class ZooBuilds : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooBuilds, ForwardShapesAreCorrect) {
  const ZooCase z = GetParam();
  Rng rng(17);
  const ModelConfig cfg{z.arch, z.channels, z.hw, z.hw, z.classes, 0.25};
  MainBranch mb = build_main_branch(cfg, rng);

  const Tensor x = Tensor::randn(Shape{2, z.channels, z.hw, z.hw}, rng);
  const Tensor shared = mb.conv1->forward(x, false);
  EXPECT_EQ(shared.shape(), mb.conv1_output_shape(2));
  const Tensor logits = mb.rest->forward(shared, false);
  EXPECT_EQ(logits.shape(), (Shape{2, z.classes}));
}

TEST_P(ZooBuilds, BinaryBranchProducesLogits) {
  const ZooCase z = GetParam();
  Rng rng(18);
  const ModelConfig cfg{z.arch, z.channels, z.hw, z.hw, z.classes, 0.25};
  MainBranch mb = build_main_branch(cfg, rng);
  auto branch = build_binary_branch(default_branch(z.arch), mb.out_c,
                                    mb.out_h, mb.out_w, z.classes, rng);
  const Tensor shared =
      Tensor::randn(mb.conv1_output_shape(3), rng);
  EXPECT_EQ(branch->forward(shared, false).shape(), (Shape{3, z.classes}));
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitecturesAndGeometries, ZooBuilds,
    ::testing::Values(ZooCase{Arch::kLeNet, 1, 28, 10},
                      ZooCase{Arch::kLeNet, 3, 32, 100},
                      ZooCase{Arch::kAlexNet, 1, 28, 10},
                      ZooCase{Arch::kAlexNet, 3, 32, 10},
                      ZooCase{Arch::kResNet18, 3, 32, 10},
                      ZooCase{Arch::kResNet18, 1, 28, 100},
                      ZooCase{Arch::kVgg16, 3, 32, 10},
                      ZooCase{Arch::kVgg16, 3, 32, 100},
                      // 28x28 input: VGG16 must skip pools once the map
                      // reaches 1x1 (regression for the Table I crash).
                      ZooCase{Arch::kVgg16, 1, 28, 10}));

TEST(Zoo, ArchNamesRoundTrip) {
  for (const Arch a : {Arch::kLeNet, Arch::kAlexNet, Arch::kResNet18,
                       Arch::kVgg16}) {
    EXPECT_EQ(arch_by_name(arch_name(a)), a);
  }
  EXPECT_THROW(arch_by_name("GoogLeNet"), InvalidArgument);
}

TEST(Zoo, InvalidConfigThrows) {
  ModelConfig cfg;
  cfg.num_classes = 1;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = ModelConfig{};
  cfg.width = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(Zoo, MonolithicMatchesSplitBuild) {
  Rng rng1(21), rng2(21);
  const ModelConfig cfg{Arch::kLeNet, 1, 28, 28, 10, 0.5};
  MainBranch split = build_main_branch(cfg, rng1);
  auto mono = build_monolithic(cfg, rng2);

  const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng1);
  const Tensor via_split =
      split.rest->forward(split.conv1->forward(x, false), false);
  const Tensor via_mono = mono->forward(x, false);
  EXPECT_LT(max_abs_diff(via_split, via_mono), 1e-5f);
  EXPECT_EQ(mono->size(), split.conv1->size() + split.rest->size());
}

TEST(Zoo, FullWidthSizesLandNearPaperTable1) {
  // Paper Table I (CIFAR10 column): LeNet ~1.7 MB, AlexNet ~91 MB,
  // ResNet18 ~44 MB, VGG16 ~59 MB. Allow generous bands -- we match the
  // architecture family, not the authors' exact head widths.
  Rng rng(22);
  auto size_mb = [&](Arch arch) {
    const ModelConfig cfg{arch, 3, 32, 32, 10, 1.0};
    MainBranch mb = build_main_branch(cfg, rng);
    const double bytes = static_cast<double>(
        mb.conv1->param_bytes() + mb.rest->param_bytes());
    return bytes / (1024.0 * 1024.0);
  };
  EXPECT_NEAR(size_mb(Arch::kLeNet), 1.7, 1.2);
  EXPECT_NEAR(size_mb(Arch::kAlexNet), 91.0, 35.0);
  EXPECT_NEAR(size_mb(Arch::kResNet18), 43.7, 12.0);
  EXPECT_NEAR(size_mb(Arch::kVgg16), 57.6, 18.0);
}

TEST(Zoo, BinaryBranchIsMuchSmallerThanMainBranch) {
  Rng rng(23);
  for (const Arch arch : {Arch::kAlexNet, Arch::kResNet18, Arch::kVgg16}) {
    const ModelConfig cfg{arch, 3, 32, 32, 10, 1.0};
    MainBranch mb = build_main_branch(cfg, rng);
    auto branch = build_binary_branch(default_branch(arch), mb.out_c,
                                      mb.out_h, mb.out_w, 10, rng);
    const std::int64_t main_bytes =
        mb.conv1->param_bytes() + mb.rest->param_bytes();
    const std::int64_t browser_bytes = browser_payload_bytes(*branch);
    // Paper: 16x-30x smaller.
    EXPECT_GT(main_bytes, browser_bytes * 10)
        << arch_name(arch) << " branch not small enough";
  }
}

TEST(Zoo, BranchConfigSweepsChangeStructure) {
  Rng rng(24);
  BinaryBranchConfig bc;
  bc.n_binary_conv = 2;
  bc.n_binary_fc = 2;
  auto b1 = build_binary_branch(bc, 16, 16, 16, 10, rng);
  bc.n_binary_conv = 0;
  bc.n_binary_fc = 1;
  auto b2 = build_binary_branch(bc, 16, 16, 16, 10, rng);
  EXPECT_GT(b1->size(), b2->size());
  bc.n_binary_conv = 0;
  bc.n_binary_fc = 0;
  EXPECT_THROW(build_binary_branch(bc, 16, 16, 16, 10, rng), Error);
}

TEST(Accounting, ProfileCoversEveryLayer) {
  Rng rng(25);
  const ModelConfig cfg{Arch::kLeNet, 1, 28, 28, 10, 0.5};
  auto mono = build_monolithic(cfg, rng);
  const auto profiles = profile_layers(*mono, Shape{1, 28, 28});
  EXPECT_EQ(profiles.size(), mono->size());
  const ModelProfile mp = summarize(profiles);
  EXPECT_EQ(mp.total_flops, mono->flops_per_sample());
  EXPECT_EQ(mp.total_param_bytes, mono->param_bytes());
  // The final layer must output the 10 class logits.
  EXPECT_EQ(profiles.back().output_elems, 10);
}

TEST(Accounting, BinaryLayersAreFlagged) {
  Rng rng(26);
  auto branch =
      build_binary_branch(default_branch(Arch::kLeNet), 8, 14, 14, 10, rng);
  const auto profiles = profile_layers(*branch, Shape{8, 14, 14});
  int binary_count = 0;
  for (const auto& p : profiles) {
    if (p.is_binary) {
      ++binary_count;
      EXPECT_GT(p.binary_bytes, 0);
      EXPECT_LT(p.binary_bytes, p.param_bytes);
    }
  }
  EXPECT_EQ(binary_count, 2);  // one binary conv + one binary fc
}

TEST(Accounting, FormatMb) {
  EXPECT_EQ(format_mb(1024 * 1024), "1.000");
  EXPECT_EQ(format_mb(1536 * 1024), "1.500");
}

}  // namespace
}  // namespace lcrs::models
