// Browser inference library tests: format round-trip and, critically,
// output parity between the standalone engine and the training framework
// (the paper validates its JS/WASM library against PyTorch identically).
#include <gtest/gtest.h>

#include "core/composite.h"
#include "core/joint_trainer.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"
#include "webinfer/engine.h"
#include "webinfer/export.h"

namespace lcrs::webinfer {
namespace {

core::CompositeNetwork make_net(models::Arch arch, std::int64_t channels,
                                std::int64_t hw, std::int64_t classes,
                                Rng& rng) {
  const models::ModelConfig cfg{arch, channels, hw, hw, classes, 0.25};
  return core::CompositeNetwork::build(cfg, rng);
}

TEST(Format, EmptyModelRejected) {
  EXPECT_THROW(Engine(WebModel{}), Error);
}

TEST(Format, SerializeDeserializeRoundTrip) {
  Rng rng(1);
  core::CompositeNetwork net = make_net(models::Arch::kLeNet, 1, 28, 10, rng);
  const WebModel m = export_browser_model(net, 1, 28, 28);
  const auto bytes = serialize(m);
  const WebModel back = deserialize(bytes);
  EXPECT_EQ(back.in_c, 1);
  EXPECT_EQ(back.in_h, 28);
  EXPECT_EQ(back.num_classes, 10);
  EXPECT_EQ(back.shared_op_count, m.shared_op_count);
  EXPECT_EQ(back.ops.size(), m.ops.size());

  // Loaded model computes identically to the in-memory one.
  const Engine a{m}, b{back};
  const Tensor x = Tensor::randn(Shape{2, 1, 28, 28}, rng);
  EXPECT_EQ(max_abs_diff(a.forward(x), b.forward(x)), 0.0f);
}

TEST(Format, CorruptBytesThrow) {
  Rng rng(2);
  core::CompositeNetwork net = make_net(models::Arch::kLeNet, 1, 28, 10, rng);
  auto bytes = serialize(export_browser_model(net, 1, 28, 28));
  bytes[0] ^= 0xFF;
  EXPECT_THROW(deserialize(bytes), ParseError);

  auto truncated = serialize(export_browser_model(net, 1, 28, 28));
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(deserialize(truncated), ParseError);
}

struct ParityCase {
  models::Arch arch;
  std::int64_t channels, hw, classes;
};

class EngineParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(EngineParity, MatchesFrameworkInference) {
  const ParityCase p = GetParam();
  Rng rng(p.channels * 100 + p.hw);
  core::CompositeNetwork net =
      make_net(p.arch, p.channels, p.hw, p.classes, rng);

  // Exercise batchnorm running stats so folding is non-trivial.
  for (int i = 0; i < 3; ++i) {
    net.forward(Tensor::randn(Shape{8, p.channels, p.hw, p.hw}, rng), true);
  }

  const Engine engine{export_browser_model(net, p.channels, p.hw, p.hw)};
  const Tensor x = Tensor::randn(Shape{4, p.channels, p.hw, p.hw}, rng);

  const core::CompositeOutput ref = net.forward_binary_only(x);
  const Tensor engine_logits = engine.forward(x);
  // Binary layers run through the exact XNOR path; conv/linear/batchnorm
  // introduce only fold-ordering float noise.
  EXPECT_LT(max_abs_diff(ref.binary_logits, engine_logits), 1e-3f);

  // Predicted classes must agree exactly.
  const auto ref_pred = argmax_rows(ref.binary_logits);
  const auto eng_pred = argmax_rows(engine_logits);
  EXPECT_EQ(ref_pred, eng_pred);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, EngineParity,
    ::testing::Values(ParityCase{models::Arch::kLeNet, 1, 28, 10},
                      ParityCase{models::Arch::kAlexNet, 3, 32, 10},
                      ParityCase{models::Arch::kResNet18, 3, 32, 10},
                      ParityCase{models::Arch::kVgg16, 3, 32, 100}));

TEST(Engine, SharedPlusBranchEqualsFullForward) {
  Rng rng(3);
  core::CompositeNetwork net =
      make_net(models::Arch::kAlexNet, 3, 32, 10, rng);
  const Engine engine{export_browser_model(net, 3, 32, 32)};
  const Tensor x = Tensor::randn(Shape{2, 3, 32, 32}, rng);

  const Tensor shared = engine.forward_shared(x);
  const Tensor via_split = engine.forward_branch(shared);
  EXPECT_EQ(max_abs_diff(via_split, engine.forward(x)), 0.0f);

  // The shared tensor matches the framework's conv1 output.
  const core::CompositeOutput ref = net.forward_binary_only(x);
  EXPECT_LT(max_abs_diff(shared, ref.shared), 1e-4f);
}

TEST(Engine, ParityHoldsAfterTraining) {
  // The full paper flow: joint-train, export, verify parity.
  Rng rng(4);
  core::CompositeNetwork net = make_net(models::Arch::kLeNet, 1, 28, 10, rng);
  const data::TrainTest tt =
      data::make_synthetic_pair(data::mnist_like(), 128, 64, rng);
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 32;
  cfg.verbose = false;
  core::JointTrainer trainer(net, cfg);
  trainer.train(tt.train, tt.test, rng);

  const Engine engine{export_browser_model(net, 1, 28, 28)};
  const Tensor x = tt.test.images.slice_outer(0, 8);
  const core::CompositeOutput ref = net.forward_binary_only(x);
  EXPECT_LT(max_abs_diff(ref.binary_logits, engine.forward(x)), 1e-3f);
}

TEST(Engine, ModelBytesAreMuchSmallerThanFloat) {
  Rng rng(5);
  core::CompositeNetwork net =
      make_net(models::Arch::kAlexNet, 3, 32, 10, rng);
  const Engine engine{export_browser_model(net, 3, 32, 32)};
  std::int64_t float_branch_bytes = 0;
  for (nn::Param* p : net.binary_params()) {
    float_branch_bytes += p->numel() * 4;
  }
  // Engine blob = float conv1 + packed branch; it must be far below the
  // float branch alone (the binary weights dominate the branch).
  EXPECT_LT(engine.model_bytes(), float_branch_bytes);
}

TEST(Engine, RejectsWrongGeometry) {
  Rng rng(6);
  core::CompositeNetwork net = make_net(models::Arch::kLeNet, 1, 28, 10, rng);
  const Engine engine{export_browser_model(net, 1, 28, 28)};
  EXPECT_THROW(engine.forward(Tensor{Shape{1, 3, 28, 28}}), Error);
  EXPECT_THROW(engine.forward(Tensor{Shape{1, 1, 32, 32}}), Error);
}

TEST(Engine, PredictProbabilitiesSumToOne) {
  Rng rng(7);
  core::CompositeNetwork net = make_net(models::Arch::kLeNet, 1, 28, 10, rng);
  const Engine engine{export_browser_model(net, 1, 28, 28)};
  const Tensor p =
      engine.predict_probabilities(Tensor::randn(Shape{1, 1, 28, 28}, rng));
  double sum = 0.0;
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    sum += static_cast<double>(p[i]);
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

}  // namespace
}  // namespace lcrs::webinfer
