// Baseline approach tests: cost arithmetic of Mobile-only / Edge-only,
// partition choices of Neurosurgeon / Edgent, the LCRS evaluator, and the
// Table II ordering properties the paper reports.
#include <gtest/gtest.h>

#include "baselines/edge_only.h"
#include "baselines/edgent.h"
#include "baselines/lcrs_approach.h"
#include "baselines/mobile_only.h"
#include "baselines/neurosurgeon.h"
#include "core/composite.h"
#include "models/accounting.h"

namespace lcrs::baselines {
namespace {

ModelUnderTest make_model(models::Arch arch, double width = 1.0) {
  Rng rng(5);
  const models::ModelConfig cfg{arch, 3, 32, 32, 10, width};
  auto mono = models::build_monolithic(cfg, rng);
  ModelUnderTest m;
  m.name = models::arch_name(arch);
  m.layers = models::profile_layers(*mono, Shape{3, 32, 32});
  m.input_elems = 3 * 32 * 32;
  return m;
}

LcrsModel make_lcrs_model(models::Arch arch, double exit_fraction) {
  Rng rng(6);
  const models::ModelConfig cfg{arch, 3, 32, 32, 10, 1.0};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  LcrsModel m;
  m.name = models::arch_name(arch);
  m.shared = models::profile_layers(net.shared_stage(), Shape{3, 32, 32});
  const Shape shared_shape{net.shared_out_c(), net.shared_out_h(),
                           net.shared_out_w()};
  m.branch = models::profile_layers(net.binary_branch(), shared_shape);
  m.rest = models::profile_layers(net.main_rest(), shared_shape);
  m.input_elems = 3 * 32 * 32;
  m.shared_out_elems = shared_shape.numel();
  m.exit_fraction = exit_fraction;
  return m;
}

TEST(MobileOnly, CostDecomposes) {
  const auto model = make_model(models::Arch::kLeNet);
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;
  const ApproachCost c = evaluate_mobile_only(model, cost, scenario);
  EXPECT_NEAR(c.total_ms, c.comm_ms + c.compute_ms, 1e-9);
  EXPECT_EQ(c.browser_model_bytes, model.total_model_bytes());
  // Comm is only the amortized model download.
  EXPECT_NEAR(c.comm_ms,
              cost.network().download_ms(c.browser_model_bytes) /
                  static_cast<double>(scenario.session_samples),
              1e-9);
}

TEST(EdgeOnly, PaysFrameUploadEverySample) {
  const auto model = make_model(models::Arch::kVgg16);
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;
  const ApproachCost c = evaluate_edge_only(model, cost, scenario);
  EXPECT_EQ(c.browser_model_bytes, 0);
  EXPECT_GT(c.comm_ms,
            cost.network().upload_ms(scenario.camera_frame_bytes) - 1.0);
}

TEST(Neurosurgeon, PartitionBeatsEndpointsUnderNativeProfile) {
  const auto model = make_model(models::Arch::kAlexNet);
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;
  const sim::DeviceModel native{sim::mobile_native()};
  const NeurosurgeonDecision d =
      neurosurgeon_partition(model, cost, scenario, native);
  // The decision must be at least as good as either all-device or
  // all-edge execution under its own objective.
  EXPECT_LE(d.cut, model.layers.size());
  const double all_device =
      cost.compute_ms(model.layers, 0, model.layers.size(), native);
  const double all_edge =
      cost.network().upload_ms(scenario.camera_frame_bytes) +
      cost.edge_compute_ms(model.layers, 0, model.layers.size()) +
      cost.network().download_ms(scenario.result_bytes);
  EXPECT_LE(d.predicted_native_ms, all_device + 1e-9);
  EXPECT_LE(d.predicted_native_ms, all_edge + 1e-9);
}

TEST(Neurosurgeon, WebExecutionPaysModelLoad) {
  const auto model = make_model(models::Arch::kAlexNet);
  const sim::CostModel cost = sim::CostModel::paper_default();
  const ApproachCost c = evaluate_neurosurgeon(model, cost, sim::Scenario{});
  EXPECT_GT(c.browser_model_bytes, 0);
  EXPECT_GT(c.total_ms, 0.0);
  EXPECT_NEAR(c.total_ms, c.comm_ms + c.compute_ms, 1e-9);
}

TEST(Edgent, RespectsDepthConstraint) {
  const auto model = make_model(models::Arch::kVgg16);
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::DeviceModel native{sim::mobile_native()};
  EdgentConfig config;
  config.min_depth_fraction = 0.8;
  const EdgentDecision d =
      edgent_search(model, cost, sim::Scenario{}, native, config);
  EXPECT_GE(d.exit, static_cast<std::size_t>(
                        0.8 * static_cast<double>(model.layers.size())));
  EXPECT_LE(d.cut, d.exit);
}

TEST(Edgent, EvaluationIncludesBranchOverhead) {
  const auto model = make_model(models::Arch::kLeNet);
  const sim::CostModel cost = sim::CostModel::paper_default();
  EdgentConfig config;
  const ApproachCost edgent = evaluate_edgent(model, cost, sim::Scenario{},
                                              config);
  const ApproachCost neuro =
      evaluate_neurosurgeon(model, cost, sim::Scenario{});
  // Edgent ships the extra exit-branch weights.
  EXPECT_GT(edgent.browser_model_bytes, neuro.browser_model_bytes);
}

TEST(Lcrs, BrowserModelIsPackedAndSmall) {
  const LcrsModel m = make_lcrs_model(models::Arch::kAlexNet, 0.8);
  std::int64_t float_branch = 0;
  for (const auto& l : m.branch) float_branch += l.param_bytes;
  std::int64_t shared_bytes = 0;
  for (const auto& l : m.shared) shared_bytes += l.param_bytes;
  EXPECT_LT(m.browser_model_bytes(), shared_bytes + float_branch);
}

TEST(Lcrs, HigherExitFractionIsFaster) {
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;
  LcrsModel m = make_lcrs_model(models::Arch::kResNet18, 0.9);
  const double fast = evaluate_lcrs(m, cost, scenario).total_ms;
  m.exit_fraction = 0.1;
  const double slow = evaluate_lcrs(m, cost, scenario).total_ms;
  EXPECT_LT(fast, slow);
}

TEST(Lcrs, PathCostsBracketAverage) {
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;
  const LcrsModel m = make_lcrs_model(models::Arch::kResNet18, 0.7);
  const ApproachCost avg = evaluate_lcrs(m, cost, scenario);
  const LcrsPathCosts paths = lcrs_path_costs(m, cost, scenario);
  EXPECT_LT(paths.exit_binary_ms, paths.exit_main_ms);
  EXPECT_GE(avg.total_ms, paths.exit_binary_ms - 1e-6);
  EXPECT_LE(avg.total_ms, paths.exit_main_ms + 1e-6);
}

TEST(Lcrs, InvalidExitFractionThrows) {
  LcrsModel m = make_lcrs_model(models::Arch::kLeNet, 1.5);
  EXPECT_THROW(
      evaluate_lcrs(m, sim::CostModel::paper_default(), sim::Scenario{}),
      Error);
}

TEST(TableII, OrderingHoldsForDeepNetworks) {
  // The paper's headline: for AlexNet/ResNet18/VGG16, LCRS beats
  // Neurosurgeon, Edgent and Mobile-only by large factors.
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;
  for (const auto arch :
       {models::Arch::kAlexNet, models::Arch::kResNet18,
        models::Arch::kVgg16}) {
    const auto model = make_model(arch);
    const LcrsModel lm = make_lcrs_model(arch, 0.75);
    const double lcrs = evaluate_lcrs(lm, cost, scenario).total_ms;
    const double mobile = evaluate_mobile_only(model, cost, scenario).total_ms;
    const double neuro = evaluate_neurosurgeon(model, cost, scenario).total_ms;
    const double edgent = evaluate_edgent(model, cost, scenario).total_ms;
    EXPECT_LT(lcrs * 3.0, neuro) << models::arch_name(arch);
    EXPECT_LT(lcrs * 3.0, edgent) << models::arch_name(arch);
    EXPECT_LT(lcrs * 10.0, mobile) << models::arch_name(arch);
    EXPECT_LT(neuro, mobile) << models::arch_name(arch);
  }
}

TEST(TableIII, LcrsCommBeatsBaselinesOnDeepNetworks) {
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;
  // AlexNet / ResNet18: LCRS has the lowest communication cost, as in the
  // paper's Table III. (On VGG16 a latency-OPTIMAL Neurosurgeon cut lands
  // after pool2 with a 1 MB slice and 32 KB uploads and undercuts LCRS's
  // conv1-map uploads on pure comm; the paper pinned Neurosurgeon to its
  // literature partition points instead -- see EXPERIMENTS.md.)
  for (const auto arch : {models::Arch::kAlexNet, models::Arch::kResNet18}) {
    const auto model = make_model(arch);
    const LcrsModel lm = make_lcrs_model(arch, 0.78);
    const double lcrs = evaluate_lcrs(lm, cost, scenario).comm_ms;
    EXPECT_LT(lcrs, evaluate_mobile_only(model, cost, scenario).comm_ms)
        << models::arch_name(arch);
    EXPECT_LT(lcrs, evaluate_neurosurgeon(model, cost, scenario).comm_ms)
        << models::arch_name(arch);
  }
  // VGG16: LCRS comm still far below mobile-only.
  const auto vgg = make_model(models::Arch::kVgg16);
  const LcrsModel lvgg = make_lcrs_model(models::Arch::kVgg16, 0.76);
  EXPECT_LT(evaluate_lcrs(lvgg, cost, scenario).comm_ms,
            evaluate_mobile_only(vgg, cost, scenario).comm_ms);
}

}  // namespace
}  // namespace lcrs::baselines
