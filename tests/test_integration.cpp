// Cross-module integration tests: the full paper pipeline end-to-end --
// train -> screen tau -> export blob -> save/load -> serve over TCP ->
// classify -- plus consistency between the simulated and socket runtimes.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/bytes.h"
#include "core/inference.h"
#include "core/joint_trainer.h"
#include "data/synthetic.h"
#include "edge/client.h"
#include "edge/local_runtime.h"
#include "edge/server.h"
#include "nn/model_io.h"
#include "tensor/tensor_ops.h"
#include "webinfer/export.h"

namespace lcrs {
namespace {

struct Pipeline {
  std::unique_ptr<core::CompositeNetwork> net;
  data::TrainTest data;
  core::TrainResult result;
};

/// One shared trained pipeline for the whole suite (training is the
/// expensive part; the assertions are independent).
Pipeline& pipeline() {
  static Pipeline* p = [] {
    auto* pipe = new Pipeline();
    Rng rng(31337);
    pipe->data = data::make_synthetic_pair(data::mnist_like(), 640, 160, rng);
    const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
    pipe->net = std::make_unique<core::CompositeNetwork>(
        core::CompositeNetwork::build(cfg, rng));
    core::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 32;
    tc.verbose = false;
    core::JointTrainer trainer(*pipe->net, tc);
    pipe->result = trainer.train(pipe->data.train, pipe->data.test, rng);
    return pipe;
  }();
  return *p;
}

TEST(Pipeline, TrainingReachesUsableAccuracy) {
  const Pipeline& p = pipeline();
  EXPECT_GT(p.result.main_accuracy, 0.6);
  EXPECT_GT(p.result.binary_accuracy, 0.5);
}

TEST(Pipeline, BlobSurvivesDiskRoundTrip) {
  Pipeline& p = pipeline();
  const auto blob = webinfer::serialize(
      webinfer::export_browser_model(*p.net, 1, 28, 28));
  const std::string path = ::testing::TempDir() + "/lcrs_pipeline_blob.bin";
  write_file(path, blob);
  const webinfer::Engine engine =
      webinfer::Engine::from_bytes(read_file(path));
  std::remove(path.c_str());

  const Tensor x = p.data.test.images.slice_outer(0, 4);
  const core::CompositeOutput ref = p.net->forward_binary_only(x);
  EXPECT_EQ(argmax_rows(ref.binary_logits), argmax_rows(engine.forward(x)));
}

TEST(Pipeline, FrameworkWeightsSurviveDiskRoundTrip) {
  Pipeline& p = pipeline();
  const std::string path = ::testing::TempDir() + "/lcrs_pipeline_params.bin";

  // Save the binary branch, reload into a freshly built identical
  // composite, and check the branch outputs match exactly.
  nn::save_params_file(p.net->binary_branch(), path);
  Rng rng(31337);  // same seed -> same architecture
  (void)data::make_synthetic_pair(data::mnist_like(), 640, 160, rng);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork fresh = core::CompositeNetwork::build(cfg, rng);
  nn::load_params_file(fresh.binary_branch(), path);
  std::remove(path.c_str());

  const Tensor x = p.data.test.images.slice_outer(0, 2);
  const Tensor shared = p.net->shared_stage().forward(x, false);
  EXPECT_EQ(max_abs_diff(p.net->binary_branch().forward(shared, false),
                         fresh.binary_branch().forward(shared, false)),
            0.0f);
}

TEST(Pipeline, SocketAndSimulatedRuntimesAgreeOnDecisions) {
  Pipeline& p = pipeline();
  const core::ExitPolicy policy{p.result.exit_stats.tau};

  edge::EdgeServer server(0, [&](const Tensor& shared) {
    const Tensor logits = p.net->forward_main_from_shared(shared);
    edge::CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  });
  edge::BrowserClient client(
      webinfer::Engine(webinfer::export_browser_model(*p.net, 1, 28, 28)),
      policy, server.port());
  edge::LocalRuntime sim_runtime(*p.net, policy,
                                 sim::CostModel::paper_default(),
                                 Shape{1, 28, 28});

  Rng rng(5);
  int label_agreements = 0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    const Tensor sample = p.data.test.image(i);
    const edge::ClientResult via_socket = client.classify(sample);
    const edge::SimStep via_sim = sim_runtime.classify(sample, rng);
    EXPECT_EQ(via_socket.exit_point, via_sim.exit_point) << "sample " << i;
    if (via_socket.label == via_sim.label) ++label_agreements;
  }
  EXPECT_GE(label_agreements, n - 1);  // engine float noise may flip a tie
}

TEST(Pipeline, ExitFractionMatchesScreeningPrediction) {
  Pipeline& p = pipeline();
  const core::ExitPolicy policy{p.result.exit_stats.tau};
  std::int64_t exits = 0;
  const std::int64_t n = p.data.test.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const core::InferenceResult r =
        core::collaborative_infer(*p.net, policy, p.data.test.image(i));
    if (r.exit_point == core::ExitPoint::kBinaryBranch) ++exits;
  }
  const double measured =
      static_cast<double>(exits) / static_cast<double>(n);
  // Screening ran on this same test set, so the fractions must agree.
  EXPECT_NEAR(measured, p.result.exit_stats.exit_fraction, 1e-9);
}

TEST(Pipeline, CollaborationBeatsBinaryOnlyAccuracy) {
  Pipeline& p = pipeline();
  const core::ExitPolicy policy{p.result.exit_stats.tau};
  std::int64_t collab_correct = 0, binary_correct = 0;
  const std::int64_t n = p.data.test.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor sample = p.data.test.image(i);
    const std::int64_t truth = p.data.test.labels[static_cast<std::size_t>(i)];
    const core::InferenceResult collab =
        core::collaborative_infer(*p.net, policy, sample);
    if (collab.predicted == truth) ++collab_correct;
    const core::CompositeOutput bin = p.net->forward_binary_only(sample);
    if (argmax_rows(bin.binary_logits)[0] == truth) ++binary_correct;
  }
  // The whole point of LCRS: the edge fallback recovers accuracy the
  // binary branch alone loses.
  EXPECT_GE(collab_correct, binary_correct);
}

}  // namespace
}  // namespace lcrs
