// Deterministic load harness for the batched edge serving path.
//
// N concurrent clients flood a real EdgeServer (worker pool + cross-
// connection batching + bounded admission queue) and the suite checks
// the three contracts load must not bend:
//
//   1. Exactly one reply per request, demultiplexed to the right socket
//      (trace ids echo; answers match each request's own input).
//   2. Bit-for-bit numerics: every probability vector served out of a
//      batch equals the single-request main-branch forward exactly.
//   3. Counter reconciliation: issued == served + lost, busy rejections
//      agree between client and server, and per-client exit accounting
//      (binary + main + fallback == classified) holds under faults.
//
// Everything is seeded (lcrs::Rng for inputs, FaultSpec seed for the
// fault schedule), so a failure replays.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "core/inference.h"
#include "edge/client.h"
#include "edge/server.h"
#include "tensor/tensor_ops.h"
#include "webinfer/export.h"

namespace lcrs::edge {
namespace {

core::CompositeNetwork make_net(Rng& rng) {
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  return core::CompositeNetwork::build(cfg, rng);
}

/// One client's scripted workload: inputs, expected bit-exact answers,
/// and the counters it observed while replaying it.
struct ClientScript {
  std::vector<Tensor> shareds;
  std::vector<Tensor> expected;  // softmax rows from the per-sample path
  std::vector<std::int64_t> expected_labels;
};

ClientScript make_script(core::CompositeNetwork& net, Rng& rng,
                         int requests) {
  ClientScript s;
  for (int i = 0; i < requests; ++i) {
    const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
    s.shareds.push_back(net.shared_stage().forward(x, false));
    const Tensor probs =
        softmax_rows(net.forward_main_from_shared(s.shareds.back()));
    s.expected_labels.push_back(argmax(probs));
    s.expected.push_back(probs);
  }
  return s;
}

TEST(EdgeLoad, ConcurrentClientsBitExactAndReconciled) {
  Rng rng(7001);
  core::CompositeNetwork net = make_net(rng);

  ServerOptions opts;
  opts.num_workers = 3;
  opts.max_batch = 8;
  opts.max_wait_us = 200.0;  // linger briefly so cross-connection batches form
  opts.queue_capacity = 64;
  EdgeServer server(0, main_branch_batch_completion(net), opts);

  constexpr int kClients = 8;
  constexpr int kRequestsEach = 6;
  std::vector<ClientScript> scripts;
  for (int c = 0; c < kClients; ++c) {
    Rng crng(9000 + static_cast<std::uint64_t>(c));
    scripts.push_back(make_script(net, crng, kRequestsEach));
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> wrong_trace{0};
  std::atomic<int> busy_seen{0};
  std::atomic<int> served_ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const ClientScript& script = scripts[static_cast<std::size_t>(c)];
      Socket conn = connect_local(server.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        // A unique id per request: the echo in the reply proves the
        // batcher demultiplexed to the right request, not just the
        // right socket.
        const std::uint64_t trace_id =
            0xB000000000000000ull +
            static_cast<std::uint64_t>(c * 1000 + i + 1);
        const Frame request{
            MsgType::kCompleteRequest,
            make_complete_request(script.shareds[static_cast<std::size_t>(i)]),
            trace_id};
        for (int attempt = 0; attempt < 200; ++attempt) {
          conn.send_frame(request);
          auto reply = conn.recv_frame(Deadline::after_ms(30000.0));
          if (!reply.has_value()) return;  // server gone: abort client
          if (reply->type == MsgType::kBusy) {
            ++busy_seen;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                parse_busy_reply(reply->payload)));
            continue;  // retry the same request on the same socket
          }
          if (reply->trace_id != trace_id) ++wrong_trace;
          const CompleteResponse resp =
              parse_complete_response(reply->payload);
          const std::size_t idx = static_cast<std::size_t>(i);
          if (resp.label != script.expected_labels[idx] ||
              max_abs_diff(resp.probabilities, script.expected[idx]) !=
                  0.0f) {
            ++mismatches;
          }
          ++served_ok;
          break;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0) << "batched reply differed from the "
                                     "single-request main-branch forward";
  EXPECT_EQ(wrong_trace.load(), 0) << "reply demuxed to the wrong request";
  EXPECT_EQ(served_ok.load(), kClients * kRequestsEach);

  // Counter reconciliation: every issued request was either served or
  // rejected busy, and both sides agree on how many of each.
  for (int i = 0;
       i < 500 && server.requests_served() < kClients * kRequestsEach; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.requests_served(), kClients * kRequestsEach);
  EXPECT_EQ(server.rejected_busy(), busy_seen.load());
  EXPECT_EQ(server.queue_depth(), 0);
  EXPECT_EQ(server.connections_accepted(), kClients);
  EXPECT_GE(server.batches_dispatched(), 1);
  // Batching can only shrink the dispatch count, never lose a request.
  EXPECT_LE(server.batches_dispatched(), server.requests_served());

  // The instruments tell the same story as the accessors.
  const obs::Snapshot snap = server.metrics().snapshot();
  const auto* batches = snap.find_histogram(obs::names::kServerBatchSize);
  ASSERT_NE(batches, nullptr);
  EXPECT_EQ(batches->count, server.batches_dispatched());
  EXPECT_EQ(static_cast<std::int64_t>(batches->sum),
            server.requests_served());
  const auto* waits = snap.find_histogram(obs::names::kServerQueueWaitUs);
  ASSERT_NE(waits, nullptr);
  EXPECT_EQ(waits->count, server.requests_served());
}

TEST(EdgeLoad, TinyQueueForcesBusyButLosesNothing) {
  Rng rng(7002);
  core::CompositeNetwork net = make_net(rng);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 2;
  opts.queue_capacity = 1;  // nearly every burst overflows
  opts.busy_retry_after_ms = 1;
  EdgeServer server(0, main_branch_batch_completion(net), opts);

  constexpr int kClients = 6;
  constexpr int kRequestsEach = 4;
  std::vector<ClientScript> scripts;
  for (int c = 0; c < kClients; ++c) {
    Rng crng(9100 + static_cast<std::uint64_t>(c));
    scripts.push_back(make_script(net, crng, kRequestsEach));
  }
  std::atomic<int> mismatches{0};
  std::atomic<int> busy_seen{0};
  std::atomic<int> served_ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const ClientScript& script = scripts[static_cast<std::size_t>(c)];
      Socket conn = connect_local(server.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        const std::size_t idx = static_cast<std::size_t>(i);
        const Frame request{MsgType::kCompleteRequest,
                            make_complete_request(script.shareds[idx])};
        for (int attempt = 0; attempt < 500; ++attempt) {
          conn.send_frame(request);
          auto reply = conn.recv_frame(Deadline::after_ms(30000.0));
          if (!reply.has_value()) return;
          if (reply->type == MsgType::kBusy) {
            ++busy_seen;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                parse_busy_reply(reply->payload)));
            continue;
          }
          const CompleteResponse resp =
              parse_complete_response(reply->payload);
          if (resp.label != script.expected_labels[idx] ||
              max_abs_diff(resp.probabilities, script.expected[idx]) !=
                  0.0f) {
            ++mismatches;
          }
          ++served_ok;
          break;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(served_ok.load(), kClients * kRequestsEach);
  for (int i = 0;
       i < 500 && server.requests_served() < kClients * kRequestsEach; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.requests_served(), kClients * kRequestsEach);
  EXPECT_EQ(server.rejected_busy(), busy_seen.load());
}

TEST(EdgeLoad, SeededBrowserClientMixUnderFaultsReconciles) {
  // The realistic mix: BrowserClients (entropy exits, retries, fallback)
  // under a seeded fault schedule that drops and tears frames. Faults
  // may cost retries or degrade answers -- but the exit accounting must
  // balance exactly and nobody may hang.
  Rng rng(7003);
  core::CompositeNetwork net = make_net(rng);
  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 4;
  opts.max_wait_us = 100.0;
  EdgeServer server(0, main_branch_batch_completion(net), opts);

  sim::FaultSpec faults;
  faults.drop_prob = 0.05;
  faults.close_prob = 0.03;
  FaultInjector injector(faults, 4242);

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 8;
  struct Outcome {
    std::int64_t classified = 0, binary = 0, main = 0, fallback = 0;
  };
  std::vector<Outcome> outcomes(kClients);
  // Export once, single-threaded: export packs the binary branch in
  // place (prepare_browser_inference), which must not race the client
  // threads. Each client then loads its own Engine from the same bytes.
  const webinfer::WebModel browser_model =
      webinfer::export_browser_model(net, 1, 28, 28);
  {
    FaultInjector::Scope scope(injector);
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Rng crng(9200 + static_cast<std::uint64_t>(c));
        webinfer::Engine engine{browser_model};
        RetryPolicy retry;
        retry.max_attempts = 4;
        retry.initial_backoff_ms = 2.0;
        retry.max_backoff_ms = 10.0;
        // A dropped request frame costs a whole recv deadline before the
        // retry fires; keep the budget tight so the flood stays brisk.
        retry.deadline_ms = 800.0;
        // tau = 0.5: a genuine mix of local exits and edge completions.
        BrowserClient client(std::move(engine), core::ExitPolicy{0.5},
                             server.port(), retry);
        for (int i = 0; i < kRequestsEach; ++i) {
          (void)client.classify(Tensor::randn(Shape{1, 1, 28, 28}, crng));
        }
        const ClientStats s = client.stats();
        Outcome& o = outcomes[static_cast<std::size_t>(c)];
        o.classified = s.classified;
        o.binary = s.exited_binary;
        o.main = s.completed_at_edge;
        o.fallback = s.fallbacks;
      });
    }
    for (auto& t : threads) t.join();
  }

  std::int64_t main_total = 0;
  for (int c = 0; c < kClients; ++c) {
    const Outcome& o = outcomes[static_cast<std::size_t>(c)];
    // Exactly-one-answer accounting: every classify() resolved through
    // exactly one of the three exits.
    EXPECT_EQ(o.classified, kRequestsEach) << "client " << c;
    EXPECT_EQ(o.binary + o.main + o.fallback, o.classified) << "client " << c;
    main_total += o.main;
  }
  // Every edge-completed answer was served by the server; the server may
  // have served MORE (a response lost in transit is served-but-retried).
  EXPECT_GE(server.requests_served(), main_total);
  server.stop();
  EXPECT_EQ(server.queue_depth(), 0);
}

}  // namespace
}  // namespace lcrs::edge
