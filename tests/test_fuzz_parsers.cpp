// Robustness fuzzing of every deserializer: random single-byte mutations
// and truncations of valid artifacts must either parse or throw
// lcrs::Error -- never crash, hang, or corrupt memory. (Run under ASAN
// for the full guarantee; in a plain build this still catches unchecked
// size fields and missing bounds checks.)
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "core/checkpoint.h"
#include "edge/protocol.h"
#include "nn/model_io.h"
#include "tensor/serialize.h"
#include "webinfer/export.h"

namespace lcrs {
namespace {

using Bytes = std::vector<std::uint8_t>;

/// Applies `parse` to mutated/truncated copies of `valid`; counts
/// survivals (parse succeeded despite mutation -- benign payload bits).
template <typename Fn>
void fuzz(const Bytes& valid, Fn parse, int trials, std::uint64_t seed) {
  Rng rng(seed);
  // Parsing the pristine input must succeed.
  ASSERT_NO_THROW(parse(valid));

  for (int t = 0; t < trials; ++t) {
    Bytes mutated = valid;
    const int op = static_cast<int>(rng.randint(0, 2));
    if (op == 0 && !mutated.empty()) {  // flip one byte
      const auto pos = static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::uint8_t>(rng.randint(1, 255));
    } else if (op == 1) {  // truncate
      mutated.resize(static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(mutated.size()) - 1)));
    } else {  // append garbage
      for (int i = 0; i < 8; ++i) {
        mutated.push_back(static_cast<std::uint8_t>(rng.randint(0, 255)));
      }
    }
    try {
      parse(mutated);  // surviving a benign mutation is fine
    } catch (const Error&) {
      // expected rejection path
    } catch (const std::exception& e) {
      FAIL() << "non-lcrs exception escaped: " << e.what();
    }
  }
}

TEST(Fuzz, TensorDeserializer) {
  Rng rng(1);
  ByteWriter w;
  write_tensor(w, Tensor::randn(Shape{3, 4, 5}, rng));
  fuzz(w.bytes(),
       [](const Bytes& b) {
         ByteReader r(b);
         (void)read_tensor(r);
       },
       400, 11);
}

TEST(Fuzz, ProtocolFrames) {
  Rng rng(2);
  const edge::Frame frame{edge::MsgType::kCompleteRequest,
                          edge::make_complete_request(
                              Tensor::randn(Shape{1, 4, 7, 7}, rng))};
  fuzz(edge::encode_frame(frame),
       [](const Bytes& b) {
         const edge::Frame f = edge::decode_frame(b);
         if (f.type == edge::MsgType::kCompleteRequest) {
           (void)edge::parse_complete_request(f.payload);
         }
       },
       400, 22);
}

TEST(Fuzz, ProtocolFramesV2) {
  // The traced (v2) header adds a 64-bit trace-id field; mutations there
  // must be rejected (zero id) or survive benignly -- never crash.
  Rng rng(7);
  const edge::Frame frame{edge::MsgType::kCompleteRequest,
                          edge::make_complete_request(
                              Tensor::randn(Shape{1, 4, 7, 7}, rng)),
                          0x0123456789abcdefull};
  fuzz(edge::encode_frame(frame),
       [](const Bytes& b) {
         const edge::Frame f = edge::decode_frame(b);
         if (f.type == edge::MsgType::kCompleteRequest) {
           (void)edge::parse_complete_request(f.payload);
         }
       },
       400, 66);
}

TEST(Fuzz, BusyReply) {
  // The kBusy admission-control payload: mutations of a busy frame must
  // parse or throw lcrs::Error, never crash.
  const edge::Frame frame{edge::MsgType::kBusy, edge::make_busy_reply(25)};
  fuzz(edge::encode_frame(frame),
       [](const Bytes& b) {
         const edge::Frame f = edge::decode_frame(b);
         if (f.type == edge::MsgType::kBusy) {
           (void)edge::parse_busy_reply(f.payload);
         }
       },
       400, 77);
}

TEST(Fuzz, WebModelBlob) {
  Rng rng(3);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const Bytes blob =
      webinfer::serialize(webinfer::export_browser_model(net, 1, 28, 28));
  fuzz(blob, [](const Bytes& b) { (void)webinfer::deserialize(b); }, 300,
       33);
}

TEST(Fuzz, ModelParams) {
  Rng rng(4);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const Bytes params = nn::save_params(net.binary_branch());
  // Loading mutates the target; use a scratch network per parse.
  const models::BinaryBranchConfig bc = models::default_branch(cfg.arch);
  fuzz(params,
       [&](const Bytes& b) {
         Rng scratch_rng(5);
         core::CompositeNetwork scratch =
             core::CompositeNetwork::build(cfg, bc, scratch_rng);
         nn::load_params(scratch.binary_branch(), b);
       },
       60, 44);
}

// Hand-built corpus of crasher-shaped inputs: each case targets a bug
// class that random mutation rarely hits dead-on (length-field inflation,
// negative dims, allocation-before-validation). Every one must be
// rejected with lcrs::Error -- under ASan these double as memory-safety
// probes of the rejection paths themselves.
TEST(Fuzz, CrasherCorpus) {
  constexpr std::uint32_t kTensorMagic = 0x4c435254;   // "LCRT"
  constexpr std::uint32_t kFrameMagic = 0x4c435246;    // "LCRF"
  constexpr std::uint32_t kFrameMagicV2 = 0x4c435632;  // "LCV2"
  constexpr std::uint32_t kWebModelMagic = 0x4c435257; // "LCRW"

  {  // tensor header claiming an absurd rank
    ByteWriter w;
    w.write_u32(kTensorMagic);
    w.write_u32(0xFFFFFFFFu);
    ByteReader r(w.bytes());
    EXPECT_THROW((void)read_tensor(r), Error);
  }
  {  // tensor with a negative dimension
    ByteWriter w;
    w.write_u32(kTensorMagic);
    w.write_u32(2);
    w.write_i64(4);
    w.write_i64(-5);
    ByteReader r(w.bytes());
    EXPECT_THROW((void)read_tensor(r), Error);
  }
  {  // tensor whose dims pass validation but whose payload is absent --
     // must raise ParseError before attempting the 1 GiB allocation
    ByteWriter w;
    w.write_u32(kTensorMagic);
    w.write_u32(1);
    w.write_i64(1ll << 28);
    ByteReader r(w.bytes());
    EXPECT_THROW((void)read_tensor(r), Error);
  }
  {  // frame with an inflated length field and no payload behind it
    ByteWriter w;
    w.write_u32(kFrameMagic);
    w.write_u8(0);
    w.write_u32(0xFFFFFFFFu);
    EXPECT_THROW((void)edge::decode_frame(w.bytes()), Error);
  }
  {  // frame truncated inside the fixed header
    EXPECT_THROW((void)edge::decode_frame({0x46, 0x52}), Error);
  }
  {  // v2 frame with an inflated length field and no payload behind it
    ByteWriter w;
    w.write_u32(kFrameMagicV2);
    w.write_u8(0);
    w.write_u64(1);  // nonzero trace id, so only the size is bad
    w.write_u32(0xFFFFFFFFu);
    EXPECT_THROW((void)edge::decode_frame(w.bytes()), Error);
  }
  {  // v2 frame truncated inside the widened header
    ByteWriter w;
    w.write_u32(kFrameMagicV2);
    w.write_u8(0);
    w.write_u32(7);  // only 4 of the 8 trace-id bytes present
    EXPECT_THROW((void)edge::decode_frame(w.bytes()), Error);
  }
  {  // v2 frame with a zero trace id (reserved for "untraced" = v1)
    ByteWriter w;
    w.write_u32(kFrameMagicV2);
    w.write_u8(0);
    w.write_u64(0);
    w.write_u32(0);
    EXPECT_THROW((void)edge::decode_frame(w.bytes()), Error);
  }
  {  // v2 frame with an invalid message type
    ByteWriter w;
    w.write_u32(kFrameMagicV2);
    w.write_u8(200);
    w.write_u64(1);
    w.write_u32(0);
    EXPECT_THROW((void)edge::decode_frame(w.bytes()), Error);
  }
  {  // busy reply with a truncated retry-after field
    EXPECT_THROW((void)edge::parse_busy_reply({0x01, 0x02}), Error);
  }
  {  // busy reply with trailing bytes after the retry-after field
    Bytes busy = edge::make_busy_reply(5);
    busy.push_back(0xAA);
    EXPECT_THROW((void)edge::parse_busy_reply(busy), Error);
  }
  {  // frame with a one-past-the-end message type (kBusy + 1)
    ByteWriter w;
    w.write_u32(kFrameMagic);
    w.write_u8(6);
    w.write_u32(0);
    EXPECT_THROW((void)edge::decode_frame(w.bytes()), Error);
  }
  {  // web model blob with a future format version
    ByteWriter w;
    w.write_u32(kWebModelMagic);
    w.write_u32(999);
    EXPECT_THROW((void)webinfer::deserialize(w.bytes()), Error);
  }
  {  // web model blob that ends right after a valid magic + version
    ByteWriter w;
    w.write_u32(kWebModelMagic);
    w.write_u32(1);
    EXPECT_THROW((void)webinfer::deserialize(w.bytes()), Error);
  }
}

TEST(Fuzz, Checkpoints) {
  Rng rng(6);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const Bytes ckpt = core::save_composite(
      net, core::Checkpoint{cfg, models::default_branch(cfg.arch), 0.05});
  fuzz(ckpt, [](const Bytes& b) { (void)core::load_composite(b); }, 60, 55);
}

}  // namespace
}  // namespace lcrs
