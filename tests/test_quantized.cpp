// Tests of the int8 quantization module (the compression alternative the
// binary branch is compared against).
#include <gtest/gtest.h>

#include "binary/quantized.h"
#include "models/accounting.h"
#include "models/zoo.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"

namespace lcrs::binary {
namespace {

TEST(Quantize, RoundTripErrorIsBoundedByHalfStep) {
  Rng rng(1);
  const Tensor w = Tensor::randn(Shape{8, 64}, rng);
  const QuantizedFilters qf = quantize_filters(w);
  // Max error per row <= scale / 2.
  for (std::int64_t r = 0; r < 8; ++r) {
    const Tensor row = w.slice_outer(r, r + 1);
    const QuantizedFilters qrow = quantize_filters(row);
    EXPECT_LE(quantization_error(row, qrow), qrow.scale[0] * 0.5f + 1e-7f);
  }
  EXPECT_LE(quantization_error(w, qf), max_value(qf.scale) * 0.5f + 1e-7f);
}

TEST(Quantize, ExtremesMapTo127) {
  Tensor w{Shape{1, 4}};
  w[0] = 2.0f; w[1] = -2.0f; w[2] = 1.0f; w[3] = 0.0f;
  const QuantizedFilters qf = quantize_filters(w);
  EXPECT_EQ(qf.q[0], 127);
  EXPECT_EQ(qf.q[1], -127);
  EXPECT_EQ(qf.q[3], 0);
  EXPECT_FLOAT_EQ(qf.scale[0], 2.0f / 127.0f);
}

TEST(Quantize, ZeroFilterIsStable) {
  const Tensor w{Shape{2, 8}};  // all zeros
  const QuantizedFilters qf = quantize_filters(w);
  EXPECT_EQ(quantization_error(w, qf), 0.0f);
}

TEST(Quantize, PayloadIsRoughly4xSmallerThanFloat) {
  Rng rng(2);
  const Tensor w = Tensor::randn(Shape{64, 576}, rng);
  const QuantizedFilters qf = quantize_filters(w);
  const std::int64_t float_bytes = w.numel() * 4;
  EXPECT_GT(float_bytes, qf.payload_bytes() * 3);
  EXPECT_LT(float_bytes, qf.payload_bytes() * 5);
}

TEST(Int8Conv, CloseToFloatConv) {
  Rng rng(3);
  nn::Conv2d conv(3, 8, 3, 1, 1, 12, 12, rng);
  const Tensor x = Tensor::randn(Shape{2, 3, 12, 12}, rng);
  const Tensor ref = conv.forward(x, false);

  const QuantizedFilters qf = quantize_filters(conv.weight().value);
  const Tensor q_out =
      int8_conv2d(x, conv.geometry(), qf, &conv.bias_param().value);
  EXPECT_EQ(q_out.shape(), ref.shape());
  // Int8 weights lose < 1% of the activation scale.
  EXPECT_LT(max_abs_diff(ref, q_out), 0.05f);
  // And predictions (argmax over channels at each pixel) mostly agree --
  // spot-check the first pixel of each image.
  for (std::int64_t b = 0; b < 2; ++b) {
    std::int64_t ref_best = 0, q_best = 0;
    for (std::int64_t c = 1; c < 8; ++c) {
      if (ref.at4(b, c, 0, 0) > ref.at4(b, ref_best, 0, 0)) ref_best = c;
      if (q_out.at4(b, c, 0, 0) > q_out.at4(b, q_best, 0, 0)) q_best = c;
    }
    EXPECT_EQ(ref_best, q_best);
  }
}

TEST(Int8Linear, CloseToFloatLinear) {
  Rng rng(4);
  nn::Linear lin(32, 10, rng);
  const Tensor x = Tensor::randn(Shape{4, 32}, rng);
  const Tensor ref = lin.forward(x, false);
  const QuantizedFilters qf = quantize_filters(lin.weight().value);
  const Tensor q_out = int8_linear(x, qf, &lin.bias_param().value);
  EXPECT_LT(max_abs_diff(ref, q_out), 0.05f);
  EXPECT_EQ(argmax_rows(ref), argmax_rows(q_out));
}

TEST(Int8Payload, RoughlyQuartersAFullPrecisionModel) {
  Rng rng(5);
  const models::ModelConfig cfg{models::Arch::kAlexNet, 3, 32, 32, 10, 0.5};
  auto mono = models::build_monolithic(cfg, rng);
  const std::int64_t float_bytes = mono->param_bytes();
  const std::int64_t int8_bytes = int8_payload_bytes(*mono);
  EXPECT_GT(float_bytes, int8_bytes * 3);
  EXPECT_LT(float_bytes, int8_bytes * 5);
}

TEST(Int8Payload, BinaryPayloadStillWinsByFar) {
  // The ablation's headline ordering: 1-bit branch << int8 model << float
  // model. Compare the AlexNet main branch against its binary branch.
  Rng rng(6);
  const models::ModelConfig cfg{models::Arch::kAlexNet, 3, 32, 32, 10, 1.0};
  auto mono = models::build_monolithic(cfg, rng);
  models::MainBranch mb = models::build_main_branch(cfg, rng);
  auto branch = models::build_binary_branch(
      models::default_branch(models::Arch::kAlexNet), mb.out_c, mb.out_h,
      mb.out_w, 10, rng);
  const std::int64_t binary_bytes = models::browser_payload_bytes(*branch);
  const std::int64_t int8_bytes = int8_payload_bytes(*mono);
  EXPECT_GT(int8_bytes, binary_bytes * 10);
}

}  // namespace
}  // namespace lcrs::binary
