// Property / differential sweeps behind the batched serving path.
//
// The edge batcher's correctness claim is "batch=k is bit-for-bit
// batch=1, k times". This suite earns that claim from the bottom up
// with seeded randomized sweeps:
//
//   * xnor kernels: bit-packed forward_fast vs the reference float-sign
//     forward across random geometries -- exactly equal, not almost.
//   * row independence: forward(batch)[i] == forward(row_i) for binary
//     layers, the full main branch, and complete_main_batch.
//   * stack_outer/slice_outer are exact inverses, so the server's
//     stack -> forward -> slice round trip cannot perturb a value.
//
// Seeds are fixed; any failure replays exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "binary/binary_conv2d.h"
#include "binary/binary_linear.h"
#include "common/simd.h"
#include "common/simd_math.h"
#include "core/inference.h"
#include "nn/conv2d.h"
#include "tensor/tensor_ops.h"

namespace lcrs {
namespace {

TEST(PropertyXnor, Conv2dFastPathMatchesReferenceAcrossRandomShapes) {
  Rng rng(11001);
  for (int trial = 0; trial < 12; ++trial) {
    const std::int64_t in_c = rng.randint(1, 4);
    const std::int64_t out_c = rng.randint(1, 6);
    const std::int64_t kernel = rng.randint(1, 4);
    const std::int64_t stride = rng.randint(1, 2);
    const std::int64_t pad = rng.randint(0, 2);
    // Keep the padded input at least one kernel wide so the geometry is
    // valid for every sampled (kernel, stride, pad).
    const std::int64_t h = kernel + rng.randint(1, 8);
    const std::int64_t w = kernel + rng.randint(1, 8);
    const std::int64_t n = rng.randint(1, 3);

    binary::BinaryConv2d conv(in_c, out_c, kernel, stride, pad, h, w, rng);
    const Tensor x = Tensor::randn(Shape{n, in_c, h, w}, rng);
    const Tensor reference = conv.forward(x, /*train=*/false);
    conv.prepare_inference();
    const Tensor fast = conv.forward_fast(x);
    ASSERT_TRUE(reference.same_shape(fast)) << "trial " << trial;
    EXPECT_EQ(max_abs_diff(reference, fast), 0.0f)
        << "trial " << trial << ": xnor conv diverged from reference at "
        << "geometry in_c=" << in_c << " out_c=" << out_c << " k=" << kernel
        << " s=" << stride << " p=" << pad << " h=" << h << " w=" << w
        << " n=" << n;
  }
}

TEST(PropertyXnor, LinearFastPathMatchesReferenceAcrossRandomShapes) {
  Rng rng(11002);
  for (int trial = 0; trial < 12; ++trial) {
    const std::int64_t in = rng.randint(1, 96);
    const std::int64_t out = rng.randint(1, 32);
    const std::int64_t n = rng.randint(1, 5);
    const bool bias = rng.bernoulli(0.5);
    binary::BinaryLinear fc(in, out, rng, bias);
    const Tensor x = Tensor::randn(Shape{n, in}, rng);
    const Tensor reference = fc.forward(x, /*train=*/false);
    fc.prepare_inference();
    const Tensor fast = fc.forward_fast(x);
    ASSERT_TRUE(reference.same_shape(fast)) << "trial " << trial;
    EXPECT_EQ(max_abs_diff(reference, fast), 0.0f)
        << "trial " << trial << ": in=" << in << " out=" << out
        << " n=" << n << " bias=" << bias;
  }
}

TEST(PropertyBatch, BinaryLayersAreRowIndependent) {
  // forward(batch)[i] must be bit-identical to forward(row_i): the
  // per-sample scaling factors (K map, beta) may not leak across rows.
  Rng rng(11003);
  for (int trial = 0; trial < 6; ++trial) {
    const std::int64_t k = rng.randint(2, 5);
    binary::BinaryConv2d conv(2, 4, 3, 1, 1, 10, 10, rng);
    const Tensor batch = Tensor::randn(Shape{k, 2, 10, 10}, rng);
    const Tensor full = conv.forward(batch, false);
    for (std::int64_t i = 0; i < k; ++i) {
      const Tensor row = conv.forward(batch.slice_outer(i, i + 1), false);
      EXPECT_EQ(max_abs_diff(full.slice_outer(i, i + 1), row), 0.0f)
          << "conv trial " << trial << " row " << i;
    }

    binary::BinaryLinear fc(24, 7, rng);
    const Tensor fbatch = Tensor::randn(Shape{k, 24}, rng);
    const Tensor ffull = fc.forward(fbatch, false);
    for (std::int64_t i = 0; i < k; ++i) {
      const Tensor row = fc.forward(fbatch.slice_outer(i, i + 1), false);
      EXPECT_EQ(max_abs_diff(ffull.slice_outer(i, i + 1), row), 0.0f)
          << "fc trial " << trial << " row " << i;
    }
  }
}

TEST(PropertyBatch, StackOuterIsInverseOfSliceOuter) {
  Rng rng(11004);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t n = rng.randint(1, 6);
    const std::int64_t c = rng.randint(1, 4);
    const std::int64_t h = rng.randint(1, 7);
    const Tensor whole = Tensor::randn(Shape{n, c, h, h}, rng);
    std::vector<Tensor> rows;
    for (std::int64_t i = 0; i < n; ++i) {
      rows.push_back(whole.slice_outer(i, i + 1));
    }
    const Tensor back = stack_outer(rows);
    ASSERT_TRUE(back.same_shape(whole)) << "trial " << trial;
    EXPECT_EQ(max_abs_diff(back, whole), 0.0f) << "trial " << trial;
  }
  // Mixed outer sizes concatenate; mismatched inner dims are rejected.
  Tensor a = Tensor::ones(Shape{2, 3});
  Tensor b = Tensor::ones(Shape{1, 3});
  EXPECT_EQ(stack_outer({a, b}).dim(0), 3);
  EXPECT_THROW(stack_outer({}), Error);
  EXPECT_THROW(stack_outer({a, Tensor::ones(Shape{1, 4})}), Error);
  EXPECT_THROW(stack_outer({a, Tensor::ones(Shape{1, 3, 1})}), Error);
}

core::CompositeNetwork make_net(Rng& rng) {
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  return core::CompositeNetwork::build(cfg, rng);
}

TEST(PropertyBatch, MainBranchBatchForwardIsRowIndependent) {
  // The exact property the edge batcher stands on: one [k,...] forward
  // of the main rest equals k separate [1,...] forwards, bitwise.
  Rng rng(11005);
  core::CompositeNetwork net = make_net(rng);
  for (const std::int64_t k : {2, 3, 5}) {
    const Tensor inputs = Tensor::randn(Shape{k, 1, 28, 28}, rng);
    const Tensor shared_batch = net.shared_stage().forward(inputs, false);
    const Tensor full = net.forward_main_from_shared(shared_batch);
    for (std::int64_t i = 0; i < k; ++i) {
      const Tensor row =
          net.forward_main_from_shared(shared_batch.slice_outer(i, i + 1));
      EXPECT_EQ(max_abs_diff(full.slice_outer(i, i + 1), row), 0.0f)
          << "k=" << k << " row " << i;
    }
  }
}

TEST(PropertyBatch, CompleteMainBatchMatchesPerSamplePath) {
  Rng rng(11006);
  core::CompositeNetwork net = make_net(rng);
  for (const std::int64_t k : {1, 2, 4}) {
    const Tensor inputs = Tensor::randn(Shape{k, 1, 28, 28}, rng);
    // Stack per-sample conv1 outputs exactly the way the server does.
    std::vector<Tensor> parts;
    for (std::int64_t i = 0; i < k; ++i) {
      parts.push_back(
          net.shared_stage().forward(inputs.slice_outer(i, i + 1), false));
    }
    const core::MainBatchCompletion batched =
        core::complete_main_batch(net, stack_outer(parts));
    ASSERT_EQ(batched.labels.size(), static_cast<std::size_t>(k));
    ASSERT_EQ(batched.probabilities.dim(0), k);
    for (std::int64_t i = 0; i < k; ++i) {
      const Tensor solo = softmax_rows(net.forward_main_from_shared(
          parts[static_cast<std::size_t>(i)]));
      EXPECT_EQ(batched.labels[static_cast<std::size_t>(i)], argmax(solo))
          << "k=" << k << " row " << i;
      EXPECT_EQ(
          max_abs_diff(batched.probabilities.slice_outer(i, i + 1), solo),
          0.0f)
          << "k=" << k << " row " << i;
    }
  }
  EXPECT_THROW(core::complete_main_batch(net, Tensor::ones(Shape{1, 2})),
               Error);
}

// --- Prepared (panel-packed) Conv2d serving path ---

TEST(PropertyBatch, PreparedConvBatchRowsMatchSingleSampleExactly) {
  // The prepared path computes each output as one ascending-k chain per
  // (weight row, patch), independent of how many samples share the call
  // -- so batch row i must be BIT-identical to serving sample i alone.
  Rng rng(11007);
  for (int trial = 0; trial < 6; ++trial) {
    const std::int64_t in_c = rng.randint(1, 4);
    const std::int64_t out_c = rng.randint(1, 7);
    const std::int64_t kernel = rng.randint(1, 4);
    const std::int64_t stride = rng.randint(1, 2);
    const std::int64_t pad = rng.randint(0, 2);
    const std::int64_t h = kernel + rng.randint(1, 8);
    const std::int64_t w = kernel + rng.randint(1, 8);
    const std::int64_t n = rng.randint(2, 6);
    nn::Conv2d conv(in_c, out_c, kernel, stride, pad, h, w, rng);
    conv.prepare_inference();
    ASSERT_TRUE(conv.inference_prepared());
    const Tensor x = Tensor::randn(Shape{n, in_c, h, w}, rng);
    const Tensor batched = conv.forward(x, /*train=*/false);
    for (std::int64_t i = 0; i < n; ++i) {
      const Tensor solo = conv.forward(x.slice_outer(i, i + 1), false);
      EXPECT_EQ(max_abs_diff(batched.slice_outer(i, i + 1), solo), 0.0f)
          << "trial " << trial << " row " << i;
    }
  }
}

TEST(PropertyBatch, PreparedConvMatchesUnpreparedWithinTolerance) {
  // Prepared and unprepared forwards run different kernels (panel GEMM
  // vs blocked GEMM); both are single ascending-k chains, so they agree
  // to the documented k-scaled cross-kernel tolerance.
  Rng rng(11008);
  nn::Conv2d conv(3, 8, 5, 1, 2, 12, 12, rng);
  const Tensor x = Tensor::randn(Shape{4, 3, 12, 12}, rng);
  const Tensor unprepared = conv.forward(x, /*train=*/false);
  conv.prepare_inference();
  const Tensor prepared = conv.forward(x, /*train=*/false);
  ASSERT_TRUE(unprepared.same_shape(prepared));
  const float tol =
      1e-3f * static_cast<float>(conv.geometry().patch_size());
  EXPECT_LT(max_abs_diff(unprepared, prepared), tol);
}

TEST(PropertyBatch, PreparedConvForcedScalarMatchesNativeWithinTolerance) {
  Rng rng(11009);
  nn::Conv2d conv(2, 6, 3, 1, 1, 10, 10, rng);
  conv.prepare_inference();
  const Tensor x = Tensor::randn(Shape{3, 2, 10, 10}, rng);
  const Tensor native = conv.forward(x, /*train=*/false);
  Tensor scalar;
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    scalar = conv.forward(x, /*train=*/false);
  }
  const float tol =
      1e-3f * static_cast<float>(conv.geometry().patch_size());
  EXPECT_LT(max_abs_diff(native, scalar), tol);
}

TEST(PropertyBatch, BackwardInvalidatesPreparedConvPanels) {
  // An optimizer step after backward moves the weights; a stale panel
  // pack would silently serve the old network. backward() must drop it.
  Rng rng(11010);
  nn::Conv2d conv(1, 4, 3, 1, 1, 8, 8, rng);
  conv.prepare_inference();
  ASSERT_TRUE(conv.inference_prepared());
  const Tensor x = Tensor::randn(Shape{2, 1, 8, 8}, rng);
  const Tensor y = conv.forward(x, /*train=*/true);
  (void)conv.backward(Tensor::ones(y.shape()));
  EXPECT_FALSE(conv.inference_prepared());
}

TEST(PropertyBatch, PreparedMainBranchBatchForwardIsRowIndependent) {
  // Same row-independence claim as the unprepared test above, but with
  // the serving preparation the edge server actually applies (packed
  // Linear transposes + packed Conv2d panels + batched im2col).
  Rng rng(11011);
  core::CompositeNetwork net = make_net(rng);
  net.prepare_edge_inference();
  for (const std::int64_t k : {2, 5}) {
    const Tensor inputs = Tensor::randn(Shape{k, 1, 28, 28}, rng);
    const Tensor shared_batch = net.shared_stage().forward(inputs, false);
    const Tensor full = net.forward_main_from_shared(shared_batch);
    for (std::int64_t i = 0; i < k; ++i) {
      const Tensor row =
          net.forward_main_from_shared(shared_batch.slice_outer(i, i + 1));
      EXPECT_EQ(max_abs_diff(full.slice_outer(i, i + 1), row), 0.0f)
          << "k=" << k << " row " << i;
    }
  }
}

// --- Dispatched tanh kernel (common/simd_math.h) ---

std::vector<simd::Level> testable_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  for (const simd::Level l :
       {simd::Level::kSse, simd::Level::kAvx2, simd::Level::kNeon}) {
    if (simd::level_available(l)) levels.push_back(l);
  }
  return levels;
}

TEST(PropertyTanh, KernelMatchesStdTanhWithinDocumentedBound) {
  // The vector levels use a rational approximation; DESIGN.md documents
  // a 1e-6 absolute bound against std::tanh. Scalar must be exact.
  std::vector<float> xs;
  for (float v = -10.0f; v <= 10.0f; v += 0.0137f) xs.push_back(v);
  for (const float s : {0.0f, -0.0f, 1e-5f, -1e-5f, 3.9e-4f, 4.1e-4f,
                        7.905f, -7.905f, 7.906f, -7.906f, 50.0f, -50.0f,
                        std::numeric_limits<float>::infinity(),
                        -std::numeric_limits<float>::infinity()}) {
    xs.push_back(s);
  }
  for (const simd::Level level : testable_levels()) {
    simd::ScopedForcedLevel force(level);
    std::vector<float> got = xs;
    simd::tanh_inplace(got.data(), static_cast<std::int64_t>(got.size()));
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const float want = std::tanh(xs[i]);
      if (level == simd::Level::kScalar) {
        EXPECT_EQ(got[i], want)
            << "scalar level must be exact std::tanh at x=" << xs[i];
      } else {
        EXPECT_NEAR(got[i], want, 1e-6f)
            << simd::level_name(level) << " at x=" << xs[i];
      }
    }
    // NaN propagates; signed zero is preserved bit-for-bit.
    float nan = std::numeric_limits<float>::quiet_NaN();
    simd::tanh_inplace(&nan, 1);
    EXPECT_TRUE(std::isnan(nan)) << simd::level_name(level);
    float negzero = -0.0f;
    simd::tanh_inplace(&negzero, 1);
    EXPECT_TRUE(std::signbit(negzero)) << simd::level_name(level);
  }
}

TEST(PropertyTanh, KernelIsElementwisePureAcrossRaggedLengths) {
  // The batcher changes tensor lengths, never values: an element must map
  // to the same bits whether it sits in a full vector lane, the padded
  // ragged tail, or a length-1 call. Row independence of the prepared
  // main branch stands on this purity.
  Rng rng(11012);
  const Tensor x = Tensor::randn(Shape{37}, rng);
  Tensor full = x;
  simd::tanh_inplace(full.data(), full.numel());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float one = x[i];
    simd::tanh_inplace(&one, 1);
    EXPECT_EQ(full[i], one) << "index " << i;
  }
  for (const std::int64_t len : {1, 7, 8, 9, 31, 32, 33}) {
    std::vector<float> prefix(x.data(), x.data() + len);
    simd::tanh_inplace(prefix.data(), len);
    for (std::int64_t j = 0; j < len; ++j) {
      EXPECT_EQ(full[j], prefix[static_cast<std::size_t>(j)])
          << "len " << len << " index " << j;
    }
  }
}

}  // namespace
}  // namespace lcrs
