// Property / differential sweeps behind the batched serving path.
//
// The edge batcher's correctness claim is "batch=k is bit-for-bit
// batch=1, k times". This suite earns that claim from the bottom up
// with seeded randomized sweeps:
//
//   * xnor kernels: bit-packed forward_fast vs the reference float-sign
//     forward across random geometries -- exactly equal, not almost.
//   * row independence: forward(batch)[i] == forward(row_i) for binary
//     layers, the full main branch, and complete_main_batch.
//   * stack_outer/slice_outer are exact inverses, so the server's
//     stack -> forward -> slice round trip cannot perturb a value.
//
// Seeds are fixed; any failure replays exactly.
#include <gtest/gtest.h>

#include <vector>

#include "binary/binary_conv2d.h"
#include "binary/binary_linear.h"
#include "core/inference.h"
#include "tensor/tensor_ops.h"

namespace lcrs {
namespace {

TEST(PropertyXnor, Conv2dFastPathMatchesReferenceAcrossRandomShapes) {
  Rng rng(11001);
  for (int trial = 0; trial < 12; ++trial) {
    const std::int64_t in_c = rng.randint(1, 4);
    const std::int64_t out_c = rng.randint(1, 6);
    const std::int64_t kernel = rng.randint(1, 4);
    const std::int64_t stride = rng.randint(1, 2);
    const std::int64_t pad = rng.randint(0, 2);
    // Keep the padded input at least one kernel wide so the geometry is
    // valid for every sampled (kernel, stride, pad).
    const std::int64_t h = kernel + rng.randint(1, 8);
    const std::int64_t w = kernel + rng.randint(1, 8);
    const std::int64_t n = rng.randint(1, 3);

    binary::BinaryConv2d conv(in_c, out_c, kernel, stride, pad, h, w, rng);
    const Tensor x = Tensor::randn(Shape{n, in_c, h, w}, rng);
    const Tensor reference = conv.forward(x, /*train=*/false);
    conv.prepare_inference();
    const Tensor fast = conv.forward_fast(x);
    ASSERT_TRUE(reference.same_shape(fast)) << "trial " << trial;
    EXPECT_EQ(max_abs_diff(reference, fast), 0.0f)
        << "trial " << trial << ": xnor conv diverged from reference at "
        << "geometry in_c=" << in_c << " out_c=" << out_c << " k=" << kernel
        << " s=" << stride << " p=" << pad << " h=" << h << " w=" << w
        << " n=" << n;
  }
}

TEST(PropertyXnor, LinearFastPathMatchesReferenceAcrossRandomShapes) {
  Rng rng(11002);
  for (int trial = 0; trial < 12; ++trial) {
    const std::int64_t in = rng.randint(1, 96);
    const std::int64_t out = rng.randint(1, 32);
    const std::int64_t n = rng.randint(1, 5);
    const bool bias = rng.bernoulli(0.5);
    binary::BinaryLinear fc(in, out, rng, bias);
    const Tensor x = Tensor::randn(Shape{n, in}, rng);
    const Tensor reference = fc.forward(x, /*train=*/false);
    fc.prepare_inference();
    const Tensor fast = fc.forward_fast(x);
    ASSERT_TRUE(reference.same_shape(fast)) << "trial " << trial;
    EXPECT_EQ(max_abs_diff(reference, fast), 0.0f)
        << "trial " << trial << ": in=" << in << " out=" << out
        << " n=" << n << " bias=" << bias;
  }
}

TEST(PropertyBatch, BinaryLayersAreRowIndependent) {
  // forward(batch)[i] must be bit-identical to forward(row_i): the
  // per-sample scaling factors (K map, beta) may not leak across rows.
  Rng rng(11003);
  for (int trial = 0; trial < 6; ++trial) {
    const std::int64_t k = rng.randint(2, 5);
    binary::BinaryConv2d conv(2, 4, 3, 1, 1, 10, 10, rng);
    const Tensor batch = Tensor::randn(Shape{k, 2, 10, 10}, rng);
    const Tensor full = conv.forward(batch, false);
    for (std::int64_t i = 0; i < k; ++i) {
      const Tensor row = conv.forward(batch.slice_outer(i, i + 1), false);
      EXPECT_EQ(max_abs_diff(full.slice_outer(i, i + 1), row), 0.0f)
          << "conv trial " << trial << " row " << i;
    }

    binary::BinaryLinear fc(24, 7, rng);
    const Tensor fbatch = Tensor::randn(Shape{k, 24}, rng);
    const Tensor ffull = fc.forward(fbatch, false);
    for (std::int64_t i = 0; i < k; ++i) {
      const Tensor row = fc.forward(fbatch.slice_outer(i, i + 1), false);
      EXPECT_EQ(max_abs_diff(ffull.slice_outer(i, i + 1), row), 0.0f)
          << "fc trial " << trial << " row " << i;
    }
  }
}

TEST(PropertyBatch, StackOuterIsInverseOfSliceOuter) {
  Rng rng(11004);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t n = rng.randint(1, 6);
    const std::int64_t c = rng.randint(1, 4);
    const std::int64_t h = rng.randint(1, 7);
    const Tensor whole = Tensor::randn(Shape{n, c, h, h}, rng);
    std::vector<Tensor> rows;
    for (std::int64_t i = 0; i < n; ++i) {
      rows.push_back(whole.slice_outer(i, i + 1));
    }
    const Tensor back = stack_outer(rows);
    ASSERT_TRUE(back.same_shape(whole)) << "trial " << trial;
    EXPECT_EQ(max_abs_diff(back, whole), 0.0f) << "trial " << trial;
  }
  // Mixed outer sizes concatenate; mismatched inner dims are rejected.
  Tensor a = Tensor::ones(Shape{2, 3});
  Tensor b = Tensor::ones(Shape{1, 3});
  EXPECT_EQ(stack_outer({a, b}).dim(0), 3);
  EXPECT_THROW(stack_outer({}), Error);
  EXPECT_THROW(stack_outer({a, Tensor::ones(Shape{1, 4})}), Error);
  EXPECT_THROW(stack_outer({a, Tensor::ones(Shape{1, 3, 1})}), Error);
}

core::CompositeNetwork make_net(Rng& rng) {
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  return core::CompositeNetwork::build(cfg, rng);
}

TEST(PropertyBatch, MainBranchBatchForwardIsRowIndependent) {
  // The exact property the edge batcher stands on: one [k,...] forward
  // of the main rest equals k separate [1,...] forwards, bitwise.
  Rng rng(11005);
  core::CompositeNetwork net = make_net(rng);
  for (const std::int64_t k : {2, 3, 5}) {
    const Tensor inputs = Tensor::randn(Shape{k, 1, 28, 28}, rng);
    const Tensor shared_batch = net.shared_stage().forward(inputs, false);
    const Tensor full = net.forward_main_from_shared(shared_batch);
    for (std::int64_t i = 0; i < k; ++i) {
      const Tensor row =
          net.forward_main_from_shared(shared_batch.slice_outer(i, i + 1));
      EXPECT_EQ(max_abs_diff(full.slice_outer(i, i + 1), row), 0.0f)
          << "k=" << k << " row " << i;
    }
  }
}

TEST(PropertyBatch, CompleteMainBatchMatchesPerSamplePath) {
  Rng rng(11006);
  core::CompositeNetwork net = make_net(rng);
  for (const std::int64_t k : {1, 2, 4}) {
    const Tensor inputs = Tensor::randn(Shape{k, 1, 28, 28}, rng);
    // Stack per-sample conv1 outputs exactly the way the server does.
    std::vector<Tensor> parts;
    for (std::int64_t i = 0; i < k; ++i) {
      parts.push_back(
          net.shared_stage().forward(inputs.slice_outer(i, i + 1), false));
    }
    const core::MainBatchCompletion batched =
        core::complete_main_batch(net, stack_outer(parts));
    ASSERT_EQ(batched.labels.size(), static_cast<std::size_t>(k));
    ASSERT_EQ(batched.probabilities.dim(0), k);
    for (std::int64_t i = 0; i < k; ++i) {
      const Tensor solo = softmax_rows(net.forward_main_from_shared(
          parts[static_cast<std::size_t>(i)]));
      EXPECT_EQ(batched.labels[static_cast<std::size_t>(i)], argmax(solo))
          << "k=" << k << " row " << i;
      EXPECT_EQ(
          max_abs_diff(batched.probabilities.slice_outer(i, i + 1), solo),
          0.0f)
          << "k=" << k << " row " << i;
    }
  }
  EXPECT_THROW(core::complete_main_batch(net, Tensor::ones(Shape{1, 2})),
               Error);
}

}  // namespace
}  // namespace lcrs
