// Unit tests for src/common: errors, bytes, rng, parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>

#include "common/bytes.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace lcrs {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    LCRS_CHECK(1 == 2, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(LCRS_CHECK(true));
  EXPECT_NO_THROW(LCRS_CHECK(2 > 1, "never seen"));
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
}

TEST(Bytes, PrimitiveRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_i64(-42);
  w.write_f32(3.5f);
  w.write_f64(-2.25);
  w.write_string("hello lcrs");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_f32(), 3.5f);
  EXPECT_EQ(r.read_f64(), -2.25);
  EXPECT_EQ(r.read_string(), "hello lcrs");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, TruncationThrowsParseError) {
  ByteWriter w;
  w.write_u32(7);
  ByteReader r(w.bytes());
  (void)r.read_u32();
  EXPECT_THROW(r.read_u64(), ParseError);
}

TEST(Bytes, NegativeFloatBitsSurvive) {
  ByteWriter w;
  w.write_f32(-0.0f);
  ByteReader r(w.bytes());
  const float v = r.read_f32();
  EXPECT_EQ(v, 0.0f);
  EXPECT_TRUE(std::signbit(v));
}

TEST(Bytes, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lcrs_bytes_test.bin";
  std::vector<std::uint8_t> data{1, 2, 3, 250, 251};
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
  std::remove(path.c_str());
}

TEST(Bytes, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/really/not/here.bin"), IoError);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.randint(0, 1000000) == b.randint(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(7);
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng fresh(7);
  (void)fresh.engine()();  // parent consumed one draw for the fork
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.randint(0, 1 << 30) == fresh.randint(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, RandintBoundsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.randint(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, RandintEmptyRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.randint(5, 4), Error);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Parallel, CoversEntireRange) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(257, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(10,
                   [](std::int64_t, std::int64_t) {
                     throw InvalidArgument("worker boom");
                   }),
      InvalidArgument);
}

TEST(Parallel, RespectsThreadOverride) {
  set_parallel_thread_count(3);
  EXPECT_EQ(parallel_thread_count(), 3);
  set_parallel_thread_count(0);  // back to auto
  EXPECT_GE(parallel_thread_count(), 1);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  const double t0 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  ASSERT_GT(sink, 0.0);
  EXPECT_GE(sw.seconds(), t0);
}

}  // namespace
}  // namespace lcrs
