// Ops-plane integration tests: a live EdgeServer with the HTTP side
// port, scraped over real sockets. Covers the PR's acceptance criteria:
// under a 16-client burst /metrics stays conformant exposition and
// /tracez holds the slowest request's fully stitched client<->edge span
// timeline; plus /readyz flipping during drain and the OpsServer's
// hardened request handling (431 header floods, 400 garbage).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/obs/flight_recorder.h"
#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/obs/ops_server.h"
#include "edge/client.h"
#include "edge/server.h"
#include "tensor/tensor_ops.h"
#include "webinfer/export.h"

namespace lcrs::edge {
namespace {

core::CompositeNetwork make_net(Rng& rng) {
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  return core::CompositeNetwork::build(cfg, rng);
}

CompletionFn completion_for(core::CompositeNetwork& net) {
  return [&net](const Tensor& shared) {
    const Tensor logits = net.forward_main_from_shared(shared);
    CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  };
}

ServerOptions with_ops() {
  ServerOptions opts;
  opts.ops_port = 0;  // ephemeral side port
  return opts;
}

TEST(OpsHttp, LiveEndpointsServeAndReport) {
  obs::FlightRecorder::global().clear();
  Rng rng(11);
  core::CompositeNetwork net = make_net(rng);
  EdgeServer server(0, completion_for(net), with_ops());
  ASSERT_NE(server.ops_port(), 0);

  EXPECT_EQ(obs::http_get(server.ops_port(), "/healthz").body, "ok\n");
  EXPECT_EQ(obs::http_get(server.ops_port(), "/readyz").status, 200);

  const auto metrics = obs::http_get(server.ops_port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.head.find("text/plain; version=0.0.4"),
            std::string::npos);
  // Process-level gauges registered at startup are visible.
  EXPECT_NE(metrics.body.find("lcrs_process_uptime_seconds"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("lcrs_process_simd_level"), std::string::npos);
  EXPECT_NE(metrics.body.find("lcrs_edge_server_worker_pool_size"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("lcrs_edge_server_ready 1"), std::string::npos);

  const auto json = obs::http_get(server.ops_port(), "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.body.find("process.uptime_seconds"), std::string::npos);

  const auto statusz = obs::http_get(server.ops_port(), "/statusz");
  EXPECT_EQ(statusz.status, 200);
  for (const char* key :
       {"\"uptime_seconds\"", "\"simd_level\"", "\"build\"", "\"port\"",
        "\"ops_port\"", "\"num_workers\"", "\"max_batch\"",
        "\"queue_capacity\"", "\"ready\""}) {
    EXPECT_NE(statusz.body.find(key), std::string::npos) << key;
  }

  EXPECT_EQ(obs::http_get(server.ops_port(), "/tracez").status, 200);
  EXPECT_EQ(obs::http_get(server.ops_port(), "/nope").status, 404);
  server.stop();
}

TEST(OpsHttp, ReadinessFlipsDuringDrain) {
  Rng rng(12);
  core::CompositeNetwork net = make_net(rng);
  EdgeServer server(0, completion_for(net), with_ops());

  EXPECT_EQ(obs::http_get(server.ops_port(), "/readyz").status, 200);
  EXPECT_EQ(obs::http_get(server.ops_port(), "/readyz").body, "ready\n");

  server.set_ready(false);  // drain announced; serving continues
  const auto draining = obs::http_get(server.ops_port(), "/readyz");
  EXPECT_EQ(draining.status, 503);
  EXPECT_EQ(draining.body, "draining\n");
  // The readiness gauge tracks the flip in the exposition too.
  EXPECT_NE(obs::http_get(server.ops_port(), "/metrics")
                .body.find("lcrs_edge_server_ready 0"),
            std::string::npos);
  // Still serving requests while draining -- readiness is advisory.
  Socket conn = connect_local(server.port());
  const Tensor shared =
      net.shared_stage().forward(Tensor::randn(Shape{1, 1, 28, 28}, rng),
                                 false);
  conn.send_frame(Frame{MsgType::kCompleteRequest,
                        make_complete_request(shared)});
  const auto reply = conn.recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kCompleteResponse);

  server.set_ready(true);
  EXPECT_EQ(obs::http_get(server.ops_port(), "/readyz").status, 200);
  server.stop();
}

TEST(OpsHttp, HardenedAgainstGarbageAndFloods) {
  Rng rng(13);
  core::CompositeNetwork net = make_net(rng);
  EdgeServer server(0, completion_for(net), with_ops());

  {  // Raw garbage gets 400, and the server keeps serving afterwards.
    const Socket sock = connect_local(server.ops_port());
    const std::string garbage = "\x16\x03\x01 not http at all\r\n\r\n";
    sock.send_all(garbage.data(), garbage.size(), Deadline::after_ms(1000));
    std::string raw;
    for (;;) {
      char chunk[512];
      const std::size_t n =
          sock.recv_some(chunk, sizeof(chunk), Deadline::after_ms(2000));
      if (n == 0) break;
      raw.append(chunk, n);
    }
    EXPECT_EQ(raw.rfind("HTTP/1.0 400 ", 0), 0u) << raw.substr(0, 40);
  }
  {  // A header flood larger than the head cap gets 431, not OOM.
    const Socket sock = connect_local(server.ops_port());
    std::string flood = "GET /metrics HTTP/1.0\r\n";
    while (flood.size() < 10000) flood += "X-Pad: aaaaaaaaaaaaaaaa\r\n";
    sock.send_all(flood.data(), flood.size(), Deadline::after_ms(1000));
    std::string raw;
    for (;;) {
      char chunk[512];
      const std::size_t n =
          sock.recv_some(chunk, sizeof(chunk), Deadline::after_ms(2000));
      if (n == 0) break;
      raw.append(chunk, n);
    }
    EXPECT_EQ(raw.rfind("HTTP/1.0 431 ", 0), 0u) << raw.substr(0, 40);
  }
  // The ops plane still answers cleanly after the abuse.
  EXPECT_EQ(obs::http_get(server.ops_port(), "/healthz").status, 200);
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const auto* errors = snap.find_counter(obs::names::kOpsHttpErrors);
  ASSERT_NE(errors, nullptr);
  EXPECT_GE(errors->value, 2);
  server.stop();
}

TEST(OpsHttp, BurstOf16ClientsStitchedTracezAndConformantMetrics) {
  // The PR's acceptance scenario: 16 concurrent clients hammer the edge
  // server while scrapers hit /metrics and /tracez mid-burst. Afterwards
  // the flight recorder's slowest trace must carry the fully stitched
  // client<->edge timeline under one trace id.
  obs::FlightRecorder::global().clear();
  Rng rng(50);
  core::CompositeNetwork net = make_net(rng);
  ServerOptions opts = with_ops();
  opts.num_workers = 2;
  opts.max_batch = 8;
  EdgeServer server(0, completion_for(net), opts);

  constexpr int kClients = 16;
  constexpr int kRequestsEach = 4;
  std::atomic<int> failures{0};
  std::atomic<bool> scraping{true};
  std::thread scraper([&] {
    // Mid-burst scrapes: every pass must return parseable 200s.
    while (scraping.load()) {
      const auto m = obs::http_get(server.ops_port(), "/metrics");
      if (m.status != 200 || m.body.find("# TYPE") == std::string::npos) {
        ++failures;
      }
      if (obs::http_get(server.ops_port(), "/tracez").status != 200) {
        ++failures;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Export once on this thread: export_browser_model() populates the
  // network's packed-weight caches, so it must not race across clients.
  const webinfer::WebModel model = webinfer::export_browser_model(net, 1, 28, 28);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng crng(1000 + c);
      webinfer::Engine engine{model};
      // tau = 0 forces the full collaborative path: client conv1 +
      // binary branch + network + edge completion spans per request.
      BrowserClient client(std::move(engine), core::ExitPolicy{0.0},
                           server.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        const ClientResult r =
            client.classify(Tensor::randn(Shape{1, 1, 28, 28}, crng));
        if (r.exit_point != core::ExitPoint::kMainBranch) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  scraping.store(false);
  scraper.join();
  EXPECT_EQ(failures.load(), 0);

  // One more live scrape, then inspect the recorder directly.
  const auto tracez = obs::http_get(server.ops_port(), "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("\"slowest\""), std::string::npos);

  const obs::FlightDump dump = obs::FlightRecorder::global().dump();
  EXPECT_GE(dump.traces_finished, kClients * kRequestsEach);
  ASSERT_FALSE(dump.slowest.empty());

  const obs::FlightTrace* slow = dump.slowest_trace();
  ASSERT_NE(slow, nullptr);
  EXPECT_TRUE(slow->finished);
  std::set<std::string> stages;
  for (const auto& s : slow->spans) {
    EXPECT_EQ(s.trace_id, slow->trace_id);
    stages.insert(s.name);
  }
  // Fully stitched: client-side AND server-side stages under one id.
  EXPECT_TRUE(stages.count(obs::names::kSpanClientConv1));
  EXPECT_TRUE(stages.count(obs::names::kSpanClientBinaryBranch));
  EXPECT_TRUE(stages.count(obs::names::kSpanClientSerialize));
  EXPECT_TRUE(stages.count(obs::names::kSpanClientNetwork));
  EXPECT_TRUE(stages.count(obs::names::kSpanEdgeDeserialize));
  EXPECT_TRUE(stages.count(obs::names::kSpanEdgeComplete));
  EXPECT_TRUE(stages.count(obs::names::kSpanEdgeSerialize));
  // The stitched latency is the span extent, so it can be no smaller
  // than any single stage.
  for (const auto& s : slow->spans) {
    EXPECT_LE(s.duration_us(), slow->latency_us + 1e-6) << s.name;
  }
  // Outcome tags from both ends merged into the retained trace.
  EXPECT_NE(slow->tag.find("edge.served"), std::string::npos);
  EXPECT_NE(slow->tag.find("client.exit_main"), std::string::npos);
  EXPECT_FALSE(slow->error);

  server.stop();
  // stop() restored the prior (disabled) recording state.
  EXPECT_FALSE(obs::flight_recording_enabled());
  obs::FlightRecorder::global().clear();
}

TEST(OpsHttp, ClientErrorsLandInTheErrorRing) {
  // A client pointed at a dead port with fallback enabled must leave an
  // error-tagged trace in the recorder's all-error retention set.
  obs::ScopedFlightRecording on(true);
  obs::FlightRecorder::global().clear();

  Rng rng(14);
  core::CompositeNetwork net = make_net(rng);
  webinfer::Engine engine{webinfer::export_browser_model(net, 1, 28, 28)};
  RetryPolicy retry = RetryPolicy::no_retry();
  retry.deadline_ms = 500.0;
  retry.fallback_to_binary = true;
  // Port 1 is never listening on loopback.
  BrowserClient client(std::move(engine), core::ExitPolicy{0.0}, 1, retry);
  const ClientResult r =
      client.classify(Tensor::randn(Shape{1, 1, 28, 28}, rng));
  EXPECT_EQ(r.exit_point, core::ExitPoint::kBinaryBranchFallback);

  const obs::FlightDump dump = obs::FlightRecorder::global().dump();
  ASSERT_FALSE(dump.errors.empty());
  bool tagged = false;
  for (const auto& e : dump.errors) {
    if (e.trace_id == r.trace_id) {
      EXPECT_TRUE(e.error);
      EXPECT_NE(e.tag.find("client.fallback"), std::string::npos);
      tagged = true;
    }
  }
  EXPECT_TRUE(tagged);
  obs::FlightRecorder::global().clear();
}

TEST(OpsHttp, StandaloneOpsServerStopsCleanly) {
  obs::OpsHooks hooks;
  auto server = std::make_unique<obs::OpsServer>(0, hooks);
  const std::uint16_t port = server->port();
  ASSERT_NE(port, 0);
  EXPECT_EQ(obs::http_get(port, "/healthz").status, 200);
  server->stop();
  server->stop();  // idempotent
  server.reset();
  EXPECT_THROW(obs::http_get(port, "/healthz", 200.0), Error);
}

}  // namespace
}  // namespace lcrs::edge
