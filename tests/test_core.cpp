// LCRS core tests: entropy (Eq. 7), exit policy screening, composite
// network joint forward/backward (Eq. 1), joint training (Algorithm 1),
// and collaborative inference (Algorithm 2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/checkpoint.h"
#include "core/composite.h"
#include "core/entropy.h"
#include "core/exit_policy.h"
#include "core/inference.h"
#include "core/joint_trainer.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace lcrs::core {
namespace {

TEST(Entropy, UniformIsOneConfidentIsZero) {
  std::vector<float> uniform(8, 0.125f);
  EXPECT_NEAR(normalized_entropy(uniform.data(), 8), 1.0, 1e-6);

  std::vector<float> onehot(8, 0.0f);
  onehot[3] = 1.0f;
  EXPECT_NEAR(normalized_entropy(onehot.data(), 8), 0.0, 1e-9);
}

TEST(Entropy, BoundedInUnitIntervalForRandomDistributions) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t c = rng.randint(2, 64);
    std::vector<float> p(static_cast<std::size_t>(c));
    double sum = 0.0;
    for (auto& v : p) {
      v = static_cast<float>(rng.uniform(0.001, 1.0));
      sum += static_cast<double>(v);
    }
    for (auto& v : p) v = static_cast<float>(static_cast<double>(v) / sum);
    const double s = normalized_entropy(p.data(), c);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-9);
  }
}

TEST(Entropy, RowsVariantMatchesScalar) {
  Tensor probs{Shape{2, 4}};
  for (std::int64_t c = 0; c < 4; ++c) probs.at2(0, c) = 0.25f;
  probs.at2(1, 0) = 0.97f;
  for (std::int64_t c = 1; c < 4; ++c) probs.at2(1, c) = 0.01f;
  const Tensor s = normalized_entropy_rows(probs);
  EXPECT_NEAR(s[0], 1.0, 1e-6);
  EXPECT_NEAR(s[1], normalized_entropy(probs.data() + 4, 4), 1e-6);
  EXPECT_LT(s[1], s[0]);
}

TEST(ExitPolicy, ThresholdSemantics) {
  const ExitPolicy p{0.1};
  EXPECT_TRUE(p.should_exit(0.05));
  EXPECT_FALSE(p.should_exit(0.1));   // strict less-than
  EXPECT_FALSE(p.should_exit(0.5));
}

std::vector<ExitSample> synthetic_screening() {
  // 50 confident-and-correct, 30 confident-and-wrong at higher entropy,
  // 20 unconfident.
  std::vector<ExitSample> s;
  for (int i = 0; i < 50; ++i) s.push_back({0.01 + i * 1e-4, true});
  for (int i = 0; i < 30; ++i) s.push_back({0.20 + i * 1e-3, false});
  for (int i = 0; i < 20; ++i) s.push_back({0.80 + i * 1e-3, true});
  return s;
}

TEST(ExitPolicy, EvaluateThresholdCounts) {
  const auto samples = synthetic_screening();
  const ExitStats low = evaluate_threshold(samples, 0.1);
  EXPECT_NEAR(low.exit_fraction, 0.5, 1e-9);
  EXPECT_NEAR(low.exited_accuracy, 1.0, 1e-9);

  const ExitStats mid = evaluate_threshold(samples, 0.5);
  EXPECT_NEAR(mid.exit_fraction, 0.8, 1e-9);
  EXPECT_NEAR(mid.exited_accuracy, 50.0 / 80.0, 1e-9);
}

TEST(ExitPolicy, ExitFractionMonotoneInTau) {
  const auto samples = synthetic_screening();
  double prev = -1.0;
  for (const double tau : default_tau_grid()) {
    const double frac = evaluate_threshold(samples, tau).exit_fraction;
    EXPECT_GE(frac, prev);
    prev = frac;
  }
}

TEST(ExitPolicy, ChooseThresholdRespectsAccuracyConstraint) {
  const auto samples = synthetic_screening();
  const ExitStats chosen =
      choose_threshold(samples, default_tau_grid(), 0.95);
  // Must pick a tau that exits the 50 good samples but not the wrong ones.
  EXPECT_NEAR(chosen.exit_fraction, 0.5, 1e-9);
  EXPECT_GE(chosen.exited_accuracy, 0.95);

  const ExitStats lax = choose_threshold(samples, default_tau_grid(), 0.0);
  EXPECT_GT(lax.exit_fraction, chosen.exit_fraction);
}

core::CompositeNetwork tiny_composite(Rng& rng) {
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  return CompositeNetwork::build(cfg, rng);
}

TEST(Composite, ForwardProducesBothBranchLogits) {
  Rng rng(2);
  CompositeNetwork net = tiny_composite(rng);
  const Tensor x = Tensor::randn(Shape{4, 1, 28, 28}, rng);
  const CompositeOutput out = net.forward(x, false);
  EXPECT_EQ(out.main_logits.shape(), (Shape{4, 10}));
  EXPECT_EQ(out.binary_logits.shape(), (Shape{4, 10}));
  EXPECT_EQ(out.shared.dim(0), 4);
}

TEST(Composite, MainFromSharedMatchesFullForward) {
  Rng rng(3);
  CompositeNetwork net = tiny_composite(rng);
  const Tensor x = Tensor::randn(Shape{2, 1, 28, 28}, rng);
  const CompositeOutput out = net.forward(x, false);
  const Tensor main2 = net.forward_main_from_shared(out.shared);
  EXPECT_LT(max_abs_diff(out.main_logits, main2), 1e-5f);
}

TEST(Composite, JointBackwardTouchesSharedStage) {
  Rng rng(4);
  CompositeNetwork net = tiny_composite(rng);
  const Tensor x = Tensor::randn(Shape{2, 1, 28, 28}, rng);
  net.zero_grad();
  const CompositeOutput out = net.forward(x, true);
  net.backward(Tensor::ones(out.main_logits.shape()),
               Tensor::ones(out.binary_logits.shape()));
  // Shared conv1 must accumulate gradient from BOTH branches (Eq. 1).
  double shared_grad = 0.0;
  for (nn::Param* p : net.shared_stage().params()) {
    shared_grad += l2_norm(p->grad);
  }
  EXPECT_GT(shared_grad, 0.0);
  for (nn::Param* p : net.binary_params()) {
    EXPECT_GT(l2_norm(p->grad) + 1e-12, 0.0);
  }
}

TEST(Composite, ParamPartitionIsDisjointAndComplete) {
  Rng rng(5);
  CompositeNetwork net = tiny_composite(rng);
  const auto all = net.params();
  const auto main = net.main_params();
  const auto binary = net.binary_params();
  EXPECT_EQ(all.size(), main.size() + binary.size());
  for (nn::Param* p : binary) {
    EXPECT_EQ(std::count(main.begin(), main.end(), p), 0);
  }
}

TEST(JointTrainer, LearnsOnSyntheticMnist) {
  Rng rng(6);
  CompositeNetwork net = tiny_composite(rng);
  const data::TrainTest tt =
      data::make_synthetic_pair(data::mnist_like(), 512, 128, rng);

  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 32;
  cfg.verbose = false;
  JointTrainer trainer(net, cfg);
  const TrainResult result = trainer.train(tt.train, tt.test, rng);

  EXPECT_EQ(result.curve.size(), 3u);
  EXPECT_GT(result.main_accuracy, 0.5);
  EXPECT_GT(result.binary_accuracy, 0.4);
  // Loss should decrease over training.
  EXPECT_LT(result.curve.back().train_loss, result.curve.front().train_loss);
  // Exit stats must be a valid probability.
  EXPECT_GE(result.exit_stats.exit_fraction, 0.0);
  EXPECT_LE(result.exit_stats.exit_fraction, 1.0);
}

TEST(Inference, Algorithm2RoutesByEntropy) {
  Rng rng(7);
  CompositeNetwork net = tiny_composite(rng);
  const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);

  // tau = 1.1: everything exits at the binary branch.
  const InferenceResult always_exit =
      collaborative_infer(net, ExitPolicy{1.1}, x);
  EXPECT_EQ(always_exit.exit_point, ExitPoint::kBinaryBranch);

  // tau = 0: nothing exits; the main branch decides.
  const InferenceResult never_exit =
      collaborative_infer(net, ExitPolicy{0.0}, x);
  EXPECT_EQ(never_exit.exit_point, ExitPoint::kMainBranch);

  // The shared tensor matches conv1 output in both cases.
  EXPECT_EQ(always_exit.shared.shape(), never_exit.shared.shape());
  EXPECT_LT(max_abs_diff(always_exit.shared, never_exit.shared), 1e-6f);
}

TEST(Inference, MainPathMatchesDirectMainForward) {
  Rng rng(8);
  CompositeNetwork net = tiny_composite(rng);
  const Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  const InferenceResult r = collaborative_infer(net, ExitPolicy{0.0}, x);
  const CompositeOutput direct = net.forward(x, false);
  const auto direct_pred = argmax_rows(direct.main_logits);
  EXPECT_EQ(r.predicted, direct_pred[0]);
}

TEST(Inference, BatchVariantMatchesSingleCalls) {
  Rng rng(9);
  CompositeNetwork net = tiny_composite(rng);
  const Tensor batch = Tensor::randn(Shape{5, 1, 28, 28}, rng);
  const ExitPolicy policy{0.3};
  const auto results = collaborative_infer_batch(net, policy, batch);
  ASSERT_EQ(results.size(), 5u);
  for (std::int64_t i = 0; i < 5; ++i) {
    const InferenceResult single =
        collaborative_infer(net, policy, batch.slice_outer(i, i + 1));
    EXPECT_EQ(results[static_cast<std::size_t>(i)].predicted,
              single.predicted);
    EXPECT_EQ(results[static_cast<std::size_t>(i)].exit_point,
              single.exit_point);
  }
}

TEST(ExitPolicy, MaxProbGateSemantics) {
  const MaxProbPolicy p{0.8};
  std::vector<float> confident{0.85f, 0.1f, 0.05f};
  std::vector<float> unsure{0.5f, 0.3f, 0.2f};
  EXPECT_TRUE(p.should_exit(confident.data(), 3));
  EXPECT_FALSE(p.should_exit(unsure.data(), 3));
}

TEST(ExitPolicy, MaxProbAndEntropyGatesAgreeOnExtremes) {
  // Both gates must exit a near-one-hot distribution and hold a uniform
  // one, whatever reasonable thresholds are used.
  std::vector<float> onehot{0.97f, 0.01f, 0.01f, 0.01f};
  std::vector<float> uniform{0.25f, 0.25f, 0.25f, 0.25f};
  const MaxProbPolicy mp{0.9};
  const ExitPolicy ep{0.3};
  EXPECT_TRUE(mp.should_exit(onehot.data(), 4));
  EXPECT_TRUE(ep.should_exit(normalized_entropy(onehot.data(), 4)));
  EXPECT_FALSE(mp.should_exit(uniform.data(), 4));
  EXPECT_FALSE(ep.should_exit(normalized_entropy(uniform.data(), 4)));
}

TEST(ExitPolicy, MaxProbScreeningReusesThresholdMachinery) {
  std::vector<std::vector<float>> rows{{0.95f, 0.05f},   // confident right
                                       {0.90f, 0.10f},   // confident right
                                       {0.85f, 0.15f},   // confident wrong
                                       {0.55f, 0.45f}};  // unsure right
  const std::vector<bool> correct{true, true, false, true};
  const auto samples = maxprob_samples_from_probs(rows, correct);
  ASSERT_EQ(samples.size(), 4u);
  // Screening for perfect exited accuracy keeps only the two most
  // confident (and correct) samples.
  const ExitStats st =
      choose_threshold(samples, {0.08, 0.12, 0.2, 0.5}, 1.0);
  EXPECT_NEAR(st.exit_fraction, 0.5, 1e-9);
  EXPECT_NEAR(st.exited_accuracy, 1.0, 1e-9);
}

TEST(Checkpoint, RoundTripsNetworkAndMetadata) {
  Rng rng(20);
  const models::ModelConfig cfg{models::Arch::kResNet18, 3, 32, 32, 10,
                                0.125};
  const models::BinaryBranchConfig bc =
      models::default_branch(models::Arch::kResNet18);
  CompositeNetwork net = CompositeNetwork::build(cfg, bc, rng);
  // Move batch-norm state off its defaults so the round-trip is honest.
  net.forward(Tensor::randn(Shape{4, 3, 32, 32}, rng), /*train=*/true);

  const Checkpoint ckpt{cfg, bc, 0.123};
  const auto bytes = save_composite(net, ckpt);
  LoadedComposite loaded = load_composite(bytes);

  EXPECT_EQ(loaded.ckpt.config.arch, cfg.arch);
  EXPECT_EQ(loaded.ckpt.config.num_classes, 10);
  EXPECT_DOUBLE_EQ(loaded.ckpt.config.width, 0.125);
  EXPECT_DOUBLE_EQ(loaded.ckpt.tau, 0.123);

  const Tensor x = Tensor::randn(Shape{2, 3, 32, 32}, rng);
  const CompositeOutput a = net.forward(x, false);
  const CompositeOutput b = loaded.net.forward(x, false);
  EXPECT_EQ(max_abs_diff(a.main_logits, b.main_logits), 0.0f);
  EXPECT_EQ(max_abs_diff(a.binary_logits, b.binary_logits), 0.0f);
}

TEST(Checkpoint, CorruptBytesThrow) {
  Rng rng(21);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  CompositeNetwork net = CompositeNetwork::build(cfg, rng);
  auto bytes =
      save_composite(net, Checkpoint{cfg, models::default_branch(cfg.arch),
                                     0.05});
  bytes[1] ^= 0xFF;
  EXPECT_THROW(load_composite(bytes), ParseError);

  auto truncated = save_composite(
      net, Checkpoint{cfg, models::default_branch(cfg.arch), 0.05});
  truncated.resize(truncated.size() / 3);
  EXPECT_THROW(load_composite(truncated), ParseError);
}

TEST(Inference, RejectsBatchInput) {
  Rng rng(10);
  CompositeNetwork net = tiny_composite(rng);
  EXPECT_THROW(
      collaborative_infer(net, ExitPolicy{0.5}, Tensor{Shape{2, 1, 28, 28}}),
      Error);
}

}  // namespace
}  // namespace lcrs::core
