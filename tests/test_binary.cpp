// Tests of the binarization math and bit-packed kernels: alpha scaling
// (Algorithm 1 line 9), STE (Eq. 5), Eq. 6, BitMatrix packing, and the
// XNOR GEMM against its float-sign oracle across shapes.
#include <gtest/gtest.h>

#include <tuple>

#include <vector>

#include "binary/binarize.h"
#include "binary/bitmatrix.h"
#include "binary/input_scale.h"
#include "binary/xnor_gemm.h"
#include "common/simd.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace lcrs::binary {
namespace {

TEST(Binarize, AlphaIsPerFilterMeanAbs) {
  Tensor w{Shape{2, 3}};
  w.at2(0, 0) = 1.0f; w.at2(0, 1) = -2.0f; w.at2(0, 2) = 3.0f;
  w.at2(1, 0) = -4.0f; w.at2(1, 1) = 0.0f; w.at2(1, 2) = 2.0f;
  const BinarizedFilters b = binarize_filters(w);
  EXPECT_FLOAT_EQ(b.alpha[0], 2.0f);
  EXPECT_FLOAT_EQ(b.alpha[1], 2.0f);
  EXPECT_FLOAT_EQ(b.sign.at2(0, 1), -1.0f);
  EXPECT_FLOAT_EQ(b.sign.at2(1, 1), 1.0f);  // sign(0) = +1
}

TEST(Binarize, AlphaSignMinimizesL2ApproximationError) {
  // Property from XNOR-Net: alpha = mean|w| minimizes ||W - a*sign(W)||^2
  // over a. Any perturbed a must do no better.
  Rng rng(1);
  const Tensor w = Tensor::randn(Shape{1, 64}, rng);
  const BinarizedFilters b = binarize_filters(w);
  auto err = [&](float a) {
    double e = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const double d = w[i] - a * b.sign[i];
      e += d * d;
    }
    return e;
  };
  const float alpha = b.alpha[0];
  EXPECT_LE(err(alpha), err(alpha * 1.1f) + 1e-9);
  EXPECT_LE(err(alpha), err(alpha * 0.9f) + 1e-9);
}

TEST(Binarize, SteClipGatesOutsideWindow) {
  Tensor x{Shape{4}};
  x[0] = -2.0f; x[1] = -0.5f; x[2] = 0.9f; x[3] = 1.5f;
  const Tensor g = Tensor::ones(Shape{4});
  const Tensor out = ste_clip(g, x);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 1.0f);
  EXPECT_EQ(out[2], 1.0f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(Binarize, Eq6CombinesMeanAndSteTerms) {
  Tensor w{Shape{1, 4}};
  w[0] = 0.5f; w[1] = -0.5f; w[2] = 2.0f; w[3] = -0.25f;
  Tensor g = Tensor::ones(Shape{1, 4});
  Tensor alpha{Shape{1}};
  alpha[0] = 0.8f;
  const Tensor out = eq6_weight_grad(g, w, alpha);
  // In-window weights get 1/n + alpha; out-of-window only 1/n.
  EXPECT_FLOAT_EQ(out[0], 0.25f + 0.8f);
  EXPECT_FLOAT_EQ(out[2], 0.25f);
}

TEST(BitMatrix, PackUnpackRoundTrip) {
  Rng rng(2);
  const Tensor t = Tensor::randn(Shape{5, 130}, rng);  // >2 words per row
  const BitMatrix m = BitMatrix::pack(t);
  const Tensor back = m.unpack();
  const Tensor expected = sign(t);
  EXPECT_EQ(max_abs_diff(back, expected), 0.0f);
}

TEST(BitMatrix, SetGetAndBounds) {
  BitMatrix m(2, 70);
  EXPECT_FALSE(m.get(1, 69));
  m.set(1, 69, true);
  EXPECT_TRUE(m.get(1, 69));
  m.set(1, 69, false);
  EXPECT_FALSE(m.get(1, 69));
  EXPECT_THROW(m.get(2, 0), Error);
  EXPECT_THROW(m.set(0, 70, true), Error);
}

TEST(BitMatrix, DotMatchesFloatSignDot) {
  Rng rng(3);
  const Tensor a = Tensor::randn(Shape{1, 100}, rng);
  const Tensor b = Tensor::randn(Shape{1, 100}, rng);
  const BitMatrix pa = BitMatrix::pack(a);
  const BitMatrix pb = BitMatrix::pack(b);
  float expected = 0.0f;
  for (std::int64_t i = 0; i < 100; ++i) {
    expected += (a[i] >= 0 ? 1.0f : -1.0f) * (b[i] >= 0 ? 1.0f : -1.0f);
  }
  EXPECT_EQ(static_cast<float>(pa.dot_row(0, pb.row(0))), expected);
}

TEST(BitMatrix, SerializeRoundTrip) {
  Rng rng(4);
  const BitMatrix m = BitMatrix::pack(Tensor::randn(Shape{7, 93}, rng));
  ByteWriter w;
  m.serialize(w);
  ByteReader r(w.bytes());
  EXPECT_TRUE(BitMatrix::deserialize(r) == m);
}

TEST(BitMatrix, PayloadIs32xSmallerThanFloat) {
  const BitMatrix m(256, 1024);  // multiple of 64: no padding waste
  EXPECT_EQ(m.payload_bytes(), 256 * 1024 / 8);
  EXPECT_EQ(m.payload_bytes() * 32, 256 * 1024 * 4);
}

using XnorShape = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

class XnorGemmShapes : public ::testing::TestWithParam<XnorShape> {};

TEST_P(XnorGemmShapes, MatchesFloatSignGemm) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 31 + k * 7 + n);
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{n, k}, rng);

  const Tensor fast = xnor_matmul(BitMatrix::pack(a), BitMatrix::pack(b));

  // Oracle: float GEMM on the sign matrices.
  const Tensor sa = sign(a), sb = sign(b);
  Tensor ref{Shape{m, n}};
  gemm_bt(sa.data(), sb.data(), ref.data(), m, k, n);

  EXPECT_EQ(max_abs_diff(fast, ref), 0.0f)
      << "xnor path must be bit-exact (integer dot products)";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XnorGemmShapes,
    ::testing::Values(XnorShape{1, 1, 1}, XnorShape{1, 64, 1},
                      XnorShape{3, 63, 5}, XnorShape{8, 64, 8},
                      XnorShape{16, 65, 16}, XnorShape{32, 128, 10},
                      XnorShape{10, 300, 7}, XnorShape{64, 27, 196}));

TEST(InputScale, KMatchesManualBoxFilter) {
  // 1-channel 3x3 input, 3x3 kernel, stride 1, pad 1 -> K is the padded
  // 3x3 box average of |I|.
  Tensor x{Shape{1, 1, 3, 3}};
  for (std::int64_t i = 0; i < 9; ++i) x[i] = (i % 2 == 0) ? 1.0f : -1.0f;
  const ConvGeom g{1, 3, 3, 3, 1, 1};
  const Tensor k = input_scale_K(x, g);
  EXPECT_EQ(k.shape(), (Shape{1, 3, 3}));
  // Centre pixel sees all 9 values of |I| = 1 -> K = 1.
  EXPECT_FLOAT_EQ(k[4], 1.0f);
  // Corner sees 4 values inside, 5 padded zeros -> 4/9.
  EXPECT_NEAR(k[0], 4.0f / 9.0f, 1e-6);
}

TEST(InputScale, KAveragesChannels) {
  Tensor x{Shape{1, 2, 2, 2}};
  for (std::int64_t i = 0; i < 4; ++i) x[i] = 2.0f;    // channel 0
  for (std::int64_t i = 4; i < 8; ++i) x[i] = -4.0f;   // channel 1
  const ConvGeom g{2, 2, 2, 2, 1, 0};
  const Tensor k = input_scale_K(x, g);
  EXPECT_EQ(k.numel(), 1);
  EXPECT_FLOAT_EQ(k[0], 3.0f);  // mean(|2|, |-4|) = 3, box over 2x2 of 3s
}

TEST(InputScale, RowScaleIsMeanAbs) {
  Tensor x{Shape{2, 4}};
  x.at2(0, 0) = 1.0f; x.at2(0, 1) = -3.0f;
  x.at2(1, 2) = 8.0f;
  const Tensor beta = input_scale_rows(x);
  EXPECT_FLOAT_EQ(beta[0], 1.0f);
  EXPECT_FLOAT_EQ(beta[1], 2.0f);
}

// --- SIMD dispatch parity: the bit-domain kernels must be EXACTLY equal
// across every level, not merely close (DESIGN.md "SIMD kernel layer").

std::vector<simd::Level> testable_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  for (const simd::Level l :
       {simd::Level::kSse, simd::Level::kAvx2, simd::Level::kNeon}) {
    if (simd::level_available(l)) levels.push_back(l);
  }
  return levels;
}

// Ragged widths straddle every vector boundary: sub-word, word-exact,
// one-past-word, multi-word with partial vector groups. Data includes
// exact zeros (sign(0) = +1 is the convention the compares must keep).
TEST(PackSigns, AllDispatchLevelsBitIdenticalAcrossRaggedCols) {
  Rng rng(771);
  for (const std::int64_t cols : {1, 3, 7, 63, 64, 65, 96, 127, 130}) {
    for (const std::int64_t rows : {1, 2, 5}) {
      std::vector<float> data(static_cast<std::size_t>(rows * cols));
      for (auto& v : data) {
        const std::int64_t kind = rng.randint(0, 9);
        v = kind == 0 ? 0.0f
            : kind == 1 ? -0.0f
                        : static_cast<float>(rng.normal());
      }
      BitMatrix reference(rows, cols);
      {
        simd::ScopedForcedLevel force(simd::Level::kScalar);
        pack_signs(data.data(), rows, cols, &reference);
      }
      for (const simd::Level level : testable_levels()) {
        simd::ScopedForcedLevel force(level);
        BitMatrix packed(rows, cols);
        pack_signs(data.data(), rows, cols, &packed);
        ASSERT_TRUE(packed == reference)
            << "level " << simd::level_name(level) << " cols " << cols
            << " rows " << rows;
      }
    }
  }
}

TEST(PackSigns, TailWordBitsBeyondColsStayZero) {
  // All-positive input would set every bit the packer touches; bits past
  // `cols` in the last word must still come out 0 at every level, or the
  // zero-padding XNOR cancellation (dot = cols - 2*popcount) breaks.
  const std::int64_t rows = 3;
  for (const std::int64_t cols : {1, 5, 63, 65, 70, 129}) {
    std::vector<float> ones(static_cast<std::size_t>(rows * cols), 1.0f);
    for (const simd::Level level : testable_levels()) {
      simd::ScopedForcedLevel force(level);
      BitMatrix m(rows, cols);
      pack_signs(ones.data(), rows, cols, &m);
      const std::int64_t words = m.words_per_row();
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t c = 0; c < cols; ++c) {
          ASSERT_TRUE(m.get(r, c)) << "level " << simd::level_name(level);
        }
        const std::int64_t tail_bits = cols - (words - 1) * 64;
        const std::uint64_t last = m.row(r)[words - 1];
        if (tail_bits < 64) {
          ASSERT_EQ(last >> tail_bits, 0u)
              << "level " << simd::level_name(level) << " cols " << cols
              << ": tail bits set past column " << cols;
        }
      }
    }
  }
}

TEST(PackSigns, DirtyScratchReuseEqualsFreshPack) {
  // pack_signs promises full-word stores so a reused scratch BitMatrix
  // needs no clear; saturate one with all-ones first, then repack.
  Rng rng(772);
  const std::int64_t rows = 4, cols = 70;
  std::vector<float> ones(static_cast<std::size_t>(rows * cols), 1.0f);
  std::vector<float> data(static_cast<std::size_t>(rows * cols));
  for (auto& v : data) v = static_cast<float>(rng.normal());
  BitMatrix scratch(rows, cols);
  pack_signs(ones.data(), rows, cols, &scratch);   // dirty it
  pack_signs(data.data(), rows, cols, &scratch);   // reuse without clear
  const BitMatrix fresh = BitMatrix::pack(data.data(), rows, cols);
  EXPECT_TRUE(scratch == fresh);
}

TEST(XnorGemm, AllDispatchLevelsBitIdentical) {
  // Cols >= 512 puts the row span at >= 8 words, which is where the AVX2
  // vpshufb-popcount path engages; the small shapes pin the scalar
  // fallback and the tail loop.
  Rng rng(773);
  using ShapeCase = std::tuple<std::int64_t, std::int64_t, std::int64_t>;
  for (const auto& [m, k, n] :
       {ShapeCase{1, 1, 1}, ShapeCase{3, 65, 4}, ShapeCase{2, 511, 3},
        ShapeCase{4, 512, 5}, ShapeCase{1, 700, 1}, ShapeCase{6, 1030, 2}}) {
    std::vector<float> av(static_cast<std::size_t>(m * k));
    std::vector<float> bv(static_cast<std::size_t>(n * k));
    for (auto& v : av) v = static_cast<float>(rng.normal());
    for (auto& v : bv) v = static_cast<float>(rng.normal());
    const BitMatrix a = BitMatrix::pack(av.data(), m, k);
    const BitMatrix b = BitMatrix::pack(bv.data(), n, k);
    std::vector<float> reference(static_cast<std::size_t>(m * n));
    {
      simd::ScopedForcedLevel force(simd::Level::kScalar);
      xnor_gemm(a, b, reference.data());
    }
    for (const simd::Level level : testable_levels()) {
      simd::ScopedForcedLevel force(level);
      std::vector<float> c(static_cast<std::size_t>(m * n), -1.0f);
      xnor_gemm(a, b, c.data());
      for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_EQ(c[i], reference[i])
            << "level " << simd::level_name(level) << " m=" << m
            << " k=" << k << " n=" << n << " index " << i;
      }
    }
  }
}

}  // namespace
}  // namespace lcrs::binary
