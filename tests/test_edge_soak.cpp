// Soak/stress tests for the batched edge serving path: repeated
// start/flood/stop cycles, fault injection mid-batch, a poisoned batch
// member (its socket reset under a queued request), and shutdown
// convergence with requests in flight. Everything is seeded; every stop
// is bounded by finishes_within so a hang fails instead of wedging CI.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "core/inference.h"
#include "edge/client.h"
#include "edge/server.h"
#include "tensor/tensor_ops.h"
#include "webinfer/export.h"

namespace lcrs::edge {
namespace {

core::CompositeNetwork make_net(Rng& rng) {
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  return core::CompositeNetwork::build(cfg, rng);
}

/// Runs `fn` on a worker thread; returns false if it is still running
/// after `timeout_ms` (the worker is detached so the suite can report the
/// failure instead of hanging).
template <typename Fn>
bool finishes_within(Fn&& fn, int timeout_ms) {
  std::packaged_task<void()> task(std::forward<Fn>(fn));
  std::future<void> fut = task.get_future();
  std::thread t(std::move(task));
  const bool done = fut.wait_for(std::chrono::milliseconds(timeout_ms)) ==
                    std::future_status::ready;
  if (done) {
    t.join();
  } else {
    t.detach();
  }
  return done;
}

/// Blocks the FIRST batch until release(); later batches pass through.
class CompletionGate {
 public:
  void enter() {
    lcrs::MutexLock lock(mutex_);
    if (entered_) return;
    entered_ = true;
    cv_.notify_all();
    while (!released_) cv_.wait(mutex_);
  }
  void await_entered() {
    lcrs::MutexLock lock(mutex_);
    while (!entered_) cv_.wait(mutex_);
  }
  void release() {
    lcrs::MutexLock lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  lcrs::Mutex mutex_{"test.soak.gate"};
  lcrs::CondVar cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(EdgeSoak, StartFloodStopCyclesConverge) {
  Rng rng(8001);
  core::CompositeNetwork net = make_net(rng);
  // Export once, single-threaded: export packs the binary branch in
  // place (prepare_browser_inference), which must not race the client
  // threads. Each client then loads its own Engine from the same bytes.
  const webinfer::WebModel browser_model =
      webinfer::export_browser_model(net, 1, 28, 28);

  constexpr int kCycles = 5;
  constexpr int kClients = 3;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // Vary the serving shape every cycle so the soak walks the config
    // space instead of hammering one path.
    ServerOptions opts;
    opts.num_workers = 1 + cycle % 3;
    opts.max_batch = 1 + cycle % 4;
    opts.max_wait_us = (cycle % 2 == 0) ? 0.0 : 150.0;
    opts.queue_capacity = (cycle % 2 == 0) ? 64 : 4;
    opts.busy_retry_after_ms = 1;
    auto server = std::make_unique<EdgeServer>(
        0, main_branch_batch_completion(net), opts);

    // Odd cycles run under a seeded fault schedule: frames get dropped
    // and connections torn down mid-frame while batches are in flight.
    sim::FaultSpec faults;
    if (cycle % 2 == 1) {
      faults.drop_prob = 0.08;
      faults.close_prob = 0.05;
    }
    FaultInjector injector(faults, 500 + static_cast<std::uint64_t>(cycle));
    FaultInjector::Scope scope(injector);

    std::atomic<bool> flood{true};
    std::atomic<int> answered{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c, cycle] {
        Rng crng(static_cast<std::uint64_t>(1000 * cycle + c));
        webinfer::Engine engine{browser_model};
        RetryPolicy retry;
        retry.max_attempts = 2;
        retry.initial_backoff_ms = 1.0;
        retry.max_backoff_ms = 5.0;
        retry.deadline_ms = 1000.0;  // bounded even against a dead server
        BrowserClient client(std::move(engine), core::ExitPolicy{0.25},
                             server->port(), retry);
        while (flood.load()) {
          (void)client.classify(Tensor::randn(Shape{1, 1, 28, 28}, crng));
          ++answered;
        }
      });
    }

    // Let the flood get going, then stop the server *while requests are
    // in flight*. stop() must converge regardless.
    for (int i = 0; i < 20000 && answered.load() < 2 * kClients; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(answered.load(), 2 * kClients) << "cycle " << cycle;
    EdgeServer* raw = server.get();
    const bool stopped = finishes_within([raw] { raw->stop(); }, 15000);
    EXPECT_TRUE(stopped) << "stop() hung mid-flood in cycle " << cycle;
    flood.store(false);
    for (auto& t : clients) t.join();
    if (!stopped) {
      (void)server.release();  // destructor would hang too; leak and fail
      FAIL() << "aborting soak: server wedged in cycle " << cycle;
    }
    EXPECT_EQ(server->queue_depth(), 0) << "cycle " << cycle;
  }
}

TEST(EdgeSoak, PoisonedBatchMemberFailsAlone) {
  // Three requests ride one batch; the middle request's client resets
  // its socket (SO_LINGER 0 => RST) while the request waits in the
  // queue. The poisoned member's reply send must fail on ITS connection
  // only -- the healthy members still get bit-exact answers.
  Rng rng(8002);
  core::CompositeNetwork net = make_net(rng);
  CompletionGate gate;
  BatchCompletionFn batched = main_branch_batch_completion(net);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 8;
  EdgeServer server(
      0,
      BatchCompletionFn([&](const Tensor& batch) {
        gate.enter();
        return batched(batch);
      }),
      opts);

  const auto request_for = [&](const Tensor& shared) {
    return Frame{MsgType::kCompleteRequest, make_complete_request(shared)};
  };

  // Warmup request holds the lone worker inside the gate.
  const Tensor warm_shared = net.shared_stage().forward(
      Tensor::randn(Shape{1, 1, 28, 28}, rng), false);
  Socket warm = connect_local(server.port());
  warm.send_frame(request_for(warm_shared));
  gate.await_entered();

  // Stage: healthy A, victim V, healthy B -- all queued behind the gate.
  std::vector<Tensor> shareds;
  for (int i = 0; i < 3; ++i) {
    shareds.push_back(net.shared_stage().forward(
        Tensor::randn(Shape{1, 1, 28, 28}, rng), false));
  }
  Socket healthy_a = connect_local(server.port());
  healthy_a.send_frame(request_for(shareds[0]));
  Socket victim = connect_local(server.port());
  victim.send_frame(request_for(shareds[1]));
  Socket healthy_b = connect_local(server.port());
  healthy_b.send_frame(request_for(shareds[2]));
  for (int i = 0; i < 5000 && server.queue_depth() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.queue_depth(), 3);

  // Reset the victim's connection: SO_LINGER{on, 0} turns close() into a
  // deterministic RST, so the server's eventual reply send fails instead
  // of landing in a dead-letter buffer.
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ASSERT_EQ(setsockopt(victim.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)),
            0);
  victim.close_now();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let RST land

  gate.release();

  // Healthy members get bit-exact answers even though a batch-mate died.
  const auto expect_exact = [&](Socket& conn, const Tensor& shared) {
    auto reply = conn.recv_frame(Deadline::after_ms(10000.0));
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kCompleteResponse);
    const CompleteResponse resp = parse_complete_response(reply->payload);
    const Tensor local = softmax_rows(net.forward_main_from_shared(shared));
    EXPECT_EQ(resp.label, argmax(local));
    EXPECT_EQ(max_abs_diff(resp.probabilities, local), 0.0f);
  };
  expect_exact(healthy_a, shareds[0]);
  expect_exact(healthy_b, shareds[2]);
  expect_exact(warm, warm_shared);

  // The victim's failed reply is charged to ITS connection, nothing else.
  for (int i = 0; i < 5000 && server.stats().connection_errors < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().connection_errors, 1);
  for (int i = 0; i < 500 && server.requests_served() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.requests_served(), 3);  // warmup + 2 healthy, not victim
}

TEST(EdgeSoak, StopWithQueuedRequestsFailsThemCleanly) {
  // Requests parked in the queue when stop() lands must be flushed and
  // their connections unwound -- not leaked, not hung.
  Rng rng(8003);
  core::CompositeNetwork net = make_net(rng);
  CompletionGate gate;
  BatchCompletionFn batched = main_branch_batch_completion(net);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 1;  // queued requests stay queued while the gate holds
  auto server = std::make_unique<EdgeServer>(
      0,
      BatchCompletionFn([&](const Tensor& batch) {
        gate.enter();
        return batched(batch);
      }),
      opts);

  const Tensor shared = net.shared_stage().forward(
      Tensor::randn(Shape{1, 1, 28, 28}, rng), false);
  Socket warm = connect_local(server->port());
  warm.send_frame(
      Frame{MsgType::kCompleteRequest, make_complete_request(shared)});
  gate.await_entered();

  std::vector<Socket> parked;
  for (int i = 0; i < 3; ++i) {
    parked.push_back(connect_local(server->port()));
    parked.back().send_frame(
        Frame{MsgType::kCompleteRequest, make_complete_request(shared)});
  }
  for (int i = 0; i < 5000 && server->queue_depth() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server->queue_depth(), 3);

  // stop() blocks joining the gated worker, so release the gate from a
  // side thread after stop() has begun flushing.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.release();
  });
  EdgeServer* raw = server.get();
  const bool stopped = finishes_within([raw] { raw->stop(); }, 15000);
  releaser.join();
  EXPECT_TRUE(stopped) << "stop() hung with requests parked in the queue";
  if (!stopped) {
    (void)server.release();
    FAIL() << "server wedged";
  }
  EXPECT_EQ(server->queue_depth(), 0);
  // The parked clients see their connections close, never a hang.
  for (auto& conn : parked) {
    EXPECT_FALSE(conn.recv_frame(Deadline::after_ms(5000.0)).has_value());
  }
}

TEST(EdgeSoak, HotSwapActorUnderFloodConverges) {
  // A swap actor keeps load->flip->drain-ing new versions of the model a
  // flood of BrowserClients is tagged to -- and periodically walks the
  // eviction path (evict, let rejections flow, reinstall). The flood
  // must keep completing throughout: a request caught by an eviction
  // degrades to the binary branch via kModelUnavailable, it never hangs
  // or tears the connection. Afterwards every retired snapshot must
  // drain (live gauge back to registered count) and stop() converge.
  Rng rng(8009);
  core::CompositeNetwork net = make_net(rng);
  const webinfer::WebModel browser_model =
      webinfer::export_browser_model(net, 1, 28, 28);

  auto registry = std::make_shared<ModelRegistry>();
  // One completion built (and edge-prepared) up front, before any worker
  // runs: all versions share the eval-mode network, whose forwards are
  // thread-safe only once the packing writes are done. Each install
  // still exercises the full retire/drain machinery.
  const auto completion = main_branch_batch_completion(net);
  const auto snapshot_v = [&completion](std::uint32_t id,
                                        std::uint32_t version) {
    return ServableModel::from_fn(id, version, "soak", completion);
  };
  constexpr std::uint32_t kSwappedId = 4;
  registry->install(snapshot_v(0, 1));  // untagged clients' default
  registry->install(snapshot_v(kSwappedId, 1));

  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 3;
  opts.max_wait_us = 100.0;
  opts.queue_capacity = 16;
  opts.busy_retry_after_ms = 1;
  auto server = std::make_unique<EdgeServer>(0, registry, opts);

  std::atomic<bool> flood{true};
  std::atomic<int> answered{0};
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng crng(static_cast<std::uint64_t>(9100 + c));
      webinfer::Engine engine{browser_model};
      RetryPolicy retry;
      retry.max_attempts = 2;
      retry.initial_backoff_ms = 1.0;
      retry.max_backoff_ms = 5.0;
      retry.deadline_ms = 1000.0;
      BrowserClient client(std::move(engine), core::ExitPolicy{0.25},
                           server->port(), retry);
      if (c % 2 == 1) client.set_model_id(kSwappedId);
      while (flood.load()) {
        (void)client.classify(Tensor::randn(Shape{1, 1, 28, 28}, crng));
        ++answered;
      }
    });
  }

  std::atomic<bool> swapping{true};
  std::thread swap_actor([&] {
    std::uint32_t version = 1;
    int iter = 0;
    while (swapping.load()) {
      if (++iter % 4 == 0) {
        // Eviction path: rejections flow until the reinstall below.
        registry->evict(kSwappedId);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      registry->install(snapshot_v(kSwappedId, ++version));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (int i = 0; i < 20000 && answered.load() < 10 * kClients; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(answered.load(), 10 * kClients);
  swapping.store(false);
  swap_actor.join();  // actor exits with the model installed
  flood.store(false);
  for (auto& t : clients) t.join();

  // Drain: with the flood gone no batch pins a retired snapshot, so the
  // live gauge must fall back to the registered count (bounded poll).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (registry->live_models() != registry->size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(registry->live_models(), registry->size())
      << "retired snapshots still pinned after the flood drained";

  EdgeServer* raw = server.get();
  const bool stopped = finishes_within([raw] { raw->stop(); }, 15000);
  EXPECT_TRUE(stopped) << "stop() hung after hot-swap soak";
  if (!stopped) {
    (void)server.release();
    FAIL() << "server wedged";
  }
  EXPECT_EQ(server->queue_depth(), 0);
}

}  // namespace
}  // namespace lcrs::edge
