// Tests for the LCRS_CHECK_NUMERICS runtime sanitizer: the toggle, the
// scanner's NaN/Inf/magnitude rules and index reporting, and -- the part
// that matters operationally -- that a NaN injected mid-network is
// attributed to the right layer / param / webinfer op, not just "somewhere".
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/numerics.h"
#include "core/composite.h"
#include "models/zoo.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "webinfer/engine.h"
#include "webinfer/export.h"

namespace lcrs {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Runs `fn`, requires it to throw NumericsError, and returns the message.
template <typename Fn>
std::string numerics_message(Fn fn) {
  try {
    fn();
  } catch (const NumericsError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected NumericsError";
  return "";
}

TEST(Numerics, DisabledScanIsANoop) {
  numerics::ScopedEnable off(false);
  const float bad[] = {1.0f, kNaN, kInf};
  EXPECT_NO_THROW(numerics::check_values("stage", "tensor", bad, 3));
}

TEST(Numerics, ScopedEnableRestoresPriorState) {
  const bool before = numerics::enabled();
  {
    numerics::ScopedEnable on(true);
    EXPECT_TRUE(numerics::enabled());
  }
  EXPECT_EQ(numerics::enabled(), before);
}

TEST(Numerics, ReportsKindAndFirstBadIndex) {
  numerics::ScopedEnable on;
  const float with_nan[] = {0.0f, 1.0f, kNaN, kNaN};
  std::string msg = numerics_message(
      [&] { numerics::check_values("forward output", "probe", with_nan, 4); });
  EXPECT_NE(msg.find("NaN"), std::string::npos) << msg;
  EXPECT_NE(msg.find("index 2 of 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("forward output of probe"), std::string::npos) << msg;

  const float with_inf[] = {0.0f, -kInf};
  msg = numerics_message(
      [&] { numerics::check_values("gradient", "g", with_inf, 2); });
  EXPECT_NE(msg.find("Inf"), std::string::npos) << msg;
  EXPECT_NE(msg.find("index 1 of 2"), std::string::npos) << msg;
}

TEST(Numerics, MagnitudeLimitIsConfigurable) {
  numerics::ScopedEnable on;
  const double old_limit = numerics::magnitude_limit();
  numerics::set_magnitude_limit(10.0);
  const float big[] = {1.0f, -100.0f};
  const std::string msg = numerics_message(
      [&] { numerics::check_values("value", "w", big, 2); });
  EXPECT_NE(msg.find("magnitude"), std::string::npos) << msg;
  EXPECT_NE(msg.find("index 1"), std::string::npos) << msg;

  // A non-positive limit disables the magnitude rule entirely.
  numerics::set_magnitude_limit(0.0);
  EXPECT_NO_THROW(numerics::check_values("value", "w", big, 2));
  numerics::set_magnitude_limit(old_limit);
}

TEST(Numerics, CleanNetworkPassesWithSanitizerOn) {
  numerics::ScopedEnable on;
  Rng rng(7);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(6, 5, rng)
      .emplace<nn::ReLU>()
      .emplace<nn::Linear>(5, 3, rng);
  const Tensor x = Tensor::randn(Shape{2, 6}, rng);
  const Tensor y = seq.forward(x, /*train=*/true);
  EXPECT_NO_THROW((void)seq.backward(Tensor::randn(y.shape(), rng)));
}

TEST(Numerics, ForwardNanIsAttributedToTheRightLayer) {
  numerics::ScopedEnable on;
  Rng rng(7);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(6, 5, rng)
      .emplace<nn::ReLU>()
      .emplace<nn::Linear>(5, 3, rng);
  // Poison one weight of the LAST linear (child index 2): layers 0 and 1
  // stay finite, so the first report must name layer 2, not its inputs.
  auto& last = static_cast<nn::Linear&>(seq.layer(2));
  last.weight().value[0] = kNaN;

  const Tensor x = Tensor::randn(Shape{2, 6}, rng);
  const std::string msg =
      numerics_message([&] { (void)seq.forward(x, false); });
  EXPECT_NE(msg.find("layer 2 (linear)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("forward output"), std::string::npos) << msg;
}

/// Identity forward; injects a NaN into the gradient on the way back.
class NanBackward : public nn::Layer {
 public:
  Tensor forward(const Tensor& input, bool) override { return input; }
  Tensor backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    g[0] = kNaN;
    return g;
  }
  std::string kind() const override { return "nan_backward"; }
};

TEST(Numerics, BackwardNanIsAttributedToTheRightLayer) {
  numerics::ScopedEnable on;
  Rng rng(9);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(4, 4, rng)
      .emplace<NanBackward>()
      .emplace<nn::Linear>(4, 2, rng);
  const Tensor y = seq.forward(Tensor::randn(Shape{1, 4}, rng), true);
  const std::string msg = numerics_message(
      [&] { (void)seq.backward(Tensor::ones(y.shape())); });
  EXPECT_NE(msg.find("layer 1 (nan_backward)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("backward"), std::string::npos) << msg;
}

TEST(Numerics, OptimizerRejectsNanGradientByParamName) {
  numerics::ScopedEnable on;
  Rng rng(11);
  nn::Linear lin(3, 2, rng);
  lin.weight().grad[1] = kNaN;
  nn::Sgd opt(0.1);
  const std::string msg =
      numerics_message([&] { opt.step(lin.params()); });
  EXPECT_NE(msg.find("step gradient"), std::string::npos) << msg;
  EXPECT_NE(msg.find("linear.weight"), std::string::npos) << msg;
}

TEST(Numerics, OptimizerRejectsNonFiniteUpdatedValue) {
  numerics::ScopedEnable on;
  Rng rng(13);
  nn::Linear lin(3, 2, rng);
  lin.weight().value[0] = kInf;  // zero grads keep it Inf through the step
  nn::Adam opt(0.001);
  const std::string msg =
      numerics_message([&] { opt.step(lin.params()); });
  EXPECT_NE(msg.find("updated value"), std::string::npos) << msg;
  EXPECT_NE(msg.find("linear.weight"), std::string::npos) << msg;
}

TEST(Numerics, WebinferEngineAttributesNanToTheOffendingOp) {
  numerics::ScopedEnable on;
  Rng rng(17);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 0.5};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const webinfer::Engine engine(
      webinfer::export_browser_model(net, 1, 28, 28));

  Tensor x = Tensor::randn(Shape{1, 1, 28, 28}, rng);
  EXPECT_NO_THROW((void)engine.forward(x));  // clean input stays clean

  x[0] = kNaN;  // the first conv consumes it, so op 0 must be named
  const std::string msg = numerics_message([&] { (void)engine.forward(x); });
  EXPECT_NE(msg.find("webinfer op 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("op output"), std::string::npos) << msg;
}

}  // namespace
}  // namespace lcrs
