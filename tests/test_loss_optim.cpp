// Loss function and optimizer tests, including small convergence runs.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace lcrs::nn {
namespace {

TEST(Loss, UniformLogitsGiveLogC) {
  const Tensor logits{Shape{2, 4}};  // all zeros -> uniform softmax
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
  // Gradient rows sum to zero (softmax minus one-hot).
  for (std::int64_t b = 0; b < 2; ++b) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 4; ++c) {
      s += static_cast<double>(r.grad_logits.at2(b, c));
    }
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits{Shape{1, 3}};
  logits.at2(0, 1) = 20.0f;
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_LT(r.loss, 1e-4);
  EXPECT_NEAR(r.probabilities.at2(0, 1), 1.0, 1e-4);
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Rng rng(1);
  Tensor logits = Tensor::randn(Shape{3, 5}, rng);
  const std::vector<std::int64_t> labels{4, 0, 2};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); i += 3) {
    const float orig = logits[i];
    logits[i] = orig + static_cast<float>(eps);
    const double up = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig - static_cast<float>(eps);
    const double down = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig;
    EXPECT_NEAR(r.grad_logits[i], (up - down) / (2 * eps), 2e-3);
  }
}

TEST(Loss, BadLabelThrows) {
  const Tensor logits{Shape{1, 3}};
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), Error);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), Error);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), Error);
}

TEST(Metrics, AccuracyAndTopK) {
  Tensor logits{Shape{3, 4}};
  logits.at2(0, 2) = 3.0f; logits.at2(0, 1) = 2.0f;
  logits.at2(1, 0) = 3.0f; logits.at2(1, 3) = 2.0f;
  logits.at2(2, 1) = 3.0f; logits.at2(2, 2) = 2.0f;
  const std::vector<std::int64_t> labels{2, 3, 0};
  EXPECT_NEAR(accuracy(logits, labels), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(topk_accuracy(logits, labels, 2), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(topk_accuracy(logits, labels, 4), 1.0, 1e-9);
}

/// Trains y = softmax(Wx + b) on a linearly separable toy problem.
double train_toy(Optimizer& opt, int steps) {
  Rng rng(7);
  Linear lin(2, 3, rng);
  // Three clusters at angles; label = cluster.
  const int n = 96;
  Tensor x{Shape{n, 2}};
  std::vector<std::int64_t> y(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 3;
    const double angle = 2.0944 * cls;  // 120 degrees apart
    x.at2(i, 0) = static_cast<float>(std::cos(angle) + rng.normal(0, 0.15));
    x.at2(i, 1) = static_cast<float>(std::sin(angle) + rng.normal(0, 0.15));
    y[static_cast<std::size_t>(i)] = cls;
  }
  for (int s = 0; s < steps; ++s) {
    lin.zero_grad();
    const Tensor logits = lin.forward(x, true);
    const LossResult r = softmax_cross_entropy(logits, y);
    lin.backward(r.grad_logits);
    opt.step(lin.params());
  }
  return accuracy(lin.forward(x, false), y);
}

TEST(Optimizer, SgdConvergesOnToyProblem) {
  Sgd sgd(0.5, 0.9);
  EXPECT_GT(train_toy(sgd, 100), 0.95);
}

TEST(Optimizer, AdamConvergesOnToyProblem) {
  Adam adam(0.05);
  EXPECT_GT(train_toy(adam, 100), 0.95);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Rng rng(2);
  Linear lin(4, 4, rng);
  const double before = l2_norm(lin.weight().value);
  Sgd sgd(0.1, 0.0, /*weight_decay=*/0.1);
  for (int i = 0; i < 50; ++i) {
    lin.zero_grad();  // zero gradient: only decay acts
    sgd.step(lin.params());
  }
  EXPECT_LT(l2_norm(lin.weight().value), before * 0.7);
}

TEST(Optimizer, AdamStepSizeBoundedByLr) {
  Rng rng(3);
  Linear lin(2, 2, rng);
  const Tensor before = lin.weight().value;
  lin.weight().grad.fill(1000.0f);  // huge gradient
  Adam adam(0.01);
  adam.step(lin.params());
  // Adam normalizes by sqrt(v): the first step is about lr in magnitude.
  const float delta = max_abs_diff(before, lin.weight().value);
  EXPECT_LT(delta, 0.011f);
  EXPECT_GT(delta, 0.005f);
}

TEST(Optimizer, InvalidLrThrows) {
  EXPECT_THROW(Sgd(0.0), Error);
  EXPECT_THROW(Adam(-1.0), Error);
}

TEST(StepDecay, HalvesOnSchedule) {
  Sgd sgd(1.0);
  const StepDecay decay(10, 0.5);
  decay.apply(sgd, 0, 1.0);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 1.0);
  decay.apply(sgd, 10, 1.0);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.5);
  decay.apply(sgd, 25, 1.0);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.25);
}

}  // namespace
}  // namespace lcrs::nn
