file(REMOVE_RECURSE
  "CMakeFiles/lcrs_tool.dir/lcrs_tool.cpp.o"
  "CMakeFiles/lcrs_tool.dir/lcrs_tool.cpp.o.d"
  "lcrs_tool"
  "lcrs_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
