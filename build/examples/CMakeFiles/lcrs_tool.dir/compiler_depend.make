# Empty compiler generated dependencies file for lcrs_tool.
# This may be replaced when dependencies are built.
