# Empty compiler generated dependencies file for edge_server_demo.
# This may be replaced when dependencies are built.
