file(REMOVE_RECURSE
  "CMakeFiles/edge_server_demo.dir/edge_server_demo.cpp.o"
  "CMakeFiles/edge_server_demo.dir/edge_server_demo.cpp.o.d"
  "edge_server_demo"
  "edge_server_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_server_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
