# Empty compiler generated dependencies file for webar_logo_recognition.
# This may be replaced when dependencies are built.
