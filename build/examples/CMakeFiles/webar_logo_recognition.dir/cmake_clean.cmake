file(REMOVE_RECURSE
  "CMakeFiles/webar_logo_recognition.dir/webar_logo_recognition.cpp.o"
  "CMakeFiles/webar_logo_recognition.dir/webar_logo_recognition.cpp.o.d"
  "webar_logo_recognition"
  "webar_logo_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webar_logo_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
