# Empty dependencies file for lcrs_data.
# This may be replaced when dependencies are built.
