file(REMOVE_RECURSE
  "CMakeFiles/lcrs_data.dir/data/augment.cpp.o"
  "CMakeFiles/lcrs_data.dir/data/augment.cpp.o.d"
  "CMakeFiles/lcrs_data.dir/data/dataset.cpp.o"
  "CMakeFiles/lcrs_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/lcrs_data.dir/data/image_io.cpp.o"
  "CMakeFiles/lcrs_data.dir/data/image_io.cpp.o.d"
  "CMakeFiles/lcrs_data.dir/data/logo.cpp.o"
  "CMakeFiles/lcrs_data.dir/data/logo.cpp.o.d"
  "CMakeFiles/lcrs_data.dir/data/synthetic.cpp.o"
  "CMakeFiles/lcrs_data.dir/data/synthetic.cpp.o.d"
  "liblcrs_data.a"
  "liblcrs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
