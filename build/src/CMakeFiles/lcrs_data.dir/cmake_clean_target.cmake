file(REMOVE_RECURSE
  "liblcrs_data.a"
)
