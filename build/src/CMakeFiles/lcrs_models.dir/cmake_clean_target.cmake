file(REMOVE_RECURSE
  "liblcrs_models.a"
)
