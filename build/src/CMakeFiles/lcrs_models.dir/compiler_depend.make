# Empty compiler generated dependencies file for lcrs_models.
# This may be replaced when dependencies are built.
