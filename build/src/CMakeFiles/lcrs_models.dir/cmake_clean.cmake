file(REMOVE_RECURSE
  "CMakeFiles/lcrs_models.dir/models/accounting.cpp.o"
  "CMakeFiles/lcrs_models.dir/models/accounting.cpp.o.d"
  "CMakeFiles/lcrs_models.dir/models/zoo.cpp.o"
  "CMakeFiles/lcrs_models.dir/models/zoo.cpp.o.d"
  "liblcrs_models.a"
  "liblcrs_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
