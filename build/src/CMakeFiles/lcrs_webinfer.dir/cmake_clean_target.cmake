file(REMOVE_RECURSE
  "liblcrs_webinfer.a"
)
