file(REMOVE_RECURSE
  "CMakeFiles/lcrs_webinfer.dir/webinfer/engine.cpp.o"
  "CMakeFiles/lcrs_webinfer.dir/webinfer/engine.cpp.o.d"
  "CMakeFiles/lcrs_webinfer.dir/webinfer/export.cpp.o"
  "CMakeFiles/lcrs_webinfer.dir/webinfer/export.cpp.o.d"
  "CMakeFiles/lcrs_webinfer.dir/webinfer/format.cpp.o"
  "CMakeFiles/lcrs_webinfer.dir/webinfer/format.cpp.o.d"
  "liblcrs_webinfer.a"
  "liblcrs_webinfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_webinfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
