# Empty compiler generated dependencies file for lcrs_webinfer.
# This may be replaced when dependencies are built.
