file(REMOVE_RECURSE
  "CMakeFiles/lcrs_binary.dir/binary/binarize.cpp.o"
  "CMakeFiles/lcrs_binary.dir/binary/binarize.cpp.o.d"
  "CMakeFiles/lcrs_binary.dir/binary/binary_conv2d.cpp.o"
  "CMakeFiles/lcrs_binary.dir/binary/binary_conv2d.cpp.o.d"
  "CMakeFiles/lcrs_binary.dir/binary/binary_linear.cpp.o"
  "CMakeFiles/lcrs_binary.dir/binary/binary_linear.cpp.o.d"
  "CMakeFiles/lcrs_binary.dir/binary/bitmatrix.cpp.o"
  "CMakeFiles/lcrs_binary.dir/binary/bitmatrix.cpp.o.d"
  "CMakeFiles/lcrs_binary.dir/binary/input_scale.cpp.o"
  "CMakeFiles/lcrs_binary.dir/binary/input_scale.cpp.o.d"
  "CMakeFiles/lcrs_binary.dir/binary/quantized.cpp.o"
  "CMakeFiles/lcrs_binary.dir/binary/quantized.cpp.o.d"
  "CMakeFiles/lcrs_binary.dir/binary/xnor_gemm.cpp.o"
  "CMakeFiles/lcrs_binary.dir/binary/xnor_gemm.cpp.o.d"
  "liblcrs_binary.a"
  "liblcrs_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
