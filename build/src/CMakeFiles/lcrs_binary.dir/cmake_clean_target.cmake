file(REMOVE_RECURSE
  "liblcrs_binary.a"
)
