
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binary/binarize.cpp" "src/CMakeFiles/lcrs_binary.dir/binary/binarize.cpp.o" "gcc" "src/CMakeFiles/lcrs_binary.dir/binary/binarize.cpp.o.d"
  "/root/repo/src/binary/binary_conv2d.cpp" "src/CMakeFiles/lcrs_binary.dir/binary/binary_conv2d.cpp.o" "gcc" "src/CMakeFiles/lcrs_binary.dir/binary/binary_conv2d.cpp.o.d"
  "/root/repo/src/binary/binary_linear.cpp" "src/CMakeFiles/lcrs_binary.dir/binary/binary_linear.cpp.o" "gcc" "src/CMakeFiles/lcrs_binary.dir/binary/binary_linear.cpp.o.d"
  "/root/repo/src/binary/bitmatrix.cpp" "src/CMakeFiles/lcrs_binary.dir/binary/bitmatrix.cpp.o" "gcc" "src/CMakeFiles/lcrs_binary.dir/binary/bitmatrix.cpp.o.d"
  "/root/repo/src/binary/input_scale.cpp" "src/CMakeFiles/lcrs_binary.dir/binary/input_scale.cpp.o" "gcc" "src/CMakeFiles/lcrs_binary.dir/binary/input_scale.cpp.o.d"
  "/root/repo/src/binary/quantized.cpp" "src/CMakeFiles/lcrs_binary.dir/binary/quantized.cpp.o" "gcc" "src/CMakeFiles/lcrs_binary.dir/binary/quantized.cpp.o.d"
  "/root/repo/src/binary/xnor_gemm.cpp" "src/CMakeFiles/lcrs_binary.dir/binary/xnor_gemm.cpp.o" "gcc" "src/CMakeFiles/lcrs_binary.dir/binary/xnor_gemm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcrs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
