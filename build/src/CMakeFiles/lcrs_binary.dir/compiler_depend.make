# Empty compiler generated dependencies file for lcrs_binary.
# This may be replaced when dependencies are built.
