# Empty dependencies file for lcrs_nn.
# This may be replaced when dependencies are built.
