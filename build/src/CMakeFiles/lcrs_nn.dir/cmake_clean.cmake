file(REMOVE_RECURSE
  "CMakeFiles/lcrs_nn.dir/nn/activations.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/activations.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/batchnorm.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/batchnorm.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/conv2d.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/conv2d.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/dropout.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/dropout.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/linear.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/linear.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/metrics.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/metrics.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/model_io.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/model_io.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/pooling.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/pooling.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/residual.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/residual.cpp.o.d"
  "CMakeFiles/lcrs_nn.dir/nn/sequential.cpp.o"
  "CMakeFiles/lcrs_nn.dir/nn/sequential.cpp.o.d"
  "liblcrs_nn.a"
  "liblcrs_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
