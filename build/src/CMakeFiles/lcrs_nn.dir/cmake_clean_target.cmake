file(REMOVE_RECURSE
  "liblcrs_nn.a"
)
