
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/metrics.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/metrics.cpp.o.d"
  "/root/repo/src/nn/model_io.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/model_io.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/model_io.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/residual.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/residual.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/lcrs_nn.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/lcrs_nn.dir/nn/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcrs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
