file(REMOVE_RECURSE
  "CMakeFiles/lcrs_common.dir/common/bytes.cpp.o"
  "CMakeFiles/lcrs_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/lcrs_common.dir/common/logging.cpp.o"
  "CMakeFiles/lcrs_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/lcrs_common.dir/common/parallel.cpp.o"
  "CMakeFiles/lcrs_common.dir/common/parallel.cpp.o.d"
  "liblcrs_common.a"
  "liblcrs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
