file(REMOVE_RECURSE
  "liblcrs_common.a"
)
