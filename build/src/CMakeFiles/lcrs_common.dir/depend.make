# Empty dependencies file for lcrs_common.
# This may be replaced when dependencies are built.
