# Empty compiler generated dependencies file for lcrs_core.
# This may be replaced when dependencies are built.
