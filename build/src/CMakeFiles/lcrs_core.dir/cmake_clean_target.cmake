file(REMOVE_RECURSE
  "liblcrs_core.a"
)
