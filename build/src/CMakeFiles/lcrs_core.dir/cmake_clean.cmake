file(REMOVE_RECURSE
  "CMakeFiles/lcrs_core.dir/core/checkpoint.cpp.o"
  "CMakeFiles/lcrs_core.dir/core/checkpoint.cpp.o.d"
  "CMakeFiles/lcrs_core.dir/core/composite.cpp.o"
  "CMakeFiles/lcrs_core.dir/core/composite.cpp.o.d"
  "CMakeFiles/lcrs_core.dir/core/entropy.cpp.o"
  "CMakeFiles/lcrs_core.dir/core/entropy.cpp.o.d"
  "CMakeFiles/lcrs_core.dir/core/exit_policy.cpp.o"
  "CMakeFiles/lcrs_core.dir/core/exit_policy.cpp.o.d"
  "CMakeFiles/lcrs_core.dir/core/inference.cpp.o"
  "CMakeFiles/lcrs_core.dir/core/inference.cpp.o.d"
  "CMakeFiles/lcrs_core.dir/core/joint_trainer.cpp.o"
  "CMakeFiles/lcrs_core.dir/core/joint_trainer.cpp.o.d"
  "liblcrs_core.a"
  "liblcrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
