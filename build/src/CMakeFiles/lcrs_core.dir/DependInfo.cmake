
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/CMakeFiles/lcrs_core.dir/core/checkpoint.cpp.o" "gcc" "src/CMakeFiles/lcrs_core.dir/core/checkpoint.cpp.o.d"
  "/root/repo/src/core/composite.cpp" "src/CMakeFiles/lcrs_core.dir/core/composite.cpp.o" "gcc" "src/CMakeFiles/lcrs_core.dir/core/composite.cpp.o.d"
  "/root/repo/src/core/entropy.cpp" "src/CMakeFiles/lcrs_core.dir/core/entropy.cpp.o" "gcc" "src/CMakeFiles/lcrs_core.dir/core/entropy.cpp.o.d"
  "/root/repo/src/core/exit_policy.cpp" "src/CMakeFiles/lcrs_core.dir/core/exit_policy.cpp.o" "gcc" "src/CMakeFiles/lcrs_core.dir/core/exit_policy.cpp.o.d"
  "/root/repo/src/core/inference.cpp" "src/CMakeFiles/lcrs_core.dir/core/inference.cpp.o" "gcc" "src/CMakeFiles/lcrs_core.dir/core/inference.cpp.o.d"
  "/root/repo/src/core/joint_trainer.cpp" "src/CMakeFiles/lcrs_core.dir/core/joint_trainer.cpp.o" "gcc" "src/CMakeFiles/lcrs_core.dir/core/joint_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcrs_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
