# Empty dependencies file for lcrs_tensor.
# This may be replaced when dependencies are built.
