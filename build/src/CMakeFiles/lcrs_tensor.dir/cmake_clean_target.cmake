file(REMOVE_RECURSE
  "liblcrs_tensor.a"
)
