file(REMOVE_RECURSE
  "CMakeFiles/lcrs_tensor.dir/tensor/gemm.cpp.o"
  "CMakeFiles/lcrs_tensor.dir/tensor/gemm.cpp.o.d"
  "CMakeFiles/lcrs_tensor.dir/tensor/im2col.cpp.o"
  "CMakeFiles/lcrs_tensor.dir/tensor/im2col.cpp.o.d"
  "CMakeFiles/lcrs_tensor.dir/tensor/serialize.cpp.o"
  "CMakeFiles/lcrs_tensor.dir/tensor/serialize.cpp.o.d"
  "CMakeFiles/lcrs_tensor.dir/tensor/shape.cpp.o"
  "CMakeFiles/lcrs_tensor.dir/tensor/shape.cpp.o.d"
  "CMakeFiles/lcrs_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/lcrs_tensor.dir/tensor/tensor.cpp.o.d"
  "CMakeFiles/lcrs_tensor.dir/tensor/tensor_ops.cpp.o"
  "CMakeFiles/lcrs_tensor.dir/tensor/tensor_ops.cpp.o.d"
  "liblcrs_tensor.a"
  "liblcrs_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
