file(REMOVE_RECURSE
  "liblcrs_edge.a"
)
