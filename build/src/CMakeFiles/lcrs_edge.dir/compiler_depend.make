# Empty compiler generated dependencies file for lcrs_edge.
# This may be replaced when dependencies are built.
