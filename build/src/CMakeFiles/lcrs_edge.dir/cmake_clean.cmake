file(REMOVE_RECURSE
  "CMakeFiles/lcrs_edge.dir/edge/client.cpp.o"
  "CMakeFiles/lcrs_edge.dir/edge/client.cpp.o.d"
  "CMakeFiles/lcrs_edge.dir/edge/local_runtime.cpp.o"
  "CMakeFiles/lcrs_edge.dir/edge/local_runtime.cpp.o.d"
  "CMakeFiles/lcrs_edge.dir/edge/protocol.cpp.o"
  "CMakeFiles/lcrs_edge.dir/edge/protocol.cpp.o.d"
  "CMakeFiles/lcrs_edge.dir/edge/server.cpp.o"
  "CMakeFiles/lcrs_edge.dir/edge/server.cpp.o.d"
  "CMakeFiles/lcrs_edge.dir/edge/tcp.cpp.o"
  "CMakeFiles/lcrs_edge.dir/edge/tcp.cpp.o.d"
  "liblcrs_edge.a"
  "liblcrs_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
