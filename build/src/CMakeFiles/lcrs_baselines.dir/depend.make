# Empty dependencies file for lcrs_baselines.
# This may be replaced when dependencies are built.
