file(REMOVE_RECURSE
  "CMakeFiles/lcrs_baselines.dir/baselines/approach.cpp.o"
  "CMakeFiles/lcrs_baselines.dir/baselines/approach.cpp.o.d"
  "CMakeFiles/lcrs_baselines.dir/baselines/edge_only.cpp.o"
  "CMakeFiles/lcrs_baselines.dir/baselines/edge_only.cpp.o.d"
  "CMakeFiles/lcrs_baselines.dir/baselines/edgent.cpp.o"
  "CMakeFiles/lcrs_baselines.dir/baselines/edgent.cpp.o.d"
  "CMakeFiles/lcrs_baselines.dir/baselines/lcrs_approach.cpp.o"
  "CMakeFiles/lcrs_baselines.dir/baselines/lcrs_approach.cpp.o.d"
  "CMakeFiles/lcrs_baselines.dir/baselines/mobile_only.cpp.o"
  "CMakeFiles/lcrs_baselines.dir/baselines/mobile_only.cpp.o.d"
  "CMakeFiles/lcrs_baselines.dir/baselines/neurosurgeon.cpp.o"
  "CMakeFiles/lcrs_baselines.dir/baselines/neurosurgeon.cpp.o.d"
  "liblcrs_baselines.a"
  "liblcrs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
