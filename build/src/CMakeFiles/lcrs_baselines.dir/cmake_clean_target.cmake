file(REMOVE_RECURSE
  "liblcrs_baselines.a"
)
