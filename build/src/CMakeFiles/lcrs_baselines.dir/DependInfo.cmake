
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/approach.cpp" "src/CMakeFiles/lcrs_baselines.dir/baselines/approach.cpp.o" "gcc" "src/CMakeFiles/lcrs_baselines.dir/baselines/approach.cpp.o.d"
  "/root/repo/src/baselines/edge_only.cpp" "src/CMakeFiles/lcrs_baselines.dir/baselines/edge_only.cpp.o" "gcc" "src/CMakeFiles/lcrs_baselines.dir/baselines/edge_only.cpp.o.d"
  "/root/repo/src/baselines/edgent.cpp" "src/CMakeFiles/lcrs_baselines.dir/baselines/edgent.cpp.o" "gcc" "src/CMakeFiles/lcrs_baselines.dir/baselines/edgent.cpp.o.d"
  "/root/repo/src/baselines/lcrs_approach.cpp" "src/CMakeFiles/lcrs_baselines.dir/baselines/lcrs_approach.cpp.o" "gcc" "src/CMakeFiles/lcrs_baselines.dir/baselines/lcrs_approach.cpp.o.d"
  "/root/repo/src/baselines/mobile_only.cpp" "src/CMakeFiles/lcrs_baselines.dir/baselines/mobile_only.cpp.o" "gcc" "src/CMakeFiles/lcrs_baselines.dir/baselines/mobile_only.cpp.o.d"
  "/root/repo/src/baselines/neurosurgeon.cpp" "src/CMakeFiles/lcrs_baselines.dir/baselines/neurosurgeon.cpp.o" "gcc" "src/CMakeFiles/lcrs_baselines.dir/baselines/neurosurgeon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcrs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
