# Empty dependencies file for lcrs_sim.
# This may be replaced when dependencies are built.
