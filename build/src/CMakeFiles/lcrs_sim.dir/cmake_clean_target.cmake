file(REMOVE_RECURSE
  "liblcrs_sim.a"
)
