file(REMOVE_RECURSE
  "CMakeFiles/lcrs_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/lcrs_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/lcrs_sim.dir/sim/device_model.cpp.o"
  "CMakeFiles/lcrs_sim.dir/sim/device_model.cpp.o.d"
  "CMakeFiles/lcrs_sim.dir/sim/network_model.cpp.o"
  "CMakeFiles/lcrs_sim.dir/sim/network_model.cpp.o.d"
  "CMakeFiles/lcrs_sim.dir/sim/queueing.cpp.o"
  "CMakeFiles/lcrs_sim.dir/sim/queueing.cpp.o.d"
  "liblcrs_sim.a"
  "liblcrs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
