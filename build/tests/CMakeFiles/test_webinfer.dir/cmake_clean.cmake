file(REMOVE_RECURSE
  "CMakeFiles/test_webinfer.dir/test_webinfer.cpp.o"
  "CMakeFiles/test_webinfer.dir/test_webinfer.cpp.o.d"
  "test_webinfer"
  "test_webinfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_webinfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
