# Empty compiler generated dependencies file for test_webinfer.
# This may be replaced when dependencies are built.
