file(REMOVE_RECURSE
  "CMakeFiles/test_binary_layers.dir/test_binary_layers.cpp.o"
  "CMakeFiles/test_binary_layers.dir/test_binary_layers.cpp.o.d"
  "test_binary_layers"
  "test_binary_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
