# Empty compiler generated dependencies file for test_binary_layers.
# This may be replaced when dependencies are built.
