file(REMOVE_RECURSE
  "CMakeFiles/fig6_avg_latency.dir/fig6_avg_latency.cpp.o"
  "CMakeFiles/fig6_avg_latency.dir/fig6_avg_latency.cpp.o.d"
  "fig6_avg_latency"
  "fig6_avg_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_avg_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
