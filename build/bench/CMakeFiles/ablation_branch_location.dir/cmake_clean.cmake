file(REMOVE_RECURSE
  "CMakeFiles/ablation_branch_location.dir/ablation_branch_location.cpp.o"
  "CMakeFiles/ablation_branch_location.dir/ablation_branch_location.cpp.o.d"
  "ablation_branch_location"
  "ablation_branch_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_branch_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
