# Empty compiler generated dependencies file for ablation_branch_location.
# This may be replaced when dependencies are built.
