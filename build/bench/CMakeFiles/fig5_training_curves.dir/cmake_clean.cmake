file(REMOVE_RECURSE
  "CMakeFiles/fig5_training_curves.dir/fig5_training_curves.cpp.o"
  "CMakeFiles/fig5_training_curves.dir/fig5_training_curves.cpp.o.d"
  "fig5_training_curves"
  "fig5_training_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_training_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
