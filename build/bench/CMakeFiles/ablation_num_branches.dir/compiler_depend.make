# Empty compiler generated dependencies file for ablation_num_branches.
# This may be replaced when dependencies are built.
