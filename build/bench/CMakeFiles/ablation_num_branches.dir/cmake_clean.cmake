file(REMOVE_RECURSE
  "CMakeFiles/ablation_num_branches.dir/ablation_num_branches.cpp.o"
  "CMakeFiles/ablation_num_branches.dir/ablation_num_branches.cpp.o.d"
  "ablation_num_branches"
  "ablation_num_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_num_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
