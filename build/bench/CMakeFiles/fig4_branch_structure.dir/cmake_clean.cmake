file(REMOVE_RECURSE
  "CMakeFiles/fig4_branch_structure.dir/fig4_branch_structure.cpp.o"
  "CMakeFiles/fig4_branch_structure.dir/fig4_branch_structure.cpp.o.d"
  "fig4_branch_structure"
  "fig4_branch_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_branch_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
