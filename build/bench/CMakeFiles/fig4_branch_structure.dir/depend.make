# Empty dependencies file for fig4_branch_structure.
# This may be replaced when dependencies are built.
