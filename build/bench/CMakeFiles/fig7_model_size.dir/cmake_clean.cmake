file(REMOVE_RECURSE
  "CMakeFiles/fig7_model_size.dir/fig7_model_size.cpp.o"
  "CMakeFiles/fig7_model_size.dir/fig7_model_size.cpp.o.d"
  "fig7_model_size"
  "fig7_model_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_model_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
