# Empty compiler generated dependencies file for fig7_model_size.
# This may be replaced when dependencies are built.
