file(REMOVE_RECURSE
  "CMakeFiles/table3_comm.dir/table3_comm.cpp.o"
  "CMakeFiles/table3_comm.dir/table3_comm.cpp.o.d"
  "table3_comm"
  "table3_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
