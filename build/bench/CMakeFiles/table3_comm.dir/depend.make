# Empty dependencies file for table3_comm.
# This may be replaced when dependencies are built.
