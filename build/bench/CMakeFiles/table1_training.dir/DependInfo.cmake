
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_training.cpp" "bench/CMakeFiles/table1_training.dir/table1_training.cpp.o" "gcc" "bench/CMakeFiles/table1_training.dir/table1_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcrs_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_webinfer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
