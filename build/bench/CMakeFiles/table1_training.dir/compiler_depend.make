# Empty compiler generated dependencies file for table1_training.
# This may be replaced when dependencies are built.
