file(REMOVE_RECURSE
  "CMakeFiles/table1_training.dir/table1_training.cpp.o"
  "CMakeFiles/table1_training.dir/table1_training.cpp.o.d"
  "table1_training"
  "table1_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
