// Quickstart: build a composite LeNet, jointly train it on a synthetic
// MNIST-like dataset, screen the exit threshold, and run collaborative
// inference (Algorithm 2) -- the whole LCRS flow in ~40 lines of API.
//
//   ./quickstart [epochs]
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "core/composite.h"
#include "core/inference.h"
#include "core/joint_trainer.h"
#include "data/synthetic.h"

using namespace lcrs;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::int64_t epochs = argc > 1 ? std::atoll(argv[1]) : 3;

  // 1. Data: a synthetic MNIST-shaped dataset (see DESIGN.md).
  Rng rng(2024);
  const data::TrainTest tt =
      data::make_synthetic_pair(data::mnist_like(), 1200, 300, rng);

  // 2. Model: LeNet main branch + default binary branch, sharing conv1.
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 1.0};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);

  // 3. Joint training (Algorithm 1): one loss over both branches.
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  core::JointTrainer trainer(net, tc);
  const core::TrainResult result = trainer.train(tt.train, tt.test, rng);

  std::printf("\nmain branch accuracy:   %.2f%%\n",
              100.0 * result.main_accuracy);
  std::printf("binary branch accuracy: %.2f%%\n",
              100.0 * result.binary_accuracy);
  std::printf("screened tau:           %.4f (exit fraction %.0f%%)\n\n",
              result.exit_stats.tau,
              100.0 * result.exit_stats.exit_fraction);

  // 4. Collaborative inference (Algorithm 2) on a few test samples.
  const core::ExitPolicy policy{result.exit_stats.tau};
  std::int64_t correct = 0, exits = 0;
  const std::int64_t n = 50;
  for (std::int64_t i = 0; i < n; ++i) {
    const core::InferenceResult r =
        core::collaborative_infer(net, policy, tt.test.image(i));
    if (r.predicted == tt.test.labels[static_cast<std::size_t>(i)]) ++correct;
    if (r.exit_point == core::ExitPoint::kBinaryBranch) ++exits;
  }
  std::printf("collaborative inference over %lld samples: %.0f%% correct, "
              "%.0f%% exited at the\nbinary branch (browser); the rest were "
              "completed by the main branch (edge).\n",
              static_cast<long long>(n),
              100.0 * static_cast<double>(correct) / static_cast<double>(n),
              100.0 * static_cast<double>(exits) / static_cast<double>(n));
  return 0;
}
