// lcrs_tool — command-line front end for the whole LCRS workflow.
//
//   lcrs_tool train <arch> <dataset> <out.ckpt> [epochs] [train_n]
//       Joint-train a composite network on a synthetic dataset, screen
//       tau, and write a self-contained checkpoint.
//
//   lcrs_tool export <in.ckpt> <out.blob>
//       Convert a checkpoint's browser part (conv1 + binary branch) into
//       the webinfer blob a browser would download.
//
//   lcrs_tool eval <in.ckpt> [n_samples]
//       Report branch accuracies, exit statistics and a per-class
//       confusion summary on a fresh test set.
//
//   lcrs_tool bundle <in.ckpt> <out.bundle> <model_id> <version> [name]
//       Wrap a checkpoint into a versioned model bundle the serve
//       command (and its hot-swap `load` stdin command) can install.
//
//   lcrs_tool serve <in.ckpt|in.bundle> <port> [ops_port]
//       Host the main branch on a TCP edge server until EOF on stdin.
//       A bundle is installed under its own model id and aliased to the
//       default id 0. While serving, stdin accepts registry commands:
//       `load <bundle>` hot-swaps a model in, `evict <id>` removes one,
//       `list` prints the registry. With ops_port (0 = ephemeral) the
//       ops plane serves /metrics, /healthz, /readyz, /statusz, /tracez
//       on a side port.
//
//   lcrs_tool models <ops_port>
//       Print the live server's model registry (id, version, name) and
//       drain state, scraped from /statusz.
//
//   lcrs_tool scrape <ops_port> [path]
//       One HTTP GET against a live ops port (default path /metrics);
//       prints the body, exits nonzero unless the status is 200.
//
//   lcrs_tool watch <ops_port> [count] [interval_ms]
//       Poll /metrics and print one compact serving line per interval
//       (requests, req/s, queue depth, connections, rejected busy).
//
//   lcrs_tool classify <in.ckpt> [n_samples]
//       Run Algorithm 2 end-to-end against an in-process edge server
//       through the exported blob, printing one line per recognition.
//
//   lcrs_tool metrics <in.ckpt> [n_samples] [text|json] [trace.jsonl]
//       Run collaborative classifications with profiling on, then dump
//       the process-wide metrics snapshot (and, optionally, every trace
//       span as JSONL) -- the observability smoke test.
//
// Architectures: LeNet | AlexNet | ResNet18 | VGG16.
// Datasets:      MNIST | FashionMNIST | CIFAR10 | CIFAR100.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include <thread>

#include "common/logging.h"
#include "common/obs/metrics.h"
#include "common/obs/ops_server.h"
#include "common/obs/trace.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "core/entropy.h"
#include "core/joint_trainer.h"
#include "data/synthetic.h"
#include "edge/client.h"
#include "edge/model_registry.h"
#include "edge/server.h"
#include "nn/metrics.h"
#include "tensor/tensor_ops.h"
#include "webinfer/export.h"

using namespace lcrs;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lcrs_tool train <arch> <dataset> <out.ckpt> [epochs] "
               "[train_n]\n"
               "  lcrs_tool export <in.ckpt> <out.blob>\n"
               "  lcrs_tool eval <in.ckpt> [n_samples]\n"
               "  lcrs_tool bundle <in.ckpt> <out.bundle> <model_id> "
               "<version> [name]\n"
               "  lcrs_tool serve <in.ckpt|in.bundle> <port> [ops_port]\n"
               "  lcrs_tool classify <in.ckpt> [n_samples]\n"
               "  lcrs_tool metrics <in.ckpt> [n_samples] [text|json] "
               "[trace.jsonl]\n"
               "  lcrs_tool models <ops_port>\n"
               "  lcrs_tool scrape <ops_port> [path]\n"
               "  lcrs_tool watch <ops_port> [count] [interval_ms]\n");
  return 2;
}

data::Dataset fresh_test_set(const core::Checkpoint& ckpt, std::int64_t n,
                             std::uint64_t seed) {
  // Rebuild the dataset family from the stored geometry.
  for (const char* name : {"MNIST", "FashionMNIST", "CIFAR10", "CIFAR100"}) {
    const data::SyntheticSpec spec = data::spec_by_name(name);
    if (spec.channels == ckpt.config.in_channels &&
        spec.height == ckpt.config.in_h &&
        spec.num_classes == ckpt.config.num_classes) {
      Rng rng(seed);
      return data::make_synthetic(spec, n, rng);
    }
  }
  throw InvalidArgument("checkpoint geometry matches no known dataset");
}

int cmd_train(int argc, char** argv) {
  if (argc < 5) return usage();
  const models::Arch arch = models::arch_by_name(argv[2]);
  const data::SyntheticSpec spec = data::spec_by_name(argv[3]);
  const std::string out_path = argv[4];
  const std::int64_t epochs = argc > 5 ? std::atoll(argv[5]) : 3;
  const std::int64_t train_n = argc > 6 ? std::atoll(argv[6]) : 1000;

  Rng rng(42);
  models::ModelConfig cfg{arch, spec.channels, spec.height, spec.width,
                          spec.num_classes,
                          arch == models::Arch::kLeNet ? 1.0 : 0.25};
  cfg.dropout = 0.2;
  const models::BinaryBranchConfig bc = models::default_branch(arch);
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, bc, rng);

  const data::TrainTest tt = data::make_synthetic_pair(
      spec, train_n, std::max<std::int64_t>(200, spec.num_classes * 2), rng);
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  if (arch != models::Arch::kLeNet) {
    tc.lr_main = 2e-3;
    tc.weight_decay_main = 3e-4;
  }
  core::JointTrainer trainer(net, tc);
  const core::TrainResult result = trainer.train(tt.train, tt.test, rng);

  core::Checkpoint ckpt{cfg, bc, result.exit_stats.tau};
  core::save_composite_file(net, ckpt, out_path);
  std::printf("saved %s: M_Acc %.2f%% B_Acc %.2f%% tau %.4f exit %.0f%%\n",
              out_path.c_str(), 100.0 * result.main_accuracy,
              100.0 * result.binary_accuracy, result.exit_stats.tau,
              100.0 * result.exit_stats.exit_fraction);
  return 0;
}

int cmd_export(int argc, char** argv) {
  if (argc < 4) return usage();
  core::LoadedComposite loaded = core::load_composite_file(argv[2]);
  const webinfer::WebModel model = webinfer::export_browser_model(
      loaded.net, loaded.ckpt.config.in_channels, loaded.ckpt.config.in_h,
      loaded.ckpt.config.in_w);
  const auto blob = webinfer::serialize(model);
  write_file(argv[3], blob);
  std::printf("wrote %s: %.1f KB, %zu ops (%lld shared), tau %.4f\n",
              argv[3], static_cast<double>(blob.size()) / 1024.0,
              model.ops.size(),
              static_cast<long long>(model.shared_op_count),
              loaded.ckpt.tau);
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 3) return usage();
  core::LoadedComposite loaded = core::load_composite_file(argv[2]);
  const std::int64_t n = argc > 3 ? std::atoll(argv[3]) : 400;
  const data::Dataset test = fresh_test_set(loaded.ckpt, n, 777);

  nn::ConfusionMatrix main_cm(test.num_classes);
  nn::ConfusionMatrix bin_cm(test.num_classes);
  std::int64_t exits = 0;
  const core::ExitPolicy policy{loaded.ckpt.tau};
  for (std::int64_t begin = 0; begin < test.size(); begin += 64) {
    const std::int64_t count = std::min<std::int64_t>(64, test.size() - begin);
    const Tensor x = test.images.slice_outer(begin, begin + count);
    const auto labels = test.label_slice(begin, count);
    const core::CompositeOutput out = loaded.net.forward(x, false);
    main_cm.add_batch(out.main_logits, labels);
    bin_cm.add_batch(out.binary_logits, labels);
    const Tensor probs = softmax_rows(out.binary_logits);
    for (std::int64_t i = 0; i < count; ++i) {
      if (policy.should_exit(core::normalized_entropy(
              probs.data() + i * probs.dim(1), probs.dim(1)))) {
        ++exits;
      }
    }
  }
  std::printf("over %lld fresh samples:\n", static_cast<long long>(n));
  std::printf("  main:   acc %.2f%%  balanced %.2f%%\n",
              100.0 * main_cm.accuracy(),
              100.0 * main_cm.balanced_accuracy());
  std::printf("  binary: acc %.2f%%  balanced %.2f%%\n",
              100.0 * bin_cm.accuracy(),
              100.0 * bin_cm.balanced_accuracy());
  std::printf("  exit fraction at tau %.4f: %.0f%%\n", loaded.ckpt.tau,
              100.0 * static_cast<double>(exits) /
                  static_cast<double>(test.size()));
  return 0;
}

edge::CompletionFn completion_for(core::CompositeNetwork& net) {
  return [&net](const Tensor& shared) {
    const Tensor logits = net.forward_main_from_shared(shared);
    edge::CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  };
}

int cmd_bundle(int argc, char** argv) {
  if (argc < 6) return usage();
  core::LoadedComposite loaded = core::load_composite_file(argv[2]);
  core::BundleInfo info;
  info.model_id = static_cast<std::uint32_t>(std::atoll(argv[4]));
  info.version = static_cast<std::uint32_t>(std::atoll(argv[5]));
  info.name = argc > 6 ? argv[6]
                       : models::arch_name(loaded.ckpt.config.arch);
  core::save_bundle_file(loaded.net, loaded.ckpt, info, argv[3]);
  std::printf("wrote %s: model %u v%u \"%s\" (tau %.4f)\n", argv[3],
              info.model_id, info.version, info.name.c_str(),
              loaded.ckpt.tau);
  return 0;
}

/// Installs a bundle into `registry` under its own model id. With
/// `alias_default`, the same prepared snapshot (network, completion) is
/// also installed as model 0, so untagged v1/v2 clients are served by it.
void install_bundle(edge::ModelRegistry& registry,
                    core::LoadedBundle bundle, bool alias_default) {
  const core::BundleInfo info = bundle.info;
  std::shared_ptr<const edge::ServableModel> m =
      edge::ServableModel::from_loaded(info, std::move(bundle.loaded));
  registry.install(m);
  std::printf("installed model %u v%u \"%s\"\n", info.model_id,
              info.version, info.name.c_str());
  if (alias_default && info.model_id != 0) {
    auto alias = std::make_shared<edge::ServableModel>();
    alias->model_id = 0;
    alias->version = info.version;
    alias->name = info.name;
    alias->complete = m->complete;
    alias->net = m->net;
    registry.install(std::move(alias));
  }
}

int cmd_serve(int argc, char** argv) {
  if (argc < 4) return usage();
  const int port = std::atoi(argv[3]);
  edge::ServerOptions opts;
  if (argc > 4) opts.ops_port = std::atoi(argv[4]);

  // Checkpoints keep the exact single-model serving path; bundles go
  // through a registry so more models can be hot-swapped in over stdin.
  std::optional<core::LoadedComposite> loaded;  // completion_for keepalive
  std::unique_ptr<edge::EdgeServer> server;
  const std::vector<std::uint8_t> bytes = read_file(argv[2]);
  if (core::looks_like_bundle(bytes)) {
    auto registry = std::make_shared<edge::ModelRegistry>();
    install_bundle(*registry, core::load_bundle(bytes),
                   /*alias_default=*/true);
    server = std::make_unique<edge::EdgeServer>(
        static_cast<std::uint16_t>(port), std::move(registry), opts);
  } else {
    loaded = core::load_composite(bytes);
    server = std::make_unique<edge::EdgeServer>(
        static_cast<std::uint16_t>(port), completion_for(loaded->net),
        opts);
  }
  std::printf("serving main branch on 127.0.0.1:%u -- press Ctrl-D to "
              "stop\n",
              server->port());
  if (server->ops_port() != 0) {
    std::printf("ops plane on 127.0.0.1:%u (/metrics /healthz /readyz "
                "/statusz /tracez)\n",
                server->ops_port());
  }
  std::fflush(stdout);  // scripts poll the port lines before stdin closes
  // Registry command loop until stdin closes; unknown lines print help,
  // so plain `... < /dev/null` or a held-open pipe still just serves.
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream iss(line);
    std::string cmd, arg;
    if (!(iss >> cmd)) continue;
    try {
      if (cmd == "load" && (iss >> arg)) {
        install_bundle(*server->registry(), core::load_bundle_file(arg),
                       /*alias_default=*/false);
      } else if (cmd == "evict" && (iss >> arg)) {
        const auto id = static_cast<std::uint32_t>(std::atoll(arg.c_str()));
        if (server->registry()->evict(id)) {
          std::printf("evicted model %u\n", id);
        } else {
          std::printf("no model %u registered\n", id);
        }
      } else if (cmd == "list") {
        for (const auto& m : server->registry()->list()) {
          std::printf("model %u v%u \"%s\"\n", m->model_id, m->version,
                      m->name.c_str());
        }
        std::printf("live incl. draining: %lld\n",
                    static_cast<long long>(
                        server->registry()->live_models()));
      } else {
        std::printf("commands: load <bundle> | evict <id> | list "
                    "(EOF stops)\n");
      }
    } catch (const Error& e) {
      std::printf("error: %s\n", e.what());
    }
    std::fflush(stdout);
  }
  const edge::ServerStats stats = server->stats();
  std::printf("served %lld requests over %lld connections "
              "(%.2f ms mean completion, %lld connection errors)\n",
              static_cast<long long>(stats.requests_served),
              static_cast<long long>(stats.connections_accepted),
              stats.mean_completion_ms(),
              static_cast<long long>(stats.connection_errors));
  return 0;
}

int cmd_classify(int argc, char** argv) {
  if (argc < 3) return usage();
  core::LoadedComposite loaded = core::load_composite_file(argv[2]);
  const std::int64_t n = argc > 3 ? std::atoll(argv[3]) : 12;
  const data::Dataset test = fresh_test_set(loaded.ckpt, n, 991);

  edge::EdgeServer server(0, completion_for(loaded.net));
  const webinfer::WebModel model = webinfer::export_browser_model(
      loaded.net, loaded.ckpt.config.in_channels, loaded.ckpt.config.in_h,
      loaded.ckpt.config.in_w);
  edge::BrowserClient client(webinfer::Engine(model),
                             core::ExitPolicy{loaded.ckpt.tau},
                             server.port());
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    const edge::ClientResult r = client.classify(test.image(i));
    if (r.label == test.labels[static_cast<std::size_t>(i)]) ++correct;
    std::printf("sample %3lld: predicted %2lld truth %2lld entropy %.3f "
                "%s\n",
                static_cast<long long>(i), static_cast<long long>(r.label),
                static_cast<long long>(
                    test.labels[static_cast<std::size_t>(i)]),
                r.entropy, core::to_string(r.exit_point));
  }
  const edge::ClientStats& cs = client.stats();
  std::printf("accuracy %.0f%%, exit fraction %.0f%%, fallbacks %lld, "
              "retries %lld\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(test.size()),
              100.0 * client.exit_fraction(),
              static_cast<long long>(cs.fallbacks),
              static_cast<long long>(cs.retries));
  return 0;
}

int cmd_metrics(int argc, char** argv) {
  if (argc < 3) return usage();
  core::LoadedComposite loaded = core::load_composite_file(argv[2]);
  const std::int64_t n = argc > 3 ? std::atoll(argv[3]) : 32;
  const std::string format = argc > 4 ? argv[4] : "text";
  if (format != "text" && format != "json") return usage();
  std::unique_ptr<obs::JsonlFileSink> sink;
  std::optional<obs::ScopedTraceSink> scoped_sink;
  if (argc > 5) {
    sink = std::make_unique<obs::JsonlFileSink>(argv[5]);
    scoped_sink.emplace(sink.get());
  }
  const data::Dataset test = fresh_test_set(loaded.ckpt, n, 991);

  edge::EdgeServer server(0, completion_for(loaded.net));
  const webinfer::WebModel model = webinfer::export_browser_model(
      loaded.net, loaded.ckpt.config.in_channels, loaded.ckpt.config.in_h,
      loaded.ckpt.config.in_w);
  edge::BrowserClient client(webinfer::Engine(model),
                             core::ExitPolicy{loaded.ckpt.tau},
                             server.port());
  const obs::ScopedProfiling profiling;  // per-op webinfer timings too
  for (std::int64_t i = 0; i < test.size(); ++i) {
    (void)client.classify(test.image(i));
  }
  server.stop();  // settle the server-side counters before the snapshot

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  if (format == "json") {
    std::printf("%s\n", snap.to_json().c_str());
  } else {
    std::printf("%s", snap.to_text().c_str());
  }
  if (sink) sink->flush();
  return 0;
}

int cmd_scrape(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));
  const std::string path = argc > 3 ? argv[3] : "/metrics";
  const obs::HttpGetResult r = obs::http_get(port, path);
  std::fwrite(r.body.data(), 1, r.body.size(), stdout);
  if (r.status != 200) {
    std::fprintf(stderr, "scrape %s: HTTP %d\n", path.c_str(), r.status);
    return 1;
  }
  return 0;
}

int cmd_models(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));
  const obs::HttpGetResult r = obs::http_get(port, "/statusz");
  if (r.status != 200) {
    std::fprintf(stderr, "models: HTTP %d from /statusz\n", r.status);
    return 1;
  }
  // /statusz is flat JSON; pull the registry fields out with string
  // scans (good enough for a glanceable CLI view, like cmd_watch).
  const std::string& body = r.body;
  std::size_t pos = body.find("\"models\":[");
  if (pos == std::string::npos) {
    std::fprintf(stderr, "models: /statusz has no model registry\n");
    return 1;
  }
  while ((pos = body.find("{\"id\":", pos)) != std::string::npos) {
    const std::size_t end = body.find('}', pos);
    if (end == std::string::npos) break;
    std::printf("%s\n", body.substr(pos, end - pos + 1).c_str());
    pos = end + 1;
  }
  const auto number_after = [&body](const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = body.find(needle);
    return at == std::string::npos
               ? 0.0
               : std::atof(body.c_str() + at + needle.size());
  };
  std::printf("live incl. draining: %.0f\n", number_after("models_live"));
  std::printf("rejected unknown-model requests: %.0f\n",
              number_after("rejected_unknown_model"));
  return 0;
}

/// First sample value for `name` in a Prometheus exposition body, or 0.
double sample_value(const std::string& body, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t pos = 0;
  while ((pos = body.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || body[pos - 1] == '\n') {
      return std::atof(body.c_str() + pos + needle.size());
    }
    pos += needle.size();
  }
  return 0.0;
}

int cmd_watch(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));
  const std::int64_t count = argc > 3 ? std::atoll(argv[3]) : 10;
  const double interval_ms = argc > 4 ? std::atof(argv[4]) : 1000.0;
  double prev_requests = 0.0;
  Stopwatch watch;
  double prev_s = 0.0;
  for (std::int64_t i = 0; i < count; ++i) {
    const obs::HttpGetResult r = obs::http_get(port, "/metrics");
    if (r.status != 200) {
      std::fprintf(stderr, "watch: HTTP %d from /metrics\n", r.status);
      return 1;
    }
    const double requests =
        sample_value(r.body, "lcrs_edge_server_requests");
    const double now_s = watch.seconds();
    const double rate = i == 0 || now_s <= prev_s
                            ? 0.0
                            : (requests - prev_requests) / (now_s - prev_s);
    std::printf("requests %10.0f  (%8.1f req/s)  queue %4.0f  "
                "active_conns %4.0f  busy %6.0f  uptime %7.1fs\n",
                requests, rate,
                sample_value(r.body, "lcrs_edge_server_queue_depth"),
                sample_value(r.body, "lcrs_edge_server_active_connections"),
                sample_value(r.body, "lcrs_edge_server_rejected_busy"),
                sample_value(r.body, "lcrs_process_uptime_seconds"));
    std::fflush(stdout);
    prev_requests = requests;
    prev_s = now_s;
    if (i + 1 < count) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(interval_ms));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "train") return cmd_train(argc, argv);
    if (cmd == "export") return cmd_export(argc, argv);
    if (cmd == "eval") return cmd_eval(argc, argv);
    if (cmd == "bundle") return cmd_bundle(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "models") return cmd_models(argc, argv);
    if (cmd == "classify") return cmd_classify(argc, argv);
    if (cmd == "metrics") return cmd_metrics(argc, argv);
    if (cmd == "scrape") return cmd_scrape(argc, argv);
    if (cmd == "watch") return cmd_watch(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
