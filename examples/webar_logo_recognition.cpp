// Web-AR logo recognition (paper Sec. V-C): the China Mobile / FenJiu
// case study. Generates a synthetic brand-logo dataset, expands it with
// the paper's augmentation pipeline, jointly trains a composite ResNet18,
// and replays a scan -> recognize -> render loop with per-stage latency
// from the calibrated device/link simulation.
//
//   ./webar_logo_recognition [scans]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "core/joint_trainer.h"
#include "data/image_io.h"
#include "data/logo.h"
#include "edge/local_runtime.h"

using namespace lcrs;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::int64_t scans = argc > 1 ? std::atoll(argv[1]) : 12;

  // Brand dataset: clean renders expanded by rotation / translation /
  // zoom / flips / colour perturbation, as in the paper.
  data::LogoSpec spec;
  spec.num_brands = 8;
  spec.base_per_brand = 6;
  spec.augment_copies = 10;
  Rng rng(7);
  const data::LogoData logos = data::make_logo_data(spec, rng);
  std::printf("brands:");
  for (const auto& name : logos.names) std::printf(" %s", name.c_str());
  std::printf("\ntrain %lld / test %lld samples\n",
              static_cast<long long>(logos.train.size()),
              static_cast<long long>(logos.test.size()));

  // Dump a contact sheet of augmented scans (the repo's Fig. 9).
  data::write_image_grid("logo_scans.ppm", logos.train.images,
                         std::min<std::int64_t>(16, logos.train.size()), 4);
  std::printf("wrote logo_scans.ppm (augmented training scans)\n\n");

  // Composite ResNet18 (width-scaled for CPU training).
  const models::ModelConfig cfg{models::Arch::kResNet18, 3, 32, 32,
                                spec.num_brands, 0.25};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 32;
  tc.lr_main = 3e-3;          // deep-net settings (see bench_util.h)
  tc.weight_decay_main = 3e-4;
  core::JointTrainer trainer(net, tc);
  const core::TrainResult result = trainer.train(logos.train, logos.test, rng);
  std::printf("\nM_Acc %.1f%%  B_Acc %.1f%%  tau %.4f\n\n",
              100.0 * result.main_accuracy, 100.0 * result.binary_accuracy,
              result.exit_stats.tau);

  // Scan loop with the simulated browser/edge/4G timeline.
  edge::LocalRuntime runtime(net, core::ExitPolicy{result.exit_stats.tau},
                             sim::CostModel::paper_default(),
                             Shape{3, 32, 32});
  std::printf("%-5s %-12s %-12s %8s %8s %8s %8s %9s\n", "scan", "truth",
              "recognized", "browser", "upload", "edge", "reply", "total");
  Rng scan_rng(99);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < scans; ++i) {
    const std::int64_t idx = scan_rng.randint(0, logos.test.size() - 1);
    const edge::SimStep step =
        runtime.classify(logos.test.image(idx), scan_rng);
    const std::int64_t truth =
        logos.test.labels[static_cast<std::size_t>(idx)];
    if (step.label == truth) ++correct;
    std::printf("%-5lld %-12s %-12s %7.1fms %7.1fms %7.1fms %7.1fms %8.1fms"
                " %s\n",
                static_cast<long long>(i),
                logos.names[static_cast<std::size_t>(truth)].c_str(),
                step.label >= 0
                    ? logos.names[static_cast<std::size_t>(step.label)]
                          .c_str()
                    : "?",
                step.browser_ms, step.upload_ms, step.edge_ms,
                step.download_ms, step.total_ms(),
                step.exit_point == core::ExitPoint::kBinaryBranch
                    ? "[LCRS-B]"
                    : "[LCRS-M]");
  }
  std::printf("\n%lld/%lld scans recognized correctly; browser model "
              "payload %.2f MB,\namortized load %.1f ms per scan.\n",
              static_cast<long long>(correct),
              static_cast<long long>(scans),
              static_cast<double>(runtime.browser_model_bytes()) /
                  (1024.0 * 1024.0),
              runtime.amortized_load_ms());
  return 0;
}
