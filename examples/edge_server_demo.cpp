// Live edge-server demo (paper Fig. 1/8): a real TCP edge server hosting
// the main branch, and a browser client running the exported webinfer
// engine (conv1 + binary branch). Confident samples exit locally; the
// rest upload their conv1 features over the socket for completion.
//
//   ./edge_server_demo [samples]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "core/joint_trainer.h"
#include "data/synthetic.h"
#include "edge/client.h"
#include "edge/server.h"
#include "tensor/tensor_ops.h"
#include "webinfer/export.h"

using namespace lcrs;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::int64_t samples = argc > 1 ? std::atoll(argv[1]) : 30;

  // Train a small composite so the exit decisions are meaningful.
  Rng rng(11);
  const data::TrainTest tt =
      data::make_synthetic_pair(data::mnist_like(), 1000, 250, rng);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 1.0};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 32;
  core::JointTrainer trainer(net, tc);
  const core::TrainResult result = trainer.train(tt.train, tt.test, rng);

  // Export the browser part; this byte blob is exactly what the paper's
  // Emscripten pipeline would ship to the web page.
  const webinfer::WebModel web_model =
      webinfer::export_browser_model(net, 1, 28, 28);
  const auto blob = webinfer::serialize(web_model);
  std::printf("\nbrowser blob: %.1f KB (%zu ops, %lld shared)\n",
              static_cast<double>(blob.size()) / 1024.0,
              web_model.ops.size(),
              static_cast<long long>(web_model.shared_op_count));

  // Edge server on an ephemeral loopback port, serving the main branch.
  edge::EdgeServer server(0, [&](const Tensor& shared) {
    const Tensor logits = net.forward_main_from_shared(shared);
    edge::CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  });
  std::printf("edge server listening on 127.0.0.1:%u\n\n", server.port());

  // Browser client: loads the blob, classifies with Algorithm 2. The
  // screened tau would let almost everything exit locally on this easy
  // dataset, so the demo uses a stricter threshold to exercise both
  // paths -- browser exits AND socket completions.
  const double demo_tau = std::min(result.exit_stats.tau, 0.02);
  std::printf("screened tau %.3f; using stricter demo tau %.3f\n\n",
              result.exit_stats.tau, demo_tau);
  // Bound every edge completion: 3 attempts, capped backoff, 250 ms
  // total budget, and binary-branch fallback when the edge is gone.
  edge::RetryPolicy retry;
  retry.deadline_ms = 250.0;
  edge::BrowserClient client(webinfer::Engine::from_bytes(blob),
                             core::ExitPolicy{demo_tau}, server.port(),
                             retry);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < samples; ++i) {
    const edge::ClientResult r = client.classify(tt.test.image(i));
    if (r.label == tt.test.labels[static_cast<std::size_t>(i)]) ++correct;
    if (i < 10) {
      std::printf("sample %2lld: predicted %lld (truth %lld), entropy %.3f "
                  "[%s]\n",
                  static_cast<long long>(i), static_cast<long long>(r.label),
                  static_cast<long long>(
                      tt.test.labels[static_cast<std::size_t>(i)]),
                  r.entropy, core::to_string(r.exit_point));
    }
  }

  const edge::ServerStats server_stats = server.stats();
  std::printf("\naccuracy %.0f%% over %lld samples; %.0f%% exited at the "
              "binary branch;\nedge server completed %lld requests "
              "(%.2f ms mean).\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(samples),
              static_cast<long long>(samples),
              100.0 * client.exit_fraction(),
              static_cast<long long>(server_stats.requests_served),
              server_stats.mean_completion_ms());

  // Graceful degradation: kill the edge server, then classify again. The
  // client retries, gives up within its deadline, and still answers from
  // the binary branch instead of throwing.
  server.stop();
  const std::int64_t offline = std::min<std::int64_t>(samples, 5);
  std::printf("\nedge server stopped; classifying %lld more samples "
              "offline...\n",
              static_cast<long long>(offline));
  std::int64_t offline_correct = 0;
  for (std::int64_t i = 0; i < offline; ++i) {
    const edge::ClientResult r = client.classify(tt.test.image(i));
    if (r.label == tt.test.labels[static_cast<std::size_t>(i)]) {
      ++offline_correct;
    }
  }
  const edge::ClientStats& cs = client.stats();
  std::printf("offline accuracy %lld/%lld; %lld fallback answers, "
              "%lld retries, %lld reconnects.\n",
              static_cast<long long>(offline_correct),
              static_cast<long long>(offline),
              static_cast<long long>(cs.fallbacks),
              static_cast<long long>(cs.retries),
              static_cast<long long>(cs.reconnects));
  return 0;
}
