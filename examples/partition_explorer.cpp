// Partition explorer: per-layer cut costs for any model in the zoo under
// the paper's cost model -- the analysis behind Neurosurgeon/Edgent and
// the paper's claim that no cut of a full-precision model suits the
// mobile web browser.
//
//   ./partition_explorer [LeNet|AlexNet|ResNet18|VGG16]
#include <cstdio>
#include <string>

#include "baselines/neurosurgeon.h"
#include "common/logging.h"
#include "models/accounting.h"
#include "models/zoo.h"

using namespace lcrs;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const std::string arch_name = argc > 1 ? argv[1] : "AlexNet";
  const models::Arch arch = models::arch_by_name(arch_name);

  Rng rng(1);
  const models::ModelConfig cfg{arch, 3, 32, 32, 10, 1.0};
  auto mono = models::build_monolithic(cfg, rng);
  baselines::ModelUnderTest model;
  model.name = arch_name;
  model.layers = models::profile_layers(*mono, Shape{3, 32, 32});
  model.input_elems = 3 * 32 * 32;

  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;
  const sim::DeviceModel native{sim::mobile_native()};
  const std::size_t n = model.layers.size();

  std::printf("%s: %zu layers, %.2f MB total, %.1f MFLOP per sample\n\n",
              arch_name.c_str(), n,
              static_cast<double>(model.total_model_bytes()) /
                  (1024.0 * 1024.0),
              static_cast<double>(models::summarize(model.layers).total_flops)
                  / 1e6);
  std::printf("%4s %-12s %10s %10s %11s %11s %11s\n", "cut", "after",
              "sliceMB", "uploadKB", "native(ms)", "web(ms)", "webcomm");
  for (std::size_t cut = 0; cut <= n; ++cut) {
    const std::int64_t upload =
        cut == 0 ? scenario.camera_frame_bytes
                 : sim::CostModel::boundary_bytes(model.layers, cut,
                                                  model.input_elems);
    const double native_ms =
        cost.compute_ms(model.layers, 0, cut, native) +
        (cut < n ? cost.network().upload_ms(upload) +
                       cost.network().download_ms(scenario.result_bytes)
                 : 0.0) +
        cost.edge_compute_ms(model.layers, cut, n);
    const double load_ms =
        cost.network().download_ms(model.prefix_model_bytes(cut)) /
        static_cast<double>(scenario.session_samples);
    const double web_comm =
        load_ms + (cut < n ? cost.network().upload_ms(upload) +
                                 cost.network().download_ms(
                                     scenario.result_bytes)
                           : 0.0);
    const double web_ms = web_comm +
                          cost.browser_compute_ms(model.layers, 0, cut) +
                          cost.edge_compute_ms(model.layers, cut, n);
    std::printf("%4zu %-12s %10.3f %10.1f %11.1f %11.1f %11.1f\n", cut,
                cut == 0 ? "(input)" : model.layers[cut - 1].kind.c_str(),
                static_cast<double>(model.prefix_model_bytes(cut)) /
                    (1024.0 * 1024.0),
                static_cast<double>(upload) / 1024.0, native_ms, web_ms,
                web_comm);
  }

  const baselines::NeurosurgeonDecision d =
      baselines::neurosurgeon_partition(model, cost, scenario, native);
  std::printf("\nNeurosurgeon picks cut %zu (predicted native latency "
              "%.1f ms);\non the mobile web the same cut costs %.1f ms.\n",
              d.cut, d.predicted_native_ms,
              baselines::evaluate_neurosurgeon(model, cost, scenario)
                  .total_ms);
  return 0;
}
