// End-to-end cost model combining devices + link.
//
// Prices layer-profile lists (models/accounting.h) on a device and tensor
// transfers on the link. All Table II / Table III / Fig. 6 / Fig. 10
// numbers are produced through this one class so every approach is priced
// under identical assumptions.
#pragma once

#include <vector>

#include "models/accounting.h"
#include "sim/device_model.h"
#include "sim/energy_model.h"
#include "sim/network_model.h"

namespace lcrs::sim {

/// Scenario constants shared by every approach in one experiment.
struct Scenario {
  // One Web-AR page session: the model is fetched once and then serves
  // this many recognitions. 20 reproduces the paper's Table II/III
  // magnitudes almost exactly (their comm numbers equal model_MB / 10 --
  // i.e. loading is charged nearly per-recognition; see EXPERIMENTS.md).
  std::int64_t session_samples = 20;
  std::int64_t camera_frame_bytes = 300 * 1024;  // raw Web-AR camera frame
                                                 // uploaded by edge-only
  std::int64_t result_bytes = 256;     // label + probabilities reply
};

class CostModel {
 public:
  CostModel(DeviceSpec browser, DeviceSpec edge, LinkSpec link)
      : browser_(std::move(browser)), edge_(std::move(edge)), net_(link) {}

  /// The paper's default environment: Mate 9 browser + X3640M4 edge + 4G.
  static CostModel paper_default();

  /// Compute time of a profile slice [begin, end) on the given device,
  /// pricing binary layers through the XNOR path.
  double compute_ms(const std::vector<models::LayerProfile>& layers,
                    std::size_t begin, std::size_t end,
                    const DeviceModel& device) const;

  double browser_compute_ms(const std::vector<models::LayerProfile>& layers,
                            std::size_t begin, std::size_t end) const {
    return compute_ms(layers, begin, end, browser_);
  }
  double edge_compute_ms(const std::vector<models::LayerProfile>& layers,
                         std::size_t begin, std::size_t end) const {
    return compute_ms(layers, begin, end, edge_);
  }

  /// Bytes of the activation tensor at layer boundary `cut` (output of
  /// layer cut-1), for one sample; cut = 0 means the raw input.
  static std::int64_t boundary_bytes(
      const std::vector<models::LayerProfile>& layers, std::size_t cut,
      std::int64_t input_elems);

  const DeviceModel& browser() const { return browser_; }
  const DeviceModel& edge() const { return edge_; }
  const NetworkModel& network() const { return net_; }
  const EnergyModel& energy() const { return energy_; }

 private:
  DeviceModel browser_;
  DeviceModel edge_;
  NetworkModel net_;
  EnergyModel energy_;
};

}  // namespace lcrs::sim
