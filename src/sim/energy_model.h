// Mobile-device energy model.
//
// The paper motivates LCRS partly by the "computation and energy
// consumption" pressure on the browser device, and Neurosurgeon's
// original objective includes device energy. This model prices the three
// activities a recognition spends device energy on: active compute, radio
// transmit, radio receive. Power draws are calibrated to a 2017 flagship
// phone on 4G (compute ~2.5 W sustained, TX ~1.8 W, RX ~1.2 W).
#pragma once

#include "common/error.h"

namespace lcrs::sim {

struct EnergySpec {
  double compute_watts = 2.5;
  double tx_watts = 1.8;
  double rx_watts = 1.2;

  void validate() const {
    LCRS_CHECK(compute_watts > 0.0 && tx_watts > 0.0 && rx_watts > 0.0,
               "power draws must be positive");
  }
};

/// Mate-9-class handset on an active 4G radio.
inline EnergySpec mobile_device_energy() { return EnergySpec{}; }

class EnergyModel {
 public:
  explicit EnergyModel(EnergySpec spec = mobile_device_energy())
      : spec_(spec) {
    spec_.validate();
  }

  /// Millijoules for `ms` of active on-device compute.
  double compute_mj(double ms) const { return spec_.compute_watts * ms; }

  /// Millijoules for `ms` of radio transmission (uploads).
  double tx_mj(double ms) const { return spec_.tx_watts * ms; }

  /// Millijoules for `ms` of radio reception (model loads, replies).
  double rx_mj(double ms) const { return spec_.rx_watts * ms; }

  const EnergySpec& spec() const { return spec_; }

 private:
  EnergySpec spec_;
};

}  // namespace lcrs::sim
