// Edge-server concurrency model.
//
// The paper motivates offloading *away* from the edge with "the computing
// cost of high concurrent requests is unacceptable" (Sec. I). This module
// quantifies that: recognitions arrive from many browsers as a Poisson
// stream and the edge serves them with a (near-)deterministic service
// time, i.e. an M/D/1 queue. LCRS multiplies the edge's capacity by
// 1 / (1 - exit_fraction): only entropy misses reach the server, and each
// miss costs only the main-rest forward instead of the whole network.
#pragma once

#include <cstdint>

#include "common/error.h"

namespace lcrs::sim {

/// Steady-state M/D/1 statistics (Poisson arrivals, deterministic
/// service, one server).
struct QueueStats {
  double utilization = 0.0;    // rho = lambda * service_time
  double avg_wait_ms = 0.0;    // mean time in queue (excluding service)
  double avg_response_ms = 0.0;  // wait + service
  double avg_queue_len = 0.0;  // mean number waiting
  bool stable = true;          // rho < 1
};

/// Computes M/D/1 stats for `arrivals_per_sec` requests against a fixed
/// `service_ms` per request (Pollaczek-Khinchine with zero service
/// variance). For rho >= 1 the queue diverges: stable=false and the wait
/// fields are set to infinity.
QueueStats md1_stats(double arrivals_per_sec, double service_ms);

/// Largest Poisson arrival rate (req/s) the server sustains while keeping
/// the mean response under `max_response_ms`. Found by bisection; 0 when
/// even an idle server is too slow.
double max_sustainable_rate(double service_ms, double max_response_ms);

/// Per-recognition edge service times of the two deployments:
///   edge-only: every recognition runs the full network at the edge;
///   LCRS: only (1 - exit_fraction) of recognitions arrive, each costing
///         the main-rest forward.
struct EdgeLoadProfile {
  double full_model_ms = 0.0;   // edge-only service time
  double rest_only_ms = 0.0;    // LCRS completion service time
  double exit_fraction = 0.8;

  /// Effective service time per *recognition* under LCRS (misses only).
  double lcrs_effective_ms() const {
    LCRS_CHECK(exit_fraction >= 0.0 && exit_fraction <= 1.0,
               "exit_fraction must be a probability");
    return (1.0 - exit_fraction) * rest_only_ms;
  }

  /// How many more recognitions/sec LCRS sustains vs edge-only at equal
  /// utilization.
  double capacity_multiplier() const {
    const double eff = lcrs_effective_ms();
    LCRS_CHECK(full_model_ms > 0.0, "edge-only service time must be > 0");
    if (eff <= 0.0) return 1e9;  // everything exits: unbounded
    return full_model_ms / eff;
  }
};

}  // namespace lcrs::sim
