#include "sim/device_model.h"

namespace lcrs::sim {

DeviceSpec mobile_web_browser() {
  // Single-threaded WASM on a 2017 flagship phone: tens of MFLOP/s
  // effective for naive float conv loops. Binary layers replace 64 MACs
  // with one XOR+POPCNT; measured end-to-end gain is well below the 64x
  // ideal, the paper cites XNOR-Net's ~58x kernel bound.
  return DeviceSpec{"mobile-web-browser", 0.05, 32.0};
}

DeviceSpec mobile_native() {
  // Native NEON-optimized inference on the same SoC.
  return DeviceSpec{"mobile-native", 2.0, 32.0};
}

DeviceSpec edge_server() {
  // Dual E5-2640 class box with an optimized BLAS.
  return DeviceSpec{"edge-server", 50.0, 8.0};
}

}  // namespace lcrs::sim
