#include "sim/cost_model.h"

#include "tensor/serialize.h"

namespace lcrs::sim {

CostModel CostModel::paper_default() {
  return CostModel(mobile_web_browser(), edge_server(), lte_4g());
}

double CostModel::compute_ms(const std::vector<models::LayerProfile>& layers,
                             std::size_t begin, std::size_t end,
                             const DeviceModel& device) const {
  LCRS_CHECK(begin <= end && end <= layers.size(),
             "compute_ms slice out of range");
  double ms = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    ms += layers[i].is_binary ? device.compute_binary_ms(layers[i].flops)
                              : device.compute_ms(layers[i].flops);
  }
  return ms;
}

std::int64_t CostModel::boundary_bytes(
    const std::vector<models::LayerProfile>& layers, std::size_t cut,
    std::int64_t input_elems) {
  LCRS_CHECK(cut <= layers.size(), "boundary cut out of range");
  const std::int64_t elems =
      cut == 0 ? input_elems : layers[cut - 1].output_elems;
  // Wire framing matches the tensor serializer: header + f32 payload.
  return 8 + 8 * 4 + 4 * elems;
}

}  // namespace lcrs::sim
