// Wireless link model for the browser <-> edge-server channel.
//
// The paper's evaluation setting is a 4G link with a 10 Mb/s downlink and
// a 3 Mb/s uplink (Sec. V-B). Transfer time is bytes/bandwidth plus half
// an RTT per message; optional multiplicative jitter reproduces the
// fluctuation the paper attributes to communication costs in Fig. 6.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace lcrs::sim {

/// Link parameters. Bandwidths in megabits per second, RTT in ms.
struct LinkSpec {
  double downlink_mbps = 10.0;
  double uplink_mbps = 3.0;
  double rtt_ms = 20.0;
  double jitter_frac = 0.0;  // 0 = deterministic; 0.2 = +-20% uniform

  void validate() const;
};

/// The paper's 4G evaluation link.
LinkSpec lte_4g();

/// A congested variant used by the robustness sweeps.
LinkSpec lte_4g_congested();

/// WiFi-class link for ablations.
LinkSpec wifi();

/// Message-level fault parameters for a degraded link. Shared between the
/// simulated runtime and the real TCP transport's FaultInjector so the
/// robustness sweeps and the socket failure tests describe faults the same
/// way. Probabilities are per message.
struct FaultSpec {
  double drop_prob = 0.0;        // message silently discarded
  double delay_prob = 0.0;       // message delayed by delay_ms
  double delay_ms = 0.0;
  double close_prob = 0.0;       // connection torn down mid-message

  void validate() const;
  bool faultless() const {
    return drop_prob == 0.0 && delay_prob == 0.0 && close_prob == 0.0;
  }
};

/// A link that never misbehaves (all probabilities zero).
FaultSpec reliable_link();

/// A lossy profile for robustness sweeps: occasional drops and delays.
FaultSpec flaky_link();

class NetworkModel {
 public:
  explicit NetworkModel(LinkSpec spec);

  /// Time to push `bytes` from edge to browser (model loading, replies).
  double download_ms(std::int64_t bytes) const;

  /// Time to push `bytes` from browser to edge (tasks, intermediates).
  double upload_ms(std::int64_t bytes) const;

  /// Jittered variants draw a multiplicative factor from the spec.
  double download_ms_jittered(std::int64_t bytes, Rng& rng) const;
  double upload_ms_jittered(std::int64_t bytes, Rng& rng) const;

  /// One request/response handshake overhead.
  double round_trip_ms() const { return spec_.rtt_ms; }

  const LinkSpec& spec() const { return spec_; }

 private:
  double jitter(double ms, Rng& rng) const;
  LinkSpec spec_;
};

}  // namespace lcrs::sim
