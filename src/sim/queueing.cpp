#include "sim/queueing.h"

#include <limits>

namespace lcrs::sim {

QueueStats md1_stats(double arrivals_per_sec, double service_ms) {
  LCRS_CHECK(arrivals_per_sec >= 0.0, "negative arrival rate");
  LCRS_CHECK(service_ms > 0.0, "service time must be positive");

  QueueStats st;
  const double service_s = service_ms / 1e3;
  st.utilization = arrivals_per_sec * service_s;
  if (st.utilization >= 1.0) {
    st.stable = false;
    st.avg_wait_ms = std::numeric_limits<double>::infinity();
    st.avg_response_ms = std::numeric_limits<double>::infinity();
    st.avg_queue_len = std::numeric_limits<double>::infinity();
    return st;
  }
  // Pollaczek-Khinchine for deterministic service: Wq = rho*s / 2(1-rho).
  const double rho = st.utilization;
  const double wait_s = rho * service_s / (2.0 * (1.0 - rho));
  st.avg_wait_ms = wait_s * 1e3;
  st.avg_response_ms = st.avg_wait_ms + service_ms;
  st.avg_queue_len = arrivals_per_sec * wait_s;  // Little's law
  return st;
}

double max_sustainable_rate(double service_ms, double max_response_ms) {
  LCRS_CHECK(service_ms > 0.0 && max_response_ms > 0.0,
             "times must be positive");
  if (service_ms >= max_response_ms) return 0.0;

  double lo = 0.0;
  double hi = 1e3 / service_ms;  // rho = 1 boundary
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = (lo + hi) / 2.0;
    const QueueStats st = md1_stats(mid, service_ms);
    if (st.stable && st.avg_response_ms <= max_response_ms) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace lcrs::sim
