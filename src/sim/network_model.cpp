#include "sim/network_model.h"

#include "common/error.h"

namespace lcrs::sim {

void LinkSpec::validate() const {
  LCRS_CHECK(downlink_mbps > 0.0 && uplink_mbps > 0.0,
             "link bandwidths must be positive");
  LCRS_CHECK(rtt_ms >= 0.0, "negative RTT");
  LCRS_CHECK(jitter_frac >= 0.0 && jitter_frac < 1.0,
             "jitter_frac must be in [0, 1)");
}

LinkSpec lte_4g() { return LinkSpec{10.0, 3.0, 20.0, 0.0}; }

LinkSpec lte_4g_congested() { return LinkSpec{4.0, 1.0, 60.0, 0.3}; }

LinkSpec wifi() { return LinkSpec{80.0, 40.0, 5.0, 0.0}; }

void FaultSpec::validate() const {
  LCRS_CHECK(drop_prob >= 0.0 && drop_prob <= 1.0,
             "drop_prob must be in [0, 1]");
  LCRS_CHECK(delay_prob >= 0.0 && delay_prob <= 1.0,
             "delay_prob must be in [0, 1]");
  LCRS_CHECK(close_prob >= 0.0 && close_prob <= 1.0,
             "close_prob must be in [0, 1]");
  LCRS_CHECK(delay_ms >= 0.0, "negative delay_ms");
}

FaultSpec reliable_link() { return FaultSpec{}; }

FaultSpec flaky_link() { return FaultSpec{0.05, 0.10, 40.0, 0.01}; }

NetworkModel::NetworkModel(LinkSpec spec) : spec_(spec) { spec_.validate(); }

namespace {
double transfer_ms(std::int64_t bytes, double mbps, double half_rtt_ms) {
  LCRS_CHECK(bytes >= 0, "negative transfer size");
  if (bytes == 0) return 0.0;
  const double seconds =
      static_cast<double>(bytes) * 8.0 / (mbps * 1e6);
  return seconds * 1e3 + half_rtt_ms;
}
}  // namespace

double NetworkModel::download_ms(std::int64_t bytes) const {
  return transfer_ms(bytes, spec_.downlink_mbps, spec_.rtt_ms / 2.0);
}

double NetworkModel::upload_ms(std::int64_t bytes) const {
  return transfer_ms(bytes, spec_.uplink_mbps, spec_.rtt_ms / 2.0);
}

double NetworkModel::jitter(double ms, Rng& rng) const {
  if (spec_.jitter_frac == 0.0) return ms;
  return ms * (1.0 + rng.uniform(-spec_.jitter_frac, spec_.jitter_frac));
}

double NetworkModel::download_ms_jittered(std::int64_t bytes,
                                          Rng& rng) const {
  return jitter(download_ms(bytes), rng);
}

double NetworkModel::upload_ms_jittered(std::int64_t bytes, Rng& rng) const {
  return jitter(upload_ms(bytes), rng);
}

}  // namespace lcrs::sim
