// Compute-device throughput models.
//
// Three device classes appear in the paper's evaluation (Sec. V):
//  * the mobile *web browser* (HUAWEI Mate 9 running Firefox, JS/WASM) --
//    the slowest executor, but binary layers run through XNOR kernels
//    with a large effective speedup;
//  * a *native mobile device* profile -- what Neurosurgeon's partition
//    decision was designed for (its published partition points assume
//    native execution, not a browser);
//  * the *edge server* (IBM X3640M4, E5-2640).
// Throughputs are effective sustained GFLOP/s calibrated to the paper's
// hardware class; see EXPERIMENTS.md for the calibration notes.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"

namespace lcrs::sim {

struct DeviceSpec {
  std::string name;
  double gflops = 1.0;          // sustained float throughput
  double binary_speedup = 1.0;  // divisor applied to binary-layer flops

  void validate() const {
    LCRS_CHECK(gflops > 0.0 && binary_speedup >= 1.0,
               "bad device spec " << name);
  }
};

/// Mobile web browser (WASM, single thread).
DeviceSpec mobile_web_browser();

/// Native mobile SoC profile used for Neurosurgeon's partition decision.
DeviceSpec mobile_native();

/// Edge server profile.
DeviceSpec edge_server();

class DeviceModel {
 public:
  explicit DeviceModel(DeviceSpec spec) : spec_(std::move(spec)) {
    spec_.validate();
  }

  /// Milliseconds to execute `flops` of float work.
  double compute_ms(std::int64_t flops) const {
    LCRS_CHECK(flops >= 0, "negative flops");
    return static_cast<double>(flops) / (spec_.gflops * 1e9) * 1e3;
  }

  /// Milliseconds for binary-layer work (XNOR/popcount path).
  double compute_binary_ms(std::int64_t flops) const {
    return compute_ms(flops) / spec_.binary_speedup;
  }

  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace lcrs::sim
