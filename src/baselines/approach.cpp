#include "baselines/approach.h"

namespace lcrs::baselines {

std::int64_t ModelUnderTest::prefix_model_bytes(std::size_t cut) const {
  LCRS_CHECK(cut <= layers.size(), "prefix cut out of range");
  std::int64_t bytes = 8;  // file header
  for (std::size_t i = 0; i < cut; ++i) bytes += layers[i].param_bytes;
  return bytes;
}

}  // namespace lcrs::baselines
