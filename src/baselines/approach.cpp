#include "baselines/approach.h"

#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"

namespace lcrs::baselines {

std::int64_t ModelUnderTest::prefix_model_bytes(std::size_t cut) const {
  LCRS_CHECK(cut <= layers.size(), "prefix cut out of range");
  std::int64_t bytes = 8;  // file header
  for (std::size_t i = 0; i < cut; ++i) bytes += layers[i].param_bytes;
  return bytes;
}

void record_approach_cost(const ApproachCost& cost) {
  obs::Registry& reg = obs::Registry::global();
  reg.gauge(obs::names::baseline_gauge(cost.name, "total_ms"))
      .set(cost.total_ms);
  reg.gauge(obs::names::baseline_gauge(cost.name, "comm_ms"))
      .set(cost.comm_ms);
  reg.gauge(obs::names::baseline_gauge(cost.name, "compute_ms"))
      .set(cost.compute_ms);
}

}  // namespace lcrs::baselines
