// Mobile-only execution: the browser downloads the entire model once and
// runs every inference locally (paper Sec. I / Tables II-III).
#pragma once

#include "baselines/approach.h"

namespace lcrs::baselines {

ApproachCost evaluate_mobile_only(const ModelUnderTest& model,
                                  const sim::CostModel& cost,
                                  const sim::Scenario& scenario);

}  // namespace lcrs::baselines
