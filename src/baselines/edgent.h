// Edgent baseline (Li et al., MECOMM'18): adaptive partition plus early
// exit at an intermediate layer.
//
// Edgent jointly searches a partition point and an early-exit depth,
// maximizing the (proxy) accuracy subject to a latency budget; the exit
// runs through a small side classifier. As with Neurosurgeon, the search
// assumes native mobile execution, and the web execution then pays the
// browser compute rate plus the amortized download of the browser-side
// slice and its exit branch.
#pragma once

#include "baselines/approach.h"

namespace lcrs::baselines {

struct EdgentConfig {
  double min_depth_fraction = 0.75;  // accuracy proxy: exit depth / L
  double latency_budget_ms = 1000.0; // constraint the search satisfies
  std::int64_t branch_param_bytes = 128 * 1024;  // exit classifier weights
  std::int64_t branch_flops = 2 * 256 * 1024;    // exit classifier compute
};

struct EdgentDecision {
  std::size_t cut = 0;   // device runs layers [0, cut)
  std::size_t exit = 0;  // inference exits after layer `exit`
  double predicted_native_ms = 0.0;
};

EdgentDecision edgent_search(const ModelUnderTest& model,
                             const sim::CostModel& cost,
                             const sim::Scenario& scenario,
                             const sim::DeviceModel& native,
                             const EdgentConfig& config);

ApproachCost evaluate_edgent(const ModelUnderTest& model,
                             const sim::CostModel& cost,
                             const sim::Scenario& scenario,
                             const EdgentConfig& config = {});

}  // namespace lcrs::baselines
