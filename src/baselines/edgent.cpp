#include "baselines/edgent.h"

#include <cmath>

namespace lcrs::baselines {

namespace {

std::int64_t upload_bytes_at(const ModelUnderTest& model,
                             const sim::Scenario& scenario,
                             std::size_t cut) {
  if (cut == 0) return scenario.camera_frame_bytes;
  return sim::CostModel::boundary_bytes(model.layers, cut,
                                        model.input_elems);
}

/// Native-profile latency of running [0,cut) on device, [cut,exit) at the
/// edge, exiting through the side classifier after `exit`. When
/// exit <= cut everything (including the exit) stays on device and no
/// upload happens.
double native_latency(const ModelUnderTest& model, const sim::CostModel& cost,
                      const sim::Scenario& scenario,
                      const sim::DeviceModel& native,
                      const EdgentConfig& config, std::size_t cut,
                      std::size_t exit) {
  double ms = 0.0;
  if (exit <= cut) {
    ms += cost.compute_ms(model.layers, 0, exit, native);
    ms += native.compute_ms(config.branch_flops);
    return ms;
  }
  ms += cost.compute_ms(model.layers, 0, cut, native);
  ms += cost.network().upload_ms(upload_bytes_at(model, scenario, cut));
  ms += cost.edge_compute_ms(model.layers, cut, exit);
  ms += cost.edge().compute_ms(config.branch_flops);
  ms += cost.network().download_ms(scenario.result_bytes);
  return ms;
}

}  // namespace

EdgentDecision edgent_search(const ModelUnderTest& model,
                             const sim::CostModel& cost,
                             const sim::Scenario& scenario,
                             const sim::DeviceModel& native,
                             const EdgentConfig& config) {
  const std::size_t n_layers = model.layers.size();
  LCRS_CHECK(n_layers >= 1, "cannot search an empty model");
  const std::size_t min_exit = static_cast<std::size_t>(
      std::ceil(config.min_depth_fraction * static_cast<double>(n_layers)));

  // Edgent trades accuracy for latency: the exit depth only needs to
  // clear the accuracy proxy (min_depth_fraction of the layers), and
  // among qualifying (cut, exit) pairs the fastest one wins. Configs over
  // the latency budget are considered only when nothing qualifies.
  EdgentDecision best;
  double best_ms = -1.0;
  bool best_feasible = false;
  for (std::size_t exit = std::max<std::size_t>(min_exit, 1);
       exit <= n_layers; ++exit) {
    // cut < exit: Edgent is a device-edge co-inference scheme -- the
    // device always uploads at the partition and the edge carries the
    // model to the exit point.
    for (std::size_t cut = 0; cut < exit; ++cut) {
      const double ms = native_latency(model, cost, scenario, native, config,
                                       cut, exit);
      const bool feasible = ms <= config.latency_budget_ms;
      const bool better =
          best_ms < 0.0 || (feasible && !best_feasible) ||
          (feasible == best_feasible && ms < best_ms);
      if (better) {
        best_ms = ms;
        best_feasible = feasible;
        best.cut = cut;
        best.exit = exit;
        best.predicted_native_ms = ms;
      }
    }
  }
  return best;
}

ApproachCost evaluate_edgent(const ModelUnderTest& model,
                             const sim::CostModel& cost,
                             const sim::Scenario& scenario,
                             const EdgentConfig& config) {
  const sim::DeviceModel native{sim::mobile_native()};
  const EdgentDecision d =
      edgent_search(model, cost, scenario, native, config);
  const double n = static_cast<double>(scenario.session_samples);

  ApproachCost c;
  c.name = "Edgent";
  c.browser_model_bytes =
      model.prefix_model_bytes(d.cut) + config.branch_param_bytes;
  const double load = cost.network().download_ms(c.browser_model_bytes) / n;
  double up = 0.0, down = 0.0;
  double device_ms = cost.browser_compute_ms(model.layers, 0, d.cut);
  c.compute_ms = device_ms;
  if (d.exit <= d.cut) {
    // Exits on the device side; the branch classifier runs in the browser.
    const double branch_ms = cost.browser().compute_ms(config.branch_flops);
    device_ms += branch_ms;
    c.compute_ms += branch_ms;
  } else {
    up = cost.network().upload_ms(upload_bytes_at(model, scenario, d.cut));
    down = cost.network().download_ms(scenario.result_bytes);
    c.compute_ms += cost.edge_compute_ms(model.layers, d.cut, d.exit) +
                    cost.edge().compute_ms(config.branch_flops);
  }
  c.comm_ms = load + up + down;
  c.total_ms = c.comm_ms + c.compute_ms;
  c.device_energy_mj = cost.energy().compute_mj(device_ms) +
                       cost.energy().tx_mj(up) +
                       cost.energy().rx_mj(load + down);
  return c;
}

}  // namespace lcrs::baselines
