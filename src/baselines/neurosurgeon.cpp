#include "baselines/neurosurgeon.h"

namespace lcrs::baselines {

namespace {

/// Upload bytes when the browser stops at `cut`: the raw camera frame for
/// cut 0 (the task itself), otherwise the boundary activation tensor.
std::int64_t upload_bytes_at(const ModelUnderTest& model,
                             const sim::Scenario& scenario,
                             std::size_t cut) {
  if (cut == 0) return scenario.camera_frame_bytes;
  return sim::CostModel::boundary_bytes(model.layers, cut,
                                        model.input_elems);
}

}  // namespace

NeurosurgeonDecision neurosurgeon_partition(const ModelUnderTest& model,
                                            const sim::CostModel& cost,
                                            const sim::Scenario& scenario,
                                            const sim::DeviceModel& native) {
  const std::size_t n_layers = model.layers.size();
  LCRS_CHECK(n_layers >= 1, "cannot partition an empty model");

  NeurosurgeonDecision best;
  double best_ms = -1.0;
  for (std::size_t cut = 0; cut <= n_layers; ++cut) {
    const double device_ms = cost.compute_ms(model.layers, 0, cut, native);
    const double edge_ms = cost.edge_compute_ms(model.layers, cut, n_layers);
    double comm_ms = 0.0;
    if (cut < n_layers) {
      comm_ms = cost.network().upload_ms(
                    upload_bytes_at(model, scenario, cut)) +
                cost.network().download_ms(scenario.result_bytes);
    }
    const double total = device_ms + edge_ms + comm_ms;
    if (best_ms < 0.0 || total < best_ms) {
      best_ms = total;
      best.cut = cut;
      best.predicted_native_ms = total;
    }
  }
  return best;
}

ApproachCost evaluate_neurosurgeon(const ModelUnderTest& model,
                                   const sim::CostModel& cost,
                                   const sim::Scenario& scenario) {
  const sim::DeviceModel native{sim::mobile_native()};
  const NeurosurgeonDecision d =
      neurosurgeon_partition(model, cost, scenario, native);
  const std::size_t n_layers = model.layers.size();
  const double n = static_cast<double>(scenario.session_samples);

  ApproachCost c;
  c.name = "Neurosurgeon";
  c.browser_model_bytes = model.prefix_model_bytes(d.cut);
  // Web reality: the browser-side slice is fetched at page load.
  const double load = cost.network().download_ms(c.browser_model_bytes) / n;
  double up = 0.0, down = 0.0;
  if (d.cut < n_layers) {
    up = cost.network().upload_ms(upload_bytes_at(model, scenario, d.cut));
    down = cost.network().download_ms(scenario.result_bytes);
  }
  c.comm_ms = load + up + down;
  const double device_ms = cost.browser_compute_ms(model.layers, 0, d.cut);
  c.compute_ms =
      device_ms + cost.edge_compute_ms(model.layers, d.cut, n_layers);
  c.total_ms = c.comm_ms + c.compute_ms;
  c.device_energy_mj = cost.energy().compute_mj(device_ms) +
                       cost.energy().tx_mj(up) +
                       cost.energy().rx_mj(load + down);
  return c;
}

}  // namespace lcrs::baselines
