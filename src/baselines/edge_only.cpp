#include "baselines/edge_only.h"

namespace lcrs::baselines {

ApproachCost evaluate_edge_only(const ModelUnderTest& model,
                                const sim::CostModel& cost,
                                const sim::Scenario& scenario) {
  ApproachCost c;
  c.name = "Edge-only";
  c.browser_model_bytes = 0;
  // Every sample: raw camera frame up, result down.
  const double up = cost.network().upload_ms(scenario.camera_frame_bytes);
  const double down = cost.network().download_ms(scenario.result_bytes);
  c.comm_ms = up + down;
  c.compute_ms = cost.edge_compute_ms(model.layers, 0, model.layers.size());
  c.total_ms = c.comm_ms + c.compute_ms;
  c.device_energy_mj = cost.energy().tx_mj(up) + cost.energy().rx_mj(down);
  return c;
}

}  // namespace lcrs::baselines
