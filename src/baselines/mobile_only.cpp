#include "baselines/mobile_only.h"

namespace lcrs::baselines {

ApproachCost evaluate_mobile_only(const ModelUnderTest& model,
                                  const sim::CostModel& cost,
                                  const sim::Scenario& scenario) {
  LCRS_CHECK(scenario.session_samples >= 1, "empty session");
  const double n = static_cast<double>(scenario.session_samples);

  ApproachCost c;
  c.name = "Mobile-only";
  c.browser_model_bytes = model.total_model_bytes();
  c.comm_ms = cost.network().download_ms(c.browser_model_bytes) / n;
  c.compute_ms =
      cost.browser_compute_ms(model.layers, 0, model.layers.size());
  c.total_ms = c.comm_ms + c.compute_ms;
  c.device_energy_mj = cost.energy().rx_mj(c.comm_ms) +
                       cost.energy().compute_mj(c.compute_ms);
  return c;
}

}  // namespace lcrs::baselines
