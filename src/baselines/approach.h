// Common types for the compared execution approaches (paper Tables II/III).
//
// Every approach is priced by the same CostModel under the same Scenario:
// a Web-AR session of `session_samples` recognitions, so one-time model
// loading amortizes across the session exactly as the paper's "average
// latency of 100 random samples" does.
#pragma once

#include <string>
#include <vector>

#include "sim/cost_model.h"

namespace lcrs::baselines {

/// Per-sample average costs of one approach on one model.
struct ApproachCost {
  std::string name;
  double total_ms = 0.0;    // end-to-end average per sample
  double comm_ms = 0.0;     // communication average per sample, including
                            // the amortized model download
  double compute_ms = 0.0;  // compute average per sample
  std::int64_t browser_model_bytes = 0;  // bytes shipped to the browser
  double device_energy_mj = 0.0;  // mobile-device energy per sample
                                  // (compute + radio; edge energy is the
                                  // provider's cost, not the device's)
};

/// Publishes an approach's headline costs as gauges in the global
/// metrics registry ("baseline.<slug>.total_ms" etc.), so a comparison
/// sweep's latest numbers show up in the same snapshot as the runtime
/// metrics.
void record_approach_cost(const ApproachCost& cost);

/// A full-precision model prepared for partition-based approaches.
struct ModelUnderTest {
  std::string name;
  std::vector<models::LayerProfile> layers;  // monolithic profile
  std::int64_t input_elems = 0;              // DNN input tensor elements

  /// Serialized bytes of the browser-side slice [0, cut).
  std::int64_t prefix_model_bytes(std::size_t cut) const;
  std::int64_t total_model_bytes() const {
    return prefix_model_bytes(layers.size());
  }
};

}  // namespace lcrs::baselines
