// LCRS priced under the same cost model as the baselines.
//
// The browser downloads conv1 (float) plus the bit-packed binary branch,
// runs both per sample, and uploads the conv1 feature map only for the
// (1 - exit_fraction) of samples the entropy check rejects (Algorithm 2).
#pragma once

#include "baselines/approach.h"

namespace lcrs::baselines {

/// Profile of a trained composite network for cost evaluation.
struct LcrsModel {
  std::string name;
  std::vector<models::LayerProfile> shared;  // conv1 stage
  std::vector<models::LayerProfile> branch;  // binary branch
  std::vector<models::LayerProfile> rest;    // edge-side main rest
  std::int64_t input_elems = 0;
  std::int64_t shared_out_elems = 0;  // conv1 output tensor elements
  double exit_fraction = 0.8;         // measured P(exit at browser)

  /// Bytes the browser downloads: float conv1 + packed binary branch.
  std::int64_t browser_model_bytes() const;
};

ApproachCost evaluate_lcrs(const LcrsModel& model, const sim::CostModel& cost,
                           const sim::Scenario& scenario);

/// Split costs of the two exit paths (feeds Fig. 10's LCRS-B / LCRS-M).
struct LcrsPathCosts {
  double exit_binary_ms = 0.0;  // end-to-end when the sample exits locally
  double exit_main_ms = 0.0;    // end-to-end when the edge completes it
};
LcrsPathCosts lcrs_path_costs(const LcrsModel& model,
                              const sim::CostModel& cost,
                              const sim::Scenario& scenario);

}  // namespace lcrs::baselines
