#include "baselines/lcrs_approach.h"

namespace lcrs::baselines {

std::int64_t LcrsModel::browser_model_bytes() const {
  std::int64_t bytes = 8;  // file header
  for (const auto& l : shared) bytes += l.param_bytes;
  for (const auto& l : branch) {
    bytes += l.is_binary ? l.binary_bytes : l.param_bytes;
  }
  return bytes;
}

namespace {

double browser_forward_ms(const LcrsModel& m, const sim::CostModel& cost) {
  return cost.browser_compute_ms(m.shared, 0, m.shared.size()) +
         cost.browser_compute_ms(m.branch, 0, m.branch.size());
}

double collaborate_extra_ms(const LcrsModel& m, const sim::CostModel& cost,
                            const sim::Scenario& scenario, double* comm_out) {
  const std::int64_t upload_bytes = 8 + 8 * 4 + 4 * m.shared_out_elems;
  const double up = cost.network().upload_ms(upload_bytes);
  const double down = cost.network().download_ms(scenario.result_bytes);
  const double edge = cost.edge_compute_ms(m.rest, 0, m.rest.size());
  if (comm_out != nullptr) *comm_out = up + down;
  return up + down + edge;
}

}  // namespace

ApproachCost evaluate_lcrs(const LcrsModel& model, const sim::CostModel& cost,
                           const sim::Scenario& scenario) {
  LCRS_CHECK(model.exit_fraction >= 0.0 && model.exit_fraction <= 1.0,
             "exit_fraction must be a probability");
  const double n = static_cast<double>(scenario.session_samples);
  const double miss = 1.0 - model.exit_fraction;

  ApproachCost c;
  c.name = "LCRS";
  c.browser_model_bytes = model.browser_model_bytes();
  const double load = cost.network().download_ms(c.browser_model_bytes) / n;

  const double browser_ms = browser_forward_ms(model, cost);
  c.compute_ms = browser_ms;
  double collab_comm = 0.0;
  const double collab_total =
      collaborate_extra_ms(model, cost, scenario, &collab_comm);
  c.comm_ms = load + miss * collab_comm;
  c.compute_ms += miss * (collab_total - collab_comm);
  c.total_ms = c.comm_ms + c.compute_ms;

  const std::int64_t upload_bytes = 8 + 8 * 4 + 4 * model.shared_out_elems;
  const double up = cost.network().upload_ms(upload_bytes);
  const double down = cost.network().download_ms(scenario.result_bytes);
  c.device_energy_mj = cost.energy().compute_mj(browser_ms) +
                       cost.energy().tx_mj(miss * up) +
                       cost.energy().rx_mj(load + miss * down);
  record_approach_cost(c);
  return c;
}

LcrsPathCosts lcrs_path_costs(const LcrsModel& model,
                              const sim::CostModel& cost,
                              const sim::Scenario& scenario) {
  const double n = static_cast<double>(scenario.session_samples);
  const double load =
      cost.network().download_ms(model.browser_model_bytes()) / n;
  const double browser = browser_forward_ms(model, cost);

  LcrsPathCosts p;
  p.exit_binary_ms = load + browser;
  p.exit_main_ms =
      load + browser + collaborate_extra_ms(model, cost, scenario, nullptr);
  return p;
}

}  // namespace lcrs::baselines
