// Neurosurgeon baseline (Kang et al., ASPLOS'17).
//
// Neurosurgeon picks the layer boundary minimizing device compute +
// intermediate upload + server compute. Its published partition points
// assume *native* mobile execution with a pre-deployed model; the paper's
// critique (Sec. I) is that on the mobile web the chosen slice must also
// be downloaded at page load. We reproduce exactly that: the partition
// decision uses the native-device profile, the web execution pays
// browser-speed compute plus the amortized slice download.
#pragma once

#include "baselines/approach.h"

namespace lcrs::baselines {

struct NeurosurgeonDecision {
  std::size_t cut = 0;               // browser runs layers [0, cut)
  double predicted_native_ms = 0.0;  // objective value at the decision
};

/// Scans every boundary with the native-device profile. cut == 0 degrades
/// to edge-only (the initial task -- a camera frame -- is uploaded).
NeurosurgeonDecision neurosurgeon_partition(const ModelUnderTest& model,
                                            const sim::CostModel& cost,
                                            const sim::Scenario& scenario,
                                            const sim::DeviceModel& native);

/// Prices the decided partition on the mobile web.
ApproachCost evaluate_neurosurgeon(const ModelUnderTest& model,
                                   const sim::CostModel& cost,
                                   const sim::Scenario& scenario);

}  // namespace lcrs::baselines
