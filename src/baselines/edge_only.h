// Edge-only execution: the browser uploads every captured camera frame and
// the edge server runs the whole network (paper Sec. I).
#pragma once

#include "baselines/approach.h"

namespace lcrs::baselines {

ApproachCost evaluate_edge_only(const ModelUnderTest& model,
                                const sim::CostModel& cost,
                                const sim::Scenario& scenario);

}  // namespace lcrs::baselines
