#include "nn/pooling.h"

#include <limits>

namespace lcrs::nn {

namespace {
std::int64_t pooled_extent(std::int64_t in, std::int64_t k, std::int64_t s) {
  LCRS_CHECK(in >= k, "pool window " << k << " larger than input " << in);
  return (in - k) / s + 1;
}
}  // namespace

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride) {
  LCRS_CHECK(kernel > 0 && stride > 0, "pool kernel/stride must be positive");
}

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  LCRS_CHECK(input.rank() == 4, "maxpool expects NCHW");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);
  Tensor out{Shape{n, c, oh, ow}};
  if (train) {
    input_shape_ = input.shape();
    argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  }
  std::int64_t oi = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (b * c + ch) * h * w;
      const std::int64_t plane_base = (b * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = y * stride_ + ky;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = x * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          out[oi] = best;
          if (train) argmax_[static_cast<std::size_t>(oi)] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  LCRS_CHECK(!argmax_.empty(), "maxpool backward without cached forward");
  LCRS_CHECK(grad_output.numel() ==
                 static_cast<std::int64_t>(argmax_.size()),
             "maxpool grad_output numel mismatch");
  Tensor grad_input{input_shape_};
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride) {
  LCRS_CHECK(kernel > 0 && stride > 0, "pool kernel/stride must be positive");
}

Tensor AvgPool2d::forward(const Tensor& input, bool train) {
  LCRS_CHECK(input.rank() == 4, "avgpool expects NCHW");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  Tensor out{Shape{n, c, oh, ow}};
  std::int64_t oi = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (b * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x, ++oi) {
          float acc = 0.0f;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              acc += plane[(y * stride_ + ky) * w + (x * stride_ + kx)];
            }
          }
          out[oi] = acc * inv;
        }
      }
    }
  }
  if (train) input_shape_ = input.shape();
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  LCRS_CHECK(input_shape_.rank() == 4,
             "avgpool backward without cached forward");
  const std::int64_t n = input_shape_[0], c = input_shape_[1],
                     h = input_shape_[2], w = input_shape_[3];
  const std::int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  Tensor grad_input{input_shape_};
  std::int64_t oi = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      float* plane = grad_input.data() + (b * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x, ++oi) {
          const float g = grad_output[oi] * inv;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              plane[(y * stride_ + ky) * w + (x * stride_ + kx)] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool train) {
  LCRS_CHECK(input.rank() == 4, "gap expects NCHW");
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t plane = input.dim(2) * input.dim(3);
  const float inv = 1.0f / static_cast<float>(plane);
  Tensor out{Shape{n, c}};
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* p = input.data() + (b * c + ch) * plane;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < plane; ++i) acc += p[i];
      out.at2(b, ch) = acc * inv;
    }
  }
  if (train) input_shape_ = input.shape();
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  LCRS_CHECK(input_shape_.rank() == 4, "gap backward without cached forward");
  const std::int64_t n = input_shape_[0], c = input_shape_[1];
  const std::int64_t plane = input_shape_[2] * input_shape_[3];
  const float inv = 1.0f / static_cast<float>(plane);
  Tensor grad_input{input_shape_};
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_output.at2(b, ch) * inv;
      float* p = grad_input.data() + (b * c + ch) * plane;
      for (std::int64_t i = 0; i < plane; ++i) p[i] = g;
    }
  }
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input, bool train) {
  LCRS_CHECK(input.rank() >= 2, "flatten expects rank >= 2");
  if (train) input_shape_ = input.shape();
  return input.reshaped(Shape{input.dim(0), input.numel() / input.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  LCRS_CHECK(input_shape_.rank() >= 2,
             "flatten backward without cached forward");
  return grad_output.reshaped(input_shape_);
}

}  // namespace lcrs::nn
