// Softmax cross-entropy loss (Eq. 2/3 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace lcrs::nn {

/// Result of a loss evaluation: mean loss over the batch plus the gradient
/// w.r.t. the logits ready to feed Layer::backward.
struct LossResult {
  double loss = 0.0;
  Tensor grad_logits;      // [batch x classes]
  Tensor probabilities;    // softmax(logits), reused by exit policies
};

/// Computes mean softmax cross-entropy of `logits` [batch x classes]
/// against integer `labels`. The gradient is (softmax - onehot) / batch.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

}  // namespace lcrs::nn
