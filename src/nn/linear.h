// Fully-connected layer.
#pragma once

#include "nn/layer.h"

namespace lcrs::nn {

/// Linear transform y = x W^T + b over a rank-2 [batch x in] input.
/// Weight layout: [out x in] so each output neuron's weights are a
/// contiguous row (matches the bit-packing layout in src/binary).
class Linear : public Layer {
 public:
  Linear(std::int64_t in, std::int64_t out, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "linear"; }
  std::int64_t flops_per_sample() const override {
    return 2 * in_ * out_ + (has_bias_ ? out_ : 0);
  }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias_param() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  std::int64_t in_, out_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace lcrs::nn
