// Fully-connected layer.
#pragma once

#include "nn/layer.h"

namespace lcrs::nn {

/// Linear transform y = x W^T + b over a rank-2 [batch x in] input.
/// Weight layout: [out x in] so each output neuron's weights are a
/// contiguous row (matches the bit-packing layout in src/binary).
class Linear : public Layer {
 public:
  Linear(std::int64_t in, std::int64_t out, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;

  /// Caches W^T in [in x out] layout so eval-mode forward can run the
  /// blocked row-major GEMM, whose inner loop vectorizes over output
  /// neurons and whose weight traffic amortizes across batch rows (the
  /// win the batched edge server banks on). Same contract as the binary
  /// layers' prepare_inference(): call once after training settles;
  /// backward() invalidates the cache, so further training safely falls
  /// back to the untransposed path until prepared again.
  void prepare_inference();
  bool inference_prepared() const { return wt_fresh_; }
  std::string kind() const override { return "linear"; }
  std::int64_t flops_per_sample() const override {
    return 2 * in_ * out_ + (has_bias_ ? out_ : 0);
  }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias_param() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  std::int64_t in_, out_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
  Tensor weight_t_;        // W^T [in x out], valid only while wt_fresh_
  bool wt_fresh_ = false;  // cleared by backward(): optimizer steps follow
};

}  // namespace lcrs::nn
