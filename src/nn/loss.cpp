#include "nn/loss.h"

#include <cmath>

#include "common/error.h"
#include "tensor/tensor_ops.h"

namespace lcrs::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  LCRS_CHECK(logits.rank() == 2, "loss expects [batch x classes] logits");
  const std::int64_t n = logits.dim(0), classes = logits.dim(1);
  LCRS_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "label count " << labels.size() << " != batch " << n);

  LossResult result;
  result.probabilities = softmax_rows(logits);
  result.grad_logits = result.probabilities;

  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t b = 0; b < n; ++b) {
    const std::int64_t y = labels[static_cast<std::size_t>(b)];
    LCRS_CHECK(y >= 0 && y < classes, "label " << y << " out of range 0.."
                                               << classes - 1);
    const float p = result.probabilities.at2(b, y);
    total += -std::log(static_cast<double>(std::max(p, 1e-12f)));
    result.grad_logits.at2(b, y) -= 1.0f;
  }
  scale_inplace(result.grad_logits, inv_n);
  result.loss = total / static_cast<double>(n);
  return result;
}

}  // namespace lcrs::nn
