#include "nn/metrics.h"

#include <algorithm>

#include "common/error.h"
#include "tensor/tensor_ops.h"

namespace lcrs::nn {

double accuracy(const Tensor& logits,
                const std::vector<std::int64_t>& labels) {
  const auto preds = argmax_rows(logits);
  LCRS_CHECK(preds.size() == labels.size(), "accuracy: size mismatch");
  LCRS_CHECK(!labels.empty(), "accuracy of empty batch");
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double topk_accuracy(const Tensor& logits,
                     const std::vector<std::int64_t>& labels,
                     std::int64_t k) {
  LCRS_CHECK(logits.rank() == 2, "topk expects rank-2 logits");
  LCRS_CHECK(k >= 1 && k <= logits.dim(1), "invalid k " << k);
  LCRS_CHECK(!labels.empty(), "topk of empty batch");
  const std::int64_t n = logits.dim(0), classes = logits.dim(1);
  std::int64_t correct = 0;
  std::vector<std::int64_t> idx(static_cast<std::size_t>(classes));
  for (std::int64_t b = 0; b < n; ++b) {
    const float* row = logits.data() + b * classes;
    for (std::int64_t c = 0; c < classes; ++c) {
      idx[static_cast<std::size_t>(c)] = c;
    }
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](std::int64_t a, std::int64_t bb) {
                        return row[a] > row[bb];
                      });
    const std::int64_t y = labels[static_cast<std::size_t>(b)];
    for (std::int64_t j = 0; j < k; ++j) {
      if (idx[static_cast<std::size_t>(j)] == y) {
        ++correct;
        break;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

ConfusionMatrix::ConfusionMatrix(std::int64_t num_classes)
    : classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes * num_classes), 0) {
  LCRS_CHECK(num_classes >= 2, "confusion matrix needs >= 2 classes");
}

void ConfusionMatrix::add(std::int64_t truth, std::int64_t predicted) {
  LCRS_CHECK(truth >= 0 && truth < classes_ && predicted >= 0 &&
                 predicted < classes_,
             "confusion add out of range");
  ++counts_[static_cast<std::size_t>(truth * classes_ + predicted)];
  ++total_;
}

void ConfusionMatrix::add_batch(const Tensor& logits,
                                const std::vector<std::int64_t>& labels) {
  const auto preds = argmax_rows(logits);
  LCRS_CHECK(preds.size() == labels.size(), "confusion batch size mismatch");
  for (std::size_t i = 0; i < labels.size(); ++i) add(labels[i], preds[i]);
}

std::int64_t ConfusionMatrix::count(std::int64_t truth,
                                    std::int64_t predicted) const {
  LCRS_CHECK(truth >= 0 && truth < classes_ && predicted >= 0 &&
                 predicted < classes_,
             "confusion count out of range");
  return counts_[static_cast<std::size_t>(truth * classes_ + predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::int64_t diag = 0;
  for (std::int64_t c = 0; c < classes_; ++c) diag += count(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(std::int64_t truth) const {
  std::int64_t row = 0;
  for (std::int64_t p = 0; p < classes_; ++p) row += count(truth, p);
  if (row == 0) return 1.0;
  return static_cast<double>(count(truth, truth)) /
         static_cast<double>(row);
}

double ConfusionMatrix::precision(std::int64_t predicted) const {
  std::int64_t col = 0;
  for (std::int64_t t = 0; t < classes_; ++t) col += count(t, predicted);
  if (col == 0) return 1.0;
  return static_cast<double>(count(predicted, predicted)) /
         static_cast<double>(col);
}

double ConfusionMatrix::balanced_accuracy() const {
  double sum = 0.0;
  for (std::int64_t c = 0; c < classes_; ++c) sum += recall(c);
  return sum / static_cast<double>(classes_);
}

}  // namespace lcrs::nn
