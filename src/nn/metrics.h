// Classification metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace lcrs::nn {

/// Fraction of rows of `logits` whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

/// Top-k accuracy (k >= 1).
double topk_accuracy(const Tensor& logits,
                     const std::vector<std::int64_t>& labels, std::int64_t k);

/// Row-normalized confusion counts. cm[truth][predicted] = count.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::int64_t num_classes);

  void add(std::int64_t truth, std::int64_t predicted);
  void add_batch(const Tensor& logits,
                 const std::vector<std::int64_t>& labels);

  std::int64_t count(std::int64_t truth, std::int64_t predicted) const;
  std::int64_t total() const { return total_; }
  std::int64_t num_classes() const { return classes_; }

  /// Overall accuracy (trace / total); 0 when empty.
  double accuracy() const;

  /// Recall of one class (diagonal / row sum); 1 when the class is empty.
  double recall(std::int64_t truth) const;

  /// Precision of one class (diagonal / column sum); 1 when unpredicted.
  double precision(std::int64_t predicted) const;

  /// Mean per-class recall (balanced accuracy).
  double balanced_accuracy() const;

 private:
  std::int64_t classes_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> counts_;  // [classes x classes] row-major
};

}  // namespace lcrs::nn
