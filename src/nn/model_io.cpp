#include "nn/model_io.h"

#include "tensor/serialize.h"

namespace lcrs::nn {

namespace {
constexpr std::uint32_t kModelMagic = 0x4c43524d;  // "LCRM"
}

std::vector<std::uint8_t> save_params(Layer& model) {
  ByteWriter w;
  w.write_u32(kModelMagic);
  const auto params = model.params();
  w.write_u32(static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    w.write_string(p->name);
    write_tensor(w, p->value);
  }
  // Non-trainable state (batch-norm running statistics etc.).
  const auto states = model.state_tensors();
  w.write_u32(static_cast<std::uint32_t>(states.size()));
  for (const Layer::NamedState& s : states) {
    w.write_string(s.name);
    write_tensor(w, *s.tensor);
  }
  return w.take();
}

void load_params(Layer& model, const std::vector<std::uint8_t>& bytes) {
  // Transactional: parse and validate the entire blob into staging
  // storage first, then commit. A throw anywhere below leaves the model
  // exactly as it was -- tests/test_truncation.cpp feeds every prefix of
  // a valid blob through here and asserts no partial mutation.
  ByteReader r(bytes);
  if (r.read_u32() != kModelMagic) throw ParseError("bad model magic");
  const auto params = model.params();
  const std::uint32_t count = r.read_u32();
  if (count != params.size()) {
    throw ParseError("model parameter count mismatch: file has " +
                     std::to_string(count) + ", model has " +
                     std::to_string(params.size()));
  }
  std::vector<Tensor> staged_params;
  staged_params.reserve(params.size());
  for (Param* p : params) {
    const std::string name = r.read_string();
    if (name != p->name) {
      throw ParseError("parameter name mismatch: file '" + name +
                       "' vs model '" + p->name + "'");
    }
    Tensor t = read_tensor(r);
    if (t.shape() != p->value.shape()) {
      throw ParseError("parameter shape mismatch for " + name);
    }
    staged_params.push_back(std::move(t));
  }
  const auto states = model.state_tensors();
  const std::uint32_t state_count = r.read_u32();
  if (state_count != states.size()) {
    throw ParseError("model state count mismatch: file has " +
                     std::to_string(state_count) + ", model has " +
                     std::to_string(states.size()));
  }
  std::vector<Tensor> staged_states;
  staged_states.reserve(states.size());
  for (const Layer::NamedState& s : states) {
    const std::string name = r.read_string();
    if (name != s.name) {
      throw ParseError("state name mismatch: file '" + name +
                       "' vs model '" + s.name + "'");
    }
    Tensor t = read_tensor(r);
    if (t.shape() != s.tensor->shape()) {
      throw ParseError("state shape mismatch for " + name);
    }
    staged_states.push_back(std::move(t));
  }
  if (!r.at_end()) {
    throw ParseError("trailing bytes after model parameters");
  }

  // Commit -- nothing below can throw.
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = std::move(staged_params[i]);
  }
  for (std::size_t i = 0; i < states.size(); ++i) {
    *states[i].tensor = std::move(staged_states[i]);
  }
}

void save_params_file(Layer& model, const std::string& path) {
  write_file(path, save_params(model));
}

void load_params_file(Layer& model, const std::string& path) {
  load_params(model, read_file(path));
}

std::int64_t serialized_param_bytes(Layer& model) {
  std::int64_t n = 12;  // magic + param count + state count
  for (const Param* p : model.params()) {
    n += 4 + static_cast<std::int64_t>(p->name.size());
    n += tensor_wire_bytes(p->value.shape());
  }
  for (const Layer::NamedState& s : model.state_tensors()) {
    n += 4 + static_cast<std::int64_t>(s.name.size());
    n += tensor_wire_bytes(s.tensor->shape());
  }
  return n;
}

}  // namespace lcrs::nn
