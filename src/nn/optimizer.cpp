#include "nn/optimizer.h"

#include <cmath>

#include "common/error.h"
#include "common/numerics.h"

namespace lcrs::nn {

namespace {

// Optimizer-side numerics hooks: the incoming gradient is scanned before
// it is consumed and the parameter after it is updated, so a blow-up is
// attributed to the param by name and to the right side of the step.
void check_step_inputs(const std::vector<Param*>& params) {
  if (!numerics::enabled()) return;
  for (const Param* p : params) {
    numerics::check_values("step gradient", "param " + p->name,
                           p->grad.data(), p->grad.numel());
  }
}

void check_step_outputs(const std::vector<Param*>& params) {
  if (!numerics::enabled()) return;
  for (const Param* p : params) {
    numerics::check_values("updated value", "param " + p->name,
                           p->value.data(), p->value.numel());
  }
}

}  // namespace

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  LCRS_CHECK(lr > 0.0, "learning rate must be positive");
  LCRS_CHECK(momentum >= 0.0 && momentum < 1.0, "momentum must be in [0,1)");
}

void Sgd::step(const std::vector<Param*>& params) {
  check_step_inputs(params);
  for (Param* p : params) {
    Tensor& val = p->value;
    Tensor& grad = p->grad;
    if (momentum_ > 0.0) {
      auto [it, inserted] = velocity_.try_emplace(p, val.shape());
      Tensor& vel = it->second;
      (void)inserted;
      for (std::int64_t i = 0; i < val.numel(); ++i) {
        const float g =
            grad[i] + static_cast<float>(weight_decay_) * val[i];
        vel[i] = static_cast<float>(momentum_) * vel[i] + g;
        val[i] -= static_cast<float>(lr_) * vel[i];
      }
    } else {
      for (std::int64_t i = 0; i < val.numel(); ++i) {
        const float g =
            grad[i] + static_cast<float>(weight_decay_) * val[i];
        val[i] -= static_cast<float>(lr_) * g;
      }
    }
  }
  check_step_outputs(params);
}

double clip_grad_norm(const std::vector<Param*>& params, double max_norm) {
  LCRS_CHECK(max_norm > 0.0, "clip_grad_norm needs max_norm > 0");
  double sq = 0.0;
  for (const Param* p : params) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      const double g = static_cast<double>(p->grad[i]);
      sq += g * g;
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Param* p : params) {
      for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
        p->grad[i] *= scale;
      }
    }
  }
  return norm;
}

Adam::Adam(double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay) {
  LCRS_CHECK(lr > 0.0, "learning rate must be positive");
}

void Adam::step(const std::vector<Param*>& params) {
  check_step_inputs(params);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : params) {
    Tensor& val = p->value;
    Tensor& grad = p->grad;
    Tensor& m = m_.try_emplace(p, val.shape()).first->second;
    Tensor& v = v_.try_emplace(p, val.shape()).first->second;
    for (std::int64_t i = 0; i < val.numel(); ++i) {
      const double g = static_cast<double>(grad[i]) +
                       weight_decay_ * static_cast<double>(val[i]);
      m[i] = static_cast<float>(
          beta1_ * static_cast<double>(m[i]) + (1.0 - beta1_) * g);
      v[i] = static_cast<float>(
          beta2_ * static_cast<double>(v[i]) + (1.0 - beta2_) * g * g);
      const double mhat = static_cast<double>(m[i]) / bc1;
      const double vhat = static_cast<double>(v[i]) / bc2;
      val[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
  check_step_outputs(params);
}

}  // namespace lcrs::nn
