// Whole-model parameter (de)serialization.
//
// Saves parameters in declaration order with names and shapes, so a model
// built the same way round-trips exactly. This is the "full precision
// model" artifact whose byte size Tables I / Fig. 7 report.
#pragma once

#include <string>

#include "common/bytes.h"
#include "nn/layer.h"

namespace lcrs::nn {

/// Serializes every parameter of `model` (values only, not gradients).
std::vector<std::uint8_t> save_params(Layer& model);

/// Restores parameters saved by save_params into an identically
/// constructed model; throws ParseError on any mismatch.
void load_params(Layer& model, const std::vector<std::uint8_t>& bytes);

/// Convenience file wrappers.
void save_params_file(Layer& model, const std::string& path);
void load_params_file(Layer& model, const std::string& path);

/// Serialized model size in bytes (without serializing): header + payload
/// for each parameter, mirroring save_params' framing.
std::int64_t serialized_param_bytes(Layer& model);

}  // namespace lcrs::nn
