// Elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace lcrs::nn {

/// Rectified linear unit.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "relu"; }

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent (used by the classic LeNet variant).
class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "tanh"; }

 private:
  Tensor cached_output_;
};

/// Hard tanh clamp to [-1, 1]; the activation used in front of binary
/// layers so the straight-through estimator's |x| <= 1 window is honest.
class HardTanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "hardtanh"; }

 private:
  Tensor cached_input_;
};

}  // namespace lcrs::nn
