// Spatial pooling layers over NCHW tensors.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace lcrs::nn {

/// Max pooling with square window. Records argmax indices for backward.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "maxpool"; }

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t kernel_, stride_;
  Shape input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Average pooling with square window.
class AvgPool2d : public Layer {
 public:
  AvgPool2d(std::int64_t kernel, std::int64_t stride);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "avgpool"; }

 private:
  std::int64_t kernel_, stride_;
  Shape input_shape_;
};

/// Collapses each channel's spatial plane to its mean: [N,C,H,W] -> [N,C].
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "gap"; }

 private:
  Shape input_shape_;
};

/// Reshapes [N,C,H,W] to [N, C*H*W]; identity on data.
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "flatten"; }

 private:
  Shape input_shape_;
};

}  // namespace lcrs::nn
