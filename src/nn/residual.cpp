#include "nn/residual.h"

#include "tensor/tensor_ops.h"

namespace lcrs::nn {

ResidualBlock::ResidualBlock(std::int64_t in_c, std::int64_t out_c,
                             std::int64_t stride, std::int64_t in_h,
                             std::int64_t in_w, Rng& rng)
    : out_c_(out_c) {
  conv1_ = std::make_unique<Conv2d>(in_c, out_c, 3, stride, 1, in_h, in_w,
                                    rng, /*bias=*/false);
  const std::int64_t mid_h = conv1_->geometry().out_h();
  const std::int64_t mid_w = conv1_->geometry().out_w();
  bn1_ = std::make_unique<BatchNorm>(out_c);
  conv2_ = std::make_unique<Conv2d>(out_c, out_c, 3, 1, 1, mid_h, mid_w, rng,
                                    /*bias=*/false);
  bn2_ = std::make_unique<BatchNorm>(out_c);
  if (stride != 1 || in_c != out_c) {
    shortcut_conv_ = std::make_unique<Conv2d>(in_c, out_c, 1, stride, 0, in_h,
                                              in_w, rng, /*bias=*/false);
    shortcut_bn_ = std::make_unique<BatchNorm>(out_c);
  }
}

Tensor ResidualBlock::forward(const Tensor& input, bool train) {
  LCRS_CHECK(input.rank() == 4, "residual block expects NCHW input, got rank "
                                    << input.rank());
  Tensor main = conv1_->forward(input, train);
  main = bn1_->forward(main, train);
  if (train) cached_relu1_in_ = main;
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] < 0.0f) main[i] = 0.0f;
  }
  main = conv2_->forward(main, train);
  main = bn2_->forward(main, train);

  Tensor sc = input;
  if (shortcut_conv_) {
    sc = shortcut_conv_->forward(input, train);
    sc = shortcut_bn_->forward(sc, train);
  }
  add_inplace(main, sc);
  if (train) cached_sum_ = main;
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] < 0.0f) main[i] = 0.0f;
  }
  return main;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  LCRS_CHECK(cached_sum_.numel() > 0,
             "resblock backward without cached forward");
  // Through the final ReLU.
  Tensor g(grad_output.shape());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = cached_sum_[i] > 0.0f ? grad_output[i] : 0.0f;
  }

  // Shortcut path gradient.
  Tensor g_short = g;
  if (shortcut_conv_) {
    g_short = shortcut_bn_->backward(g_short);
    g_short = shortcut_conv_->backward(g_short);
  }

  // Main path gradient.
  Tensor g_main = bn2_->backward(g);
  g_main = conv2_->backward(g_main);
  for (std::int64_t i = 0; i < g_main.numel(); ++i) {
    if (cached_relu1_in_[i] <= 0.0f) g_main[i] = 0.0f;
  }
  g_main = bn1_->backward(g_main);
  g_main = conv1_->backward(g_main);

  add_inplace(g_main, g_short);
  return g_main;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> ps;
  for (Layer* l :
       std::initializer_list<Layer*>{conv1_.get(), bn1_.get(), conv2_.get(),
                                     bn2_.get(), shortcut_conv_.get(),
                                     shortcut_bn_.get()}) {
    if (l == nullptr) continue;
    for (Param* p : l->params()) ps.push_back(p);
  }
  return ps;
}

std::vector<nn::Layer::NamedState> ResidualBlock::state_tensors() {
  std::vector<NamedState> all;
  for (Layer* l : std::initializer_list<Layer*>{bn1_.get(), bn2_.get(),
                                                shortcut_bn_.get()}) {
    if (l == nullptr) continue;
    for (const NamedState& s : l->state_tensors()) all.push_back(s);
  }
  return all;
}

std::vector<nn::Layer*> ResidualBlock::children() {
  std::vector<Layer*> out;
  for (Layer* l :
       std::initializer_list<Layer*>{conv1_.get(), bn1_.get(), conv2_.get(),
                                     bn2_.get(), shortcut_conv_.get(),
                                     shortcut_bn_.get()}) {
    if (l != nullptr) out.push_back(l);
  }
  return out;
}

std::int64_t ResidualBlock::flops_per_sample() const {
  std::int64_t f = conv1_->flops_per_sample() + conv2_->flops_per_sample();
  if (shortcut_conv_) f += shortcut_conv_->flops_per_sample();
  return f;
}

}  // namespace lcrs::nn
