// Sequential container of layers.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace lcrs::nn {

/// Runs child layers in order; backward() runs them in reverse. Also the
/// unit of model partitioning: baselines cut Sequential chains at layer
/// boundaries, so it exposes per-layer access and prefix execution.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for builder-style chaining.
  Sequential& add(LayerPtr layer) {
    LCRS_CHECK(layer != nullptr, "cannot add null layer");
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::vector<NamedState> state_tensors() override;
  std::vector<Layer*> children() override {
    std::vector<Layer*> out;
    out.reserve(layers_.size());
    for (auto& l : layers_) out.push_back(l.get());
    return out;
  }
  std::string kind() const override { return "sequential"; }
  std::int64_t flops_per_sample() const override;

  std::size_t size() const { return layers_.size(); }
  bool empty() const { return layers_.empty(); }
  Layer& layer(std::size_t i) {
    LCRS_CHECK(i < layers_.size(), "layer index out of range");
    return *layers_[i];
  }
  const Layer& layer(std::size_t i) const {
    LCRS_CHECK(i < layers_.size(), "layer index out of range");
    return *layers_[i];
  }

  /// Runs only layers [0, n_layers) -- used by partition-point baselines.
  Tensor forward_prefix(const Tensor& input, std::size_t n_layers,
                        bool train = false);

  /// Runs layers [n_layers, size()) on an intermediate activation.
  Tensor forward_suffix(const Tensor& intermediate, std::size_t n_layers,
                        bool train = false);

  /// Moves all layers out, leaving this container empty. Used to splice
  /// stage-built models into one flat layer list for the partitioners.
  std::vector<LayerPtr> release_layers() { return std::move(layers_); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace lcrs::nn
