// Basic residual block (ResNet-18 style).
#pragma once

#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"

namespace lcrs::nn {

/// y = relu( bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x) ) where the
/// shortcut is identity, or a strided 1x1 conv + bn when the block changes
/// resolution or channel count.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::int64_t in_c, std::int64_t out_c, std::int64_t stride,
                std::int64_t in_h, std::int64_t in_w, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::vector<NamedState> state_tensors() override;
  std::vector<Layer*> children() override;
  std::string kind() const override { return "resblock"; }
  std::int64_t flops_per_sample() const override;

  std::int64_t out_channels() const { return out_c_; }
  std::int64_t out_h() const { return conv2_->geometry().out_h(); }
  std::int64_t out_w() const { return conv2_->geometry().out_w(); }

 private:
  std::int64_t out_c_;
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm> bn1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm> bn2_;
  std::unique_ptr<Conv2d> shortcut_conv_;  // null for identity shortcut
  std::unique_ptr<BatchNorm> shortcut_bn_;

  // Forward caches for the hand-written backward pass.
  Tensor cached_relu1_in_;   // pre-activation of inner ReLU
  Tensor cached_sum_;        // main + shortcut, pre final ReLU
};

}  // namespace lcrs::nn
