// Gradient-descent optimizers.
//
// The paper trains with "gradient descent like Adam" (Sec. IV-B); both SGD
// with momentum and Adam are provided, plus a step-decay learning-rate
// schedule matching Algorithm 1's per-layer rate update hook.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/layer.h"

namespace lcrs::nn {

/// Interface: consumes accumulated Param::grad, updates Param::value, then
/// the caller zeroes gradients for the next batch.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step to every parameter.
  virtual void step(const std::vector<Param*>& params) = 0;

  virtual double learning_rate() const = 0;
  virtual void set_learning_rate(double lr) = 0;
};

/// Plain SGD with optional momentum and weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);

  void step(const std::vector<Param*>& params) override;
  double learning_rate() const override { return lr_; }
  void set_learning_rate(double lr) override { lr_ = lr; }

 private:
  double lr_, momentum_, weight_decay_;
  std::unordered_map<Param*, Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0);

  void step(const std::vector<Param*>& params) override;
  double learning_rate() const override { return lr_; }
  void set_learning_rate(double lr) override { lr_ = lr; }

 private:
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::unordered_map<Param*, Tensor> m_, v_;
};

/// Scales gradients so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm. Standard divergence guard for the joint
/// training runs.
double clip_grad_norm(const std::vector<Param*>& params, double max_norm);

/// Multiplies the learning rate by `gamma` every `step_epochs` epochs.
class StepDecay {
 public:
  StepDecay(std::int64_t step_epochs, double gamma)
      : step_epochs_(step_epochs), gamma_(gamma) {}

  /// Adjusts `opt` for the given (0-based) epoch about to start.
  void apply(Optimizer& opt, std::int64_t epoch, double base_lr) const {
    double lr = base_lr;
    for (std::int64_t e = step_epochs_; e <= epoch; e += step_epochs_) {
      lr *= gamma_;
    }
    opt.set_learning_rate(lr);
  }

 private:
  std::int64_t step_epochs_;
  double gamma_;
};

}  // namespace lcrs::nn
