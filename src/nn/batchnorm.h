// Batch normalization over channels of an NCHW tensor.
#pragma once

#include "nn/layer.h"

namespace lcrs::nn {

/// BatchNorm2d: per-channel normalization with learned scale/shift and
/// running statistics for inference. Also accepts rank-2 [N, C] inputs
/// (BatchNorm1d behaviour) so binary FC stacks can normalize too.
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::int64_t channels, float momentum = 0.1f,
                     float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<NamedState> state_tensors() override {
    return {{"bn.running_mean", &running_mean_},
            {"bn.running_var", &running_var_}};
  }
  std::string kind() const override { return "batchnorm"; }

  std::int64_t channels() const { return channels_; }
  float eps() const { return eps_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;

  // Forward cache (train mode).
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // [C]
  Shape input_shape_;
};

}  // namespace lcrs::nn
