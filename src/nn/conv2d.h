// Full-precision 2-D convolution layer (im2col + GEMM).
#pragma once

#include "nn/layer.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"

namespace lcrs::nn {

/// Conv2d over NCHW input. Weight layout: [out_c, in_c, k, k]; bias [out_c].
class Conv2d : public Layer {
 public:
  /// `fixed_hw` pins the expected spatial size so geometry (and therefore
  /// FLOP accounting) is known at construction; forward() checks it.
  Conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, std::int64_t in_h,
         std::int64_t in_w, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "conv2d"; }
  std::int64_t flops_per_sample() const override;

  const ConvGeom& geometry() const { return geom_; }
  std::int64_t out_channels() const { return out_c_; }
  Param& weight() { return weight_; }
  Param& bias_param() { return bias_; }
  bool has_bias() const { return has_bias_; }

  /// Output shape for a batch of n samples.
  Shape output_shape(std::int64_t n) const {
    return Shape{n, out_c_, geom_.out_h(), geom_.out_w()};
  }

  /// Packs the [out_c x patch] weight matrix into GEMM panels so eval
  /// forwards skip the per-call weight traversal and run the prepared
  /// kernel over a batch-wide lowered block. Mirrors
  /// Linear::prepare_inference(): call once after training settles;
  /// backward() invalidates the panels (optimizer steps follow).
  void prepare_inference();
  bool inference_prepared() const { return packed_fresh_; }

 private:
  ConvGeom geom_;
  std::int64_t out_c_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;  // saved in forward(train) for the backward pass
  PackedA packed_weight_;      // panel-packed W, valid while packed_fresh_
  bool packed_fresh_ = false;  // cleared by backward()
};

}  // namespace lcrs::nn
