#include "nn/linear.h"

#include "tensor/gemm.h"

namespace lcrs::nn {

Linear::Linear(std::int64_t in, std::int64_t out, Rng& rng, bool bias)
    : in_(in),
      out_(out),
      has_bias_(bias),
      weight_("linear.weight", Tensor::kaiming(Shape{out, in}, rng, in)),
      bias_("linear.bias", Tensor::zeros(Shape{out})) {
  LCRS_CHECK(in > 0 && out > 0, "linear dims must be positive");
}

Tensor Linear::forward(const Tensor& input, bool train) {
  LCRS_CHECK(input.rank() == 2 && input.dim(1) == in_,
             "linear expects [batch x " << in_ << "], got "
                                        << input.shape().to_string());
  const std::int64_t n = input.dim(0);
  // y[n x out] = x[n x in] * W^T (W stored [out x in])
  Tensor out{Shape{n, out_}};
  if (!train && wt_fresh_) {
    // Prepared eval path: W^T is cached in row-major [in x out], so the
    // blocked GEMM's inner loop runs contiguously over output neurons
    // and each weight tile is reused across every batch row.
    gemm(input.data(), weight_t_.data(), out.data(), n, in_, out_);
  } else {
    gemm_bt(input.data(), weight_.value.data(), out.data(), n, in_, out_);
  }
  if (has_bias_) {
    for (std::int64_t b = 0; b < n; ++b) {
      float* row = out.data() + b * out_;
      for (std::int64_t o = 0; o < out_; ++o) row[o] += bias_.value[o];
    }
  }
  if (train) cached_input_ = input;
  return out;
}

void Linear::prepare_inference() {
  weight_t_ = Tensor{Shape{in_, out_}};
  const float* w = weight_.value.data();
  float* wt = weight_t_.data();
  for (std::int64_t o = 0; o < out_; ++o) {
    for (std::int64_t i = 0; i < in_; ++i) wt[i * out_ + o] = w[o * in_ + i];
  }
  wt_fresh_ = true;
}

Tensor Linear::backward(const Tensor& grad_output) {
  // A backward pass means an optimizer step is coming; the cached
  // transpose would silently serve stale weights after it.
  wt_fresh_ = false;
  LCRS_CHECK(cached_input_.numel() > 0,
             "linear backward without cached forward");
  const Tensor& input = cached_input_;
  const std::int64_t n = input.dim(0);
  LCRS_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == n &&
                 grad_output.dim(1) == out_,
             "linear grad_output shape mismatch");

  // dW[out x in] += gout^T[out x n] * x[n x in]
  gemm_at(grad_output.data(), input.data(), weight_.grad.data(), out_, n,
          in_, 1.0f);
  if (has_bias_) {
    for (std::int64_t b = 0; b < n; ++b) {
      const float* row = grad_output.data() + b * out_;
      for (std::int64_t o = 0; o < out_; ++o) bias_.grad[o] += row[o];
    }
  }
  // dx[n x in] = gout[n x out] * W[out x in]
  Tensor grad_input{Shape{n, in_}};
  gemm(grad_output.data(), weight_.value.data(), grad_input.data(), n, out_,
       in_);
  return grad_input;
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

}  // namespace lcrs::nn
