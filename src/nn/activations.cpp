#include "nn/activations.h"

#include <cmath>

#include "common/simd_math.h"

namespace lcrs::nn {

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  if (train) cached_input_ = input;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  LCRS_CHECK(cached_input_.same_shape(grad_output),
             "relu backward shape mismatch");
  Tensor grad(grad_output.shape());
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool train) {
  // Dispatched kernel: exact std::tanh at the scalar level, the vectorized
  // approximation (see common/simd_math.h) on vector levels. Elementwise
  // purity keeps batch-composition invariance intact at any level.
  Tensor out = input;
  simd::tanh_inplace(out.data(), out.numel());
  if (train) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  LCRS_CHECK(cached_output_.same_shape(grad_output),
             "tanh backward shape mismatch");
  Tensor grad(grad_output.shape());
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    const float y = cached_output_[i];
    grad[i] = grad_output[i] * (1.0f - y * y);
  }
  return grad;
}

Tensor HardTanh::forward(const Tensor& input, bool train) {
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float x = input[i];
    out[i] = x > 1.0f ? 1.0f : (x < -1.0f ? -1.0f : x);
  }
  if (train) cached_input_ = input;
  return out;
}

Tensor HardTanh::backward(const Tensor& grad_output) {
  LCRS_CHECK(cached_input_.same_shape(grad_output),
             "hardtanh backward shape mismatch");
  Tensor grad(grad_output.shape());
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    const float x = cached_input_[i];
    grad[i] = (x >= -1.0f && x <= 1.0f) ? grad_output[i] : 0.0f;
  }
  return grad;
}

}  // namespace lcrs::nn
