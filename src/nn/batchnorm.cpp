#include "nn/batchnorm.h"

#include <cmath>
#include <vector>

namespace lcrs::nn {

BatchNorm::BatchNorm(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", Tensor::ones(Shape{channels})),
      beta_("bn.beta", Tensor::zeros(Shape{channels})),
      running_mean_(Shape{channels}),
      running_var_(Tensor::ones(Shape{channels})) {
  LCRS_CHECK(channels > 0, "batchnorm channels must be positive");
}

namespace {
// Treat input as [N, C, S] with S = spatial size (1 for rank-2 input).
struct BnView {
  std::int64_t n, c, s;
};

BnView view_of(const Tensor& t, std::int64_t channels) {
  LCRS_CHECK(t.rank() == 2 || t.rank() == 4,
             "batchnorm expects rank 2 or 4, got " << t.rank());
  LCRS_CHECK(t.dim(1) == channels, "batchnorm channel mismatch: input "
                                       << t.dim(1) << " vs layer "
                                       << channels);
  if (t.rank() == 2) return {t.dim(0), t.dim(1), 1};
  return {t.dim(0), t.dim(1), t.dim(2) * t.dim(3)};
}
}  // namespace

Tensor BatchNorm::forward(const Tensor& input, bool train) {
  const BnView v = view_of(input, channels_);
  const std::int64_t count = v.n * v.s;
  LCRS_CHECK(count > 0, "batchnorm on empty batch");
  Tensor out(input.shape());

  std::vector<double> mean(static_cast<std::size_t>(channels_), 0.0);
  std::vector<double> var(static_cast<std::size_t>(channels_), 0.0);

  if (train) {
    for (std::int64_t b = 0; b < v.n; ++b) {
      for (std::int64_t c = 0; c < v.c; ++c) {
        const float* p = input.data() + (b * v.c + c) * v.s;
        for (std::int64_t i = 0; i < v.s; ++i) {
          mean[static_cast<std::size_t>(c)] += static_cast<double>(p[i]);
        }
      }
    }
    for (auto& m : mean) m /= static_cast<double>(count);
    for (std::int64_t b = 0; b < v.n; ++b) {
      for (std::int64_t c = 0; c < v.c; ++c) {
        const float* p = input.data() + (b * v.c + c) * v.s;
        const double m = mean[static_cast<std::size_t>(c)];
        for (std::int64_t i = 0; i < v.s; ++i) {
          const double d = static_cast<double>(p[i]) - m;
          var[static_cast<std::size_t>(c)] += d * d;
        }
      }
    }
    for (auto& s2 : var) s2 /= static_cast<double>(count);
    for (std::int64_t c = 0; c < channels_; ++c) {
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean[c]);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var[c]);
    }
  } else {
    for (std::int64_t c = 0; c < channels_; ++c) {
      mean[static_cast<std::size_t>(c)] = running_mean_[c];
      var[static_cast<std::size_t>(c)] = running_var_[c];
    }
  }

  Tensor inv_std{Shape{channels_}};
  for (std::int64_t c = 0; c < channels_; ++c) {
    inv_std[c] = static_cast<float>(
        1.0 / std::sqrt(var[static_cast<std::size_t>(c)] +
                        static_cast<double>(eps_)));
  }

  Tensor xhat(input.shape());
  for (std::int64_t b = 0; b < v.n; ++b) {
    for (std::int64_t c = 0; c < v.c; ++c) {
      const float* p = input.data() + (b * v.c + c) * v.s;
      float* xh = xhat.data() + (b * v.c + c) * v.s;
      float* o = out.data() + (b * v.c + c) * v.s;
      const float m = static_cast<float>(mean[static_cast<std::size_t>(c)]);
      const float is = inv_std[c];
      const float g = gamma_.value[c], bt = beta_.value[c];
      for (std::int64_t i = 0; i < v.s; ++i) {
        xh[i] = (p[i] - m) * is;
        o[i] = g * xh[i] + bt;
      }
    }
  }

  if (train) {
    cached_xhat_ = std::move(xhat);
    cached_inv_std_ = std::move(inv_std);
    input_shape_ = input.shape();
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  LCRS_CHECK(cached_xhat_.numel() > 0,
             "batchnorm backward without cached forward");
  const BnView v = view_of(grad_output, channels_);
  LCRS_CHECK(grad_output.shape() == input_shape_,
             "batchnorm grad shape mismatch");
  const double count = static_cast<double>(v.n * v.s);

  // Per-channel sums of g and g*xhat.
  std::vector<double> sum_g(static_cast<std::size_t>(channels_), 0.0);
  std::vector<double> sum_gx(static_cast<std::size_t>(channels_), 0.0);
  for (std::int64_t b = 0; b < v.n; ++b) {
    for (std::int64_t c = 0; c < v.c; ++c) {
      const float* g = grad_output.data() + (b * v.c + c) * v.s;
      const float* xh = cached_xhat_.data() + (b * v.c + c) * v.s;
      for (std::int64_t i = 0; i < v.s; ++i) {
        sum_g[static_cast<std::size_t>(c)] += static_cast<double>(g[i]);
        sum_gx[static_cast<std::size_t>(c)] +=
            static_cast<double>(g[i]) * static_cast<double>(xh[i]);
      }
    }
  }
  for (std::int64_t c = 0; c < channels_; ++c) {
    beta_.grad[c] += static_cast<float>(sum_g[static_cast<std::size_t>(c)]);
    gamma_.grad[c] += static_cast<float>(sum_gx[static_cast<std::size_t>(c)]);
  }

  Tensor grad_input{input_shape_};
  for (std::int64_t b = 0; b < v.n; ++b) {
    for (std::int64_t c = 0; c < v.c; ++c) {
      const float* g = grad_output.data() + (b * v.c + c) * v.s;
      const float* xh = cached_xhat_.data() + (b * v.c + c) * v.s;
      float* gi = grad_input.data() + (b * v.c + c) * v.s;
      const float gam = gamma_.value[c];
      const float is = cached_inv_std_[c];
      const float mg = static_cast<float>(
          sum_g[static_cast<std::size_t>(c)] / count);
      const float mgx = static_cast<float>(
          sum_gx[static_cast<std::size_t>(c)] / count);
      for (std::int64_t i = 0; i < v.s; ++i) {
        gi[i] = gam * is * (g[i] - mg - xh[i] * mgx);
      }
    }
  }
  return grad_input;
}

}  // namespace lcrs::nn
