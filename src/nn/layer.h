// Layer abstraction for the training framework.
//
// This is a deliberately simple layer-graph design (no tape autograd):
// each layer caches whatever it needs in forward() and consumes it in
// backward(). That matches the paper's networks, which are feed-forward
// chains plus ResNet blocks (handled as composite layers), and keeps the
// whole framework small and auditable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace lcrs::nn {

/// A trainable parameter: value plus accumulated gradient of the same
/// shape. Layers own their Params; optimizers mutate them through
/// Layer::params().
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
  std::int64_t numel() const { return value.numel(); }
};

/// Interface implemented by every network building block.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. When `train` is true the layer may cache
  /// activations for backward() and apply train-only behaviour (dropout,
  /// batch-norm batch statistics).
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Propagates the loss gradient. Must be called after a forward() with
  /// train == true; accumulates into each Param::grad and returns the
  /// gradient w.r.t. the layer input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers). Pointers remain
  /// valid for the lifetime of the layer.
  virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable state that must persist with the model (e.g.
  /// batch-norm running statistics). Saved/restored by nn::save_params /
  /// nn::load_params alongside the parameters.
  struct NamedState {
    std::string name;
    Tensor* tensor;
  };
  virtual std::vector<NamedState> state_tensors() { return {}; }

  /// Direct child layers of composite layers (Sequential, ResidualBlock);
  /// empty for leaves. Enables generic model-tree walks (e.g. the int8
  /// payload accounting).
  virtual std::vector<Layer*> children() { return {}; }

  /// Short type tag used in logs and model accounting (e.g. "conv2d").
  virtual std::string kind() const = 0;

  /// Multiply-accumulate count for one sample through this layer, used by
  /// the latency cost model. Stateless layers may return 0.
  virtual std::int64_t flops_per_sample() const { return 0; }

  /// Bytes this layer contributes to a serialized full-precision model.
  std::int64_t param_bytes() const {
    std::int64_t n = 0;
    for (const Param* p : const_cast<Layer*>(this)->params()) {
      n += p->numel() * static_cast<std::int64_t>(sizeof(float));
    }
    return n;
  }

  std::int64_t param_count() const {
    std::int64_t n = 0;
    for (const Param* p : const_cast<Layer*>(this)->params()) n += p->numel();
    return n;
  }

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace lcrs::nn
