#include "nn/conv2d.h"

#include <vector>

#include "common/parallel.h"
#include "tensor/gemm.h"

namespace lcrs::nn {

Conv2d::Conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, std::int64_t in_h,
               std::int64_t in_w, Rng& rng, bool bias)
    : geom_{in_c, in_h, in_w, kernel, stride, pad},
      out_c_(out_c),
      has_bias_(bias),
      weight_("conv.weight",
              Tensor::kaiming(Shape{out_c, in_c, kernel, kernel}, rng,
                              in_c * kernel * kernel)),
      bias_("conv.bias", Tensor::zeros(Shape{out_c})) {
  LCRS_CHECK(out_c > 0, "conv out_c must be positive");
  geom_.validate();
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  LCRS_CHECK(input.rank() == 4, "conv2d expects NCHW input, got rank "
                                    << input.rank());
  LCRS_CHECK(input.dim(1) == geom_.in_c && input.dim(2) == geom_.in_h &&
                 input.dim(3) == geom_.in_w,
             "conv2d input " << input.shape().to_string()
                             << " does not match geometry C=" << geom_.in_c
                             << " H=" << geom_.in_h << " W=" << geom_.in_w);
  const std::int64_t n = input.dim(0);
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::int64_t pixels = oh * ow;
  const std::int64_t patch = geom_.patch_size();
  const std::int64_t in_image = geom_.in_c * geom_.in_h * geom_.in_w;

  Tensor out{Shape{n, out_c_, oh, ow}};
  const auto add_bias = [&](std::int64_t b) {
    if (!has_bias_) return;
    float* obase = out.data() + b * out_c_ * pixels;
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      const float bv = bias_.value[oc];
      float* orow = obase + oc * pixels;
      for (std::int64_t p = 0; p < pixels; ++p) orow[p] += bv;
    }
  };

  if (!train && packed_fresh_) {
    // Prepared serving path: lower the whole batch in one im2col pass,
    // then run the panel-packed GEMM per sample. Chunked so the lowered
    // block stays bounded (~8 MiB) at large batch sizes. Each output
    // element is still one ascending-k chain over (weight row, patch),
    // so batch rows are bit-identical to the same sample served alone.
    const std::int64_t block = patch * pixels;
    const std::int64_t chunk = std::max<std::int64_t>(
        1, (8ll << 20) / (block * static_cast<std::int64_t>(sizeof(float))));
    std::vector<float> cols(static_cast<std::size_t>(
        std::min<std::int64_t>(n > 0 ? n : 1, chunk) * block));
    for (std::int64_t s0 = 0; s0 < n; s0 += chunk) {
      const std::int64_t s1 = std::min<std::int64_t>(n, s0 + chunk);
      im2col_batch(input.data() + s0 * in_image, s1 - s0, geom_,
                   cols.data());
      for (std::int64_t b = s0; b < s1; ++b) {
        gemm_packed_a(packed_weight_, cols.data() + (b - s0) * block,
                      out.data() + b * out_c_ * pixels, pixels);
        add_bias(b);
      }
    }
    return out;
  }

  parallel_for(n, [&](std::int64_t b0, std::int64_t b1) {
    std::vector<float> cols(static_cast<std::size_t>(patch * pixels));
    for (std::int64_t b = b0; b < b1; ++b) {
      im2col(input.data() + b * in_image, geom_, cols.data());
      // out[b] = W[out_c x patch] * cols[patch x pixels]
      gemm(weight_.value.data(), cols.data(),
           out.data() + b * out_c_ * pixels, out_c_, patch, pixels);
      add_bias(b);
    }
  });

  if (train) cached_input_ = input;
  return out;
}

void Conv2d::prepare_inference() {
  packed_weight_ =
      pack_a_panels(weight_.value.data(), out_c_, geom_.patch_size());
  packed_fresh_ = true;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  LCRS_CHECK(cached_input_.numel() > 0,
             "conv2d backward without cached forward");
  // Training resumed: the optimizer will move the weights, so the packed
  // panels are stale from here on (same policy as Linear::backward).
  packed_fresh_ = false;
  const Tensor& input = cached_input_;
  const std::int64_t n = input.dim(0);
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::int64_t pixels = oh * ow;
  const std::int64_t patch = geom_.patch_size();
  const std::int64_t in_image = geom_.in_c * geom_.in_h * geom_.in_w;
  LCRS_CHECK(grad_output.shape() == (Shape{n, out_c_, oh, ow}),
             "conv2d grad_output shape mismatch: "
                 << grad_output.shape().to_string());

  Tensor grad_input{input.shape()};
  // Serial over batch: weight gradient accumulation is a shared sum and
  // the single-core target gains nothing from sharding it.
  std::vector<float> cols(static_cast<std::size_t>(patch * pixels));
  std::vector<float> dcols(static_cast<std::size_t>(patch * pixels));
  for (std::int64_t b = 0; b < n; ++b) {
    const float* gout = grad_output.data() + b * out_c_ * pixels;
    im2col(input.data() + b * in_image, geom_, cols.data());

    // dW += gout[out_c x pixels] * cols^T[pixels x patch]
    gemm_bt(gout, cols.data(), weight_.grad.data(), out_c_, pixels, patch,
            1.0f);

    // dcols = W^T[patch x out_c] * gout[out_c x pixels]
    gemm_at(weight_.value.data(), gout, dcols.data(), patch, out_c_, pixels);
    col2im(dcols.data(), geom_, grad_input.data() + b * in_image);

    if (has_bias_) {
      for (std::int64_t oc = 0; oc < out_c_; ++oc) {
        const float* grow = gout + oc * pixels;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < pixels; ++p) acc += grow[p];
        bias_.grad[oc] += acc;
      }
    }
  }
  return grad_input;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

std::int64_t Conv2d::flops_per_sample() const {
  // One MAC = 2 flops; plus bias adds.
  const std::int64_t pixels = geom_.out_h() * geom_.out_w();
  std::int64_t f = 2 * out_c_ * geom_.patch_size() * pixels;
  if (has_bias_) f += out_c_ * pixels;
  return f;
}

}  // namespace lcrs::nn
