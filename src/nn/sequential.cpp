#include "nn/sequential.h"

#include <string>

#include "common/numerics.h"

namespace lcrs::nn {

namespace {

// Builds the attribution string lazily -- only on the enabled path, so the
// common case stays allocation-free.
std::string layer_label(std::size_t i, const Layer& layer) {
  return "layer " + std::to_string(i) + " (" + layer.kind() + ")";
}

void check_layer_output(const char* stage, std::size_t i, const Layer& layer,
                        const Tensor& t) {
  if (!numerics::enabled()) return;
  numerics::check_values(stage, layer_label(i, layer), t.data(), t.numel());
}

}  // namespace

Tensor Sequential::forward(const Tensor& input, bool train) {
  if (numerics::enabled()) {
    numerics::check_values("forward input", "sequential", input.data(),
                           input.numel());
  }
  Tensor x = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i]->forward(x, train);
    check_layer_output("forward output", i, *layers_[i], x);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
    check_layer_output("backward input gradient", i, *layers_[i], g);
    if (numerics::enabled()) {
      for (Param* p : layers_[i]->params()) {
        numerics::check_values("accumulated gradient",
                               layer_label(i, *layers_[i]) + " param " +
                                   p->name,
                               p->grad.data(), p->grad.numel());
      }
    }
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

std::vector<Layer::NamedState> Sequential::state_tensors() {
  std::vector<NamedState> all;
  for (auto& layer : layers_) {
    for (const NamedState& s : layer->state_tensors()) all.push_back(s);
  }
  return all;
}

std::int64_t Sequential::flops_per_sample() const {
  std::int64_t f = 0;
  for (const auto& layer : layers_) f += layer->flops_per_sample();
  return f;
}

Tensor Sequential::forward_prefix(const Tensor& input, std::size_t n_layers,
                                  bool train) {
  LCRS_CHECK(n_layers <= layers_.size(), "prefix longer than model");
  Tensor x = input;
  for (std::size_t i = 0; i < n_layers; ++i) {
    x = layers_[i]->forward(x, train);
    check_layer_output("forward output", i, *layers_[i], x);
  }
  return x;
}

Tensor Sequential::forward_suffix(const Tensor& intermediate,
                                  std::size_t n_layers, bool train) {
  LCRS_CHECK(n_layers <= layers_.size(), "suffix start beyond model");
  Tensor x = intermediate;
  for (std::size_t i = n_layers; i < layers_.size(); ++i) {
    x = layers_[i]->forward(x, train);
    check_layer_output("forward output", i, *layers_[i], x);
  }
  return x;
}

}  // namespace lcrs::nn
