#include "nn/sequential.h"

#include <string>

#include "common/numerics.h"
#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/stopwatch.h"

namespace lcrs::nn {

namespace {

// Builds the attribution string lazily -- only on the enabled path, so the
// common case stays allocation-free.
std::string layer_label(std::size_t i, const Layer& layer) {
  return "layer " + std::to_string(i) + " (" + layer.kind() + ")";
}

void check_layer_output(const char* stage, std::size_t i, const Layer& layer,
                        const Tensor& t) {
  if (!numerics::enabled()) return;
  numerics::check_values(stage, layer_label(i, layer), t.data(), t.numel());
}

/// Profiling hook (same shape as the numerics hook): records one layer's
/// elapsed time into "nn.layer.<i>.<kind>.<stage>" in the global
/// registry. Callers gate on obs::profiling_enabled() so the disabled
/// path costs one relaxed load per forward/backward call, not per layer.
void record_layer_time(std::size_t i, const Layer& layer, const char* stage,
                       double micros) {
  obs::Registry::global()
      .histogram(obs::names::layer_metric(i, layer.kind(), stage))
      .record(micros);
}

}  // namespace

Tensor Sequential::forward(const Tensor& input, bool train) {
  if (numerics::enabled()) {
    numerics::check_values("forward input", "sequential", input.data(),
                           input.numel());
  }
  const bool profile = obs::profiling_enabled();
  Tensor x = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Stopwatch watch;
    x = layers_[i]->forward(x, train);
    if (profile) {
      record_layer_time(i, *layers_[i], "forward_us", watch.micros());
    }
    check_layer_output("forward output", i, *layers_[i], x);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  const bool profile = obs::profiling_enabled();
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    Stopwatch watch;
    g = layers_[i]->backward(g);
    if (profile) {
      record_layer_time(i, *layers_[i], "backward_us", watch.micros());
    }
    check_layer_output("backward input gradient", i, *layers_[i], g);
    if (numerics::enabled()) {
      for (Param* p : layers_[i]->params()) {
        numerics::check_values("accumulated gradient",
                               layer_label(i, *layers_[i]) + " param " +
                                   p->name,
                               p->grad.data(), p->grad.numel());
      }
    }
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

std::vector<Layer::NamedState> Sequential::state_tensors() {
  std::vector<NamedState> all;
  for (auto& layer : layers_) {
    for (const NamedState& s : layer->state_tensors()) all.push_back(s);
  }
  return all;
}

std::int64_t Sequential::flops_per_sample() const {
  std::int64_t f = 0;
  for (const auto& layer : layers_) f += layer->flops_per_sample();
  return f;
}

Tensor Sequential::forward_prefix(const Tensor& input, std::size_t n_layers,
                                  bool train) {
  LCRS_CHECK(n_layers <= layers_.size(), "prefix longer than model");
  const bool profile = obs::profiling_enabled();
  Tensor x = input;
  for (std::size_t i = 0; i < n_layers; ++i) {
    Stopwatch watch;
    x = layers_[i]->forward(x, train);
    if (profile) {
      record_layer_time(i, *layers_[i], "forward_us", watch.micros());
    }
    check_layer_output("forward output", i, *layers_[i], x);
  }
  return x;
}

Tensor Sequential::forward_suffix(const Tensor& intermediate,
                                  std::size_t n_layers, bool train) {
  LCRS_CHECK(n_layers <= layers_.size(), "suffix start beyond model");
  const bool profile = obs::profiling_enabled();
  Tensor x = intermediate;
  for (std::size_t i = n_layers; i < layers_.size(); ++i) {
    Stopwatch watch;
    x = layers_[i]->forward(x, train);
    if (profile) {
      record_layer_time(i, *layers_[i], "forward_us", watch.micros());
    }
    check_layer_output("forward output", i, *layers_[i], x);
  }
  return x;
}

}  // namespace lcrs::nn
