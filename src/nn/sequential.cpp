#include "nn/sequential.h"

namespace lcrs::nn {

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

std::vector<Layer::NamedState> Sequential::state_tensors() {
  std::vector<NamedState> all;
  for (auto& layer : layers_) {
    for (const NamedState& s : layer->state_tensors()) all.push_back(s);
  }
  return all;
}

std::int64_t Sequential::flops_per_sample() const {
  std::int64_t f = 0;
  for (const auto& layer : layers_) f += layer->flops_per_sample();
  return f;
}

Tensor Sequential::forward_prefix(const Tensor& input, std::size_t n_layers,
                                  bool train) {
  LCRS_CHECK(n_layers <= layers_.size(), "prefix longer than model");
  Tensor x = input;
  for (std::size_t i = 0; i < n_layers; ++i) x = layers_[i]->forward(x, train);
  return x;
}

Tensor Sequential::forward_suffix(const Tensor& intermediate,
                                  std::size_t n_layers, bool train) {
  LCRS_CHECK(n_layers <= layers_.size(), "suffix start beyond model");
  Tensor x = intermediate;
  for (std::size_t i = n_layers; i < layers_.size(); ++i) {
    x = layers_[i]->forward(x, train);
  }
  return x;
}

}  // namespace lcrs::nn
