#include "nn/dropout.h"

namespace lcrs::nn {

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(rng.fork()) {
  LCRS_CHECK(p >= 0.0f && p < 1.0f, "dropout p must be in [0, 1), got " << p);
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || p_ == 0.0f) return input;
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  mask_.assign(static_cast<std::size_t>(input.numel()), 0.0f);
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    if (!rng_.bernoulli(p_)) {
      mask_[static_cast<std::size_t>(i)] = scale;
      out[i] = input[i] * scale;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (p_ == 0.0f) return grad_output;
  LCRS_CHECK(static_cast<std::int64_t>(mask_.size()) == grad_output.numel(),
             "dropout backward without matching forward");
  Tensor grad(grad_output.shape());
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] = grad_output[i] * mask_[static_cast<std::size_t>(i)];
  }
  return grad;
}

}  // namespace lcrs::nn
