// Inverted dropout regularizer.
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace lcrs::nn {

/// Drops activations with probability p during training and rescales the
/// survivors by 1/(1-p); identity at inference.
class Dropout : public Layer {
 public:
  Dropout(float p, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "dropout"; }

  float drop_probability() const { return p_; }

 private:
  float p_;
  Rng rng_;  // layer-local stream: dropout masks are reproducible
  std::vector<float> mask_;
};

}  // namespace lcrs::nn
