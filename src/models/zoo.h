// Model zoo: the paper's four main-branch networks and the binary branch
// generator (paper Sec. IV-A / IV-D.3).
//
// Every architecture is adapted to the small-image datasets exactly as the
// paper does ("we adjust several parameters of networks such as input
// channel and output channel"). A width multiplier scales channel counts
// so that joint training stays tractable on one CPU core; model-size
// accounting always uses width = 1.0 (the full architecture).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "binary/binary_conv2d.h"
#include "binary/binary_linear.h"
#include "nn/sequential.h"

namespace lcrs::models {

enum class Arch { kLeNet, kAlexNet, kResNet18, kVgg16 };

std::string arch_name(Arch arch);
Arch arch_by_name(const std::string& name);

/// Every architecture in the zoo, in declaration order. Whole-zoo sweeps
/// (property tests, bundle tooling) iterate this instead of
/// hand-maintaining the list.
const std::vector<Arch>& all_archs();

/// Input geometry + class count + width scaling for a model build.
struct ModelConfig {
  Arch arch = Arch::kLeNet;
  std::int64_t in_channels = 1;
  std::int64_t in_h = 28;
  std::int64_t in_w = 28;
  std::int64_t num_classes = 10;
  double width = 1.0;  // channel multiplier (1.0 = paper-size network)
  double dropout = 0.5;  // FC dropout in AlexNet/VGG16 (0 disables; lower
                         // it when training on small synthetic sets where
                         // dropout noise can pin the head at uniform)

  void validate() const;
};

/// A small-footprint configuration for `arch`, for whole-zoo sweeps in
/// tests and tools: LeNet at its native 1x28x28 geometry, the large
/// architectures width-scaled (0.25) at 3x32x32 so building all four
/// stays cheap.
ModelConfig small_config(Arch arch);

/// The main branch split at the LCRS share point: `conv1` is the stage the
/// browser always executes (first conv + its activation/pool), `rest`
/// finishes the network at the edge server (Fig. 2).
struct MainBranch {
  std::unique_ptr<nn::Sequential> conv1;
  std::unique_ptr<nn::Sequential> rest;
  // Shape of conv1's output feature map for one sample.
  std::int64_t out_c = 0, out_h = 0, out_w = 0;

  Shape conv1_output_shape(std::int64_t batch) const {
    return Shape{batch, out_c, out_h, out_w};
  }
};

MainBranch build_main_branch(const ModelConfig& cfg, Rng& rng);

/// Builds the whole main branch as one Sequential (conv1 + rest); used by
/// the partitioning baselines which may cut anywhere.
std::unique_ptr<nn::Sequential> build_monolithic(const ModelConfig& cfg,
                                                 Rng& rng);

/// Structure knobs of the binary branch (Fig. 4's sweep axes).
struct BinaryBranchConfig {
  int n_binary_conv = 1;      // binary convolutional layers
  int n_binary_fc = 1;        // binary fully-connected layers
  std::int64_t conv_channels = 64;  // channels of each binary conv
  std::int64_t fc_width = 256;      // width of each binary FC
};

/// Default branch structure the paper recommends for each main branch
/// (one binary conv + one or two binary FC, final float FC).
BinaryBranchConfig default_branch(Arch arch);

/// Builds the binary branch: input is conv1's [out_c, out_h, out_w]
/// feature map, output is `num_classes` logits. The last layer is a
/// full-precision Linear, per Sec. IV-D.3.
std::unique_ptr<nn::Sequential> build_binary_branch(
    const BinaryBranchConfig& bc, std::int64_t in_c, std::int64_t in_h,
    std::int64_t in_w, std::int64_t num_classes, Rng& rng);

}  // namespace lcrs::models
