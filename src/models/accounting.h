// Model accounting: per-layer profiles driving the model-size tables and
// the latency cost model.
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.h"

namespace lcrs::models {

/// Static profile of one layer inside a Sequential.
struct LayerProfile {
  std::string kind;            // layer kind tag ("conv2d", "binary_linear"…)
  std::int64_t flops = 0;      // MAC-equivalent flops for one sample
  std::int64_t param_bytes = 0;       // full-precision serialized weights
  std::int64_t binary_bytes = 0;      // bit-packed weights (binary layers)
  std::int64_t output_elems = 0;      // activation elements for one sample
  bool is_binary = false;
};

/// Profiles each layer by dry-running a single zero sample through the
/// model (inference mode); `input_shape` excludes the batch dimension.
std::vector<LayerProfile> profile_layers(nn::Sequential& model,
                                         const Shape& sample_shape);

/// Aggregate of a profile list.
struct ModelProfile {
  std::int64_t total_flops = 0;
  std::int64_t total_param_bytes = 0;
  std::int64_t total_binary_bytes = 0;  // size if binary layers ship packed
  std::int64_t layer_count = 0;
};
ModelProfile summarize(const std::vector<LayerProfile>& layers);

/// Size in bytes of the model as the browser would download it: binary
/// layers as packed bits + scales, everything else float32.
std::int64_t browser_payload_bytes(nn::Sequential& model);

/// Pretty "12.3 MB" style formatting used by the table harnesses.
std::string format_mb(std::int64_t bytes);

}  // namespace lcrs::models
