#include "models/accounting.h"

#include <cstdio>

#include "binary/binary_conv2d.h"
#include "binary/binary_linear.h"

namespace lcrs::models {

namespace {

std::int64_t binary_bytes_of(nn::Layer& layer) {
  if (auto* bc = dynamic_cast<binary::BinaryConv2d*>(&layer)) {
    return bc->binary_weight_bytes();
  }
  if (auto* bl = dynamic_cast<binary::BinaryLinear*>(&layer)) {
    return bl->binary_weight_bytes();
  }
  return 0;
}

}  // namespace

std::vector<LayerProfile> profile_layers(nn::Sequential& model,
                                         const Shape& sample_shape) {
  std::vector<std::int64_t> dims{1};
  for (const auto d : sample_shape.dims()) dims.push_back(d);
  Tensor x{Shape(dims)};

  std::vector<LayerProfile> profiles;
  profiles.reserve(model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    nn::Layer& layer = model.layer(i);
    x = layer.forward(x, /*train=*/false);
    LayerProfile p;
    p.kind = layer.kind();
    p.flops = layer.flops_per_sample();
    p.param_bytes = layer.param_bytes();
    p.binary_bytes = binary_bytes_of(layer);
    p.output_elems = x.numel();
    p.is_binary = p.binary_bytes > 0;
    profiles.push_back(std::move(p));
  }
  return profiles;
}

ModelProfile summarize(const std::vector<LayerProfile>& layers) {
  ModelProfile mp;
  for (const auto& l : layers) {
    mp.total_flops += l.flops;
    mp.total_param_bytes += l.param_bytes;
    mp.total_binary_bytes += l.is_binary ? l.binary_bytes : l.param_bytes;
    ++mp.layer_count;
  }
  return mp;
}

std::int64_t browser_payload_bytes(nn::Sequential& model) {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    nn::Layer& layer = model.layer(i);
    const std::int64_t bin = binary_bytes_of(layer);
    total += bin > 0 ? bin : layer.param_bytes();
  }
  return total;
}

std::string format_mb(std::int64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return std::string(buf);
}

}  // namespace lcrs::models
