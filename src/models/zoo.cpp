#include "models/zoo.h"

#include <algorithm>
#include <cmath>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/residual.h"

namespace lcrs::models {

std::string arch_name(Arch arch) {
  switch (arch) {
    case Arch::kLeNet:
      return "LeNet";
    case Arch::kAlexNet:
      return "AlexNet";
    case Arch::kResNet18:
      return "ResNet18";
    case Arch::kVgg16:
      return "VGG16";
  }
  return "?";
}

Arch arch_by_name(const std::string& name) {
  if (name == "LeNet") return Arch::kLeNet;
  if (name == "AlexNet") return Arch::kAlexNet;
  if (name == "ResNet18") return Arch::kResNet18;
  if (name == "VGG16") return Arch::kVgg16;
  throw InvalidArgument("unknown architecture: " + name);
}

const std::vector<Arch>& all_archs() {
  static const std::vector<Arch> archs = {Arch::kLeNet, Arch::kAlexNet,
                                          Arch::kResNet18, Arch::kVgg16};
  return archs;
}

ModelConfig small_config(Arch arch) {
  ModelConfig cfg;
  cfg.arch = arch;
  if (arch == Arch::kLeNet) {
    cfg.in_channels = 1;
    cfg.in_h = cfg.in_w = 28;
    cfg.width = 1.0;
  } else {
    cfg.in_channels = 3;
    cfg.in_h = cfg.in_w = 32;
    cfg.width = 0.25;
  }
  cfg.num_classes = 10;
  cfg.dropout = 0.0;  // deterministic eval-path sweeps
  cfg.validate();
  return cfg;
}

void ModelConfig::validate() const {
  LCRS_CHECK(in_channels >= 1 && in_h >= 16 && in_w >= 16,
             "model input must be >= 16x16 with >= 1 channel");
  LCRS_CHECK(num_classes >= 2, "model needs >= 2 classes");
  LCRS_CHECK(width > 0.0 && width <= 4.0, "width multiplier out of range");
}

namespace {

/// Applies the width multiplier with a floor so tiny widths stay usable.
std::int64_t scaled(std::int64_t channels, double width) {
  return std::max<std::int64_t>(
      4, static_cast<std::int64_t>(
             std::llround(static_cast<double>(channels) * width)));
}

using Seq = nn::Sequential;

struct Stage {
  std::unique_ptr<Seq> seq = std::make_unique<Seq>();
  std::int64_t c, h, w;  // current feature-map shape

  void conv(std::int64_t out_c, std::int64_t k, std::int64_t stride,
            std::int64_t pad, Rng& rng, bool bias = true) {
    seq->emplace<nn::Conv2d>(c, out_c, k, stride, pad, h, w, rng, bias);
    c = out_c;
    h = (h + 2 * pad - k) / stride + 1;
    w = (w + 2 * pad - k) / stride + 1;
  }

  void bn() { seq->emplace<nn::BatchNorm>(c); }
  void relu() { seq->emplace<nn::ReLU>(); }
  void tanh() { seq->emplace<nn::Tanh>(); }

  void maxpool(std::int64_t k, std::int64_t stride) {
    seq->emplace<nn::MaxPool2d>(k, stride);
    h = (h - k) / stride + 1;
    w = (w - k) / stride + 1;
  }

  void resblock(std::int64_t out_c, std::int64_t stride, Rng& rng) {
    auto block = std::make_unique<nn::ResidualBlock>(c, out_c, stride, h, w,
                                                     rng);
    h = block->out_h();
    w = block->out_w();
    c = out_c;
    seq->add(std::move(block));
  }
};

MainBranch finish(Stage&& conv1, Stage&& rest) {
  MainBranch mb;
  mb.out_c = conv1.c;
  mb.out_h = conv1.h;
  mb.out_w = conv1.w;
  mb.conv1 = std::move(conv1.seq);
  mb.rest = std::move(rest.seq);
  return mb;
}

MainBranch build_lenet(const ModelConfig& cfg, Rng& rng) {
  // Widened LeNet-5 (the paper adjusts channel widths; classic LeNet-5 is
  // ~0.24 MB while Table I reports ~1.7 MB).
  const std::int64_t c1 = scaled(12, cfg.width), c2 = scaled(32, cfg.width);
  const std::int64_t f1 = scaled(384, cfg.width), f2 = scaled(168, cfg.width);

  Stage conv1{.c = cfg.in_channels, .h = cfg.in_h, .w = cfg.in_w};
  conv1.conv(c1, 5, 1, 2, rng);
  conv1.seq->emplace<nn::Tanh>();
  conv1.maxpool(2, 2);

  Stage rest{.c = conv1.c, .h = conv1.h, .w = conv1.w};
  rest.conv(c2, 5, 1, 0, rng);
  rest.seq->emplace<nn::Tanh>();
  rest.maxpool(2, 2);
  rest.seq->emplace<nn::Flatten>();
  const std::int64_t flat = rest.c * rest.h * rest.w;
  rest.seq->emplace<nn::Linear>(flat, f1, rng);
  rest.seq->emplace<nn::Tanh>();
  rest.seq->emplace<nn::Linear>(f1, f2, rng);
  rest.seq->emplace<nn::Tanh>();
  rest.seq->emplace<nn::Linear>(f2, cfg.num_classes, rng);
  return finish(std::move(conv1), std::move(rest));
}

MainBranch build_alexnet(const ModelConfig& cfg, Rng& rng) {
  // CIFAR-style AlexNet with conv BatchNorm (without normalization the
  // 5-conv stack does not train on small inputs); FC widths chosen so the
  // full-width model lands near the paper's ~91 MB.
  const std::int64_t c1 = scaled(64, cfg.width);
  const std::int64_t c2 = scaled(192, cfg.width);
  const std::int64_t c3 = scaled(384, cfg.width);
  const std::int64_t c4 = scaled(256, cfg.width);
  const std::int64_t c5 = scaled(256, cfg.width);
  const std::int64_t fc = scaled(3072, cfg.width);

  Stage conv1{.c = cfg.in_channels, .h = cfg.in_h, .w = cfg.in_w};
  conv1.conv(c1, 3, 1, 1, rng);
  conv1.bn();
  conv1.relu();
  conv1.maxpool(2, 2);

  Stage rest{.c = conv1.c, .h = conv1.h, .w = conv1.w};
  rest.conv(c2, 3, 1, 1, rng);
  rest.bn();
  rest.relu();
  rest.maxpool(2, 2);
  rest.conv(c3, 3, 1, 1, rng);
  rest.bn();
  rest.relu();
  rest.conv(c4, 3, 1, 1, rng);
  rest.bn();
  rest.relu();
  rest.conv(c5, 3, 1, 1, rng);
  rest.bn();
  rest.relu();
  rest.maxpool(2, 2);
  rest.seq->emplace<nn::Flatten>();
  const std::int64_t flat = rest.c * rest.h * rest.w;
  if (cfg.dropout > 0.0) {
    rest.seq->emplace<nn::Dropout>(static_cast<float>(cfg.dropout), rng);
  }
  rest.seq->emplace<nn::Linear>(flat, fc, rng);
  rest.seq->emplace<nn::ReLU>();
  if (cfg.dropout > 0.0) {
    rest.seq->emplace<nn::Dropout>(static_cast<float>(cfg.dropout), rng);
  }
  rest.seq->emplace<nn::Linear>(fc, fc, rng);
  rest.seq->emplace<nn::ReLU>();
  rest.seq->emplace<nn::Linear>(fc, cfg.num_classes, rng);
  return finish(std::move(conv1), std::move(rest));
}

MainBranch build_resnet18(const ModelConfig& cfg, Rng& rng) {
  const std::int64_t base = scaled(64, cfg.width);

  Stage conv1{.c = cfg.in_channels, .h = cfg.in_h, .w = cfg.in_w};
  conv1.conv(base, 3, 1, 1, rng, /*bias=*/false);
  conv1.bn();
  conv1.relu();

  Stage rest{.c = conv1.c, .h = conv1.h, .w = conv1.w};
  rest.resblock(base, 1, rng);
  rest.resblock(base, 1, rng);
  rest.resblock(scaled(128, cfg.width), 2, rng);
  rest.resblock(scaled(128, cfg.width), 1, rng);
  rest.resblock(scaled(256, cfg.width), 2, rng);
  rest.resblock(scaled(256, cfg.width), 1, rng);
  rest.resblock(scaled(512, cfg.width), 2, rng);
  rest.resblock(scaled(512, cfg.width), 1, rng);
  rest.seq->emplace<nn::GlobalAvgPool>();
  rest.seq->emplace<nn::Linear>(scaled(512, cfg.width), cfg.num_classes, rng);
  return finish(std::move(conv1), std::move(rest));
}

MainBranch build_vgg16(const ModelConfig& cfg, Rng& rng) {
  // vgg16_bn-style: BatchNorm after every conv (plain VGG16 is known not
  // to train from scratch without it).
  auto ch = [&](std::int64_t c) { return scaled(c, cfg.width); };

  Stage conv1{.c = cfg.in_channels, .h = cfg.in_h, .w = cfg.in_w};
  conv1.conv(ch(64), 3, 1, 1, rng);
  conv1.bn();
  conv1.relu();

  Stage rest{.c = conv1.c, .h = conv1.h, .w = conv1.w};
  auto block = [&](std::int64_t out_c, int convs) {
    for (int i = 0; i < convs; ++i) {
      rest.conv(out_c, 3, 1, 1, rng);
      rest.bn();
      rest.relu();
    }
    // Small inputs (e.g. 28x28) run out of spatial size before the fifth
    // stage; skip the pool once the map cannot halve again.
    if (rest.h >= 2 && rest.w >= 2) rest.maxpool(2, 2);
  };
  block(ch(64), 1);    // completes the 2-conv 64 stage
  block(ch(128), 2);
  block(ch(256), 3);
  block(ch(512), 3);
  block(ch(512), 3);
  rest.seq->emplace<nn::Flatten>();
  const std::int64_t flat = rest.c * rest.h * rest.w;
  if (cfg.dropout > 0.0) {
    rest.seq->emplace<nn::Dropout>(static_cast<float>(cfg.dropout), rng);
  }
  rest.seq->emplace<nn::Linear>(flat, ch(512), rng);
  rest.seq->emplace<nn::ReLU>();
  rest.seq->emplace<nn::Linear>(ch(512), cfg.num_classes, rng);
  return finish(std::move(conv1), std::move(rest));
}

}  // namespace

MainBranch build_main_branch(const ModelConfig& cfg, Rng& rng) {
  cfg.validate();
  switch (cfg.arch) {
    case Arch::kLeNet:
      return build_lenet(cfg, rng);
    case Arch::kAlexNet:
      return build_alexnet(cfg, rng);
    case Arch::kResNet18:
      return build_resnet18(cfg, rng);
    case Arch::kVgg16:
      return build_vgg16(cfg, rng);
  }
  throw InvalidArgument("unknown architecture enum");
}

std::unique_ptr<nn::Sequential> build_monolithic(const ModelConfig& cfg,
                                                 Rng& rng) {
  MainBranch mb = build_main_branch(cfg, rng);
  auto whole = std::make_unique<nn::Sequential>();
  // Flatten the two stages into one layer list so partition points can
  // fall on any layer boundary.
  for (auto& layer : mb.conv1->release_layers()) whole->add(std::move(layer));
  for (auto& layer : mb.rest->release_layers()) whole->add(std::move(layer));
  return whole;
}

BinaryBranchConfig default_branch(Arch arch) {
  BinaryBranchConfig bc;
  switch (arch) {
    case Arch::kLeNet:
      bc = {.n_binary_conv = 1, .n_binary_fc = 1, .conv_channels = 24,
            .fc_width = 192};
      break;
    case Arch::kAlexNet:
      bc = {.n_binary_conv = 1, .n_binary_fc = 2, .conv_channels = 96,
            .fc_width = 512};
      break;
    case Arch::kResNet18:
      bc = {.n_binary_conv = 1, .n_binary_fc = 1, .conv_channels = 96,
            .fc_width = 384};
      break;
    case Arch::kVgg16:
      bc = {.n_binary_conv = 1, .n_binary_fc = 1, .conv_channels = 96,
            .fc_width = 448};
      break;
  }
  return bc;
}

std::unique_ptr<nn::Sequential> build_binary_branch(
    const BinaryBranchConfig& bc, std::int64_t in_c, std::int64_t in_h,
    std::int64_t in_w, std::int64_t num_classes, Rng& rng) {
  LCRS_CHECK(bc.n_binary_conv >= 0 && bc.n_binary_fc >= 0,
             "negative branch layer counts");
  LCRS_CHECK(bc.n_binary_conv + bc.n_binary_fc >= 1,
             "binary branch needs at least one binary layer");
  LCRS_CHECK(bc.conv_channels >= 1 && bc.fc_width >= 1,
             "branch widths must be positive");

  // XNOR-Net block order: BatchNorm comes BEFORE each binary layer. This
  // is essential -- conv1 outputs of ReLU networks are non-negative, so
  // without re-centering, sign(I) would be the all-ones tensor and the
  // binary layers would see no sign information at all.
  auto seq = std::make_unique<nn::Sequential>();
  std::int64_t c = in_c, h = in_h, w = in_w;
  for (int i = 0; i < bc.n_binary_conv; ++i) {
    seq->emplace<nn::BatchNorm>(c);
    seq->emplace<binary::BinaryConv2d>(c, bc.conv_channels, 3, 1, 1, h, w,
                                       rng);
    c = bc.conv_channels;
    if (h >= 8 && w >= 8) {  // keep at least a 4x4 map for the FC stack
      seq->emplace<nn::MaxPool2d>(2, 2);
      h /= 2;
      w /= 2;
    }
  }
  seq->emplace<nn::Flatten>();
  std::int64_t features = c * h * w;
  for (int i = 0; i < bc.n_binary_fc; ++i) {
    seq->emplace<nn::BatchNorm>(features);
    seq->emplace<binary::BinaryLinear>(features, bc.fc_width, rng);
    features = bc.fc_width;
  }
  // Last layer is full precision, per the paper; BN + HardTanh condition
  // its input range.
  seq->emplace<nn::BatchNorm>(features);
  seq->emplace<nn::HardTanh>();
  seq->emplace<nn::Linear>(features, num_classes, rng);
  return seq;
}

}  // namespace lcrs::models
