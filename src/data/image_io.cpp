#include "data/image_io.h"

#include <algorithm>
#include <fstream>

#include "common/error.h"

namespace lcrs::data {

namespace {

struct View {
  const Tensor* t;
  std::int64_t c, h, w;
  std::int64_t offset;  // flat offset of the image within the tensor
};

View single(const Tensor& image, std::int64_t index = 0) {
  if (image.rank() == 3) {
    LCRS_CHECK(index == 0, "index into rank-3 image");
    return {&image, image.dim(0), image.dim(1), image.dim(2), 0};
  }
  LCRS_CHECK(image.rank() == 4, "write_image expects [C,H,W] or NCHW");
  LCRS_CHECK(index >= 0 && index < image.dim(0), "image index out of range");
  const std::int64_t per = image.dim(1) * image.dim(2) * image.dim(3);
  return {&image, image.dim(1), image.dim(2), image.dim(3), index * per};
}

std::uint8_t to_byte(float v, float lo, float hi) {
  const float x = (v - lo) / (hi - lo);
  return static_cast<std::uint8_t>(
      std::clamp(x * 255.0f + 0.5f, 0.0f, 255.0f));
}

void write_planes(std::ofstream& out, const View& v, float lo, float hi) {
  const float* base = v.t->data() + v.offset;
  for (std::int64_t y = 0; y < v.h; ++y) {
    for (std::int64_t x = 0; x < v.w; ++x) {
      for (std::int64_t c = 0; c < v.c; ++c) {
        const char b = static_cast<char>(
            to_byte(base[(c * v.h + y) * v.w + x], lo, hi));
        out.write(&b, 1);
      }
    }
  }
}

}  // namespace

void write_image(const std::string& path, const Tensor& image, float lo,
                 float hi) {
  const View v = single(image);
  LCRS_CHECK(v.c == 1 || v.c == 3, "write_image supports 1 or 3 channels");
  LCRS_CHECK(hi > lo, "write_image needs hi > lo");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open image for writing: " + path);
  out << (v.c == 3 ? "P6" : "P5") << "\n"
      << v.w << " " << v.h << "\n255\n";
  write_planes(out, v, lo, hi);
  if (!out) throw IoError("short image write: " + path);
}

void write_image_grid(const std::string& path, const Tensor& batch,
                      std::int64_t count, std::int64_t cols, float lo,
                      float hi) {
  LCRS_CHECK(batch.rank() == 4, "write_image_grid expects NCHW");
  LCRS_CHECK(count >= 1 && count <= batch.dim(0), "bad grid count");
  LCRS_CHECK(cols >= 1, "bad grid cols");
  const std::int64_t c = batch.dim(1), h = batch.dim(2), w = batch.dim(3);
  const std::int64_t rows = (count + cols - 1) / cols;
  const std::int64_t gh = rows * h + (rows - 1);
  const std::int64_t gw = cols * w + (cols - 1);

  Tensor grid = Tensor::full(Shape{c, gh, gw}, lo);
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t r = i / cols, col = i % cols;
    const View v = single(batch, i);
    const float* src = batch.data() + v.offset;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          grid.data()[(ch * gh + r * (h + 1) + y) * gw + col * (w + 1) + x] =
              src[(ch * h + y) * w + x];
        }
      }
    }
  }
  write_image(path, grid, lo, hi);
}

}  // namespace lcrs::data
