#include "data/synthetic.h"

#include <cmath>
#include <vector>

namespace lcrs::data {

void SyntheticSpec::validate() const {
  LCRS_CHECK(channels >= 1 && height >= 8 && width >= 8,
             "synthetic spec needs channels>=1 and at least 8x8 images");
  LCRS_CHECK(num_classes >= 2, "synthetic spec needs >= 2 classes");
  LCRS_CHECK(noise_std >= 0.0 && jitter_px >= 0.0, "negative noise/jitter");
  LCRS_CHECK(shared_background >= 0.0 && shared_background < 1.0,
             "shared_background must be in [0, 1)");
  LCRS_CHECK(confusion >= 0.0 && confusion < 1.0,
             "confusion must be in [0, 1)");
  LCRS_CHECK(contrast_jitter >= 0.0 && contrast_jitter < 1.0,
             "contrast_jitter must be in [0, 1)");
}

SyntheticSpec mnist_like() {
  SyntheticSpec s;
  s.name = "synthetic-mnist";
  s.channels = 1;
  s.height = s.width = 28;
  s.num_classes = 10;
  s.blobs_per_class = 3;
  s.gratings_per_class = 1;
  s.noise_std = 0.45;
  s.jitter_px = 2.0;
  s.shared_background = 0.15;
  s.confusion = 0.45;
  s.contrast_jitter = 0.25;
  s.prototype_seed = 11;
  return s;
}

SyntheticSpec fashion_mnist_like() {
  SyntheticSpec s = mnist_like();
  s.name = "synthetic-fashion";
  s.blobs_per_class = 4;
  s.gratings_per_class = 2;
  s.noise_std = 0.55;
  s.shared_background = 0.22;
  s.confusion = 0.55;
  s.prototype_seed = 23;
  return s;
}

SyntheticSpec cifar10_like() {
  SyntheticSpec s;
  s.name = "synthetic-cifar10";
  s.channels = 3;
  s.height = s.width = 32;
  s.num_classes = 10;
  s.blobs_per_class = 4;
  s.gratings_per_class = 3;
  s.noise_std = 0.85;
  s.jitter_px = 2.5;
  s.shared_background = 0.35;
  s.confusion = 0.75;
  s.contrast_jitter = 0.35;
  s.prototype_seed = 37;
  return s;
}

SyntheticSpec cifar100_like() {
  SyntheticSpec s = cifar10_like();
  s.name = "synthetic-cifar100";
  s.num_classes = 100;
  s.noise_std = 0.90;
  s.shared_background = 0.40;
  s.confusion = 0.70;
  s.prototype_seed = 53;
  return s;
}

SyntheticSpec spec_by_name(const std::string& dataset) {
  if (dataset == "MNIST") return mnist_like();
  if (dataset == "FashionMNIST") return fashion_mnist_like();
  if (dataset == "CIFAR10") return cifar10_like();
  if (dataset == "CIFAR100") return cifar100_like();
  throw InvalidArgument("unknown dataset name: " + dataset);
}

namespace {

struct Blob {
  double cy, cx, sigma, amplitude;
};

struct Grating {
  double freq, angle, phase, amplitude;
};

/// One class prototype per channel: blobs + gratings rendered additively.
struct Prototype {
  std::vector<std::vector<Blob>> blobs;        // [channel][blob]
  std::vector<std::vector<Grating>> gratings;  // [channel][grating]
};

Prototype make_prototype(const SyntheticSpec& spec, Rng& rng) {
  Prototype p;
  p.blobs.resize(static_cast<std::size_t>(spec.channels));
  p.gratings.resize(static_cast<std::size_t>(spec.channels));
  for (std::int64_t c = 0; c < spec.channels; ++c) {
    auto& blobs = p.blobs[static_cast<std::size_t>(c)];
    for (int i = 0; i < spec.blobs_per_class; ++i) {
      blobs.push_back(Blob{
          rng.uniform(0.2, 0.8) * static_cast<double>(spec.height),
          rng.uniform(0.2, 0.8) * static_cast<double>(spec.width),
          rng.uniform(1.5, 4.0),
          rng.uniform(0.5, 1.2) * (rng.bernoulli(0.5) ? 1.0 : -1.0),
      });
    }
    auto& gratings = p.gratings[static_cast<std::size_t>(c)];
    for (int i = 0; i < spec.gratings_per_class; ++i) {
      gratings.push_back(Grating{
          rng.uniform(0.15, 0.6),
          rng.uniform(0.0, 3.14159265),
          rng.uniform(0.0, 6.2831853),
          rng.uniform(0.2, 0.6),
      });
    }
  }
  return p;
}

/// Renders a prototype at a translation offset into `out` [C*H*W].
void render(const SyntheticSpec& spec, const Prototype& proto, double dy,
            double dx, float* out) {
  for (std::int64_t c = 0; c < spec.channels; ++c) {
    float* plane = out + c * spec.height * spec.width;
    const auto& blobs = proto.blobs[static_cast<std::size_t>(c)];
    const auto& gratings = proto.gratings[static_cast<std::size_t>(c)];
    for (std::int64_t y = 0; y < spec.height; ++y) {
      for (std::int64_t x = 0; x < spec.width; ++x) {
        double v = 0.0;
        const double py = static_cast<double>(y) - dy;
        const double px = static_cast<double>(x) - dx;
        for (const auto& b : blobs) {
          const double r2 = (py - b.cy) * (py - b.cy) +
                            (px - b.cx) * (px - b.cx);
          v += b.amplitude * std::exp(-r2 / (2.0 * b.sigma * b.sigma));
        }
        for (const auto& g : gratings) {
          const double u = px * std::cos(g.angle) + py * std::sin(g.angle);
          v += g.amplitude * std::sin(g.freq * u + g.phase);
        }
        plane[y * spec.width + x] += static_cast<float>(v);
      }
    }
  }
}

}  // namespace

Dataset make_synthetic(const SyntheticSpec& spec, std::int64_t n, Rng& rng) {
  spec.validate();
  LCRS_CHECK(n > 0, "make_synthetic needs n > 0");

  // Prototypes are derived from the spec seed only, so train and test sets
  // (and repeated runs) see the same class structure.
  Rng proto_rng(spec.prototype_seed);
  std::vector<Prototype> protos;
  protos.reserve(static_cast<std::size_t>(spec.num_classes));
  for (std::int64_t c = 0; c < spec.num_classes; ++c) {
    protos.push_back(make_prototype(spec, proto_rng));
  }
  const Prototype background = make_prototype(spec, proto_rng);

  Dataset ds;
  ds.name = spec.name;
  ds.num_classes = spec.num_classes;
  ds.images = Tensor{Shape{n, spec.channels, spec.height, spec.width}};
  ds.labels.resize(static_cast<std::size_t>(n));

  const std::int64_t sample_size =
      spec.channels * spec.height * spec.width;
  std::vector<float> class_buf(static_cast<std::size_t>(sample_size));
  std::vector<float> confuser_buf(static_cast<std::size_t>(sample_size));
  std::vector<float> bg_buf(static_cast<std::size_t>(sample_size));

  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t label = i % spec.num_classes;
    ds.labels[static_cast<std::size_t>(i)] = label;
    const double dy = rng.uniform(-spec.jitter_px, spec.jitter_px);
    const double dx = rng.uniform(-spec.jitter_px, spec.jitter_px);

    std::fill(class_buf.begin(), class_buf.end(), 0.0f);
    render(spec, protos[static_cast<std::size_t>(label)], dy, dx,
           class_buf.data());

    // Structured ambiguity: blend in a random other class's prototype
    // with a random weight up to `confusion`. This -- not pixel noise --
    // is what separates the easy and hard presets.
    double w_conf = 0.0;
    if (spec.confusion > 0.0 && spec.num_classes > 1) {
      std::int64_t other = rng.randint(0, spec.num_classes - 2);
      if (other >= label) ++other;
      w_conf = rng.uniform(0.0, spec.confusion);
      std::fill(confuser_buf.begin(), confuser_buf.end(), 0.0f);
      render(spec, protos[static_cast<std::size_t>(other)], dy, dx,
             confuser_buf.data());
    }

    float* dst = ds.images.data() + i * sample_size;
    const double wc = (1.0 - spec.shared_background) * (1.0 - w_conf);
    if (spec.shared_background > 0.0) {
      std::fill(bg_buf.begin(), bg_buf.end(), 0.0f);
      render(spec, background, dy, dx, bg_buf.data());
    }
    const double contrast =
        spec.contrast_jitter > 0.0
            ? rng.uniform(1.0 - spec.contrast_jitter,
                          1.0 + spec.contrast_jitter)
            : 1.0;
    for (std::int64_t j = 0; j < sample_size; ++j) {
      double v =
          wc * static_cast<double>(class_buf[static_cast<std::size_t>(j)]);
      if (w_conf > 0.0) {
        v += (1.0 - spec.shared_background) * w_conf *
             static_cast<double>(confuser_buf[static_cast<std::size_t>(j)]);
      }
      if (spec.shared_background > 0.0) {
        v += spec.shared_background *
             static_cast<double>(bg_buf[static_cast<std::size_t>(j)]);
      }
      v = contrast * v + rng.normal(0.0, spec.noise_std);
      // Soft clamp to [-1, 1] keeps inputs in the STE window.
      dst[j] = static_cast<float>(std::tanh(v));
    }
  }
  ds.check();
  return ds;
}

TrainTest make_synthetic_pair(const SyntheticSpec& spec, std::int64_t n_train,
                              std::int64_t n_test, Rng& rng) {
  TrainTest tt{make_synthetic(spec, n_train, rng),
               make_synthetic(spec, n_test, rng)};
  shuffle(tt.train, rng);
  shuffle(tt.test, rng);
  return tt;
}

}  // namespace lcrs::data
