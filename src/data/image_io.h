// Minimal image output (binary PPM/PGM) for inspecting synthetic data and
// logo renders -- the repo equivalent of the paper's Fig. 9 screenshots.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace lcrs::data {

/// Writes a [C, H, W] (or [1, C, H, W]) tensor as PPM (C == 3) or PGM
/// (C == 1). Values are mapped from [lo, hi] to 0..255 with clamping.
void write_image(const std::string& path, const Tensor& image,
                 float lo = -1.0f, float hi = 1.0f);

/// Tiles `count` images from an NCHW batch into one image (grid of
/// `cols` columns with a 1-pixel gap) and writes it.
void write_image_grid(const std::string& path, const Tensor& batch,
                      std::int64_t count, std::int64_t cols,
                      float lo = -1.0f, float hi = 1.0f);

}  // namespace lcrs::data
