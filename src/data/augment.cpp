#include "data/augment.h"

#include <cmath>

namespace lcrs::data {

namespace {

struct ImageView {
  const Tensor* t;
  std::int64_t c, h, w, offset;
};

ImageView view_single(const Tensor& image) {
  if (image.rank() == 3) {
    return {&image, image.dim(0), image.dim(1), image.dim(2), 0};
  }
  LCRS_CHECK(image.rank() == 4 && image.dim(0) == 1,
             "augment expects [C,H,W] or [1,C,H,W], got "
                 << image.shape().to_string());
  return {&image, image.dim(1), image.dim(2), image.dim(3), 0};
}

float bilinear(const float* plane, std::int64_t h, std::int64_t w, double y,
               double x) {
  if (y < -1.0 || y > static_cast<double>(h) || x < -1.0 ||
      x > static_cast<double>(w)) {
    return 0.0f;
  }
  const std::int64_t y0 = static_cast<std::int64_t>(std::floor(y));
  const std::int64_t x0 = static_cast<std::int64_t>(std::floor(x));
  const double fy = y - static_cast<double>(y0);
  const double fx = x - static_cast<double>(x0);
  auto sample = [&](std::int64_t yy, std::int64_t xx) -> double {
    if (yy < 0 || yy >= h || xx < 0 || xx >= w) return 0.0;
    return plane[yy * w + xx];
  };
  return static_cast<float>(
      (1 - fy) * ((1 - fx) * sample(y0, x0) + fx * sample(y0, x0 + 1)) +
      fy * ((1 - fx) * sample(y0 + 1, x0) + fx * sample(y0 + 1, x0 + 1)));
}

/// Applies the inverse affine map (out pixel -> source pixel) about the
/// image centre: src = A * (dst - centre) + centre - shift.
Tensor affine(const Tensor& image, double a00, double a01, double a10,
              double a11, double dy, double dx) {
  const ImageView v = view_single(image);
  const double cy = (static_cast<double>(v.h) - 1.0) / 2.0;
  const double cx = (static_cast<double>(v.w) - 1.0) / 2.0;
  Tensor out(image.shape());
  for (std::int64_t c = 0; c < v.c; ++c) {
    const float* src = image.data() + c * v.h * v.w;
    float* dst = out.data() + c * v.h * v.w;
    for (std::int64_t y = 0; y < v.h; ++y) {
      for (std::int64_t x = 0; x < v.w; ++x) {
        const double ry = static_cast<double>(y) - cy - dy;
        const double rx = static_cast<double>(x) - cx - dx;
        const double sy = a00 * ry + a01 * rx + cy;
        const double sx = a10 * ry + a11 * rx + cx;
        dst[y * v.w + x] = bilinear(src, v.h, v.w, sy, sx);
      }
    }
  }
  return out;
}

}  // namespace

Tensor rotate(const Tensor& image, double degrees) {
  const double rad = degrees * 3.14159265358979323846 / 180.0;
  const double c = std::cos(rad), s = std::sin(rad);
  // Inverse rotation.
  return affine(image, c, -s, s, c, 0.0, 0.0);
}

Tensor translate(const Tensor& image, double dy, double dx) {
  return affine(image, 1.0, 0.0, 0.0, 1.0, dy, dx);
}

Tensor zoom(const Tensor& image, double factor) {
  LCRS_CHECK(factor > 0.0, "zoom factor must be positive");
  const double inv = 1.0 / factor;
  return affine(image, inv, 0.0, 0.0, inv, 0.0, 0.0);
}

Tensor flip_horizontal(const Tensor& image) {
  const ImageView v = view_single(image);
  Tensor out(image.shape());
  for (std::int64_t c = 0; c < v.c; ++c) {
    const float* src = image.data() + c * v.h * v.w;
    float* dst = out.data() + c * v.h * v.w;
    for (std::int64_t y = 0; y < v.h; ++y) {
      for (std::int64_t x = 0; x < v.w; ++x) {
        dst[y * v.w + x] = src[y * v.w + (v.w - 1 - x)];
      }
    }
  }
  return out;
}

Tensor flip_vertical(const Tensor& image) {
  const ImageView v = view_single(image);
  Tensor out(image.shape());
  for (std::int64_t c = 0; c < v.c; ++c) {
    const float* src = image.data() + c * v.h * v.w;
    float* dst = out.data() + c * v.h * v.w;
    for (std::int64_t y = 0; y < v.h; ++y) {
      for (std::int64_t x = 0; x < v.w; ++x) {
        dst[y * v.w + x] = src[(v.h - 1 - y) * v.w + x];
      }
    }
  }
  return out;
}

Tensor color_perturb(const Tensor& image, Rng& rng, double gain_jitter,
                     double bias_jitter) {
  const ImageView v = view_single(image);
  Tensor out(image.shape());
  for (std::int64_t c = 0; c < v.c; ++c) {
    const float gain =
        static_cast<float>(1.0 + rng.uniform(-gain_jitter, gain_jitter));
    const float bias =
        static_cast<float>(rng.uniform(-bias_jitter, bias_jitter));
    const float* src = image.data() + c * v.h * v.w;
    float* dst = out.data() + c * v.h * v.w;
    for (std::int64_t i = 0; i < v.h * v.w; ++i) {
      dst[i] = src[i] * gain + bias;
    }
  }
  return out;
}

Tensor random_augment(const Tensor& image, const AugmentParams& params,
                      Rng& rng) {
  Tensor out = image;
  if (params.max_rotate_deg > 0.0) {
    out = rotate(out, rng.uniform(-params.max_rotate_deg,
                                  params.max_rotate_deg));
  }
  if (params.max_translate_px > 0.0) {
    out = translate(out,
                    rng.uniform(-params.max_translate_px,
                                params.max_translate_px),
                    rng.uniform(-params.max_translate_px,
                                params.max_translate_px));
  }
  if (params.min_zoom != 1.0 || params.max_zoom != 1.0) {
    out = zoom(out, rng.uniform(params.min_zoom, params.max_zoom));
  }
  if (params.flip_h_prob > 0.0 && rng.bernoulli(params.flip_h_prob)) {
    out = flip_horizontal(out);
  }
  if (params.flip_v_prob > 0.0 && rng.bernoulli(params.flip_v_prob)) {
    out = flip_vertical(out);
  }
  if (params.gain_jitter > 0.0 || params.bias_jitter > 0.0) {
    out = color_perturb(out, rng, params.gain_jitter, params.bias_jitter);
  }
  return out;
}

Dataset augment_dataset(const Dataset& ds, std::int64_t copies,
                        const AugmentParams& params, Rng& rng) {
  ds.check();
  LCRS_CHECK(copies >= 1, "augment_dataset needs copies >= 1");
  const std::int64_t n = ds.size();
  const std::int64_t sample = ds.images.numel() / n;

  Dataset out;
  out.name = ds.name + "-aug";
  out.num_classes = ds.num_classes;
  out.images =
      Tensor{Shape{n * copies, ds.channels(), ds.height(), ds.width()}};
  out.labels.resize(static_cast<std::size_t>(n * copies));

  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor src = ds.images.slice_outer(i, i + 1)
                           .reshaped(Shape{ds.channels(), ds.height(),
                                           ds.width()});
    for (std::int64_t k = 0; k < copies; ++k) {
      const Tensor aug = random_augment(src, params, rng);
      const std::int64_t dst_idx = i * copies + k;
      std::copy(aug.data(), aug.data() + sample,
                out.images.data() + dst_idx * sample);
      out.labels[static_cast<std::size_t>(dst_idx)] =
          ds.labels[static_cast<std::size_t>(i)];
    }
  }
  out.check();
  return out;
}

}  // namespace lcrs::data
