#include "data/logo.h"

#include <cmath>

namespace lcrs::data {

namespace {

constexpr std::int64_t kSide = 32;

struct Color {
  float r, g, b;
};

/// Deterministic brand style drawn from the brand's own substream.
struct BrandStyle {
  Color primary, secondary, background;
  int motif;          // which shape family
  double size;        // motif scale in [0.25, 0.45] of the image
  double angle;       // motif orientation
  int repeats;        // stripes / spokes count
};

BrandStyle style_for(const LogoSpec& spec, std::int64_t brand) {
  Rng rng(spec.logo_seed * 1315423911ull + static_cast<std::uint64_t>(brand));
  auto color = [&rng]() {
    return Color{static_cast<float>(rng.uniform(-0.9, 0.9)),
                 static_cast<float>(rng.uniform(-0.9, 0.9)),
                 static_cast<float>(rng.uniform(-0.9, 0.9))};
  };
  BrandStyle s;
  s.primary = color();
  s.secondary = color();
  s.background = Color{static_cast<float>(rng.uniform(-0.3, 0.3)),
                       static_cast<float>(rng.uniform(-0.3, 0.3)),
                       static_cast<float>(rng.uniform(-0.3, 0.3))};
  s.motif = static_cast<int>(rng.randint(0, 3));
  s.size = rng.uniform(0.25, 0.45);
  s.angle = rng.uniform(0.0, 3.14159265);
  s.repeats = static_cast<int>(rng.randint(2, 5));
  return s;
}

void put(Tensor& img, std::int64_t y, std::int64_t x, const Color& c) {
  img.data()[0 * kSide * kSide + y * kSide + x] = c.r;
  img.data()[1 * kSide * kSide + y * kSide + x] = c.g;
  img.data()[2 * kSide * kSide + y * kSide + x] = c.b;
}

}  // namespace

std::vector<std::string> brand_names(const LogoSpec& spec) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(spec.num_brands));
  for (std::int64_t b = 0; b < spec.num_brands; ++b) {
    if (b == 0) {
      names.emplace_back("ChinaMobile");
    } else if (b == 1) {
      names.emplace_back("FenJiu");
    } else {
      names.push_back("Brand" + std::to_string(b));
    }
  }
  return names;
}

Tensor render_logo(const LogoSpec& spec, std::int64_t brand) {
  LCRS_CHECK(brand >= 0 && brand < spec.num_brands,
             "brand " << brand << " out of range");
  const BrandStyle s = style_for(spec, brand);
  Tensor img{Shape{3, kSide, kSide}};

  const double cy = (kSide - 1) / 2.0, cx = (kSide - 1) / 2.0;
  const double radius = s.size * kSide;

  for (std::int64_t y = 0; y < kSide; ++y) {
    for (std::int64_t x = 0; x < kSide; ++x) {
      const double ry = static_cast<double>(y) - cy;
      const double rx = static_cast<double>(x) - cx;
      const double r = std::sqrt(ry * ry + rx * rx);
      const double theta = std::atan2(ry, rx) + s.angle;
      Color c = s.background;
      switch (s.motif) {
        case 0: {  // concentric rings
          if (r < radius) {
            const int band = static_cast<int>(r / radius * s.repeats);
            c = (band % 2 == 0) ? s.primary : s.secondary;
          }
          break;
        }
        case 1: {  // angular spokes / wedges
          if (r < radius) {
            const int sector = static_cast<int>(
                std::floor((theta + 3.14159265) / (2 * 3.14159265) *
                           (2 * s.repeats)));
            c = (sector % 2 == 0) ? s.primary : s.secondary;
          }
          break;
        }
        case 2: {  // diagonal bars clipped to a square
          const double u = ry * std::cos(s.angle) + rx * std::sin(s.angle);
          if (std::fabs(ry) < radius && std::fabs(rx) < radius) {
            const int stripe = static_cast<int>(
                std::floor((u + radius) / (2 * radius) * s.repeats));
            c = (stripe % 2 == 0) ? s.primary : s.secondary;
          }
          break;
        }
        default: {  // checkerboard medallion
          if (r < radius) {
            const int qy = static_cast<int>(
                std::floor((ry + radius) / (2 * radius) * s.repeats));
            const int qx = static_cast<int>(
                std::floor((rx + radius) / (2 * radius) * s.repeats));
            c = ((qy + qx) % 2 == 0) ? s.primary : s.secondary;
          }
          break;
        }
      }
      put(img, y, x, c);
    }
  }
  return img;
}

LogoData make_logo_data(const LogoSpec& spec, Rng& rng) {
  LCRS_CHECK(spec.num_brands >= 2, "need at least the two paper brands");
  LCRS_CHECK(spec.base_per_brand >= 2 && spec.augment_copies >= 1,
             "logo spec too small");

  // Clean renders plus sensor noise form the "collected" base set.
  Dataset base;
  base.name = "logos";
  base.num_classes = spec.num_brands;
  const std::int64_t n_base = spec.num_brands * spec.base_per_brand;
  base.images = Tensor{Shape{n_base, 3, kSide, kSide}};
  base.labels.resize(static_cast<std::size_t>(n_base));
  const std::int64_t sample = 3 * kSide * kSide;
  std::int64_t idx = 0;
  for (std::int64_t b = 0; b < spec.num_brands; ++b) {
    const Tensor clean = render_logo(spec, b);
    for (std::int64_t i = 0; i < spec.base_per_brand; ++i, ++idx) {
      float* dst = base.images.data() + idx * sample;
      for (std::int64_t j = 0; j < sample; ++j) {
        dst[j] = clean[j] +
                 static_cast<float>(rng.normal(0.0, spec.camera_noise_std));
      }
      base.labels[static_cast<std::size_t>(idx)] = b;
    }
  }
  base.check();

  // Paper's augmentation pipeline: rotation, translation, zoom, flips,
  // colour perturbation.
  AugmentParams params;
  params.max_rotate_deg = 20.0;
  params.max_translate_px = 3.0;
  params.min_zoom = 0.85;
  params.max_zoom = 1.15;
  params.flip_h_prob = 0.5;
  params.flip_v_prob = 0.1;
  params.gain_jitter = 0.25;
  params.bias_jitter = 0.15;
  Dataset expanded = augment_dataset(base, spec.augment_copies, params, rng);
  shuffle(expanded, rng);

  const std::int64_t n_test = expanded.size() / 5;
  auto [test, train] = split(expanded, n_test);
  LogoData out{std::move(train), std::move(test), brand_names(spec)};
  out.train.name = "logos-train";
  out.test.name = "logos-test";
  return out;
}

}  // namespace lcrs::data
