// In-memory labelled image dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace lcrs::data {

/// A batch of images with integer labels. Images are NCHW float32,
/// normalized to roughly [-1, 1] by the generators.
struct Dataset {
  std::string name;
  Tensor images;                     // [N, C, H, W]
  std::vector<std::int64_t> labels;  // N entries in [0, num_classes)
  std::int64_t num_classes = 0;

  std::int64_t size() const { return images.rank() == 4 ? images.dim(0) : 0; }
  std::int64_t channels() const { return images.dim(1); }
  std::int64_t height() const { return images.dim(2); }
  std::int64_t width() const { return images.dim(3); }

  /// Validates internal consistency; throws on corruption.
  void check() const;

  /// Copies samples [begin, begin+count) into a new dataset.
  Dataset slice(std::int64_t begin, std::int64_t count) const;

  /// Copies one image as a [1, C, H, W] tensor.
  Tensor image(std::int64_t i) const;

  /// Batch labels for samples [begin, begin+count).
  std::vector<std::int64_t> label_slice(std::int64_t begin,
                                        std::int64_t count) const;
};

/// Random in-place permutation of (image, label) pairs.
void shuffle(Dataset& ds, Rng& rng);

/// Splits into (first `n_first` samples, rest).
std::pair<Dataset, Dataset> split(const Dataset& ds, std::int64_t n_first);

/// Concatenates two datasets with identical shape/class metadata.
Dataset concat(const Dataset& a, const Dataset& b);

/// Per-class sample counts; length num_classes.
std::vector<std::int64_t> class_histogram(const Dataset& ds);

}  // namespace lcrs::data
