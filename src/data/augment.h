// Image augmentation (paper Sec. V-C: "rotation, translation, zoom, flips
// and colour perturbation" to expand the Web-AR logo datasets).
//
// All geometric ops use bilinear resampling about the image centre with
// zero fill outside the source. Images are single samples [C, H, W] or
// [1, C, H, W]; batch helpers expand whole datasets.
#pragma once

#include "data/dataset.h"

namespace lcrs::data {

/// Counter-clockwise rotation by `degrees`.
Tensor rotate(const Tensor& image, double degrees);

/// Shift by (dy, dx) pixels (positive = down/right).
Tensor translate(const Tensor& image, double dy, double dx);

/// Scales about the centre; factor > 1 zooms in.
Tensor zoom(const Tensor& image, double factor);

/// Horizontal mirror.
Tensor flip_horizontal(const Tensor& image);

/// Vertical mirror.
Tensor flip_vertical(const Tensor& image);

/// Per-channel affine colour jitter: x -> x * gain[c] + bias[c].
Tensor color_perturb(const Tensor& image, Rng& rng, double gain_jitter = 0.2,
                     double bias_jitter = 0.1);

/// Parameters for random augmentation draws.
struct AugmentParams {
  double max_rotate_deg = 15.0;
  double max_translate_px = 2.0;
  double min_zoom = 0.9;
  double max_zoom = 1.1;
  double flip_h_prob = 0.5;
  double flip_v_prob = 0.0;
  double gain_jitter = 0.2;
  double bias_jitter = 0.1;
};

/// Applies a random draw of each enabled augmentation to one image.
Tensor random_augment(const Tensor& image, const AugmentParams& params,
                      Rng& rng);

/// Expands a dataset: each source sample contributes `copies` augmented
/// variants (the original is not included). Mirrors the paper's dataset
/// expansion for the China Mobile / FenJiu cases.
Dataset augment_dataset(const Dataset& ds, std::int64_t copies,
                        const AugmentParams& params, Rng& rng);

}  // namespace lcrs::data
