// Synthetic brand-logo dataset for the Web-AR case studies (paper Sec.
// V-C: China Mobile and FenJiu logo recognition).
//
// Each brand gets a deterministic geometric logo (rings, bars, wedges,
// checkers in brand colours) rendered to 3x32x32; the dataset is then
// expanded with the paper's augmentation pipeline, mimicking "collect a
// batch of logos ... and use data augmentation techniques to expand the
// dataset".
#pragma once

#include <string>
#include <vector>

#include "data/augment.h"
#include "data/dataset.h"

namespace lcrs::data {

/// Configuration of the logo data generator.
struct LogoSpec {
  std::int64_t num_brands = 10;     // classes; first two are the paper's
  std::int64_t base_per_brand = 8;  // "collected" clean renders per brand
  std::int64_t augment_copies = 24; // augmented variants per clean render
  double camera_noise_std = 0.08;   // sensor noise on every render
  std::uint64_t logo_seed = 99;     // brand artwork is a function of this

  std::int64_t samples_per_brand() const {
    return base_per_brand * augment_copies;
  }
};

/// Human-readable brand names; index = class label. The first two are
/// "ChinaMobile" and "FenJiu" to match the paper's applications.
std::vector<std::string> brand_names(const LogoSpec& spec);

/// Renders one clean logo [3, 32, 32] for the given brand.
Tensor render_logo(const LogoSpec& spec, std::int64_t brand);

/// Full augmented train/test pair.
struct LogoData {
  Dataset train;
  Dataset test;
  std::vector<std::string> names;
};
LogoData make_logo_data(const LogoSpec& spec, Rng& rng);

}  // namespace lcrs::data
