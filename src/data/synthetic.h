// Procedurally generated stand-ins for MNIST / FashionMNIST / CIFAR10 /
// CIFAR100 (see DESIGN.md "Substitutions").
//
// Each class owns a prototype pattern (Gaussian blobs + oriented
// gratings); samples are jittered, noised renderings of their class
// prototype. The per-preset difficulty knobs are tuned so the *relative*
// accuracy ordering across datasets matches the paper's Table I
// (MNIST-like easiest, CIFAR100-like hardest).
#pragma once

#include <string>

#include "data/dataset.h"

namespace lcrs::data {

/// Generation parameters for one synthetic dataset family.
struct SyntheticSpec {
  std::string name;
  std::int64_t channels = 1;
  std::int64_t height = 28;
  std::int64_t width = 28;
  std::int64_t num_classes = 10;
  int blobs_per_class = 3;      // Gaussian blobs in each prototype
  int gratings_per_class = 2;   // oriented sinusoids in each prototype
  double noise_std = 0.15;      // i.i.d. pixel noise on every sample
  double jitter_px = 1.0;       // random translation amplitude
  double shared_background = 0.0;  // fraction of a class-independent
                                   // pattern mixed in (raises difficulty)
  double confusion = 0.0;       // max weight of a random *other* class's
                                // prototype mixed into each sample -- the
                                // structured ambiguity that actually makes
                                // a dataset hard for a convnet
  double contrast_jitter = 0.0;  // per-sample amplitude scale in
                                 // [1-x, 1+x]
  std::uint64_t prototype_seed = 7;  // class prototypes are a pure
                                     // function of this seed

  void validate() const;
};

/// Preset specs mirroring the four benchmark datasets' shapes.
SyntheticSpec mnist_like();
SyntheticSpec fashion_mnist_like();
SyntheticSpec cifar10_like();
SyntheticSpec cifar100_like();

/// Spec lookup by the paper's dataset name ("MNIST", "FashionMNIST",
/// "CIFAR10", "CIFAR100"); throws InvalidArgument on unknown names.
SyntheticSpec spec_by_name(const std::string& dataset);

/// Generates `n` labelled samples (classes round-robin balanced).
Dataset make_synthetic(const SyntheticSpec& spec, std::int64_t n, Rng& rng);

/// Train/test pair drawn from the same prototypes with independent noise.
struct TrainTest {
  Dataset train;
  Dataset test;
};
TrainTest make_synthetic_pair(const SyntheticSpec& spec, std::int64_t n_train,
                              std::int64_t n_test, Rng& rng);

}  // namespace lcrs::data
