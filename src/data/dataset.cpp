#include "data/dataset.h"

#include <algorithm>
#include <numeric>

namespace lcrs::data {

void Dataset::check() const {
  LCRS_CHECK(images.rank() == 4, "dataset images must be NCHW, got rank "
                                     << images.rank());
  LCRS_CHECK(static_cast<std::int64_t>(labels.size()) == images.dim(0),
             "dataset " << name << ": " << labels.size() << " labels for "
                        << images.dim(0) << " images");
  LCRS_CHECK(num_classes > 0, "dataset " << name << " has no classes");
  for (const auto y : labels) {
    LCRS_CHECK(y >= 0 && y < num_classes,
               "dataset " << name << ": label " << y << " out of range");
  }
}

Dataset Dataset::slice(std::int64_t begin, std::int64_t count) const {
  LCRS_CHECK(begin >= 0 && count >= 0 && begin + count <= size(),
             "dataset slice [" << begin << ", " << begin + count
                               << ") of size " << size());
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.images = images.slice_outer(begin, begin + count);
  out.labels.assign(labels.begin() + begin, labels.begin() + begin + count);
  return out;
}

Tensor Dataset::image(std::int64_t i) const {
  return images.slice_outer(i, i + 1);
}

std::vector<std::int64_t> Dataset::label_slice(std::int64_t begin,
                                               std::int64_t count) const {
  LCRS_CHECK(begin >= 0 && count >= 0 && begin + count <= size(),
             "label slice out of range");
  return {labels.begin() + begin, labels.begin() + begin + count};
}

void shuffle(Dataset& ds, Rng& rng) {
  const std::int64_t n = ds.size();
  if (n <= 1) return;
  const std::int64_t sample = ds.images.numel() / n;
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng.engine());

  Tensor images(ds.images.shape());
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t src = perm[static_cast<std::size_t>(i)];
    std::copy(ds.images.data() + src * sample,
              ds.images.data() + (src + 1) * sample,
              images.data() + i * sample);
    labels[static_cast<std::size_t>(i)] =
        ds.labels[static_cast<std::size_t>(src)];
  }
  ds.images = std::move(images);
  ds.labels = std::move(labels);
}

std::pair<Dataset, Dataset> split(const Dataset& ds, std::int64_t n_first) {
  LCRS_CHECK(n_first >= 0 && n_first <= ds.size(), "bad split point");
  return {ds.slice(0, n_first), ds.slice(n_first, ds.size() - n_first)};
}

Dataset concat(const Dataset& a, const Dataset& b) {
  LCRS_CHECK(a.num_classes == b.num_classes &&
                 a.channels() == b.channels() && a.height() == b.height() &&
                 a.width() == b.width(),
             "concat of incompatible datasets");
  Dataset out;
  out.name = a.name;
  out.num_classes = a.num_classes;
  std::vector<std::int64_t> dims = a.images.shape().dims();
  dims[0] = a.size() + b.size();
  out.images = Tensor{Shape(dims)};
  std::copy(a.images.data(), a.images.data() + a.images.numel(),
            out.images.data());
  std::copy(b.images.data(), b.images.data() + b.images.numel(),
            out.images.data() + a.images.numel());
  out.labels = a.labels;
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  return out;
}

std::vector<std::int64_t> class_histogram(const Dataset& ds) {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(ds.num_classes), 0);
  for (const auto y : ds.labels) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

}  // namespace lcrs::data
