// Browser-side client: webinfer engine + entropy exit + TCP fallback.
//
// This is the deployed form of Algorithm 2: the "browser" (webinfer
// engine) runs conv1 + binary branch; on an entropy miss it uploads the
// conv1 features to the edge server and returns the server's answer.
#pragma once

#include <optional>

#include "core/exit_policy.h"
#include "core/inference.h"
#include "edge/tcp.h"
#include "webinfer/engine.h"

namespace lcrs::edge {

/// One classification outcome on the browser side.
struct ClientResult {
  std::int64_t label = -1;
  core::ExitPoint exit_point = core::ExitPoint::kBinaryBranch;
  double entropy = 0.0;
  Tensor probabilities;
};

class BrowserClient {
 public:
  /// `port` is the edge server's loopback port; the connection is opened
  /// lazily on the first entropy miss and kept alive afterwards.
  BrowserClient(webinfer::Engine engine, core::ExitPolicy policy,
                std::uint16_t port);

  /// Runs Algorithm 2 on a single [1, C, H, W] sample.
  ClientResult classify(const Tensor& sample);

  /// Fraction of classified samples that exited at the binary branch.
  double exit_fraction() const;

  std::int64_t classified() const { return classified_; }

 private:
  ClientResult complete_at_edge(const Tensor& shared, double entropy);

  webinfer::Engine engine_;
  core::ExitPolicy policy_;
  std::uint16_t port_;
  std::optional<Socket> conn_;
  std::int64_t classified_ = 0;
  std::int64_t exited_ = 0;
};

}  // namespace lcrs::edge
