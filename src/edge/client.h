// Browser-side client: webinfer engine + entropy exit + TCP fallback.
//
// This is the deployed form of Algorithm 2: the "browser" (webinfer
// engine) runs conv1 + binary branch; on an entropy miss it uploads the
// conv1 features to the edge server and returns the server's answer.
//
// The edge path is hardened: every attempt is bounded by a deadline,
// transport failures are retried with capped exponential backoff over a
// fresh connection, and when the edge stays unreachable the client
// degrades gracefully -- it answers with the binary branch's prediction
// (ExitPoint::kBinaryBranchFallback) instead of throwing, which is the
// availability story the binary branch buys us over partition-only
// baselines like Neurosurgeon/Edgent.
#pragma once

#include <optional>

#include "core/exit_policy.h"
#include "core/inference.h"
#include "edge/tcp.h"
#include "webinfer/engine.h"

namespace lcrs::edge {

/// One classification outcome on the browser side.
struct ClientResult {
  std::int64_t label = -1;
  core::ExitPoint exit_point = core::ExitPoint::kBinaryBranch;
  double entropy = 0.0;
  Tensor probabilities;
};

/// How the client behaves when the edge path fails.
struct RetryPolicy {
  int max_attempts = 3;            // total tries per classify (>= 1)
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 250.0;
  double deadline_ms = 0.0;        // whole-edge-path budget; 0 = unbounded
  bool fallback_to_binary = true;  // degrade instead of throwing

  void validate() const;

  /// Fail fast: one attempt, no backoff, immediate fallback.
  static RetryPolicy no_retry();
};

/// Counters describing how the client's edge path has behaved.
struct ClientStats {
  std::int64_t classified = 0;        // total classify() calls
  std::int64_t exited_binary = 0;     // confident local exits
  std::int64_t completed_at_edge = 0; // answered by the edge's main branch
  std::int64_t fallbacks = 0;         // edge failed -> binary answer
  std::int64_t retries = 0;           // re-attempts after a transport error
  std::int64_t reconnects = 0;        // connections opened after the first
  double total_edge_ms = 0.0;         // wall time of successful edge calls

  double mean_edge_ms() const {
    return completed_at_edge > 0
               ? total_edge_ms / static_cast<double>(completed_at_edge)
               : 0.0;
  }
};

class BrowserClient {
 public:
  /// `port` is the edge server's loopback port; the connection is opened
  /// lazily on the first entropy miss and kept alive afterwards.
  BrowserClient(webinfer::Engine engine, core::ExitPolicy policy,
                std::uint16_t port, RetryPolicy retry = RetryPolicy());

  /// Runs Algorithm 2 on a single [1, C, H, W] sample. Never throws for
  /// transport faults when the policy allows fallback: the worst case is a
  /// binary-branch answer tagged kBinaryBranchFallback.
  ClientResult classify(const Tensor& sample);

  /// Fraction of classified samples that exited at the binary branch
  /// because they were confident (fallbacks are counted separately).
  double exit_fraction() const;

  std::int64_t classified() const { return stats_.classified; }
  std::int64_t fallbacks() const { return stats_.fallbacks; }
  const ClientStats& stats() const { return stats_; }
  const RetryPolicy& retry_policy() const { return retry_; }

 private:
  ClientResult complete_at_edge(const Tensor& shared, const Tensor& probs,
                                double entropy);
  ClientResult attempt_edge_completion(const Tensor& shared, double entropy,
                                       const Deadline& deadline);

  webinfer::Engine engine_;
  core::ExitPolicy policy_;
  std::uint16_t port_;
  RetryPolicy retry_;
  std::optional<Socket> conn_;
  bool connected_once_ = false;
  ClientStats stats_;
};

}  // namespace lcrs::edge
