// Browser-side client: webinfer engine + entropy exit + TCP fallback.
//
// This is the deployed form of Algorithm 2: the "browser" (webinfer
// engine) runs conv1 + binary branch; on an entropy miss it uploads the
// conv1 features to the edge server and returns the server's answer.
//
// The edge path is hardened: every attempt is bounded by a deadline,
// transport failures are retried with capped exponential backoff over a
// fresh connection, and when the edge stays unreachable the client
// degrades gracefully -- it answers with the binary branch's prediction
// (ExitPoint::kBinaryBranchFallback) instead of throwing, which is the
// availability story the binary branch buys us over partition-only
// baselines like Neurosurgeon/Edgent.
//
// Observability: every classify() mints a 64-bit trace id, wraps each
// stage (conv1, binary branch, serialize, network wait) in an obs::Span
// tagged with it, and sends the id on the wire (v2 frame header) so the
// server's spans stitch into the same timeline. Counters/latencies go
// through an instance obs::Registry mirrored into Registry::global();
// ClientStats is now a snapshot view over those instruments.
#pragma once

#include <optional>

#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "core/exit_policy.h"
#include "core/inference.h"
#include "edge/tcp.h"
#include "webinfer/engine.h"

namespace lcrs::edge {

/// One classification outcome on the browser side.
struct ClientResult {
  std::int64_t label = -1;
  core::ExitPoint exit_point = core::ExitPoint::kBinaryBranch;
  double entropy = 0.0;
  Tensor probabilities;
  /// The trace id the stages of this request were tagged with.
  std::uint64_t trace_id = 0;
};

/// How the client behaves when the edge path fails.
struct RetryPolicy {
  int max_attempts = 3;            // total tries per classify (>= 1)
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 250.0;
  double deadline_ms = 0.0;        // whole-edge-path budget; 0 = unbounded
  bool fallback_to_binary = true;  // degrade instead of throwing

  void validate() const;

  /// Fail fast: one attempt, no backoff, immediate fallback.
  static RetryPolicy no_retry();
};

/// Snapshot view of the client's edge-path behaviour, read out of the
/// client's metrics registry (kept as a struct for API compatibility).
struct ClientStats {
  std::int64_t classified = 0;        // total classify() calls
  std::int64_t exited_binary = 0;     // confident local exits
  std::int64_t completed_at_edge = 0; // answered by the edge's main branch
  std::int64_t fallbacks = 0;         // edge failed -> binary answer
  std::int64_t retries = 0;           // re-attempts after a transport error
  std::int64_t reconnects = 0;        // connections opened after the first
  std::int64_t busy_rejections = 0;   // kBusy answers from the edge server
  std::int64_t model_unavailable = 0; // kModelUnavailable answers
  double total_edge_ms = 0.0;         // wall time of successful edge calls

  double mean_edge_ms() const {
    return completed_at_edge > 0
               ? total_edge_ms / static_cast<double>(completed_at_edge)
               : 0.0;
  }
};

class BrowserClient {
 public:
  /// `port` is the edge server's loopback port; the connection is opened
  /// lazily on the first entropy miss and kept alive afterwards.
  BrowserClient(webinfer::Engine engine, core::ExitPolicy policy,
                std::uint16_t port, RetryPolicy retry = RetryPolicy());

  /// Runs Algorithm 2 on a single [1, C, H, W] sample. Never throws for
  /// transport faults when the policy allows fallback: the worst case is a
  /// binary-branch answer tagged kBinaryBranchFallback.
  ClientResult classify(const Tensor& sample);

  /// Fraction of classified samples that exited at the binary branch
  /// because they were confident (fallbacks are counted separately).
  double exit_fraction() const;

  std::int64_t classified() const { return requests_.value(); }
  std::int64_t fallbacks() const { return exit_fallback_.value(); }
  /// Point-in-time snapshot of the edge-path counters.
  ClientStats stats() const;
  /// This client's own registry (also mirrored into Registry::global()).
  const obs::Registry& metrics() const { return metrics_; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Which edge-side model completes this client's requests. 0 (the
  /// default) targets the server's default model over the v1/v2 wire
  /// format, byte-identical to pre-registry clients; nonzero ids ride
  /// the v3 frame header.
  void set_model_id(std::uint32_t model_id) { model_id_ = model_id; }
  std::uint32_t model_id() const { return model_id_; }

 private:
  ClientResult complete_at_edge(const Tensor& shared, const Tensor& probs,
                                double entropy, std::uint64_t trace_id);
  ClientResult attempt_edge_completion(const Frame& request, double entropy,
                                       const Deadline& deadline);

  webinfer::Engine engine_;
  core::ExitPolicy policy_;
  std::uint16_t port_;
  RetryPolicy retry_;
  std::uint32_t model_id_ = 0;
  std::optional<Socket> conn_;
  bool connected_once_ = false;

  obs::Registry metrics_;  // must precede the instruments bound to it
  obs::MirroredCounter requests_{metrics_, obs::names::kClientRequests};
  obs::MirroredCounter exit_binary_{metrics_, obs::names::kClientExitBinary};
  obs::MirroredCounter exit_main_{metrics_, obs::names::kClientExitMain};
  obs::MirroredCounter exit_fallback_{metrics_,
                                      obs::names::kClientExitFallback};
  obs::MirroredCounter retries_{metrics_, obs::names::kClientRetries};
  obs::MirroredCounter reconnects_{metrics_, obs::names::kClientReconnects};
  obs::MirroredCounter busy_rejections_{metrics_,
                                        obs::names::kClientBusyRejections};
  obs::MirroredCounter model_unavailable_{metrics_,
                                          obs::names::kClientModelUnavailable};
  obs::MirroredHistogram roundtrip_us_{metrics_,
                                       obs::names::kClientEdgeRoundtripUs};
  obs::MirroredHistogram browser_compute_us_{
      metrics_, obs::names::kClientBrowserComputeUs};
  obs::MirroredHistogram serialize_us_{metrics_,
                                       obs::names::kClientSerializeUs};
};

}  // namespace lcrs::edge
