// Multi-model serving registry for the edge server.
//
// The registry maps a protocol-level model id (v3 frame header,
// edge/protocol.h) to an immutable *servable model snapshot*: a prepared
// batch-completion function plus whatever state keeps it valid (for real
// models, the CompositeNetwork the closure is bound to). Snapshots are
// held behind shared_ptr<const ServableModel>:
//
//   - A request resolves its snapshot once, at admission, and carries it
//     through the queue into the batched forward. Whatever version was
//     current at admission answers the request -- a concurrent swap never
//     retargets an in-flight request, so responses are always bit-exact
//     against the version that admitted them.
//   - install() flips the map entry atomically under the registry mutex;
//     the displaced snapshot is not freed but *retired*: in-flight
//     batches still hold strong references, and the registry keeps a
//     weak_ptr so live_models() can report when the drain completes and
//     the old model's memory is actually gone.
//   - Versions are strictly increasing per model id, so observers see a
//     monotonic version history (never an ABA rollback).
//
// Lock discipline: mutex_ ("edge.registry") is a leaf. lookup()/install()
// copy or move shared_ptrs under it and never invoke completions, load
// weights, or touch any other lock while holding it; weight loading and
// prepare_edge_inference() happen before install() is called (off the
// serving path -- that is what makes the swap "hot").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/sync.h"
#include "core/checkpoint.h"
#include "edge/protocol.h"

namespace lcrs::edge {

/// Completes a conv1 feature map into (label, probabilities). Invoked
/// concurrently from worker (or, in direct mode, connection) threads.
using CompletionFn = std::function<CompleteResponse(const Tensor& shared)>;

/// Batched completion: a [k, C, H, W] stack of conv1 feature maps from k
/// requests (possibly from k different connections) in, exactly k
/// responses out, row i answering request i. Must be row-independent:
/// response i may not depend on the other rows.
using BatchCompletionFn =
    std::function<std::vector<CompleteResponse>(const Tensor& batch)>;

/// One immutable, fully-prepared model generation. Everything is set
/// before the snapshot is installed and never mutated afterwards, so
/// worker threads may call `complete` concurrently with no locking.
struct ServableModel {
  std::uint32_t model_id = 0;  // 0 = the server's default model
  std::uint32_t version = 0;
  std::string name;
  BatchCompletionFn complete;
  /// Keeps the network the completion closure is bound to alive for the
  /// snapshot's lifetime; null for synthetic/test completions.
  std::shared_ptr<core::CompositeNetwork> net;

  /// Wraps a loaded bundle into a servable snapshot: takes ownership of
  /// the network, runs prepare_edge_inference() (via
  /// main_branch_batch_completion), and binds the batched completion to
  /// it.
  static std::shared_ptr<const ServableModel> from_loaded(
      const core::BundleInfo& info, core::LoadedComposite loaded);

  /// Snapshot around an arbitrary completion fn (tests, default model).
  static std::shared_ptr<const ServableModel> from_fn(
      std::uint32_t model_id, std::uint32_t version, std::string name,
      BatchCompletionFn complete);
};

/// Thread-safe model-id -> snapshot map with strictly-increasing
/// versions, retirement tracking, and its own mirrored instruments.
class ModelRegistry {
 public:
  ModelRegistry();

  /// Installs `model` under model->model_id, displacing any incumbent.
  /// Throws InvalidArgument unless model->version is strictly greater
  /// than the incumbent's (monotonic version visibility) and the
  /// snapshot has a completion fn.
  void install(std::shared_ptr<const ServableModel> model)
      LCRS_EXCLUDES(mutex_);

  /// Current snapshot for `model_id`, or null when unregistered. The
  /// returned reference keeps the snapshot alive across a concurrent
  /// swap or eviction.
  std::shared_ptr<const ServableModel> lookup(std::uint32_t model_id) const
      LCRS_EXCLUDES(mutex_);

  /// Removes the entry; returns false when there was none. The snapshot
  /// drains like a swapped-out one.
  bool evict(std::uint32_t model_id) LCRS_EXCLUDES(mutex_);

  /// Snapshot of every registered model, id-ordered.
  std::vector<std::shared_ptr<const ServableModel>> list() const
      LCRS_EXCLUDES(mutex_);

  /// Number of registered entries.
  std::int64_t size() const LCRS_EXCLUDES(mutex_);

  /// Registered entries plus retired snapshots whose memory is still
  /// pinned by in-flight holders -- the drain gauge. Prunes expired
  /// retirees as a side effect; equals size() once every displaced
  /// model's last batch has finished.
  std::int64_t live_models() LCRS_EXCLUDES(mutex_);

  /// This registry's own metrics (also mirrored into Registry::global()).
  const obs::Registry& metrics() const { return metrics_; }

 private:
  mutable Mutex mutex_{"edge.registry"};
  std::map<std::uint32_t, std::shared_ptr<const ServableModel>> models_
      LCRS_GUARDED_BY(mutex_);
  /// Displaced/evicted snapshots, observed weakly: an entry expires
  /// exactly when the last in-flight batch drops its reference.
  std::vector<std::weak_ptr<const ServableModel>> retired_
      LCRS_GUARDED_BY(mutex_);

  obs::Registry metrics_;  // must precede the instruments bound to it
  obs::MirroredGauge models_gauge_{metrics_, obs::names::kRegistryModels};
  obs::MirroredGauge live_gauge_{metrics_, obs::names::kRegistryModelsLive};
  obs::MirroredCounter swaps_{metrics_, obs::names::kRegistrySwaps};
  obs::MirroredCounter evictions_{metrics_, obs::names::kRegistryEvictions};
};

}  // namespace lcrs::edge
