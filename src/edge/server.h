// Edge server hosting the main branch (paper Fig. 1/8).
//
// Throughput-oriented serving path. Connection threads only do protocol
// I/O: every kCompleteRequest resolves its model snapshot from the
// ModelRegistry (v3 frame header model id; v1/v2 frames route to model
// 0) and is enqueued on that model's bounded queue, and a shared pool of
// worker threads drains the queues round-robin, coalescing same-model
// requests *across connections* into one batched main-branch forward
// (im2col+GEMM throughput grows strongly with batch size, which is
// exactly the amortization Neurosurgeon-style edge offloading exploits).
// Responses are demultiplexed back to the originating connection through
// per-request response slots; each request's trace id rides through the
// batch untouched, so stitched client/server timelines survive batching.
//
// Hot-swap: an operator thread loads+prepares a new model generation off
// the serving path and install()s it into the registry; requests admitted
// before the flip finish against the old snapshot (their shared_ptr keeps
// it alive), requests admitted after see only the new one. See
// edge/model_registry.h for the snapshot lifetime rules.
//
// The batch path is numerically identical per-sample to the sequential
// path: every layer in the main rest is row-independent in eval mode, so
// row i of a [k,...] forward is bit-for-bit the [1,...] forward of
// request i (tests/test_property_batch.cpp proves this layer by layer,
// tests/test_edge_load.cpp end to end over live sockets).
//
// Admission control: the queue is bounded. When it is full the
// connection thread answers kBusy (with a retry-after hint) instead of
// buffering without bound, so overload degrades into the client's
// existing retry/backoff/local-fallback path rather than into unbounded
// memory growth and collapse.
//
// Shutdown is convergent: stop() (and a kShutdown frame from any client)
// shuts down every live peer socket, flushes the queue (failing the
// flushed requests' slots so their connection threads unwind), wakes the
// workers, and joins everything.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/stopwatch.h"
#include "common/sync.h"
#include "edge/model_registry.h"
#include "edge/tcp.h"

namespace lcrs::core {
class CompositeNetwork;
}  // namespace lcrs::core

namespace lcrs::obs {
class OpsServer;  // common/obs/ops_server.h (included by server.cpp)
}  // namespace lcrs::obs

namespace lcrs::edge {

// CompletionFn / BatchCompletionFn live in edge/model_registry.h (a
// ServableModel snapshot carries the batched completion).

/// Wraps a non-thread-safe completion in a mutex (layer forward() caches
/// are not concurrency-safe in train mode).
CompletionFn serialize_completion(CompletionFn inner);

/// Adapts a per-sample completion to the batch interface by slicing the
/// batch and completing rows one at a time. Correct for any completion
/// but forfeits GEMM amortization; prefer main_branch_batch_completion.
BatchCompletionFn per_sample_batch(CompletionFn per_sample);

/// The real batched edge completion: one core::complete_main_batch
/// Sequential forward over the whole stack. Eval-mode forwards are
/// thread-safe, so no serialization wrapper is needed.
BatchCompletionFn main_branch_batch_completion(core::CompositeNetwork& net);

/// Serving-path configuration. Defaults favor throughput with no added
/// latency when idle: workers cut a batch as soon as the queue drains
/// (max_wait_us == 0), so an unloaded server behaves like the sequential
/// path, and batches only form when requests actually queue up.
struct ServerOptions {
  /// Run completions inline on connection threads (the pre-pool serving
  /// path). Kept for comparison benchmarks; no queue, no batching, no
  /// admission control.
  bool direct_execution = false;

  int num_workers = 2;  // worker pool size (>= 1)

  /// Max requests coalesced into one batched forward (>= 1).
  int max_batch = 8;

  /// After popping the first request of a batch, how long a worker may
  /// wait for more arrivals before dispatching. 0 = never wait: cut the
  /// batch the moment the queue drains.
  double max_wait_us = 0.0;

  /// Admission bound on the central queue (0 = unbounded). Requests
  /// arriving when the queue is full are answered kBusy.
  std::size_t queue_capacity = 256;

  /// Retry-after hint carried in kBusy replies.
  std::uint32_t busy_retry_after_ms = 5;

  /// Ops-plane side port (HTTP /metrics, /metrics.json, /healthz,
  /// /readyz, /statusz, /tracez). < 0 disables the ops plane (default);
  /// 0 binds an ephemeral port; > 0 binds that port. Enabling it also
  /// turns on the tail-sampling flight recorder for the server's
  /// lifetime (restored on stop()).
  int ops_port = -1;

  void validate() const;
};

/// Point-in-time snapshot of the server's request counters, read out of
/// the server's metrics registry (kept as a struct for API
/// compatibility).
struct ServerStats {
  std::int64_t requests_served = 0;
  std::int64_t connections_accepted = 0;
  std::int64_t connection_errors = 0;  // connections ended by an exception
  std::int64_t rejected_busy = 0;      // admissions refused with kBusy
  std::int64_t rejected_unknown_model = 0;  // kModelUnavailable replies
  std::int64_t batches_dispatched = 0; // batched forwards executed
  double total_completion_ms = 0.0;    // time spent inside the completion fn

  double mean_completion_ms() const {
    return requests_served > 0
               ? total_completion_ms / static_cast<double>(requests_served)
               : 0.0;
  }
};

class EdgeServer {
 public:
  /// Binds immediately (port 0 = ephemeral) and starts serving with the
  /// given options (default: worker pool, batching on demand). The
  /// completion-fn ctors wrap the fn as model id 0 (version 1) in a
  /// fresh registry, so single-model callers are unchanged.
  EdgeServer(std::uint16_t port, CompletionFn complete,
             ServerOptions options = ServerOptions());
  EdgeServer(std::uint16_t port, BatchCompletionFn complete,
             ServerOptions options = ServerOptions());
  /// Multi-model serving: requests route through `registry` by the v3
  /// frame header's model id (v1/v2 frames route to model 0). The
  /// registry is shared so an operator thread can hot-swap models while
  /// the server runs.
  EdgeServer(std::uint16_t port, std::shared_ptr<ModelRegistry> registry,
             ServerOptions options = ServerOptions());

  /// Stops the accept loop and joins every worker/connection thread.
  ~EdgeServer();

  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  /// Bound ops-plane port, or 0 when the ops plane is disabled.
  std::uint16_t ops_port() const;
  const ServerOptions& options() const { return opts_; }

  /// LB-facing readiness surfaced at /readyz (and the
  /// edge.server.ready gauge). stop()/request_stop() flip it off; a
  /// controlled drain can flip it off earlier so the replica is ejected
  /// from rotation while in-flight requests finish.
  void set_ready(bool ready);
  bool ready() const { return ready_.load() && !stopping_.load(); }
  std::int64_t requests_served() const { return requests_.value(); }
  std::int64_t connections_accepted() const { return accepted_.value(); }
  std::int64_t rejected_busy() const { return rejected_busy_.value(); }
  std::int64_t rejected_unknown_model() const {
    return rejected_model_.value();
  }
  std::int64_t batches_dispatched() const { return batches_.value(); }
  /// The registry requests route through; hot-swap by installing into it.
  const std::shared_ptr<ModelRegistry>& registry() const { return registry_; }
  /// Total queued requests across every model queue.
  std::int64_t queue_depth() const LCRS_EXCLUDES(queue_mutex_);
  ServerStats stats() const;
  /// This server's own registry (also mirrored into Registry::global()).
  const obs::Registry& metrics() const { return metrics_; }

  /// Idempotent; wakes blocked connection/worker threads (even idle ones
  /// mid-recv or mid-wait) and joins them before returning.
  void stop() LCRS_EXCLUDES(stop_mutex_, conns_mutex_, queue_mutex_);

 private:
  struct Connection {
    std::thread thread;
    std::shared_ptr<Socket> sock;  // shared with the thread for shutdown
    std::shared_ptr<std::atomic<bool>> done;
  };

  /// Response rendezvous between a connection thread and the worker that
  /// executes its request's batch. The connection thread blocks on `cv`
  /// until a worker (or the shutdown path) publishes a verdict.
  struct ResponseSlot {
    Mutex mutex{"edge.server.slot"};
    CondVar cv;
    bool ready LCRS_GUARDED_BY(mutex) = false;
    bool ok LCRS_GUARDED_BY(mutex) = false;
    CompleteResponse response LCRS_GUARDED_BY(mutex);
    std::string error LCRS_GUARDED_BY(mutex);
  };

  struct PendingRequest {
    Tensor shared;  // conv1 feature map [1, C, H, W]
    std::uint64_t trace_id = 0;
    /// Snapshot resolved at admission: whatever registry generation was
    /// current then answers this request, even if a swap lands while it
    /// queues (the shared_ptr keeps the old model alive until its batch
    /// finishes -- that is the drain).
    std::shared_ptr<const ServableModel> model;
    Stopwatch queued;  // time-in-queue measurement
    std::shared_ptr<ResponseSlot> slot;
  };

  void accept_loop() LCRS_EXCLUDES(conns_mutex_);
  void serve_connection(Socket& conn)
      LCRS_EXCLUDES(conns_mutex_, queue_mutex_);
  void serve_request_direct(Socket& conn, const Tensor& shared,
                            std::uint64_t trace_id,
                            std::shared_ptr<const ServableModel> model);
  void serve_request_queued(Socket& conn, Tensor shared,
                            std::uint64_t trace_id,
                            std::shared_ptr<const ServableModel> model)
      LCRS_EXCLUDES(queue_mutex_);
  /// Moves finished connections (done flag set) out of connections_ so
  /// the caller can join them *after* releasing conns_mutex_ -- joining
  /// under the lock would stall request_stop() and new accepts for as
  /// long as a dying thread takes to unwind.
  void collect_finished_locked(std::vector<Connection>* out)
      LCRS_REQUIRES(conns_mutex_);
  /// Signals shutdown without joining: closes the listener, shuts down
  /// every live peer socket, flushes the queue (failing flushed slots)
  /// and wakes the workers. Safe from connection threads.
  void request_stop() LCRS_EXCLUDES(conns_mutex_, queue_mutex_);

  /// Worker pool: blocks for work, coalesces a batch, dispatches it.
  void worker_loop() LCRS_EXCLUDES(queue_mutex_);
  /// Pops the next batch from one model's queue (first request plus
  /// same-shaped followers served by the *same snapshot*, up to
  /// max_batch, waiting at most max_wait_us for stragglers). Model
  /// queues are visited round-robin so a hot model cannot starve the
  /// others. Returns an empty vector when the server is stopping and
  /// every queue is drained.
  std::vector<PendingRequest> next_batch() LCRS_EXCLUDES(queue_mutex_);
  void dispatch_batch(std::vector<PendingRequest>* batch);
  static void fulfill(ResponseSlot& slot, bool ok, CompleteResponse response,
                      const std::string& error)
      LCRS_EXCLUDES(slot.mutex);

  /// /statusz payload: build/SIMD/uptime plus the serving configuration
  /// and live counters. Called from the ops-server thread.
  std::string status_json() const LCRS_EXCLUDES(queue_mutex_);

  Listener listener_;
  // Both set in the ctor init list and immutable after: const instead
  // of GUARDED_BY (the shared_ptr itself is never rebound -- the
  // registry's own mutex guards its contents -- and validate() is a
  // const member).
  const std::shared_ptr<ModelRegistry> registry_;
  const ServerOptions opts_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> ready_{true};

  obs::Registry metrics_;  // must precede the instruments bound to it
  obs::MirroredCounter requests_{metrics_, obs::names::kServerRequests};
  obs::MirroredCounter accepted_{metrics_, obs::names::kServerConnections};
  obs::MirroredCounter connection_errors_{
      metrics_, obs::names::kServerConnectionErrors};
  obs::MirroredCounter rejected_busy_{metrics_,
                                      obs::names::kServerRejectedBusy};
  obs::MirroredCounter rejected_model_{metrics_,
                                       obs::names::kServerRejectedModel};
  obs::MirroredCounter batches_{metrics_, obs::names::kServerBatches};
  obs::MirroredGauge active_connections_{
      metrics_, obs::names::kServerActiveConnections};
  obs::MirroredGauge queue_depth_{metrics_, obs::names::kServerQueueDepth};
  obs::MirroredHistogram completion_us_{metrics_,
                                        obs::names::kServerCompletionUs};
  obs::MirroredHistogram queue_wait_us_{metrics_,
                                        obs::names::kServerQueueWaitUs};
  obs::MirroredHistogram batch_size_{metrics_, obs::names::kServerBatchSize};
  obs::MirroredGauge ready_gauge_{metrics_, obs::names::kServerReady};

  // Per-model request queues feeding the shared worker pool. Leaf-like:
  // nothing else is acquired while queue_mutex_ is held (slots are
  // fulfilled after it is released; the registry is consulted before
  // admission, never under it), except by stop()/request_stop() which
  // hold stop_mutex_ first (see the ACQUIRED_BEFORE on stop_mutex_).
  mutable Mutex queue_mutex_{"edge.server.queue"};
  CondVar queue_cv_;
  std::map<std::uint32_t, std::deque<PendingRequest>> queues_
      LCRS_GUARDED_BY(queue_mutex_);
  /// Sum of every queue's size; opts_.queue_capacity bounds this total,
  /// so admission control spans all models.
  std::size_t queued_total_ LCRS_GUARDED_BY(queue_mutex_) = 0;
  /// Round-robin fairness cursor: next_batch starts scanning at the
  /// first model id strictly greater than this.
  std::uint32_t rr_cursor_ LCRS_GUARDED_BY(queue_mutex_) = 0;

  // Guards the live-connection map. Acquired by the acceptor, by
  // connection threads entering request_stop(), and by stop(); never
  // held across a join or a completion call.
  Mutex conns_mutex_{"edge.server.conns"};
  std::vector<Connection> connections_ LCRS_GUARDED_BY(conns_mutex_);
  // Serializes stop() callers. Allowed orders: stop -> conns and
  // stop -> queue (stop() calls request_stop() while holding it); the
  // reverse orders never happen.
  Mutex stop_mutex_ LCRS_ACQUIRED_BEFORE(conns_mutex_, queue_mutex_){
      "edge.server.stop"};
  std::vector<std::thread> workers_;
  std::thread acceptor_;

  bool flight_prev_ = false;  // flight-recorder state restored by stop()
  // Declared last so it is destroyed first: its hooks (readiness,
  // /statusz) read the members above from the ops-server thread.
  std::unique_ptr<obs::OpsServer> ops_;
};

}  // namespace lcrs::edge
