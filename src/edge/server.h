// Edge server hosting the main branch (paper Fig. 1/8).
//
// Listens on loopback TCP and serves each browser connection on its own
// thread: every kCompleteRequest carries a conv1 feature map, the reply
// carries the main branch's label + probabilities. The completion
// function must be safe to call concurrently -- a mutex-guarded wrapper
// (see serialize_completion) suffices for the single-model case, since
// the paper's concurrency concern is edge *compute* pressure, which the
// concurrency bench measures directly.
//
// Shutdown is convergent: stop() (and a kShutdown frame from any client)
// shuts down every live peer socket, which wakes connection threads
// blocked in recv_frame, so stop() returns promptly even with idle
// clients holding connections open.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "edge/tcp.h"

namespace lcrs::edge {

/// Completes a conv1 feature map into (label, probabilities). Invoked
/// concurrently from connection threads.
using CompletionFn = std::function<CompleteResponse(const Tensor& shared)>;

/// Wraps a non-thread-safe completion in a mutex (layer forward() caches
/// are not concurrency-safe).
CompletionFn serialize_completion(CompletionFn inner);

/// Point-in-time snapshot of the server's request counters, read out of
/// the server's metrics registry (kept as a struct for API
/// compatibility).
struct ServerStats {
  std::int64_t requests_served = 0;
  std::int64_t connections_accepted = 0;
  std::int64_t connection_errors = 0;  // connections ended by an exception
  double total_completion_ms = 0.0;    // time spent inside the completion fn

  double mean_completion_ms() const {
    return requests_served > 0
               ? total_completion_ms / static_cast<double>(requests_served)
               : 0.0;
  }
};

class EdgeServer {
 public:
  /// Binds immediately (port 0 = ephemeral) and starts serving.
  EdgeServer(std::uint16_t port, CompletionFn complete);

  /// Stops the accept loop and joins every connection thread.
  ~EdgeServer();

  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  std::int64_t requests_served() const { return requests_.value(); }
  std::int64_t connections_accepted() const { return accepted_.value(); }
  ServerStats stats() const;
  /// This server's own registry (also mirrored into Registry::global()).
  const obs::Registry& metrics() const { return metrics_; }

  /// Idempotent; wakes blocked connection threads (even idle ones mid-
  /// recv) and joins them before returning.
  void stop();

 private:
  void accept_loop();
  void serve_connection(Socket& conn);
  void reap_finished_locked();
  /// Signals shutdown without joining: closes the listener and shuts down
  /// every live peer socket. Safe from connection threads.
  void request_stop();

  Listener listener_;
  CompletionFn complete_;
  std::atomic<bool> stopping_{false};

  obs::Registry metrics_;  // must precede the instruments bound to it
  obs::MirroredCounter requests_{metrics_, obs::names::kServerRequests};
  obs::MirroredCounter accepted_{metrics_, obs::names::kServerConnections};
  obs::MirroredCounter connection_errors_{
      metrics_, obs::names::kServerConnectionErrors};
  obs::MirroredGauge active_connections_{
      metrics_, obs::names::kServerActiveConnections};
  obs::MirroredHistogram completion_us_{metrics_,
                                        obs::names::kServerCompletionUs};

  std::mutex conns_mutex_;
  struct Connection {
    std::thread thread;
    std::shared_ptr<Socket> sock;  // shared with the thread for shutdown
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections_;
  std::mutex stop_mutex_;  // serializes stop() callers
  std::thread acceptor_;
};

}  // namespace lcrs::edge
