// Edge server hosting the main branch (paper Fig. 1/8).
//
// Listens on loopback TCP and serves each browser connection on its own
// thread: every kCompleteRequest carries a conv1 feature map, the reply
// carries the main branch's label + probabilities. The completion
// function must be safe to call concurrently -- a mutex-guarded wrapper
// (see serialize_completion) suffices for the single-model case, since
// the paper's concurrency concern is edge *compute* pressure, which the
// concurrency bench measures directly.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "edge/tcp.h"

namespace lcrs::edge {

/// Completes a conv1 feature map into (label, probabilities). Invoked
/// concurrently from connection threads.
using CompletionFn = std::function<CompleteResponse(const Tensor& shared)>;

/// Wraps a non-thread-safe completion in a mutex (layer forward() caches
/// are not concurrency-safe).
CompletionFn serialize_completion(CompletionFn inner);

class EdgeServer {
 public:
  /// Binds immediately (port 0 = ephemeral) and starts serving.
  EdgeServer(std::uint16_t port, CompletionFn complete);

  /// Stops the accept loop and joins every connection thread.
  ~EdgeServer();

  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  std::int64_t requests_served() const { return requests_served_.load(); }
  std::int64_t connections_accepted() const {
    return connections_accepted_.load();
  }

  void stop();

 private:
  void accept_loop();
  void serve_connection(Socket conn);
  void reap_finished_locked();

  Listener listener_;
  CompletionFn complete_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> requests_served_{0};
  std::atomic<std::int64_t> connections_accepted_{0};

  std::mutex conns_mutex_;
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections_;
  std::thread acceptor_;
};

}  // namespace lcrs::edge
