// Edge server hosting the main branch (paper Fig. 1/8).
//
// Listens on loopback TCP and serves each browser connection on its own
// thread: every kCompleteRequest carries a conv1 feature map, the reply
// carries the main branch's label + probabilities. The completion
// function must be safe to call concurrently -- a mutex-guarded wrapper
// (see serialize_completion) suffices for the single-model case, since
// the paper's concurrency concern is edge *compute* pressure, which the
// concurrency bench measures directly.
//
// Shutdown is convergent: stop() (and a kShutdown frame from any client)
// shuts down every live peer socket, which wakes connection threads
// blocked in recv_frame, so stop() returns promptly even with idle
// clients holding connections open.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/sync.h"
#include "edge/tcp.h"

namespace lcrs::edge {

/// Completes a conv1 feature map into (label, probabilities). Invoked
/// concurrently from connection threads.
using CompletionFn = std::function<CompleteResponse(const Tensor& shared)>;

/// Wraps a non-thread-safe completion in a mutex (layer forward() caches
/// are not concurrency-safe).
CompletionFn serialize_completion(CompletionFn inner);

/// Point-in-time snapshot of the server's request counters, read out of
/// the server's metrics registry (kept as a struct for API
/// compatibility).
struct ServerStats {
  std::int64_t requests_served = 0;
  std::int64_t connections_accepted = 0;
  std::int64_t connection_errors = 0;  // connections ended by an exception
  double total_completion_ms = 0.0;    // time spent inside the completion fn

  double mean_completion_ms() const {
    return requests_served > 0
               ? total_completion_ms / static_cast<double>(requests_served)
               : 0.0;
  }
};

class EdgeServer {
 public:
  /// Binds immediately (port 0 = ephemeral) and starts serving.
  EdgeServer(std::uint16_t port, CompletionFn complete);

  /// Stops the accept loop and joins every connection thread.
  ~EdgeServer();

  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  std::int64_t requests_served() const { return requests_.value(); }
  std::int64_t connections_accepted() const { return accepted_.value(); }
  ServerStats stats() const;
  /// This server's own registry (also mirrored into Registry::global()).
  const obs::Registry& metrics() const { return metrics_; }

  /// Idempotent; wakes blocked connection threads (even idle ones mid-
  /// recv) and joins them before returning.
  void stop() LCRS_EXCLUDES(stop_mutex_, conns_mutex_);

 private:
  struct Connection {
    std::thread thread;
    std::shared_ptr<Socket> sock;  // shared with the thread for shutdown
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop() LCRS_EXCLUDES(conns_mutex_);
  void serve_connection(Socket& conn);
  /// Moves finished connections (done flag set) out of connections_ so
  /// the caller can join them *after* releasing conns_mutex_ -- joining
  /// under the lock would stall request_stop() and new accepts for as
  /// long as a dying thread takes to unwind.
  void collect_finished_locked(std::vector<Connection>* out)
      LCRS_REQUIRES(conns_mutex_);
  /// Signals shutdown without joining: closes the listener and shuts down
  /// every live peer socket. Safe from connection threads.
  void request_stop() LCRS_EXCLUDES(conns_mutex_);

  Listener listener_;
  CompletionFn complete_;
  std::atomic<bool> stopping_{false};

  obs::Registry metrics_;  // must precede the instruments bound to it
  obs::MirroredCounter requests_{metrics_, obs::names::kServerRequests};
  obs::MirroredCounter accepted_{metrics_, obs::names::kServerConnections};
  obs::MirroredCounter connection_errors_{
      metrics_, obs::names::kServerConnectionErrors};
  obs::MirroredGauge active_connections_{
      metrics_, obs::names::kServerActiveConnections};
  obs::MirroredHistogram completion_us_{metrics_,
                                        obs::names::kServerCompletionUs};

  // Guards the live-connection map. Acquired by the acceptor, by
  // connection threads entering request_stop(), and by stop(); never
  // held across a join or a completion call.
  Mutex conns_mutex_{"edge.server.conns"};
  std::vector<Connection> connections_ LCRS_GUARDED_BY(conns_mutex_);
  // Serializes stop() callers. Allowed order: stop -> conns (stop()
  // calls request_stop() while holding it); the reverse never happens.
  Mutex stop_mutex_ LCRS_ACQUIRED_BEFORE(conns_mutex_){"edge.server.stop"};
  std::thread acceptor_;
};

}  // namespace lcrs::edge
