// In-process collaborative runtime with a simulated clock.
//
// Runs *real* inference through the composite network while pricing each
// stage (browser compute, upload, edge compute, reply) on the cost model,
// so Fig. 6 / Fig. 10 latency series come from genuine per-sample exit
// decisions plus calibrated device/link timings -- the closest laptop
// equivalent of the paper's Mate9-plus-X3640M4 testbed.
#pragma once

#include "core/composite.h"
#include "core/inference.h"
#include "sim/cost_model.h"

namespace lcrs::edge {

/// Timeline of one recognition.
struct SimStep {
  std::int64_t label = -1;
  core::ExitPoint exit_point = core::ExitPoint::kBinaryBranch;
  double entropy = 0.0;
  double browser_ms = 0.0;
  double upload_ms = 0.0;
  double edge_ms = 0.0;
  double download_ms = 0.0;

  double total_ms() const {
    return browser_ms + upload_ms + edge_ms + download_ms;
  }
};

class LocalRuntime {
 public:
  /// Profiles the network's three stages once at construction. The
  /// sample_shape is the per-sample input geometry [C, H, W].
  LocalRuntime(core::CompositeNetwork& net, core::ExitPolicy policy,
               sim::CostModel cost, const Shape& sample_shape,
               sim::Scenario scenario = {});

  /// One Algorithm 2 recognition with a jittered link draw.
  SimStep classify(const Tensor& sample, Rng& rng);

  /// Amortized model-load cost per sample for this runtime's session.
  double amortized_load_ms() const;

  std::int64_t browser_model_bytes() const { return browser_model_bytes_; }

 private:
  core::CompositeNetwork& net_;
  core::ExitPolicy policy_;
  sim::CostModel cost_;
  sim::Scenario scenario_;
  double browser_forward_ms_ = 0.0;  // conv1 + branch, per sample
  double edge_rest_ms_ = 0.0;        // main rest, per sample
  std::int64_t upload_bytes_ = 0;    // conv1 tensor wire size
  std::int64_t browser_model_bytes_ = 0;
};

}  // namespace lcrs::edge
