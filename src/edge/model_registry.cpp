#include "edge/model_registry.h"

#include <utility>

#include "edge/server.h"

namespace lcrs::edge {

std::shared_ptr<const ServableModel> ServableModel::from_loaded(
    const core::BundleInfo& info, core::LoadedComposite loaded) {
  auto net = std::make_shared<core::CompositeNetwork>(std::move(loaded.net));
  auto m = std::make_shared<ServableModel>();
  m->model_id = info.model_id;
  m->version = info.version;
  m->name = info.name;
  // The closure captures *net by reference; m->net pins it for the
  // snapshot's lifetime, so the completion stays valid for exactly as
  // long as any holder (queue entry, in-flight batch) can call it.
  m->complete = main_branch_batch_completion(*net);
  m->net = std::move(net);
  return m;
}

std::shared_ptr<const ServableModel> ServableModel::from_fn(
    std::uint32_t model_id, std::uint32_t version, std::string name,
    BatchCompletionFn complete) {
  auto m = std::make_shared<ServableModel>();
  m->model_id = model_id;
  m->version = version;
  m->name = std::move(name);
  m->complete = std::move(complete);
  return m;
}

ModelRegistry::ModelRegistry() {
  models_gauge_.set(0.0);
  live_gauge_.set(0.0);
}

namespace {
/// Drops expired retirees; returns how many are still pinned.
std::size_t prune_expired(std::vector<std::weak_ptr<const ServableModel>>* v) {
  std::size_t live = 0;
  auto out = v->begin();
  for (auto& w : *v) {
    if (!w.expired()) {
      *out++ = std::move(w);
      ++live;
    }
  }
  v->erase(out, v->end());
  return live;
}
}  // namespace

void ModelRegistry::install(std::shared_ptr<const ServableModel> model) {
  LCRS_CHECK(model != nullptr && model->complete != nullptr,
             "registry install needs a snapshot with a completion fn");
  LCRS_CHECK(model->version >= 1, "registry install needs version >= 1, got "
                                      << model->version);
  const std::uint32_t id = model->model_id;
  bool replaced = false;
  {
    MutexLock lock(mutex_);
    auto it = models_.find(id);
    if (it != models_.end()) {
      if (model->version <= it->second->version) {
        throw InvalidArgument(
            "model " + std::to_string(id) + " version must increase: have " +
            std::to_string(it->second->version) + ", got " +
            std::to_string(model->version));
      }
      // Retire the incumbent: in-flight holders keep it alive; the weak
      // reference lets live_models() observe the drain finishing.
      retired_.push_back(it->second);
      it->second = std::move(model);
      replaced = true;
    } else {
      models_.emplace(id, std::move(model));
    }
    models_gauge_.set(static_cast<double>(models_.size()));
    live_gauge_.set(
        static_cast<double>(models_.size() + prune_expired(&retired_)));
  }
  if (replaced) swaps_.add();
}

std::shared_ptr<const ServableModel> ModelRegistry::lookup(
    std::uint32_t model_id) const {
  MutexLock lock(mutex_);
  auto it = models_.find(model_id);
  return it != models_.end() ? it->second : nullptr;
}

bool ModelRegistry::evict(std::uint32_t model_id) {
  bool removed = false;
  {
    MutexLock lock(mutex_);
    auto it = models_.find(model_id);
    if (it != models_.end()) {
      retired_.push_back(it->second);
      models_.erase(it);
      removed = true;
    }
    models_gauge_.set(static_cast<double>(models_.size()));
    live_gauge_.set(
        static_cast<double>(models_.size() + prune_expired(&retired_)));
  }
  if (removed) evictions_.add();
  return removed;
}

std::vector<std::shared_ptr<const ServableModel>> ModelRegistry::list() const {
  MutexLock lock(mutex_);
  std::vector<std::shared_ptr<const ServableModel>> out;
  out.reserve(models_.size());
  for (const auto& [id, m] : models_) out.push_back(m);
  return out;
}

std::int64_t ModelRegistry::size() const {
  MutexLock lock(mutex_);
  return static_cast<std::int64_t>(models_.size());
}

std::int64_t ModelRegistry::live_models() {
  MutexLock lock(mutex_);
  const std::size_t live = models_.size() + prune_expired(&retired_);
  live_gauge_.set(static_cast<double>(live));
  return static_cast<std::int64_t>(live);
}

}  // namespace lcrs::edge
