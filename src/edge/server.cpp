#include "edge/server.h"

#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/obs/flight_recorder.h"
#include "common/obs/ops_server.h"
#include "common/obs/trace.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "core/inference.h"
#include "tensor/tensor_ops.h"

namespace lcrs::edge {

CompletionFn serialize_completion(CompletionFn inner) {
  auto mutex = std::make_shared<Mutex>("edge.server.completion");
  return [mutex, inner = std::move(inner)](const Tensor& shared) {
    MutexLock lock(*mutex);
    return inner(shared);
  };
}

BatchCompletionFn per_sample_batch(CompletionFn per_sample) {
  LCRS_CHECK(per_sample != nullptr, "per_sample_batch needs a completion fn");
  return [per_sample = std::move(per_sample)](const Tensor& batch) {
    LCRS_CHECK(batch.rank() >= 1 && batch.dim(0) >= 1,
               "batch completion needs a non-empty outer dimension");
    std::vector<CompleteResponse> out;
    out.reserve(static_cast<std::size_t>(batch.dim(0)));
    for (std::int64_t i = 0; i < batch.dim(0); ++i) {
      out.push_back(per_sample(batch.slice_outer(i, i + 1)));
    }
    return out;
  };
}

BatchCompletionFn main_branch_batch_completion(core::CompositeNetwork& net) {
  // Pack the main-rest weights up front: Linear gets the transposed
  // layout (a batch of k requests streams each weight matrix once
  // instead of k times), Conv2d gets panel-packed GEMM weights plus the
  // batched-im2col eval path. Done here (single-threaded, before any
  // worker runs) so eval forwards stay lock-free.
  net.prepare_edge_inference();
  return [&net](const Tensor& batch) {
    const core::MainBatchCompletion done =
        core::complete_main_batch(net, batch);
    std::vector<CompleteResponse> out;
    const std::int64_t k = batch.dim(0);
    out.reserve(static_cast<std::size_t>(k));
    for (std::int64_t i = 0; i < k; ++i) {
      CompleteResponse r;
      r.label = done.labels[static_cast<std::size_t>(i)];
      // Row i of the batched softmax, kept as [1, num_classes] exactly as
      // the per-sample path would produce it (bit-identical rows).
      r.probabilities = done.probabilities.slice_outer(i, i + 1);
      out.push_back(std::move(r));
    }
    return out;
  };
}

void ServerOptions::validate() const {
  LCRS_CHECK(num_workers >= 1, "ServerOptions.num_workers must be >= 1, got "
                                   << num_workers);
  LCRS_CHECK(max_batch >= 1,
             "ServerOptions.max_batch must be >= 1, got " << max_batch);
  LCRS_CHECK(max_wait_us >= 0.0,
             "ServerOptions.max_wait_us must be >= 0, got " << max_wait_us);
  LCRS_CHECK(ops_port <= 65535,
             "ServerOptions.ops_port must be <= 65535, got " << ops_port);
}

namespace {
std::shared_ptr<ModelRegistry> default_registry(BatchCompletionFn complete) {
  LCRS_CHECK(complete != nullptr, "edge server needs a completion fn");
  auto registry = std::make_shared<ModelRegistry>();
  registry->install(
      ServableModel::from_fn(0, 1, "default", std::move(complete)));
  return registry;
}
}  // namespace

EdgeServer::EdgeServer(std::uint16_t port, CompletionFn complete,
                       ServerOptions options)
    : EdgeServer(port, per_sample_batch(std::move(complete)),
                 std::move(options)) {}

EdgeServer::EdgeServer(std::uint16_t port, BatchCompletionFn complete,
                       ServerOptions options)
    : EdgeServer(port, default_registry(std::move(complete)),
                 std::move(options)) {}

EdgeServer::EdgeServer(std::uint16_t port,
                       std::shared_ptr<ModelRegistry> registry,
                       ServerOptions options)
    : listener_(port), registry_(std::move(registry)), opts_(options) {
  LCRS_CHECK(registry_ != nullptr, "edge server needs a model registry");
  opts_.validate();
  // Process/config gauges: registered up front so the very first scrape
  // (or any /statusz probe) already sees the serving shape.
  obs::register_process_gauges();
  obs::MirroredGauge(metrics_, obs::names::kServerWorkerPoolSize)
      .set(opts_.direct_execution ? 0.0
                                  : static_cast<double>(opts_.num_workers));
  obs::MirroredGauge(metrics_, obs::names::kServerMaxBatch)
      .set(opts_.direct_execution ? 1.0
                                  : static_cast<double>(opts_.max_batch));
  ready_gauge_.set(1.0);
  if (!opts_.direct_execution) {
    workers_.reserve(static_cast<std::size_t>(opts_.num_workers));
    for (int i = 0; i < opts_.num_workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  if (opts_.ops_port >= 0) {
    // The ops plane implies tail sampling: every request trace becomes
    // explorable at /tracez while this server is alive.
    flight_prev_ = obs::flight_recording_enabled();
    obs::set_flight_recording_enabled(true);
    obs::OpsHooks hooks;
    hooks.ready = [this] { return ready(); };
    hooks.status_json = [this] { return status_json(); };
    ops_ = std::make_unique<obs::OpsServer>(
        static_cast<std::uint16_t>(opts_.ops_port), std::move(hooks));
    LCRS_DEBUG("ops plane listening on 127.0.0.1:" << ops_->port());
  }
  LCRS_DEBUG("edge server listening on 127.0.0.1:"
             << listener_.port() << " ("
             << (opts_.direct_execution
                     ? "direct execution"
                     : std::to_string(opts_.num_workers) + " workers, max "
                           "batch " + std::to_string(opts_.max_batch))
             << ")");
}

EdgeServer::~EdgeServer() { stop(); }

std::uint16_t EdgeServer::ops_port() const {
  return ops_ != nullptr ? ops_->port() : 0;
}

void EdgeServer::set_ready(bool ready) {
  ready_.store(ready);
  ready_gauge_.set(ready ? 1.0 : 0.0);
}

std::string EdgeServer::status_json() const {
  std::ostringstream os;
  os << "{\"uptime_seconds\":" << obs::process_uptime_seconds()
     << ",\"simd_level\":\"" << simd::level_name(simd::active_level())
#ifdef NDEBUG
     << "\",\"build\":\"release"
#else
     << "\",\"build\":\"debug"
#endif
     << "\",\"compiler\":\"" << obs::json_escape(__VERSION__)
     << "\",\"port\":" << listener_.port()
     << ",\"ops_port\":" << (ops_ != nullptr ? ops_->port() : 0)
     << ",\"ready\":" << (ready() ? "true" : "false")
     << ",\"direct_execution\":"
     << (opts_.direct_execution ? "true" : "false")
     << ",\"num_workers\":" << opts_.num_workers
     << ",\"max_batch\":" << opts_.max_batch
     << ",\"max_wait_us\":" << opts_.max_wait_us
     << ",\"queue_capacity\":" << opts_.queue_capacity
     << ",\"busy_retry_after_ms\":" << opts_.busy_retry_after_ms
     << ",\"requests_served\":" << requests_.value()
     << ",\"connections_accepted\":" << accepted_.value()
     << ",\"rejected_busy\":" << rejected_busy_.value()
     << ",\"rejected_unknown_model\":" << rejected_model_.value()
     << ",\"queue_depth\":" << queue_depth();
  os << ",\"models\":[";
  bool first = true;
  for (const auto& m : registry_->list()) {
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << m->model_id << ",\"version\":" << m->version
       << ",\"name\":\"" << obs::json_escape(m->name) << "\"}";
  }
  os << "],\"models_live\":" << registry_->live_models() << '}';
  return os.str();
}

void EdgeServer::request_stop() {
  set_ready(false);  // eject from LB rotation before tearing anything down
  stopping_.store(true);
  listener_.shutdown_now();
  // Wake every connection thread blocked in recv_frame: shutdown() makes
  // the pending recv return EOF without racing the thread for the fd (the
  // fd stays open until the Connection record is destroyed).
  {
    MutexLock lock(conns_mutex_);
    for (auto& c : connections_) {
      if (c.sock) c.sock->shutdown_now();
    }
  }
  // Flush undispatched requests and wake the workers. Admission re-checks
  // stopping_ under queue_mutex_, so nothing can slip into a queue
  // after this swap: any enqueue ordered after it observes stopping_ and
  // backs out. Slots are failed *outside* the lock -- queue_mutex_ stays
  // a leaf that is never held while touching a slot mutex.
  std::map<std::uint32_t, std::deque<PendingRequest>> flushed;
  std::size_t flushed_total = 0;
  {
    MutexLock lock(queue_mutex_);
    flushed.swap(queues_);
    flushed_total = queued_total_;
    queued_total_ = 0;
    queue_cv_.notify_all();
  }
  if (flushed_total > 0) {
    queue_depth_.add(-static_cast<double>(flushed_total));
  }
  for (auto& [id, q] : flushed) {
    for (auto& r : q) {
      fulfill(*r.slot, false, CompleteResponse{}, "server stopping");
    }
  }
}

void EdgeServer::stop() {
  // Not gated on stopping_: a client's kShutdown frame sets that flag from
  // a connection thread, and stop() must still join everything after it.
  MutexLock stop_lock(stop_mutex_);
  request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  // Workers drain to "stopping and queue empty" and exit; every request
  // they still held has been fulfilled by then, so no connection thread
  // is left waiting on a slot.
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Join without holding conns_mutex_: a connection thread that received
  // kShutdown may itself be inside request_stop() waiting for the lock.
  std::vector<Connection> conns;
  {
    MutexLock lock(conns_mutex_);
    conns.swap(connections_);
  }
  for (auto& c : conns) {
    if (c.thread.joinable()) c.thread.join();
  }
  // The ops plane outlives the serving path inside stop() so /readyz
  // reports "draining" for as long as requests can still be in flight;
  // it goes down last.
  if (ops_ != nullptr) {
    ops_->stop();
    obs::set_flight_recording_enabled(flight_prev_);
  }
}

std::int64_t EdgeServer::queue_depth() const {
  MutexLock lock(queue_mutex_);
  return static_cast<std::int64_t>(queued_total_);
}

ServerStats EdgeServer::stats() const {
  ServerStats s;
  s.requests_served = requests_.value();
  s.connections_accepted = accepted_.value();
  s.connection_errors = connection_errors_.value();
  s.rejected_busy = rejected_busy_.value();
  s.rejected_unknown_model = rejected_model_.value();
  s.batches_dispatched = batches_.value();
  s.total_completion_ms = completion_us_.sum() / 1e3;
  return s;
}

void EdgeServer::collect_finished_locked(std::vector<Connection>* out) {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load()) {
      out->push_back(std::move(*it));
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void EdgeServer::accept_loop() {
  while (!stopping_.load()) {
    Socket conn;
    try {
      conn = listener_.accept_one();
    } catch (const IoError& e) {
      if (stopping_.load()) break;
      LCRS_WARN("edge accept failed: " << e.what());
      continue;
    }
    if (!conn.valid()) break;  // listener shut down
    accepted_.add();

    auto done = std::make_shared<std::atomic<bool>>(false);
    // Socket is move-only and std::function must be copyable, so the
    // connection lives in a shared_ptr; stop() uses the same pointer to
    // shut the socket down underneath a blocked recv.
    auto conn_ptr = std::make_shared<Socket>(std::move(conn));
    std::thread handler([this, conn_ptr, done] {
      active_connections_.add(1.0);
      try {
        serve_connection(*conn_ptr);
      } catch (const Error& e) {
        // A broken client connection must not take the server down.
        connection_errors_.add();
        LCRS_WARN("edge connection error: " << e.what());
      }
      active_connections_.add(-1.0);
      done->store(true);
    });

    std::vector<Connection> finished;
    {
      MutexLock lock(conns_mutex_);
      collect_finished_locked(&finished);
      // If stop() ran between accept and here it has already swept the
      // list; shut this socket down now so the handler exits promptly.
      if (stopping_.load()) conn_ptr->shutdown_now();
      connections_.push_back(
          Connection{std::move(handler), conn_ptr, std::move(done)});
    }
    // Join finished threads outside the lock: holding conns_mutex_
    // across a join would block request_stop() (and with it, shutdown
    // convergence) on an unrelated thread's exit path.
    for (auto& c : finished) {
      if (c.thread.joinable()) c.thread.join();
    }
  }
}

void EdgeServer::serve_connection(Socket& conn) {
  while (!stopping_.load()) {
    std::optional<Frame> frame = conn.recv_frame();
    if (!frame.has_value()) return;  // client hung up (or we shut down)
    switch (frame->type) {
      case MsgType::kPing:
        conn.send_frame(Frame{MsgType::kPong, {}});
        break;
      case MsgType::kCompleteRequest: {
        // The trace id minted by BrowserClient rides the v2/v3 frame
        // header; tagging the server-side spans with it (and echoing it
        // in the response) is what stitches both halves into one
        // timeline.
        const std::uint64_t trace_id = frame->trace_id;
        // Resolve the model snapshot before deserializing: an
        // unroutable request should be rejected for the price of a map
        // lookup, and the snapshot resolved here is the one that
        // answers the request no matter what the registry does next.
        std::shared_ptr<const ServableModel> model =
            registry_->lookup(frame->model_id);
        if (model == nullptr) {
          rejected_model_.add();
          obs::flight_record_finish(trace_id, false,
                                    "edge.model_unavailable");
          conn.send_frame(Frame{MsgType::kModelUnavailable,
                                make_model_unavailable(frame->model_id),
                                trace_id, frame->model_id});
          break;
        }
        Tensor shared;
        {
          obs::Span span(trace_id, obs::names::kSpanEdgeDeserialize);
          shared = parse_complete_request(frame->payload);
        }
        if (opts_.direct_execution) {
          serve_request_direct(conn, shared, trace_id, std::move(model));
        } else {
          serve_request_queued(conn, std::move(shared), trace_id,
                               std::move(model));
        }
        break;
      }
      case MsgType::kShutdown:
        // Close the listener AND every live peer, so stop() converges
        // instead of waiting for other clients to hang up on their own.
        request_stop();
        return;
      default:
        throw ParseError("unexpected frame type at server");
    }
  }
}

void EdgeServer::serve_request_direct(
    Socket& conn, const Tensor& shared, std::uint64_t trace_id,
    std::shared_ptr<const ServableModel> model) {
  const std::uint32_t model_id = model->model_id;
  Stopwatch watch;
  std::vector<CompleteResponse> resp;
  {
    obs::Span span(trace_id, obs::names::kSpanEdgeComplete);
    resp = model->complete(shared);
  }
  completion_us_.record(watch.micros());
  LCRS_CHECK(resp.size() == 1,
             "direct completion returned " << resp.size() << " responses");
  batch_size_.record(1.0);
  batches_.add();
  {
    obs::Span span(trace_id, obs::names::kSpanEdgeSerialize);
    conn.send_frame(Frame{MsgType::kCompleteResponse,
                          make_complete_response(resp.front()), trace_id,
                          model_id});
  }
  requests_.add();
  obs::MirroredCounter(metrics_,
                       obs::names::model_metric(model_id, "requests"))
      .add();
  obs::flight_record_finish(trace_id, false, "edge.served");
}

void EdgeServer::serve_request_queued(
    Socket& conn, Tensor shared, std::uint64_t trace_id,
    std::shared_ptr<const ServableModel> model) {
  const std::uint32_t model_id = model->model_id;
  auto slot = std::make_shared<ResponseSlot>();
  enum class Admission { kAdmitted, kFull, kStopping };
  Admission admission = Admission::kAdmitted;
  {
    MutexLock lock(queue_mutex_);
    if (stopping_.load()) {
      // request_stop() has flushed (or is flushing) the queue; anything
      // enqueued now would hang forever. The peer socket is already shut
      // down, so close quietly and let the client's retry path handle it.
      admission = Admission::kStopping;
    } else if (opts_.queue_capacity > 0 &&
               queued_total_ >= opts_.queue_capacity) {
      admission = Admission::kFull;
    } else {
      queues_[model_id].push_back(PendingRequest{
          std::move(shared), trace_id, std::move(model), Stopwatch(), slot});
      ++queued_total_;
      queue_depth_.add(1.0);
      queue_cv_.notify_one();
    }
  }
  if (admission == Admission::kStopping) return;
  if (admission == Admission::kFull) {
    // Backpressure: answer kBusy instead of buffering without bound. The
    // connection stays healthy and in sync -- the client may retry on it.
    rejected_busy_.add();
    // Tagged but not flagged as an error: the client retries under the
    // same trace id and usually lands, so the merged trace reads
    // "edge.busy,...,edge.served".
    obs::flight_record_finish(trace_id, false, "edge.busy");
    conn.send_frame(Frame{MsgType::kBusy,
                          make_busy_reply(opts_.busy_retry_after_ms),
                          trace_id});
    return;
  }

  CompleteResponse response;
  bool completed_ok = false;
  std::string completion_error;
  {
    MutexLock lock(slot->mutex);
    while (!slot->ready) slot->cv.wait(slot->mutex);
    completed_ok = slot->ok;
    if (completed_ok) {
      response = std::move(slot->response);
    } else {
      completion_error = slot->error;
    }
  }
  if (!completed_ok) {
    // Recorded outside the slot lock: the recorder mutex stays a leaf
    // acquired with no other lock held.
    obs::flight_record_finish(trace_id, true,
                              "edge.completion_failed: " + completion_error);
    throw IoError("edge completion failed: " + completion_error);
  }
  {
    obs::Span span(trace_id, obs::names::kSpanEdgeSerialize);
    conn.send_frame(Frame{MsgType::kCompleteResponse,
                          make_complete_response(response), trace_id,
                          model_id});
  }
  requests_.add();
  obs::MirroredCounter(metrics_,
                       obs::names::model_metric(model_id, "requests"))
      .add();
  obs::flight_record_finish(trace_id, false, "edge.served");
}

void EdgeServer::worker_loop() {
  while (true) {
    std::vector<PendingRequest> batch = next_batch();
    if (batch.empty()) return;  // stopping and drained
    dispatch_batch(&batch);
  }
}

std::vector<EdgeServer::PendingRequest> EdgeServer::next_batch() {
  std::vector<PendingRequest> batch;
  MutexLock lock(queue_mutex_);
  while (queued_total_ == 0 && !stopping_.load()) queue_cv_.wait(queue_mutex_);
  if (queued_total_ == 0) return batch;

  // Round-robin across model queues: start at the first id after the
  // cursor, wrapping, so a hot model cannot starve the others. Empty
  // deques stay in the map (bounded by the number of distinct ids seen),
  // so the scan is O(#models).
  auto it = queues_.upper_bound(rr_cursor_);
  while (it != queues_.end() && it->second.empty()) ++it;
  if (it == queues_.end()) {
    it = queues_.begin();
    while (it->second.empty()) ++it;  // queued_total_ > 0 guarantees one
  }
  rr_cursor_ = it->first;
  std::deque<PendingRequest>& queue = it->second;

  batch.push_back(std::move(queue.front()));
  queue.pop_front();
  --queued_total_;
  // Coalesce same-shaped followers *served by the same snapshot*: a
  // pointer-unequal snapshot is a different model generation, and mixing
  // generations in one forward would break the per-version bit-exactness
  // contract. With max_wait_us == 0 the batch is cut the instant the
  // queue drains: an unloaded server adds zero latency, and batches only
  // form from requests that were already waiting. A positive window lets
  // a worker linger for stragglers.
  const bool may_wait = opts_.max_wait_us > 0.0;
  const Deadline window = may_wait
                              ? Deadline::after_ms(opts_.max_wait_us / 1e3)
                              : Deadline();
  while (static_cast<int>(batch.size()) < opts_.max_batch) {
    if (!queue.empty()) {
      if (!queue.front().shared.same_shape(batch.front().shared)) break;
      if (queue.front().model.get() != batch.front().model.get()) break;
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
      --queued_total_;
      continue;
    }
    if (!may_wait || stopping_.load() || window.expired()) break;
    // Early cut: a request/response client blocks until its reply, so each
    // live connection contributes at most one outstanding request. Once
    // every connection is accounted for -- in this batch or still queued
    // (for any model) -- no straggler can arrive until a response goes
    // out, and lingering for the rest of the window would be pure added
    // latency. (Pipelined clients just get their extras coalesced into
    // the next batch.)
    if (static_cast<double>(batch.size() + queued_total_) >=
        active_connections_.value()) {
      break;
    }
    const auto wait_us =
        static_cast<std::int64_t>(window.remaining_ms() * 1e3) + 1;
    queue_cv_.wait_for_us(queue_mutex_, wait_us);
  }
  queue_depth_.add(-static_cast<double>(batch.size()));
  return batch;
}

void EdgeServer::dispatch_batch(std::vector<PendingRequest>* batch) {
  const std::size_t k = batch->size();
  batch_size_.record(static_cast<double>(k));
  for (const auto& r : *batch) {
    queue_wait_us_.record(r.queued.micros());
  }
  // One kSpanEdgeComplete span per member, tagged with that member's own
  // trace id: batching must not blur per-request timelines. Destroyed
  // (closed) together right after the batched forward finishes.
  std::vector<std::unique_ptr<obs::Span>> spans;
  spans.reserve(k);
  for (const auto& r : *batch) {
    spans.push_back(
        std::make_unique<obs::Span>(r.trace_id, obs::names::kSpanEdgeComplete));
  }

  // next_batch guarantees every member holds the same snapshot, so the
  // batch dispatches against exactly one model generation; the strong
  // reference in the batch keeps that generation alive even if the
  // registry swapped it out while the batch waited.
  const ServableModel& model = *batch->front().model;
  Stopwatch watch;
  std::vector<CompleteResponse> responses;
  bool ok = true;
  std::string error;
  try {
    if (k == 1) {
      responses = model.complete(batch->front().shared);
    } else {
      std::vector<Tensor> parts;
      parts.reserve(k);
      for (auto& r : *batch) parts.push_back(std::move(r.shared));
      responses = model.complete(stack_outer(parts));
    }
    if (ok && responses.size() != k) {
      ok = false;
      error = "batch completion returned " + std::to_string(responses.size()) +
              " responses for " + std::to_string(k) + " requests";
    }
  } catch (const Error& e) {
    ok = false;
    error = e.what();
  }
  completion_us_.record(watch.micros());
  spans.clear();
  batches_.add();

  for (std::size_t i = 0; i < k; ++i) {
    fulfill(*(*batch)[i].slot, ok,
            ok ? std::move(responses[i]) : CompleteResponse{}, error);
  }
}

void EdgeServer::fulfill(ResponseSlot& slot, bool ok,
                         CompleteResponse response, const std::string& error) {
  {
    MutexLock lock(slot.mutex);
    slot.ready = true;
    slot.ok = ok;
    slot.response = std::move(response);
    slot.error = error;
  }
  slot.cv.notify_one();
}

}  // namespace lcrs::edge
