#include "edge/server.h"

#include <memory>

#include "common/logging.h"
#include "common/obs/trace.h"
#include "common/stopwatch.h"

namespace lcrs::edge {

CompletionFn serialize_completion(CompletionFn inner) {
  auto mutex = std::make_shared<Mutex>("edge.server.completion");
  return [mutex, inner = std::move(inner)](const Tensor& shared) {
    MutexLock lock(*mutex);
    return inner(shared);
  };
}

EdgeServer::EdgeServer(std::uint16_t port, CompletionFn complete)
    : listener_(port), complete_(std::move(complete)) {
  LCRS_CHECK(complete_ != nullptr, "edge server needs a completion fn");
  acceptor_ = std::thread([this] { accept_loop(); });
  LCRS_DEBUG("edge server listening on 127.0.0.1:" << listener_.port());
}

EdgeServer::~EdgeServer() { stop(); }

void EdgeServer::request_stop() {
  stopping_.store(true);
  listener_.shutdown_now();
  // Wake every connection thread blocked in recv_frame: shutdown() makes
  // the pending recv return EOF without racing the thread for the fd (the
  // fd stays open until the Connection record is destroyed).
  MutexLock lock(conns_mutex_);
  for (auto& c : connections_) {
    if (c.sock) c.sock->shutdown_now();
  }
}

void EdgeServer::stop() {
  // Not gated on stopping_: a client's kShutdown frame sets that flag from
  // a connection thread, and stop() must still join everything after it.
  MutexLock stop_lock(stop_mutex_);
  request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  // Join without holding conns_mutex_: a connection thread that received
  // kShutdown may itself be inside request_stop() waiting for the lock.
  std::vector<Connection> conns;
  {
    MutexLock lock(conns_mutex_);
    conns.swap(connections_);
  }
  for (auto& c : conns) {
    if (c.thread.joinable()) c.thread.join();
  }
}

ServerStats EdgeServer::stats() const {
  ServerStats s;
  s.requests_served = requests_.value();
  s.connections_accepted = accepted_.value();
  s.connection_errors = connection_errors_.value();
  s.total_completion_ms = completion_us_.sum() / 1e3;
  return s;
}

void EdgeServer::collect_finished_locked(std::vector<Connection>* out) {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load()) {
      out->push_back(std::move(*it));
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void EdgeServer::accept_loop() {
  while (!stopping_.load()) {
    Socket conn;
    try {
      conn = listener_.accept_one();
    } catch (const IoError& e) {
      if (stopping_.load()) break;
      LCRS_WARN("edge accept failed: " << e.what());
      continue;
    }
    if (!conn.valid()) break;  // listener shut down
    accepted_.add();

    auto done = std::make_shared<std::atomic<bool>>(false);
    // Socket is move-only and std::function must be copyable, so the
    // connection lives in a shared_ptr; stop() uses the same pointer to
    // shut the socket down underneath a blocked recv.
    auto conn_ptr = std::make_shared<Socket>(std::move(conn));
    std::thread worker([this, conn_ptr, done] {
      active_connections_.add(1.0);
      try {
        serve_connection(*conn_ptr);
      } catch (const Error& e) {
        // A broken client connection must not take the server down.
        connection_errors_.add();
        LCRS_WARN("edge connection error: " << e.what());
      }
      active_connections_.add(-1.0);
      done->store(true);
    });

    std::vector<Connection> finished;
    {
      MutexLock lock(conns_mutex_);
      collect_finished_locked(&finished);
      // If stop() ran between accept and here it has already swept the
      // list; shut this socket down now so the worker exits promptly.
      if (stopping_.load()) conn_ptr->shutdown_now();
      connections_.push_back(
          Connection{std::move(worker), conn_ptr, std::move(done)});
    }
    // Join finished threads outside the lock: holding conns_mutex_
    // across a join would block request_stop() (and with it, shutdown
    // convergence) on an unrelated thread's exit path.
    for (auto& c : finished) {
      if (c.thread.joinable()) c.thread.join();
    }
  }
}

void EdgeServer::serve_connection(Socket& conn) {
  while (!stopping_.load()) {
    std::optional<Frame> frame = conn.recv_frame();
    if (!frame.has_value()) return;  // client hung up (or we shut down)
    switch (frame->type) {
      case MsgType::kPing:
        conn.send_frame(Frame{MsgType::kPong, {}});
        break;
      case MsgType::kCompleteRequest: {
        // The trace id minted by BrowserClient rides the v2 frame header;
        // tagging the server-side spans with it (and echoing it in the
        // response) is what stitches both halves into one timeline.
        const std::uint64_t trace_id = frame->trace_id;
        Tensor shared;
        {
          obs::Span span(trace_id, obs::names::kSpanEdgeDeserialize);
          shared = parse_complete_request(frame->payload);
        }
        Stopwatch watch;
        CompleteResponse resp;
        {
          obs::Span span(trace_id, obs::names::kSpanEdgeComplete);
          resp = complete_(shared);
        }
        completion_us_.record(watch.micros());
        {
          obs::Span span(trace_id, obs::names::kSpanEdgeSerialize);
          conn.send_frame(Frame{MsgType::kCompleteResponse,
                                make_complete_response(resp), trace_id});
        }
        requests_.add();
        break;
      }
      case MsgType::kShutdown:
        // Close the listener AND every live peer, so stop() converges
        // instead of waiting for other clients to hang up on their own.
        request_stop();
        return;
      default:
        throw ParseError("unexpected frame type at server");
    }
  }
}

}  // namespace lcrs::edge
