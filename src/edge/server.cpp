#include "edge/server.h"

#include <memory>

#include "common/logging.h"

namespace lcrs::edge {

CompletionFn serialize_completion(CompletionFn inner) {
  auto mutex = std::make_shared<std::mutex>();
  return [mutex, inner = std::move(inner)](const Tensor& shared) {
    std::lock_guard<std::mutex> lock(*mutex);
    return inner(shared);
  };
}

EdgeServer::EdgeServer(std::uint16_t port, CompletionFn complete)
    : listener_(port), complete_(std::move(complete)) {
  LCRS_CHECK(complete_ != nullptr, "edge server needs a completion fn");
  acceptor_ = std::thread([this] { accept_loop(); });
  LCRS_DEBUG("edge server listening on 127.0.0.1:" << listener_.port());
}

EdgeServer::~EdgeServer() { stop(); }

void EdgeServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown_now();
  if (acceptor_.joinable()) acceptor_.join();
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto& c : connections_) {
    if (c.thread.joinable()) c.thread.join();
  }
  connections_.clear();
}

void EdgeServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void EdgeServer::accept_loop() {
  while (!stopping_.load()) {
    Socket conn;
    try {
      conn = listener_.accept_one();
    } catch (const IoError& e) {
      if (stopping_.load()) break;
      LCRS_WARN("edge accept failed: " << e.what());
      continue;
    }
    if (!conn.valid()) break;  // listener shut down
    ++connections_accepted_;

    auto done = std::make_shared<std::atomic<bool>>(false);
    // Socket is move-only and std::function must be copyable, so hand the
    // connection to the thread through a shared_ptr.
    auto conn_ptr = std::make_shared<Socket>(std::move(conn));
    std::thread worker([this, conn_ptr, done] {
      try {
        serve_connection(std::move(*conn_ptr));
      } catch (const Error& e) {
        // A broken client connection must not take the server down.
        LCRS_WARN("edge connection error: " << e.what());
      }
      done->store(true);
    });

    std::lock_guard<std::mutex> lock(conns_mutex_);
    reap_finished_locked();
    connections_.push_back(Connection{std::move(worker), std::move(done)});
  }
}

void EdgeServer::serve_connection(Socket conn) {
  while (!stopping_.load()) {
    std::optional<Frame> frame = conn.recv_frame();
    if (!frame.has_value()) return;  // client hung up
    switch (frame->type) {
      case MsgType::kPing:
        conn.send_frame(Frame{MsgType::kPong, {}});
        break;
      case MsgType::kCompleteRequest: {
        const Tensor shared = parse_complete_request(frame->payload);
        const CompleteResponse resp = complete_(shared);
        conn.send_frame(
            Frame{MsgType::kCompleteResponse, make_complete_response(resp)});
        ++requests_served_;
        break;
      }
      case MsgType::kShutdown:
        stopping_.store(true);
        listener_.shutdown_now();
        return;
      default:
        throw ParseError("unexpected frame type at server");
    }
  }
}

}  // namespace lcrs::edge
