#include "edge/protocol.h"

#include "common/bytes.h"
#include "tensor/serialize.h"

namespace lcrs::edge {

namespace {
constexpr std::uint32_t kFrameMagic = 0x4c435246;    // "LCRF" (v1)
constexpr std::uint32_t kFrameMagicV2 = 0x4c435632;  // "LCV2" (traced)
constexpr std::uint32_t kFrameMagicV3 = 0x4c435633;  // "LCV3" (model-routed)

MsgType check_type(std::uint8_t type) {
  if (type > static_cast<std::uint8_t>(MsgType::kModelUnavailable)) {
    throw ParseError("unknown frame type");
  }
  return static_cast<MsgType>(type);
}
}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  // The wire carries a 32-bit payload length; a larger payload must be
  // rejected here, not silently truncated into a self-inconsistent frame.
  if (frame.payload.size() > UINT32_MAX) {
    throw InvalidArgument("frame payload of " +
                          std::to_string(frame.payload.size()) +
                          " bytes does not fit the u32 length field");
  }
  ByteWriter w;
  if (frame.model_id != 0) {
    // Only v3 carries a model id; trace_id may legitimately be 0 here.
    w.write_u32(kFrameMagicV3);
    w.write_u8(static_cast<std::uint8_t>(frame.type));
    w.write_u32(frame.model_id);
    w.write_u64(frame.trace_id);
  } else if (frame.trace_id == 0) {
    // Untraced default-model frames stay byte-identical to the v1 wire.
    w.write_u32(kFrameMagic);
    w.write_u8(static_cast<std::uint8_t>(frame.type));
  } else {
    w.write_u32(kFrameMagicV2);
    w.write_u8(static_cast<std::uint8_t>(frame.type));
    w.write_u64(frame.trace_id);
  }
  w.write_u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.write_bytes(frame.payload.data(), frame.payload.size());
  return w.take();
}

Frame decode_frame(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint32_t magic = r.read_u32();
  Frame f;
  if (magic == kFrameMagic) {
    f.type = check_type(r.read_u8());
  } else if (magic == kFrameMagicV2) {
    f.type = check_type(r.read_u8());
    f.trace_id = r.read_u64();
    if (f.trace_id == 0) throw ParseError("v2 frame with zero trace id");
  } else if (magic == kFrameMagicV3) {
    f.type = check_type(r.read_u8());
    f.model_id = r.read_u32();
    f.trace_id = r.read_u64();
    if (f.model_id == 0) throw ParseError("v3 frame with zero model id");
  } else {
    throw ParseError("bad frame magic");
  }
  const std::uint32_t size = r.read_u32();
  // Validate before allocating: corrupt length fields must not OOM.
  if (size > r.remaining()) throw ParseError("frame payload truncated");
  f.payload.resize(size);
  r.read_bytes(f.payload.data(), size);
  if (!r.at_end()) throw ParseError("trailing bytes after frame");
  return f;
}

int frame_header_version(const std::uint8_t* prefix) {
  ByteReader r(prefix, sizeof(std::uint32_t));
  const std::uint32_t magic = r.read_u32();
  if (magic == kFrameMagic) return 1;
  if (magic == kFrameMagicV2) return 2;
  if (magic == kFrameMagicV3) return 3;
  throw ParseError("bad frame magic");
}

std::uint32_t parse_frame_header(const std::uint8_t* header, MsgType* type) {
  ByteReader r(header, kFrameHeaderBytes);
  if (r.read_u32() != kFrameMagic) throw ParseError("bad frame magic");
  const MsgType t = check_type(r.read_u8());
  if (type != nullptr) *type = t;
  return r.read_u32();
}

std::uint32_t parse_frame_header_v2(const std::uint8_t* header, MsgType* type,
                                    std::uint64_t* trace_id) {
  ByteReader r(header, kFrameHeaderBytesV2);
  if (r.read_u32() != kFrameMagicV2) throw ParseError("bad frame magic");
  const MsgType t = check_type(r.read_u8());
  const std::uint64_t id = r.read_u64();
  if (id == 0) throw ParseError("v2 frame with zero trace id");
  if (type != nullptr) *type = t;
  if (trace_id != nullptr) *trace_id = id;
  return r.read_u32();
}

std::uint32_t parse_frame_header_v3(const std::uint8_t* header, MsgType* type,
                                    std::uint32_t* model_id,
                                    std::uint64_t* trace_id) {
  ByteReader r(header, kFrameHeaderBytesV3);
  if (r.read_u32() != kFrameMagicV3) throw ParseError("bad frame magic");
  const MsgType t = check_type(r.read_u8());
  const std::uint32_t model = r.read_u32();
  const std::uint64_t id = r.read_u64();
  if (model == 0) throw ParseError("v3 frame with zero model id");
  if (type != nullptr) *type = t;
  if (model_id != nullptr) *model_id = model;
  if (trace_id != nullptr) *trace_id = id;
  return r.read_u32();
}

std::vector<std::uint8_t> make_complete_request(const Tensor& shared) {
  ByteWriter w;
  write_tensor(w, shared);
  return w.take();
}

Tensor parse_complete_request(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  return read_tensor(r);
}

std::vector<std::uint8_t> make_complete_response(const CompleteResponse& r) {
  ByteWriter w;
  w.write_i64(r.label);
  write_tensor(w, r.probabilities);
  return w.take();
}

CompleteResponse parse_complete_response(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  CompleteResponse resp;
  resp.label = r.read_i64();
  resp.probabilities = read_tensor(r);
  return resp;
}

std::vector<std::uint8_t> make_busy_reply(std::uint32_t retry_after_ms) {
  ByteWriter w;
  w.write_u32(retry_after_ms);
  return w.take();
}

std::uint32_t parse_busy_reply(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  const std::uint32_t retry_after_ms = r.read_u32();
  if (!r.at_end()) throw ParseError("trailing bytes after busy reply");
  return retry_after_ms;
}

std::vector<std::uint8_t> make_model_unavailable(std::uint32_t model_id) {
  ByteWriter w;
  w.write_u32(model_id);
  return w.take();
}

std::uint32_t parse_model_unavailable(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  const std::uint32_t model_id = r.read_u32();
  if (!r.at_end()) {
    throw ParseError("trailing bytes after model-unavailable reply");
  }
  return model_id;
}

}  // namespace lcrs::edge
