#include "edge/protocol.h"

#include "common/bytes.h"
#include "tensor/serialize.h"

namespace lcrs::edge {

namespace {
constexpr std::uint32_t kFrameMagic = 0x4c435246;  // "LCRF"
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  ByteWriter w;
  w.write_u32(kFrameMagic);
  w.write_u8(static_cast<std::uint8_t>(frame.type));
  w.write_u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.write_bytes(frame.payload.data(), frame.payload.size());
  return w.take();
}

Frame decode_frame(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.read_u32() != kFrameMagic) throw ParseError("bad frame magic");
  Frame f;
  const std::uint8_t type = r.read_u8();
  if (type > static_cast<std::uint8_t>(MsgType::kShutdown)) {
    throw ParseError("unknown frame type");
  }
  f.type = static_cast<MsgType>(type);
  const std::uint32_t size = r.read_u32();
  // Validate before allocating: corrupt length fields must not OOM.
  if (size > r.remaining()) throw ParseError("frame payload truncated");
  f.payload.resize(size);
  r.read_bytes(f.payload.data(), size);
  if (!r.at_end()) throw ParseError("trailing bytes after frame");
  return f;
}

std::uint32_t parse_frame_header(const std::uint8_t* header, MsgType* type) {
  ByteReader r(header, kFrameHeaderBytes);
  if (r.read_u32() != kFrameMagic) throw ParseError("bad frame magic");
  const std::uint8_t t = r.read_u8();
  if (t > static_cast<std::uint8_t>(MsgType::kShutdown)) {
    throw ParseError("unknown frame type");
  }
  if (type != nullptr) *type = static_cast<MsgType>(t);
  return r.read_u32();
}

std::vector<std::uint8_t> make_complete_request(const Tensor& shared) {
  ByteWriter w;
  write_tensor(w, shared);
  return w.take();
}

Tensor parse_complete_request(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  return read_tensor(r);
}

std::vector<std::uint8_t> make_complete_response(const CompleteResponse& r) {
  ByteWriter w;
  w.write_i64(r.label);
  write_tensor(w, r.probabilities);
  return w.take();
}

CompleteResponse parse_complete_response(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  CompleteResponse resp;
  resp.label = r.read_i64();
  resp.probabilities = read_tensor(r);
  return resp;
}

}  // namespace lcrs::edge
