// Wire protocol between the browser client and the edge server.
//
// Length-prefixed binary frames over a byte stream. Three header layouts
// coexist on the wire, distinguished by magic:
//
//   v1: [u32 magic "LCRF"][u8 type][u32 payload_size][payload]
//   v2: [u32 magic "LCV2"][u8 type][u64 trace_id][u32 payload_size][payload]
//   v3: [u32 magic "LCV3"][u8 type][u32 model_id][u64 trace_id]
//       [u32 payload_size][payload]
//
// v2 adds an optional 64-bit trace id so one request's client-side and
// edge-side spans stitch into a single timeline (common/obs/trace.h).
// v3 adds a 32-bit model id that routes the request to one entry of the
// server's ModelRegistry (edge/model_registry.h).
//
// Encoding is canonical: the smallest header that carries the frame's
// non-default fields is used. model_id != 0 forces v3 (trace_id may then
// be 0); otherwise trace_id != 0 selects v2; otherwise v1. Decoding
// rejects non-canonical frames (v2 with zero trace id, v3 with zero
// model id), so decode(bytes) -> encode reproduces the input byte-exactly
// -- the fuzzer's round-trip oracle depends on this. Untraced
// default-model traffic therefore stays byte-identical to the seed
// protocol and old peers keep decoding it.
//
// All versions share the first 9 bytes' shape ([u32][u8][u32...]), so a
// streaming receiver reads kFrameHeaderBytes, inspects the magic, and
// reads the version's remaining header bytes before the payload.
//
// Payloads reuse the library's tensor serialization. The same frames are
// used by the real TCP runtime and by the protocol tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "tensor/tensor.h"

namespace lcrs::edge {

enum class MsgType : std::uint8_t {
  kPing = 0,
  kPong = 1,
  kCompleteRequest = 2,   // payload: conv1 feature tensor
  kCompleteResponse = 3,  // payload: i64 label + probability tensor
  kShutdown = 4,
  kBusy = 5,  // payload: u32 retry-after hint (ms); admission rejected
  kModelUnavailable = 6,  // payload: u32 model id; registry has no entry
};

struct Frame {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;
  /// 0 = untraced; nonzero rides a v2 (or v3) header.
  std::uint64_t trace_id = 0;
  /// 0 = default model (v1/v2 header); nonzero rides a v3 header.
  std::uint32_t model_id = 0;
};

/// Encodes a frame into wire bytes using the smallest canonical header:
/// v3 when model_id != 0, else v2 when trace_id != 0, else v1.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decodes one frame of any version; throws ParseError on malformed
/// input. v1 frames decode with trace_id == 0 and model_id == 0.
Frame decode_frame(const std::vector<std::uint8_t>& bytes);

/// v1 frame header size on the wire (magic + type + length). Also the
/// common prefix length a streaming receiver reads before it can tell
/// the versions apart.
constexpr std::size_t kFrameHeaderBytes = 9;

/// v2 frame header size (magic + type + trace id + length).
constexpr std::size_t kFrameHeaderBytesV2 = 17;

/// v3 frame header size (magic + type + model id + trace id + length).
constexpr std::size_t kFrameHeaderBytesV3 = 21;

/// Header version for a kFrameHeaderBytes-long prefix: 1, 2, or 3;
/// throws ParseError on an unknown magic.
int frame_header_version(const std::uint8_t* prefix);

/// Parses a v1 header, returning the payload size; throws on bad magic.
std::uint32_t parse_frame_header(const std::uint8_t* header, MsgType* type);

/// Parses a full v2 header (kFrameHeaderBytesV2 bytes), returning the
/// payload size and filling `type` / `trace_id` when non-null.
std::uint32_t parse_frame_header_v2(const std::uint8_t* header, MsgType* type,
                                    std::uint64_t* trace_id);

/// Parses a full v3 header (kFrameHeaderBytesV3 bytes), returning the
/// payload size and filling `type` / `model_id` / `trace_id` when
/// non-null. Rejects model_id == 0 (non-canonical: that frame must have
/// used a v1/v2 header).
std::uint32_t parse_frame_header_v3(const std::uint8_t* header, MsgType* type,
                                    std::uint32_t* model_id,
                                    std::uint64_t* trace_id);

/// Payload builders / parsers.
std::vector<std::uint8_t> make_complete_request(const Tensor& shared);
Tensor parse_complete_request(const std::vector<std::uint8_t>& payload);

struct CompleteResponse {
  std::int64_t label = -1;
  Tensor probabilities;
};
std::vector<std::uint8_t> make_complete_response(const CompleteResponse& r);
CompleteResponse parse_complete_response(
    const std::vector<std::uint8_t>& payload);

/// kBusy payload: the server's admission queue is full. `retry_after_ms`
/// is a hint, not a contract -- the client may retry sooner (its own
/// backoff/deadline still govern) but should not hammer.
std::vector<std::uint8_t> make_busy_reply(std::uint32_t retry_after_ms);
std::uint32_t parse_busy_reply(const std::vector<std::uint8_t>& payload);

/// kModelUnavailable payload: the requested model id has no registry
/// entry on the server. Echoes the id so a client multiplexing models
/// over one connection can attribute the rejection.
std::vector<std::uint8_t> make_model_unavailable(std::uint32_t model_id);
std::uint32_t parse_model_unavailable(const std::vector<std::uint8_t>& payload);

/// Thrown by the client when the server answers kBusy. Derives from
/// IoError so existing retry/fallback handlers cover it, but is caught
/// separately by BrowserClient: a busy reply means the connection is
/// healthy and in sync (no reconnect needed), only the server is loaded.
class ServerBusyError : public IoError {
 public:
  explicit ServerBusyError(std::uint32_t retry_after_ms_arg)
      : IoError("edge server busy (retry after " +
                std::to_string(retry_after_ms_arg) + " ms)"),
        retry_after_ms(retry_after_ms_arg) {}

  std::uint32_t retry_after_ms;
};

/// Thrown by the client when the server answers kModelUnavailable.
/// Derives from IoError so existing retry/fallback handlers cover it,
/// but is caught separately by BrowserClient: like kBusy, the connection
/// is healthy and in sync (no reconnect needed) -- the model may simply
/// not have finished rolling out yet, so the client backs off and
/// retries within its deadline before falling back locally.
class ModelUnavailableError : public IoError {
 public:
  explicit ModelUnavailableError(std::uint32_t model_id_arg)
      : IoError("edge server has no model " + std::to_string(model_id_arg)),
        model_id(model_id_arg) {}

  std::uint32_t model_id;
};

}  // namespace lcrs::edge
