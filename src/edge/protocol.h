// Wire protocol between the browser client and the edge server.
//
// Length-prefixed binary frames over a byte stream. Two header layouts
// coexist on the wire, distinguished by magic:
//
//   v1: [u32 magic "LCRF"][u8 type][u32 payload_size][payload]
//   v2: [u32 magic "LCV2"][u8 type][u64 trace_id][u32 payload_size][payload]
//
// v2 adds an optional 64-bit trace id so one request's client-side and
// edge-side spans stitch into a single timeline (common/obs/trace.h).
// Encoding emits v1 whenever trace_id == 0, so untraced traffic is
// byte-identical to the seed protocol and old peers keep decoding it.
// Both versions share the first 9 bytes' shape ([u32][u8][u32...]), so a
// streaming receiver reads kFrameHeaderBytes, inspects the magic, and
// reads kFrameHeaderBytesV2 - kFrameHeaderBytes more for v2.
//
// Payloads reuse the library's tensor serialization. The same frames are
// used by the real TCP runtime and by the protocol tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "tensor/tensor.h"

namespace lcrs::edge {

enum class MsgType : std::uint8_t {
  kPing = 0,
  kPong = 1,
  kCompleteRequest = 2,   // payload: conv1 feature tensor
  kCompleteResponse = 3,  // payload: i64 label + probability tensor
  kShutdown = 4,
  kBusy = 5,  // payload: u32 retry-after hint (ms); admission rejected
};

struct Frame {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;
  /// 0 = untraced (encodes as a v1 frame); nonzero rides a v2 header.
  std::uint64_t trace_id = 0;
};

/// Encodes a frame into wire bytes (v1 when trace_id == 0, else v2).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decodes one frame of either version; throws ParseError on malformed
/// input. v1 frames decode with trace_id == 0.
Frame decode_frame(const std::vector<std::uint8_t>& bytes);

/// v1 frame header size on the wire (magic + type + length). Also the
/// common prefix length a streaming receiver reads before it can tell
/// the versions apart.
constexpr std::size_t kFrameHeaderBytes = 9;

/// v2 frame header size (magic + type + trace id + length).
constexpr std::size_t kFrameHeaderBytesV2 = 17;

/// Header version for a kFrameHeaderBytes-long prefix: 1 or 2; throws
/// ParseError on an unknown magic.
int frame_header_version(const std::uint8_t* prefix);

/// Parses a v1 header, returning the payload size; throws on bad magic.
std::uint32_t parse_frame_header(const std::uint8_t* header, MsgType* type);

/// Parses a full v2 header (kFrameHeaderBytesV2 bytes), returning the
/// payload size and filling `type` / `trace_id` when non-null.
std::uint32_t parse_frame_header_v2(const std::uint8_t* header, MsgType* type,
                                    std::uint64_t* trace_id);

/// Payload builders / parsers.
std::vector<std::uint8_t> make_complete_request(const Tensor& shared);
Tensor parse_complete_request(const std::vector<std::uint8_t>& payload);

struct CompleteResponse {
  std::int64_t label = -1;
  Tensor probabilities;
};
std::vector<std::uint8_t> make_complete_response(const CompleteResponse& r);
CompleteResponse parse_complete_response(
    const std::vector<std::uint8_t>& payload);

/// kBusy payload: the server's admission queue is full. `retry_after_ms`
/// is a hint, not a contract -- the client may retry sooner (its own
/// backoff/deadline still govern) but should not hammer.
std::vector<std::uint8_t> make_busy_reply(std::uint32_t retry_after_ms);
std::uint32_t parse_busy_reply(const std::vector<std::uint8_t>& payload);

/// Thrown by the client when the server answers kBusy. Derives from
/// IoError so existing retry/fallback handlers cover it, but is caught
/// separately by BrowserClient: a busy reply means the connection is
/// healthy and in sync (no reconnect needed), only the server is loaded.
class ServerBusyError : public IoError {
 public:
  explicit ServerBusyError(std::uint32_t retry_after_ms_arg)
      : IoError("edge server busy (retry after " +
                std::to_string(retry_after_ms_arg) + " ms)"),
        retry_after_ms(retry_after_ms_arg) {}

  std::uint32_t retry_after_ms;
};

}  // namespace lcrs::edge
