// Wire protocol between the browser client and the edge server.
//
// Length-prefixed binary frames over a byte stream:
//   [u32 magic][u8 type][u32 payload_size][payload bytes]
// Payloads reuse the library's tensor serialization. The same frames are
// used by the real TCP runtime and by the protocol tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tensor/tensor.h"

namespace lcrs::edge {

enum class MsgType : std::uint8_t {
  kPing = 0,
  kPong = 1,
  kCompleteRequest = 2,   // payload: conv1 feature tensor
  kCompleteResponse = 3,  // payload: i64 label + probability tensor
  kShutdown = 4,
};

struct Frame {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;
};

/// Encodes a frame into wire bytes.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decodes one frame from `bytes`; throws ParseError on malformed input.
Frame decode_frame(const std::vector<std::uint8_t>& bytes);

/// Frame header size on the wire (magic + type + length).
constexpr std::size_t kFrameHeaderBytes = 9;

/// Parses a header, returning the payload size; throws on bad magic.
std::uint32_t parse_frame_header(const std::uint8_t* header, MsgType* type);

/// Payload builders / parsers.
std::vector<std::uint8_t> make_complete_request(const Tensor& shared);
Tensor parse_complete_request(const std::vector<std::uint8_t>& payload);

struct CompleteResponse {
  std::int64_t label = -1;
  Tensor probabilities;
};
std::vector<std::uint8_t> make_complete_response(const CompleteResponse& r);
CompleteResponse parse_complete_response(
    const std::vector<std::uint8_t>& payload);

}  // namespace lcrs::edge
