// Minimal RAII TCP helpers for the loopback edge-server demo.
#pragma once

#include <cstdint>
#include <string>

#include "edge/protocol.h"

namespace lcrs::edge {

/// Owns a socket file descriptor; closes it on destruction. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close_now();

  /// Blocking full send; throws IoError on failure.
  void send_all(const void* data, std::size_t size) const;

  /// Blocking full receive; returns false on clean EOF at a frame
  /// boundary, throws IoError on mid-message EOF or errors.
  bool recv_all(void* data, std::size_t size) const;

  /// Writes one protocol frame.
  void send_frame(const Frame& frame) const;

  /// Reads one protocol frame; returns nullopt on clean EOF.
  std::optional<Frame> recv_frame() const;

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1; port 0 picks an ephemeral port.
class Listener {
 public:
  explicit Listener(std::uint16_t port);

  /// Accepts one connection (blocking). Returns an invalid socket when
  /// the listener has been shut down.
  Socket accept_one() const;

  std::uint16_t port() const { return port_; }
  void shutdown_now();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port; throws IoError on failure.
Socket connect_local(std::uint16_t port);

}  // namespace lcrs::edge
