// Minimal RAII TCP helpers for the loopback edge-server demo.
//
// All blocking operations accept an optional Deadline: an absolute point
// in time shared across every send/recv a logical operation performs, so
// "finish this request within 50 ms" holds regardless of how many socket
// calls it decomposes into. Expiry raises TimeoutError (an IoError).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/sync.h"
#include "edge/protocol.h"
#include "sim/network_model.h"

namespace lcrs::edge {

/// Absolute wall-clock budget for a multi-step I/O operation. A
/// default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() = default;  // infinite

  /// Expires `ms` milliseconds from now; ms <= 0 is already expired.
  static Deadline after_ms(double ms);

  /// Never expires (same as default construction).
  static Deadline infinite() { return Deadline(); }

  bool is_infinite() const { return !at_.has_value(); }
  bool expired() const;

  /// Milliseconds until expiry, clamped to 0; infinite deadlines report a
  /// very large value.
  double remaining_ms() const;

 private:
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> at_;
};

/// Injects deterministic message-level faults into Socket::send_frame for
/// failure-path tests: drop a frame, delay it, or tear the connection down
/// mid-frame. Parameters come from sim::FaultSpec so the simulated and
/// socket runtimes share one fault vocabulary; draws come from common/rng
/// so a seed reproduces an exact fault sequence.
///
/// Install with a Scope; the active injector is process-global and
/// consulted by every Socket::send_frame. Thread-safe.
class FaultInjector {
 public:
  FaultInjector(const sim::FaultSpec& spec, std::uint64_t seed);

  enum class Action { kNone, kDrop, kDelay, kCloseMidFrame };

  /// Draws the fate of the next sent frame (close > drop > delay).
  Action next_send_action();

  double delay_ms() const { return spec_.delay_ms; }

  std::int64_t frames_dropped() const { return frames_dropped_.load(); }
  std::int64_t frames_delayed() const { return frames_delayed_.load(); }
  std::int64_t connections_closed() const {
    return connections_closed_.load();
  }

  /// RAII installer; at most one injector is active at a time.
  class Scope {
   public:
    explicit Scope(FaultInjector& injector);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

  /// The currently installed injector, or nullptr.
  static FaultInjector* active();

 private:
  const sim::FaultSpec spec_;  // validated in ctor, immutable after
  // Leaf lock serializing draws so a seed replays one global fault
  // sequence regardless of which sender thread draws next.
  Mutex mutex_{"edge.tcp.fault_injector"};
  Rng rng_ LCRS_GUARDED_BY(mutex_);
  std::atomic<std::int64_t> frames_dropped_{0};
  std::atomic<std::int64_t> frames_delayed_{0};
  std::atomic<std::int64_t> connections_closed_{0};
};

/// Owns a socket file descriptor; closes it on destruction. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close_now();

  /// Wakes any thread blocked in send/recv on this socket (they see EOF or
  /// an error) without releasing the fd, so it is safe while another
  /// thread is mid-recv. The owner still closes via the destructor.
  void shutdown_now() const;

  /// Blocking full send; throws IoError on failure, TimeoutError if the
  /// deadline expires first.
  void send_all(const void* data, std::size_t size,
                const Deadline& deadline = Deadline()) const;

  /// Blocking full receive; returns false on clean EOF at a frame
  /// boundary, throws IoError on mid-message EOF or errors, TimeoutError
  /// if the deadline expires first.
  bool recv_all(void* data, std::size_t size,
                const Deadline& deadline = Deadline()) const;

  /// Blocking partial receive for stream protocols without a length
  /// prefix (the ops plane's HTTP reader): returns as soon as any bytes
  /// arrive (at most `size`), 0 on EOF. Throws IoError on errors,
  /// TimeoutError if the deadline expires first.
  std::size_t recv_some(void* data, std::size_t size,
                        const Deadline& deadline = Deadline()) const;

  /// Writes one protocol frame (subject to the active FaultInjector).
  void send_frame(const Frame& frame,
                  const Deadline& deadline = Deadline()) const;

  /// Reads one protocol frame; returns nullopt on clean EOF.
  std::optional<Frame> recv_frame(const Deadline& deadline = Deadline()) const;

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1; port 0 picks an ephemeral port.
class Listener {
 public:
  explicit Listener(std::uint16_t port);

  /// Accepts one connection (blocking). Returns an invalid socket when
  /// the listener has been shut down.
  Socket accept_one() const;

  std::uint16_t port() const { return port_; }
  void shutdown_now();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port; throws IoError on failure.
Socket connect_local(std::uint16_t port);

}  // namespace lcrs::edge
