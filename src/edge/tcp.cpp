#include "edge/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lcrs::edge {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}
}  // namespace

Socket::~Socket() { close_now(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_now();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(const void* data, std::size_t size) const {
  LCRS_CHECK(valid(), "send on invalid socket");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_all(void* data, std::size_t size) const {
  LCRS_CHECK(valid(), "recv on invalid socket");
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF before any bytes
      throw IoError("connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::send_frame(const Frame& frame) const {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  send_all(bytes.data(), bytes.size());
}

std::optional<Frame> Socket::recv_frame() const {
  std::uint8_t header[kFrameHeaderBytes];
  if (!recv_all(header, sizeof(header))) return std::nullopt;
  Frame f;
  const std::uint32_t payload_size = parse_frame_header(header, &f.type);
  if (payload_size > (64u << 20)) throw ParseError("frame too large");
  f.payload.resize(payload_size);
  if (payload_size > 0 && !recv_all(f.payload.data(), payload_size)) {
    throw IoError("connection closed mid-frame");
  }
  return f;
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sock_ = Socket(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd, 8) < 0) throw_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept_one() const {
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EBADF || errno == EINVAL) return Socket();  // shut down
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void Listener::shutdown_now() {
  if (sock_.valid()) {
    ::shutdown(sock_.fd(), SHUT_RDWR);
    sock_.close_now();
  }
}

Socket connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace lcrs::edge
