#include "edge/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <thread>

namespace lcrs::edge {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Blocks until the fd is ready for `events` (POLLIN/POLLOUT) or the
/// deadline expires. Throws TimeoutError on expiry.
void wait_ready(int fd, short events, const Deadline& deadline,
                const char* what) {
  if (deadline.is_infinite()) return;  // plain blocking I/O
  for (;;) {
    const double remaining = deadline.remaining_ms();
    if (remaining <= 0.0) {
      throw TimeoutError(std::string(what) + " deadline expired");
    }
    pollfd pfd{fd, events, 0};
    const int timeout_ms =
        static_cast<int>(std::min(remaining + 1.0, 1e9));  // ceil-ish
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (n > 0) return;  // readable/writable (or error -- recv/send reports)
  }
}

std::atomic<FaultInjector*> g_active_injector{nullptr};
}  // namespace

Deadline Deadline::after_ms(double ms) {
  Deadline d;
  d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(ms));
  return d;
}

bool Deadline::expired() const {
  return at_.has_value() && Clock::now() >= *at_;
}

double Deadline::remaining_ms() const {
  if (!at_.has_value()) return 1e18;
  const double ms =
      std::chrono::duration<double, std::milli>(*at_ - Clock::now()).count();
  return std::max(ms, 0.0);
}

FaultInjector::FaultInjector(const sim::FaultSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  spec_.validate();
}

FaultInjector::Action FaultInjector::next_send_action() {
  MutexLock lock(mutex_);
  if (rng_.bernoulli(spec_.close_prob)) {
    ++connections_closed_;
    return Action::kCloseMidFrame;
  }
  if (rng_.bernoulli(spec_.drop_prob)) {
    ++frames_dropped_;
    return Action::kDrop;
  }
  if (rng_.bernoulli(spec_.delay_prob)) {
    ++frames_delayed_;
    return Action::kDelay;
  }
  return Action::kNone;
}

FaultInjector::Scope::Scope(FaultInjector& injector) {
  FaultInjector* expected = nullptr;
  const bool installed =
      g_active_injector.compare_exchange_strong(expected, &injector);
  LCRS_CHECK(installed, "a FaultInjector is already installed");
}

FaultInjector::Scope::~Scope() { g_active_injector.store(nullptr); }

FaultInjector* FaultInjector::active() { return g_active_injector.load(); }

Socket::~Socket() { close_now(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_now();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_now() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_all(const void* data, std::size_t size,
                      const Deadline& deadline) const {
  LCRS_CHECK(valid(), "send on invalid socket");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    wait_ready(fd_, POLLOUT, deadline, "send");
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_all(void* data, std::size_t size,
                      const Deadline& deadline) const {
  LCRS_CHECK(valid(), "recv on invalid socket");
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    wait_ready(fd_, POLLIN, deadline, "recv");
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF before any bytes
      throw IoError("connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t Socket::recv_some(void* data, std::size_t size,
                              const Deadline& deadline) const {
  LCRS_CHECK(valid(), "recv on invalid socket");
  LCRS_CHECK(size > 0, "recv_some needs a non-empty buffer");
  for (;;) {
    wait_ready(fd_, POLLIN, deadline, "recv");
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    return static_cast<std::size_t>(n);  // 0 = EOF
  }
}

void Socket::send_frame(const Frame& frame, const Deadline& deadline) const {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  if (FaultInjector* fi = FaultInjector::active()) {
    switch (fi->next_send_action()) {
      case FaultInjector::Action::kDrop:
        return;  // frame vanishes; the peer simply never sees it
      case FaultInjector::Action::kCloseMidFrame: {
        // Leak a partial header so the peer observes a mid-message EOF,
        // the worst-case desync a real broken link produces.
        const std::size_t partial = std::min<std::size_t>(4, bytes.size());
        send_all(bytes.data(), partial, deadline);
        shutdown_now();
        throw IoError("fault injector closed connection mid-frame");
      }
      case FaultInjector::Action::kDelay:
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(fi->delay_ms()));
        break;
      case FaultInjector::Action::kNone:
        break;
    }
  }
  send_all(bytes.data(), bytes.size(), deadline);
}

std::optional<Frame> Socket::recv_frame(const Deadline& deadline) const {
  // All header versions share a 9-byte prefix shape; read that, look at
  // the magic, then pull in the version's extension bytes if present.
  std::uint8_t header[kFrameHeaderBytesV3];
  if (!recv_all(header, kFrameHeaderBytes, deadline)) return std::nullopt;
  Frame f;
  std::uint32_t payload_size = 0;
  const int version = frame_header_version(header);
  if (version == 1) {
    payload_size = parse_frame_header(header, &f.type);
  } else {
    const std::size_t full =
        version == 2 ? kFrameHeaderBytesV2 : kFrameHeaderBytesV3;
    if (!recv_all(header + kFrameHeaderBytes, full - kFrameHeaderBytes,
                  deadline)) {
      throw IoError("connection closed mid-header");
    }
    payload_size =
        version == 2
            ? parse_frame_header_v2(header, &f.type, &f.trace_id)
            : parse_frame_header_v3(header, &f.type, &f.model_id,
                                    &f.trace_id);
  }
  if (payload_size > (64u << 20)) throw ParseError("frame too large");
  f.payload.resize(payload_size);
  if (payload_size > 0 &&
      !recv_all(f.payload.data(), payload_size, deadline)) {
    throw IoError("connection closed mid-frame");
  }
  return f;
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sock_ = Socket(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  // A burst of concurrent clients can out-race the accept loop; if the
  // backlog overflows, the kernel silently drops the excess SYNs and each
  // affected client stalls for a full 1 s retransmit timeout before its
  // connect completes. Size the queue for serving-scale bursts.
  if (::listen(fd, 128) < 0) throw_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept_one() const {
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EBADF || errno == EINVAL) return Socket();  // shut down
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void Listener::shutdown_now() {
  // shutdown(2) only, never close(2): the acceptor thread may be blocked
  // in accept() on this very fd, and closing would race it (and could
  // even redirect the accept onto a recycled descriptor). shutdown wakes
  // the accept with EINVAL; the fd is released by the destructor once the
  // acceptor thread has been joined.
  sock_.shutdown_now();
}

Socket connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace lcrs::edge
