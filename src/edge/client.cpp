#include "edge/client.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/obs/flight_recorder.h"
#include "common/obs/trace.h"
#include "common/stopwatch.h"
#include "core/entropy.h"
#include "tensor/tensor_ops.h"

namespace lcrs::edge {

void RetryPolicy::validate() const {
  LCRS_CHECK(max_attempts >= 1, "max_attempts must be >= 1");
  LCRS_CHECK(initial_backoff_ms >= 0.0, "negative initial_backoff_ms");
  LCRS_CHECK(backoff_multiplier >= 1.0, "backoff_multiplier must be >= 1");
  LCRS_CHECK(max_backoff_ms >= 0.0, "negative max_backoff_ms");
  LCRS_CHECK(deadline_ms >= 0.0, "negative deadline_ms");
}

RetryPolicy RetryPolicy::no_retry() {
  RetryPolicy p;
  p.max_attempts = 1;
  p.initial_backoff_ms = 0.0;
  return p;
}

BrowserClient::BrowserClient(webinfer::Engine engine, core::ExitPolicy policy,
                             std::uint16_t port, RetryPolicy retry)
    : engine_(std::move(engine)),
      policy_(policy),
      port_(port),
      retry_(retry) {
  retry_.validate();
}

ClientResult BrowserClient::classify(const Tensor& sample) {
  LCRS_CHECK(sample.rank() == 4 && sample.dim(0) == 1,
             "classify expects a single [1,C,H,W] sample");
  const std::uint64_t trace_id = obs::next_trace_id();
  Stopwatch browser_watch;
  Tensor shared;
  {
    obs::Span span(trace_id, obs::names::kSpanClientConv1);
    shared = engine_.forward_shared(sample);
  }
  Tensor probs;
  double entropy = 0.0;
  {
    obs::Span span(trace_id, obs::names::kSpanClientBinaryBranch);
    const Tensor logits = engine_.forward_branch(shared);
    probs = softmax_rows(logits);
    entropy = core::normalized_entropy(probs.data(), probs.dim(1));
  }
  browser_compute_us_.record(browser_watch.micros());

  requests_.add();
  if (policy_.should_exit(entropy)) {
    exit_binary_.add();
    core::record_exit_decision(core::ExitPoint::kBinaryBranch, entropy);
    obs::flight_record_finish(trace_id, false, "client.exit_binary");
    ClientResult r;
    r.label = argmax(probs);
    r.exit_point = core::ExitPoint::kBinaryBranch;
    r.entropy = entropy;
    r.probabilities = probs;
    r.trace_id = trace_id;
    return r;
  }
  return complete_at_edge(shared, probs, entropy, trace_id);
}

ClientResult BrowserClient::attempt_edge_completion(const Frame& request,
                                                    double entropy,
                                                    const Deadline& deadline) {
  if (!conn_.has_value() || !conn_->valid()) {
    conn_ = connect_local(port_);
    if (connected_once_) reconnects_.add();
    connected_once_ = true;
  }
  std::optional<Frame> reply;
  {
    obs::Span span(request.trace_id, obs::names::kSpanClientNetwork);
    conn_->send_frame(request, deadline);
    reply = conn_->recv_frame(deadline);
  }
  if (reply.has_value() && reply->type == MsgType::kBusy) {
    // Admission control pushed back. The connection is healthy and at a
    // frame boundary -- keep it; only the server's queue was full.
    throw ServerBusyError(parse_busy_reply(reply->payload));
  }
  if (reply.has_value() && reply->type == MsgType::kModelUnavailable) {
    // The requested model has no registry entry (yet). Like kBusy, the
    // connection stays in sync; the model may land mid-rollout, so the
    // retry ladder gets another look before the binary fallback.
    throw ModelUnavailableError(parse_model_unavailable(reply->payload));
  }
  if (!reply.has_value() || reply->type != MsgType::kCompleteResponse) {
    throw IoError("edge server did not return a completion response");
  }
  if (reply->model_id != request.model_id) {
    // The server echoes the serving model id in the response header;
    // a mismatch would be a routing bug, not a transport fault.
    throw IoError("edge response model id " +
                  std::to_string(reply->model_id) + " does not match request " +
                  std::to_string(request.model_id));
  }
  const CompleteResponse resp = parse_complete_response(reply->payload);

  ClientResult r;
  r.label = resp.label;
  r.exit_point = core::ExitPoint::kMainBranch;
  r.entropy = entropy;
  r.probabilities = resp.probabilities;
  r.trace_id = request.trace_id;
  return r;
}

ClientResult BrowserClient::complete_at_edge(const Tensor& shared,
                                             const Tensor& probs,
                                             double entropy,
                                             std::uint64_t trace_id) {
  const Deadline deadline = retry_.deadline_ms > 0.0
                                ? Deadline::after_ms(retry_.deadline_ms)
                                : Deadline::infinite();

  // Serialize once, outside the retry loop: the conv1 features do not
  // change between attempts, and the encode cost should be attributed to
  // serialization, not to however many network attempts follow.
  Frame request;
  {
    obs::Span span(trace_id, obs::names::kSpanClientSerialize);
    Stopwatch watch;
    request = Frame{MsgType::kCompleteRequest, make_complete_request(shared),
                    trace_id, model_id_};
    serialize_us_.record(watch.micros());
  }

  double backoff_ms = retry_.initial_backoff_ms;
  std::string last_error = "edge path deadline expired before first attempt";
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_.add();
      const double sleep_ms =
          std::min(backoff_ms, deadline.remaining_ms());
      if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      backoff_ms = std::min(backoff_ms * retry_.backoff_multiplier,
                            retry_.max_backoff_ms);
    }
    if (deadline.expired()) break;
    Stopwatch watch;
    try {
      ClientResult r = attempt_edge_completion(request, entropy, deadline);
      exit_main_.add();
      roundtrip_us_.record(watch.micros());
      core::record_exit_decision(core::ExitPoint::kMainBranch, entropy);
      obs::flight_record_finish(trace_id, false, "client.exit_main");
      return r;
    } catch (const ServerBusyError& e) {
      // Backpressure, not breakage: the connection is still in sync, so
      // keep it, honour the server's retry-after hint as a backoff floor,
      // and let the normal retry/fallback ladder run its course.
      busy_rejections_.add();
      backoff_ms = std::max(backoff_ms,
                            static_cast<double>(e.retry_after_ms));
      last_error = e.what();
      LCRS_DEBUG("edge attempt " << (attempt + 1) << "/"
                                 << retry_.max_attempts
                                 << " rejected busy: " << last_error);
    } catch (const ModelUnavailableError& e) {
      // Not a transport fault either: keep the connection and retry --
      // the model may finish rolling out within the deadline.
      model_unavailable_.add();
      last_error = e.what();
      LCRS_DEBUG("edge attempt " << (attempt + 1) << "/"
                                 << retry_.max_attempts
                                 << " model unavailable: " << last_error);
    } catch (const IoError& e) {
      // The cached connection may be dead or mid-frame desynced; never
      // reuse it -- the next attempt reconnects from scratch.
      conn_.reset();
      last_error = e.what();
      LCRS_DEBUG("edge attempt " << (attempt + 1) << "/"
                                 << retry_.max_attempts
                                 << " failed: " << last_error);
    }
  }

  if (!retry_.fallback_to_binary) {
    obs::flight_record_finish(trace_id, true, "client.error: " + last_error);
    throw IoError("edge completion failed after " +
                  std::to_string(retry_.max_attempts) +
                  " attempt(s): " + last_error);
  }

  // Graceful degradation (the availability edge over partition-only
  // baselines): answer with the binary branch even though its entropy
  // missed tau, and tag the result so callers can count degraded answers.
  exit_fallback_.add();
  core::record_exit_decision(core::ExitPoint::kBinaryBranchFallback, entropy);
  // Error-tagged so the degraded request lands in the flight recorder's
  // all-error retention set with its full timeline and failure reason.
  obs::flight_record_finish(trace_id, true, "client.fallback: " + last_error);
  LCRS_WARN("edge unreachable (" << last_error
                                 << "); falling back to binary branch");
  ClientResult r;
  r.label = argmax(probs);
  r.exit_point = core::ExitPoint::kBinaryBranchFallback;
  r.entropy = entropy;
  r.probabilities = probs;
  r.trace_id = trace_id;
  return r;
}

ClientStats BrowserClient::stats() const {
  ClientStats s;
  s.classified = requests_.value();
  s.exited_binary = exit_binary_.value();
  s.completed_at_edge = exit_main_.value();
  s.fallbacks = exit_fallback_.value();
  s.retries = retries_.value();
  s.reconnects = reconnects_.value();
  s.busy_rejections = busy_rejections_.value();
  s.model_unavailable = model_unavailable_.value();
  s.total_edge_ms = roundtrip_us_.sum() / 1e3;
  return s;
}

double BrowserClient::exit_fraction() const {
  const std::int64_t classified = requests_.value();
  return classified > 0 ? static_cast<double>(exit_binary_.value()) /
                              static_cast<double>(classified)
                        : 0.0;
}

}  // namespace lcrs::edge
