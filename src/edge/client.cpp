#include "edge/client.h"

#include "core/entropy.h"
#include "tensor/tensor_ops.h"

namespace lcrs::edge {

BrowserClient::BrowserClient(webinfer::Engine engine, core::ExitPolicy policy,
                             std::uint16_t port)
    : engine_(std::move(engine)), policy_(policy), port_(port) {}

ClientResult BrowserClient::classify(const Tensor& sample) {
  LCRS_CHECK(sample.rank() == 4 && sample.dim(0) == 1,
             "classify expects a single [1,C,H,W] sample");
  const Tensor shared = engine_.forward_shared(sample);
  const Tensor logits = engine_.forward_branch(shared);
  const Tensor probs = softmax_rows(logits);
  const double entropy =
      core::normalized_entropy(probs.data(), probs.dim(1));

  ++classified_;
  if (policy_.should_exit(entropy)) {
    ++exited_;
    ClientResult r;
    r.label = argmax(probs);
    r.exit_point = core::ExitPoint::kBinaryBranch;
    r.entropy = entropy;
    r.probabilities = probs;
    return r;
  }
  return complete_at_edge(shared, entropy);
}

ClientResult BrowserClient::complete_at_edge(const Tensor& shared,
                                             double entropy) {
  if (!conn_.has_value() || !conn_->valid()) {
    conn_ = connect_local(port_);
  }
  conn_->send_frame(
      Frame{MsgType::kCompleteRequest, make_complete_request(shared)});
  std::optional<Frame> reply = conn_->recv_frame();
  if (!reply.has_value() || reply->type != MsgType::kCompleteResponse) {
    throw IoError("edge server did not return a completion response");
  }
  const CompleteResponse resp = parse_complete_response(reply->payload);

  ClientResult r;
  r.label = resp.label;
  r.exit_point = core::ExitPoint::kMainBranch;
  r.entropy = entropy;
  r.probabilities = resp.probabilities;
  return r;
}

double BrowserClient::exit_fraction() const {
  return classified_ > 0
             ? static_cast<double>(exited_) / static_cast<double>(classified_)
             : 0.0;
}

}  // namespace lcrs::edge
