#include "edge/client.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/entropy.h"
#include "tensor/tensor_ops.h"

namespace lcrs::edge {

void RetryPolicy::validate() const {
  LCRS_CHECK(max_attempts >= 1, "max_attempts must be >= 1");
  LCRS_CHECK(initial_backoff_ms >= 0.0, "negative initial_backoff_ms");
  LCRS_CHECK(backoff_multiplier >= 1.0, "backoff_multiplier must be >= 1");
  LCRS_CHECK(max_backoff_ms >= 0.0, "negative max_backoff_ms");
  LCRS_CHECK(deadline_ms >= 0.0, "negative deadline_ms");
}

RetryPolicy RetryPolicy::no_retry() {
  RetryPolicy p;
  p.max_attempts = 1;
  p.initial_backoff_ms = 0.0;
  return p;
}

BrowserClient::BrowserClient(webinfer::Engine engine, core::ExitPolicy policy,
                             std::uint16_t port, RetryPolicy retry)
    : engine_(std::move(engine)),
      policy_(policy),
      port_(port),
      retry_(retry) {
  retry_.validate();
}

ClientResult BrowserClient::classify(const Tensor& sample) {
  LCRS_CHECK(sample.rank() == 4 && sample.dim(0) == 1,
             "classify expects a single [1,C,H,W] sample");
  const Tensor shared = engine_.forward_shared(sample);
  const Tensor logits = engine_.forward_branch(shared);
  const Tensor probs = softmax_rows(logits);
  const double entropy =
      core::normalized_entropy(probs.data(), probs.dim(1));

  ++stats_.classified;
  if (policy_.should_exit(entropy)) {
    ++stats_.exited_binary;
    ClientResult r;
    r.label = argmax(probs);
    r.exit_point = core::ExitPoint::kBinaryBranch;
    r.entropy = entropy;
    r.probabilities = probs;
    return r;
  }
  return complete_at_edge(shared, probs, entropy);
}

ClientResult BrowserClient::attempt_edge_completion(const Tensor& shared,
                                                    double entropy,
                                                    const Deadline& deadline) {
  if (!conn_.has_value() || !conn_->valid()) {
    conn_ = connect_local(port_);
    if (connected_once_) ++stats_.reconnects;
    connected_once_ = true;
  }
  conn_->send_frame(
      Frame{MsgType::kCompleteRequest, make_complete_request(shared)},
      deadline);
  std::optional<Frame> reply = conn_->recv_frame(deadline);
  if (!reply.has_value() || reply->type != MsgType::kCompleteResponse) {
    throw IoError("edge server did not return a completion response");
  }
  const CompleteResponse resp = parse_complete_response(reply->payload);

  ClientResult r;
  r.label = resp.label;
  r.exit_point = core::ExitPoint::kMainBranch;
  r.entropy = entropy;
  r.probabilities = resp.probabilities;
  return r;
}

ClientResult BrowserClient::complete_at_edge(const Tensor& shared,
                                             const Tensor& probs,
                                             double entropy) {
  const Deadline deadline = retry_.deadline_ms > 0.0
                                ? Deadline::after_ms(retry_.deadline_ms)
                                : Deadline::infinite();
  double backoff_ms = retry_.initial_backoff_ms;
  std::string last_error = "edge path deadline expired before first attempt";
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      const double sleep_ms =
          std::min(backoff_ms, deadline.remaining_ms());
      if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      backoff_ms = std::min(backoff_ms * retry_.backoff_multiplier,
                            retry_.max_backoff_ms);
    }
    if (deadline.expired()) break;
    Stopwatch watch;
    try {
      ClientResult r = attempt_edge_completion(shared, entropy, deadline);
      ++stats_.completed_at_edge;
      stats_.total_edge_ms += watch.millis();
      return r;
    } catch (const IoError& e) {
      // The cached connection may be dead or mid-frame desynced; never
      // reuse it -- the next attempt reconnects from scratch.
      conn_.reset();
      last_error = e.what();
      LCRS_DEBUG("edge attempt " << (attempt + 1) << "/"
                                 << retry_.max_attempts
                                 << " failed: " << last_error);
    }
  }

  if (!retry_.fallback_to_binary) {
    throw IoError("edge completion failed after " +
                  std::to_string(retry_.max_attempts) +
                  " attempt(s): " + last_error);
  }

  // Graceful degradation (the availability edge over partition-only
  // baselines): answer with the binary branch even though its entropy
  // missed tau, and tag the result so callers can count degraded answers.
  ++stats_.fallbacks;
  LCRS_WARN("edge unreachable (" << last_error
                                 << "); falling back to binary branch");
  ClientResult r;
  r.label = argmax(probs);
  r.exit_point = core::ExitPoint::kBinaryBranchFallback;
  r.entropy = entropy;
  r.probabilities = probs;
  return r;
}

double BrowserClient::exit_fraction() const {
  return stats_.classified > 0
             ? static_cast<double>(stats_.exited_binary) /
                   static_cast<double>(stats_.classified)
             : 0.0;
}

}  // namespace lcrs::edge
