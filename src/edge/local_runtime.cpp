#include "edge/local_runtime.h"

#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "models/accounting.h"

namespace lcrs::edge {

LocalRuntime::LocalRuntime(core::CompositeNetwork& net,
                           core::ExitPolicy policy, sim::CostModel cost,
                           const Shape& sample_shape, sim::Scenario scenario)
    : net_(net), policy_(policy), cost_(std::move(cost)),
      scenario_(scenario) {
  LCRS_CHECK(sample_shape.rank() == 3, "sample_shape must be [C, H, W]");
  const auto shared_prof =
      models::profile_layers(net.shared_stage(), sample_shape);
  const Shape shared_shape{net.shared_out_c(), net.shared_out_h(),
                           net.shared_out_w()};
  const auto branch_prof =
      models::profile_layers(net.binary_branch(), shared_shape);
  const auto rest_prof = models::profile_layers(net.main_rest(), shared_shape);

  browser_forward_ms_ =
      cost_.browser_compute_ms(shared_prof, 0, shared_prof.size()) +
      cost_.browser_compute_ms(branch_prof, 0, branch_prof.size());
  edge_rest_ms_ = cost_.edge_compute_ms(rest_prof, 0, rest_prof.size());
  upload_bytes_ = 8 + 8 * 4 + 4 * shared_shape.numel();

  browser_model_bytes_ = 8;
  for (const auto& l : shared_prof) browser_model_bytes_ += l.param_bytes;
  for (const auto& l : branch_prof) {
    browser_model_bytes_ += l.is_binary ? l.binary_bytes : l.param_bytes;
  }
}

SimStep LocalRuntime::classify(const Tensor& sample, Rng& rng) {
  const core::InferenceResult r =
      core::collaborative_infer(net_, policy_, sample);

  SimStep step;
  step.label = r.predicted;
  step.exit_point = r.exit_point;
  step.entropy = r.entropy;
  step.browser_ms = browser_forward_ms_;
  if (r.exit_point == core::ExitPoint::kMainBranch) {
    step.upload_ms = cost_.network().upload_ms_jittered(upload_bytes_, rng);
    step.edge_ms = edge_rest_ms_;
    step.download_ms =
        cost_.network().download_ms_jittered(scenario_.result_bytes, rng);
  }

  // Simulated per-stage timings feed the same registry as the socket
  // runtime's measured ones, so Fig. 6/10-style breakdowns come from a
  // snapshot either way. (Exit counters are recorded by
  // collaborative_infer via record_exit_decision.)
  obs::Registry& reg = obs::Registry::global();
  reg.histogram(obs::names::kSimBrowserUs).record(step.browser_ms * 1e3);
  if (r.exit_point == core::ExitPoint::kMainBranch) {
    reg.histogram(obs::names::kSimUploadUs).record(step.upload_ms * 1e3);
    reg.histogram(obs::names::kSimEdgeUs).record(step.edge_ms * 1e3);
    reg.histogram(obs::names::kSimDownloadUs).record(step.download_ms * 1e3);
  }
  return step;
}

double LocalRuntime::amortized_load_ms() const {
  return cost_.network().download_ms(browser_model_bytes_) /
         static_cast<double>(scenario_.session_samples);
}

}  // namespace lcrs::edge
