#include "webinfer/export.h"

#include <cmath>

#include "binary/binary_conv2d.h"
#include "binary/binary_linear.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace lcrs::webinfer {

namespace {

void export_layer(nn::Layer& layer, std::vector<Op>& ops) {
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    Conv2dOp op;
    op.geom = conv->geometry();
    op.out_c = conv->out_channels();
    op.has_bias = conv->has_bias();
    op.weight = conv->weight().value;
    op.bias = op.has_bias ? conv->bias_param().value
                          : Tensor{Shape{op.out_c}};
    ops.push_back(std::move(op));
    return;
  }
  if (auto* bconv = dynamic_cast<binary::BinaryConv2d*>(&layer)) {
    LCRS_CHECK(bconv->inference_ready(),
               "binary conv not packed before export");
    BinaryConv2dOp op;
    op.geom = bconv->geometry();
    op.out_c = bconv->out_channels();
    op.weight_bits = bconv->packed_weight_bits();
    op.alpha = bconv->packed_alpha();
    ops.push_back(std::move(op));
    return;
  }
  if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
    LinearOp op;
    op.in = lin->in_features();
    op.out = lin->out_features();
    op.has_bias = lin->has_bias();
    op.weight = lin->weight().value;
    op.bias = op.has_bias ? lin->bias_param().value : Tensor{Shape{op.out}};
    ops.push_back(std::move(op));
    return;
  }
  if (auto* blin = dynamic_cast<binary::BinaryLinear*>(&layer)) {
    LCRS_CHECK(blin->inference_ready(),
               "binary linear not packed before export");
    BinaryLinearOp op;
    op.in = blin->in_features();
    op.out = blin->out_features();
    op.has_bias = blin->has_bias();
    op.weight_bits = blin->packed_weight_bits();
    op.alpha = blin->packed_alpha();
    op.bias = op.has_bias ? blin->bias_values() : Tensor{Shape{op.out}};
    ops.push_back(std::move(op));
    return;
  }
  if (auto* bn = dynamic_cast<nn::BatchNorm*>(&layer)) {
    BatchNormOp op;
    op.channels = bn->channels();
    op.scale = Tensor{Shape{op.channels}};
    op.shift = Tensor{Shape{op.channels}};
    for (std::int64_t c = 0; c < op.channels; ++c) {
      const float inv_std = 1.0f / std::sqrt(bn->running_var()[c] + bn->eps());
      op.scale[c] = bn->gamma().value[c] * inv_std;
      op.shift[c] =
          bn->beta().value[c] - bn->running_mean()[c] * op.scale[c];
    }
    ops.push_back(std::move(op));
    return;
  }
  if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
    ops.push_back(ActivationOp{ActivationOp::Kind::kReLU});
    return;
  }
  if (dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
    ops.push_back(ActivationOp{ActivationOp::Kind::kTanh});
    return;
  }
  if (dynamic_cast<nn::HardTanh*>(&layer) != nullptr) {
    ops.push_back(ActivationOp{ActivationOp::Kind::kHardTanh});
    return;
  }
  if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
    ops.push_back(MaxPoolOp{pool->kernel(), pool->stride()});
    return;
  }
  if (dynamic_cast<nn::GlobalAvgPool*>(&layer) != nullptr) {
    ops.push_back(GlobalAvgPoolOp{});
    return;
  }
  if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
    ops.push_back(FlattenOp{});
    return;
  }
  if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
    return;  // identity at inference
  }
  throw InvalidArgument("cannot export layer kind: " + layer.kind());
}

}  // namespace

WebModel export_browser_model(core::CompositeNetwork& net, std::int64_t in_c,
                              std::int64_t in_h, std::int64_t in_w) {
  net.prepare_browser_inference();
  WebModel m;
  m.in_c = in_c;
  m.in_h = in_h;
  m.in_w = in_w;
  m.num_classes = net.num_classes();
  nn::Sequential& shared = net.shared_stage();
  for (std::size_t i = 0; i < shared.size(); ++i) {
    export_layer(shared.layer(i), m.ops);
  }
  m.shared_op_count = static_cast<std::int64_t>(m.ops.size());
  nn::Sequential& branch = net.binary_branch();
  for (std::size_t i = 0; i < branch.size(); ++i) {
    export_layer(branch.layer(i), m.ops);
  }
  return m;
}

}  // namespace lcrs::webinfer
