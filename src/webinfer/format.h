// Flat model format of the browser inference library (paper Sec. IV-C,
// Fig. 3).
//
// In the paper the trained conv1 + binary branch are converted by a C++
// tool into a JS/WASM-loadable blob; this header defines exactly that
// blob: a linear list of forward-only ops with their (bit-packed where
// binary) weights. The format is self-contained -- the engine never needs
// the training framework.
#pragma once

#include <variant>
#include <vector>

#include "binary/bitmatrix.h"
#include "common/bytes.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace lcrs::webinfer {

struct Conv2dOp {
  ConvGeom geom;
  std::int64_t out_c = 0;
  bool has_bias = true;
  Tensor weight;  // [out_c, in_c, k, k]
  Tensor bias;    // [out_c]
};

struct BinaryConv2dOp {
  ConvGeom geom;
  std::int64_t out_c = 0;
  binary::BitMatrix weight_bits;  // [out_c x patch]
  Tensor alpha;                   // [out_c]
};

struct LinearOp {
  std::int64_t in = 0, out = 0;
  bool has_bias = true;
  Tensor weight;  // [out x in]
  Tensor bias;
};

struct BinaryLinearOp {
  std::int64_t in = 0, out = 0;
  bool has_bias = true;
  binary::BitMatrix weight_bits;  // [out x in]
  Tensor alpha;                   // [out]
  Tensor bias;                    // [out] float bias kept full precision
};

struct BatchNormOp {
  std::int64_t channels = 0;
  Tensor scale;  // gamma / sqrt(running_var + eps)
  Tensor shift;  // beta - running_mean * scale
};

struct ActivationOp {
  enum class Kind : std::uint8_t { kReLU = 0, kTanh = 1, kHardTanh = 2 };
  Kind kind = Kind::kReLU;
};

struct MaxPoolOp {
  std::int64_t kernel = 2, stride = 2;
};

struct GlobalAvgPoolOp {};

struct FlattenOp {};

using Op = std::variant<Conv2dOp, BinaryConv2dOp, LinearOp, BinaryLinearOp,
                        BatchNormOp, ActivationOp, MaxPoolOp,
                        GlobalAvgPoolOp, FlattenOp>;

/// A serializable forward-only model. ops[0, shared_op_count) are the
/// shared conv1 stage whose output is uploaded to the edge server when
/// the binary branch is not confident (Algorithm 2's `t`).
struct WebModel {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t num_classes = 0;
  std::int64_t shared_op_count = 0;
  std::vector<Op> ops;
};

/// Binary (de)serialization of the blob the browser downloads.
std::vector<std::uint8_t> serialize(const WebModel& model);
WebModel deserialize(const std::vector<std::uint8_t>& bytes);

}  // namespace lcrs::webinfer
