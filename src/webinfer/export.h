// Export of a trained composite network's browser part into the flat
// WebModel format (the paper's C++ -> Emscripten conversion step, Fig. 3).
#pragma once

#include "core/composite.h"
#include "webinfer/format.h"

namespace lcrs::webinfer {

/// Converts the shared conv1 stage plus the binary branch of a trained
/// composite network into a self-contained WebModel. Binary layers are
/// packed (prepare_browser_inference is invoked internally); BatchNorm is
/// folded into per-channel scale/shift using its running statistics.
/// Throws InvalidArgument on a layer kind the browser engine cannot run.
WebModel export_browser_model(core::CompositeNetwork& net,
                              std::int64_t in_c, std::int64_t in_h,
                              std::int64_t in_w);

}  // namespace lcrs::webinfer
