#include "webinfer/engine.h"

#include <cmath>
#include <limits>
#include <vector>

#include "binary/xnor_gemm.h"
#include "common/numerics.h"
#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/stopwatch.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace lcrs::webinfer {

Engine::Engine(WebModel model) : model_(std::move(model)) {
  LCRS_CHECK(model_.in_c > 0 && model_.in_h > 0 && model_.in_w > 0,
             "engine model has no input geometry");
  LCRS_CHECK(!model_.ops.empty(), "engine model has no ops");
}

Engine Engine::from_bytes(const std::vector<std::uint8_t>& bytes) {
  return Engine(deserialize(bytes));
}

namespace {

Tensor run_conv(const Conv2dOp& op, const Tensor& x) {
  const ConvGeom& g = op.geom;
  LCRS_CHECK(x.rank() == 4 && x.dim(1) == g.in_c && x.dim(2) == g.in_h &&
                 x.dim(3) == g.in_w,
             "conv op input mismatch: " << x.shape().to_string());
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t pixels = oh * ow;
  const std::int64_t patch = g.patch_size();
  const std::int64_t in_image = g.in_c * g.in_h * g.in_w;

  Tensor out{Shape{n, op.out_c, oh, ow}};
  std::vector<float> cols(static_cast<std::size_t>(patch * pixels));
  for (std::int64_t b = 0; b < n; ++b) {
    im2col(x.data() + b * in_image, g, cols.data());
    gemm(op.weight.data(), cols.data(), out.data() + b * op.out_c * pixels,
         op.out_c, patch, pixels);
    if (op.has_bias) {
      float* obase = out.data() + b * op.out_c * pixels;
      for (std::int64_t oc = 0; oc < op.out_c; ++oc) {
        const float bv = op.bias[oc];
        float* orow = obase + oc * pixels;
        for (std::int64_t p = 0; p < pixels; ++p) orow[p] += bv;
      }
    }
  }
  return out;
}

Tensor run_linear(const LinearOp& op, const Tensor& x) {
  LCRS_CHECK(x.rank() == 2 && x.dim(1) == op.in, "linear op input mismatch");
  const std::int64_t n = x.dim(0);
  Tensor out{Shape{n, op.out}};
  gemm_bt(x.data(), op.weight.data(), out.data(), n, op.in, op.out);
  if (op.has_bias) {
    for (std::int64_t b = 0; b < n; ++b) {
      float* row = out.data() + b * op.out;
      for (std::int64_t o = 0; o < op.out; ++o) row[o] += op.bias[o];
    }
  }
  return out;
}

Tensor run_batchnorm(const BatchNormOp& op, const Tensor& x) {
  LCRS_CHECK((x.rank() == 4 || x.rank() == 2) && x.dim(1) == op.channels,
             "batchnorm op input mismatch");
  const std::int64_t n = x.dim(0);
  const std::int64_t spatial = x.rank() == 4 ? x.dim(2) * x.dim(3) : 1;
  Tensor out(x.shape());
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < op.channels; ++c) {
      const float* src = x.data() + (b * op.channels + c) * spatial;
      float* dst = out.data() + (b * op.channels + c) * spatial;
      const float s = op.scale[c], sh = op.shift[c];
      for (std::int64_t i = 0; i < spatial; ++i) dst[i] = src[i] * s + sh;
    }
  }
  return out;
}

Tensor run_activation(const ActivationOp& op, const Tensor& x) {
  Tensor out(x.shape());
  switch (op.kind) {
    case ActivationOp::Kind::kReLU:
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        out[i] = x[i] > 0.0f ? x[i] : 0.0f;
      }
      break;
    case ActivationOp::Kind::kTanh:
      for (std::int64_t i = 0; i < x.numel(); ++i) out[i] = std::tanh(x[i]);
      break;
    case ActivationOp::Kind::kHardTanh:
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        out[i] = x[i] > 1.0f ? 1.0f : (x[i] < -1.0f ? -1.0f : x[i]);
      }
      break;
  }
  return out;
}

Tensor run_maxpool(const MaxPoolOp& op, const Tensor& x) {
  LCRS_CHECK(x.rank() == 4, "maxpool op expects NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h - op.kernel) / op.stride + 1;
  const std::int64_t ow = (w - op.kernel) / op.stride + 1;
  LCRS_CHECK(oh >= 1 && ow >= 1, "maxpool op output is empty");
  Tensor out{Shape{n, c, oh, ow}};
  std::int64_t oi = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (b * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xx = 0; xx < ow; ++xx, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < op.kernel; ++ky) {
            for (std::int64_t kx = 0; kx < op.kernel; ++kx) {
              best = std::max(best, plane[(y * op.stride + ky) * w +
                                          (xx * op.stride + kx)]);
            }
          }
          out[oi] = best;
        }
      }
    }
  }
  return out;
}

Tensor run_gap(const Tensor& x) {
  LCRS_CHECK(x.rank() == 4, "gap op expects NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  const std::int64_t plane = x.dim(2) * x.dim(3);
  const float inv = 1.0f / static_cast<float>(plane);
  Tensor out{Shape{n, c}};
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* p = x.data() + (b * c + ch) * plane;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < plane; ++i) acc += p[i];
      out.at2(b, ch) = acc * inv;
    }
  }
  return out;
}

struct OpRunner {
  Tensor x;

  void operator()(const Conv2dOp& op) { x = run_conv(op, x); }
  void operator()(const BinaryConv2dOp& op) {
    x = binary::xnor_conv2d(x, op.geom, op.weight_bits, op.alpha);
  }
  void operator()(const LinearOp& op) { x = run_linear(op, x); }
  void operator()(const BinaryLinearOp& op) {
    x = binary::xnor_linear(x, op.weight_bits, op.alpha,
                            op.has_bias ? &op.bias : nullptr);
  }
  void operator()(const BatchNormOp& op) { x = run_batchnorm(op, x); }
  void operator()(const ActivationOp& op) { x = run_activation(op, x); }
  void operator()(const MaxPoolOp& op) { x = run_maxpool(op, x); }
  void operator()(const GlobalAvgPoolOp&) { x = run_gap(x); }
  void operator()(const FlattenOp&) {
    LCRS_CHECK(x.rank() >= 2, "flatten op expects rank >= 2");
    x = x.reshaped(Shape{x.dim(0), x.numel() / x.dim(0)});
  }
};

struct OpName {
  const char* operator()(const Conv2dOp&) const { return "conv2d"; }
  const char* operator()(const BinaryConv2dOp&) const {
    return "binary_conv2d";
  }
  const char* operator()(const LinearOp&) const { return "linear"; }
  const char* operator()(const BinaryLinearOp&) const {
    return "binary_linear";
  }
  const char* operator()(const BatchNormOp&) const { return "batchnorm"; }
  const char* operator()(const ActivationOp&) const { return "activation"; }
  const char* operator()(const MaxPoolOp&) const { return "maxpool"; }
  const char* operator()(const GlobalAvgPoolOp&) const { return "gap"; }
  const char* operator()(const FlattenOp&) const { return "flatten"; }
};

// Numerics hook for the reference-parity path: the webinfer engine is the
// ground truth the browser build is validated against, so a NaN here must
// name the op, not just fail a downstream comparison.
void check_op_output(const Op& op, std::size_t i, const Tensor& x) {
  if (!numerics::enabled()) return;
  numerics::check_values("op output",
                         "webinfer op " + std::to_string(i) + " (" +
                             std::visit(OpName{}, op) + ")",
                         x.data(), x.numel());
}

/// Profiling hook at the same point as the numerics hook: records one
/// op's elapsed time into "webinfer.op.<i>.<opname>.us". Callers gate
/// on obs::profiling_enabled() once per forward pass.
void record_op_time(const Op& op, std::size_t i, double micros) {
  obs::Registry::global()
      .histogram(obs::names::webinfer_op_metric(i, std::visit(OpName{}, op)))
      .record(micros);
}

/// Runs ops [begin, end) of `model` on `runner`, timing each when
/// profiling is on -- the shared body of forward/forward_shared/
/// forward_branch.
void run_ops(const WebModel& model, OpRunner& runner, std::size_t begin,
             std::size_t end) {
  const bool profile = obs::profiling_enabled();
  for (std::size_t i = begin; i < end; ++i) {
    Stopwatch watch;
    std::visit(runner, model.ops[i]);
    if (profile) record_op_time(model.ops[i], i, watch.micros());
    check_op_output(model.ops[i], i, runner.x);
  }
}

}  // namespace

Tensor Engine::forward(const Tensor& input) const {
  LCRS_CHECK(input.rank() == 4 && input.dim(1) == model_.in_c &&
                 input.dim(2) == model_.in_h && input.dim(3) == model_.in_w,
             "engine input " << input.shape().to_string()
                             << " does not match model geometry");
  OpRunner runner{input};
  run_ops(model_, runner, 0, model_.ops.size());
  LCRS_CHECK(runner.x.rank() == 2 && runner.x.dim(1) == model_.num_classes,
             "engine output is not [N x classes]: "
                 << runner.x.shape().to_string());
  return std::move(runner.x);
}

Tensor Engine::forward_shared(const Tensor& input) const {
  LCRS_CHECK(input.rank() == 4 && input.dim(1) == model_.in_c &&
                 input.dim(2) == model_.in_h && input.dim(3) == model_.in_w,
             "engine shared input mismatch");
  OpRunner runner{input};
  run_ops(model_, runner, 0, static_cast<std::size_t>(model_.shared_op_count));
  return std::move(runner.x);
}

Tensor Engine::forward_branch(const Tensor& shared) const {
  OpRunner runner{shared};
  run_ops(model_, runner, static_cast<std::size_t>(model_.shared_op_count),
          model_.ops.size());
  LCRS_CHECK(runner.x.rank() == 2 && runner.x.dim(1) == model_.num_classes,
             "engine branch output is not [N x classes]");
  return std::move(runner.x);
}

Tensor Engine::predict_probabilities(const Tensor& sample) const {
  return softmax_rows(forward(sample));
}

std::int64_t Engine::model_bytes() const {
  return static_cast<std::int64_t>(serialize(model_).size());
}

}  // namespace lcrs::webinfer
