// Forward-only execution engine for WebModel blobs.
//
// This is the C++ core the paper compiles to JavaScript/WASM with
// Emscripten (Fig. 3): it has no dependency on the training framework --
// only the tensor math and the XNOR kernels -- and runs the conv1 +
// binary-branch slice on the "browser". Outputs are validated against the
// training framework's inference in tests (the paper validates against
// PyTorch the same way).
#pragma once

#include "webinfer/format.h"

namespace lcrs::webinfer {

class Engine {
 public:
  explicit Engine(WebModel model);

  /// Loads a serialized blob (what the browser downloads).
  static Engine from_bytes(const std::vector<std::uint8_t>& bytes);

  /// Runs the op list on a [N, C, H, W] batch; returns logits
  /// [N, num_classes].
  Tensor forward(const Tensor& input) const;

  /// Runs only the shared conv1 stage; the result is Algorithm 2's `t`,
  /// the tensor uploaded to the edge server on an entropy miss.
  Tensor forward_shared(const Tensor& input) const;

  /// Runs the binary branch on a shared feature map.
  Tensor forward_branch(const Tensor& shared) const;

  /// Softmax probabilities for a single [1, C, H, W] sample.
  Tensor predict_probabilities(const Tensor& sample) const;

  const WebModel& model() const { return model_; }

  /// Serialized size of the model (browser download bytes).
  std::int64_t model_bytes() const;

 private:
  WebModel model_;
};

}  // namespace lcrs::webinfer
