#include "webinfer/format.h"

#include "tensor/serialize.h"

namespace lcrs::webinfer {

namespace {

constexpr std::uint32_t kWebModelMagic = 0x4c435257;  // "LCRW"
constexpr std::uint32_t kVersion = 1;

enum class OpTag : std::uint8_t {
  kConv2d = 0,
  kBinaryConv2d = 1,
  kLinear = 2,
  kBinaryLinear = 3,
  kBatchNorm = 4,
  kActivation = 5,
  kMaxPool = 6,
  kGlobalAvgPool = 7,
  kFlatten = 8,
};

void write_geom(ByteWriter& w, const ConvGeom& g) {
  w.write_i64(g.in_c);
  w.write_i64(g.in_h);
  w.write_i64(g.in_w);
  w.write_i64(g.kernel);
  w.write_i64(g.stride);
  w.write_i64(g.pad);
}

ConvGeom read_geom(ByteReader& r) {
  ConvGeom g;
  g.in_c = r.read_i64();
  g.in_h = r.read_i64();
  g.in_w = r.read_i64();
  g.kernel = r.read_i64();
  g.stride = r.read_i64();
  g.pad = r.read_i64();
  g.validate();
  return g;
}

struct OpSerializer {
  ByteWriter& w;

  void operator()(const Conv2dOp& op) {
    w.write_u8(static_cast<std::uint8_t>(OpTag::kConv2d));
    write_geom(w, op.geom);
    w.write_i64(op.out_c);
    w.write_u8(op.has_bias ? 1 : 0);
    write_tensor(w, op.weight);
    write_tensor(w, op.bias);
  }
  void operator()(const BinaryConv2dOp& op) {
    w.write_u8(static_cast<std::uint8_t>(OpTag::kBinaryConv2d));
    write_geom(w, op.geom);
    w.write_i64(op.out_c);
    op.weight_bits.serialize(w);
    write_tensor(w, op.alpha);
  }
  void operator()(const LinearOp& op) {
    w.write_u8(static_cast<std::uint8_t>(OpTag::kLinear));
    w.write_i64(op.in);
    w.write_i64(op.out);
    w.write_u8(op.has_bias ? 1 : 0);
    write_tensor(w, op.weight);
    write_tensor(w, op.bias);
  }
  void operator()(const BinaryLinearOp& op) {
    w.write_u8(static_cast<std::uint8_t>(OpTag::kBinaryLinear));
    w.write_i64(op.in);
    w.write_i64(op.out);
    w.write_u8(op.has_bias ? 1 : 0);
    op.weight_bits.serialize(w);
    write_tensor(w, op.alpha);
    write_tensor(w, op.bias);
  }
  void operator()(const BatchNormOp& op) {
    w.write_u8(static_cast<std::uint8_t>(OpTag::kBatchNorm));
    w.write_i64(op.channels);
    write_tensor(w, op.scale);
    write_tensor(w, op.shift);
  }
  void operator()(const ActivationOp& op) {
    w.write_u8(static_cast<std::uint8_t>(OpTag::kActivation));
    w.write_u8(static_cast<std::uint8_t>(op.kind));
  }
  void operator()(const MaxPoolOp& op) {
    w.write_u8(static_cast<std::uint8_t>(OpTag::kMaxPool));
    w.write_i64(op.kernel);
    w.write_i64(op.stride);
  }
  void operator()(const GlobalAvgPoolOp&) {
    w.write_u8(static_cast<std::uint8_t>(OpTag::kGlobalAvgPool));
  }
  void operator()(const FlattenOp&) {
    w.write_u8(static_cast<std::uint8_t>(OpTag::kFlatten));
  }
};

Op read_op(ByteReader& r) {
  const OpTag tag = static_cast<OpTag>(r.read_u8());
  switch (tag) {
    case OpTag::kConv2d: {
      Conv2dOp op;
      op.geom = read_geom(r);
      op.out_c = r.read_i64();
      op.has_bias = r.read_u8() != 0;
      op.weight = read_tensor(r);
      op.bias = read_tensor(r);
      return op;
    }
    case OpTag::kBinaryConv2d: {
      BinaryConv2dOp op;
      op.geom = read_geom(r);
      op.out_c = r.read_i64();
      op.weight_bits = binary::BitMatrix::deserialize(r);
      op.alpha = read_tensor(r);
      return op;
    }
    case OpTag::kLinear: {
      LinearOp op;
      op.in = r.read_i64();
      op.out = r.read_i64();
      op.has_bias = r.read_u8() != 0;
      op.weight = read_tensor(r);
      op.bias = read_tensor(r);
      return op;
    }
    case OpTag::kBinaryLinear: {
      BinaryLinearOp op;
      op.in = r.read_i64();
      op.out = r.read_i64();
      op.has_bias = r.read_u8() != 0;
      op.weight_bits = binary::BitMatrix::deserialize(r);
      op.alpha = read_tensor(r);
      op.bias = read_tensor(r);
      return op;
    }
    case OpTag::kBatchNorm: {
      BatchNormOp op;
      op.channels = r.read_i64();
      op.scale = read_tensor(r);
      op.shift = read_tensor(r);
      return op;
    }
    case OpTag::kActivation: {
      ActivationOp op;
      op.kind = static_cast<ActivationOp::Kind>(r.read_u8());
      if (op.kind != ActivationOp::Kind::kReLU &&
          op.kind != ActivationOp::Kind::kTanh &&
          op.kind != ActivationOp::Kind::kHardTanh) {
        throw ParseError("bad activation kind");
      }
      return op;
    }
    case OpTag::kMaxPool: {
      MaxPoolOp op;
      op.kernel = r.read_i64();
      op.stride = r.read_i64();
      if (op.kernel < 1 || op.stride < 1) throw ParseError("bad pool op");
      return op;
    }
    case OpTag::kGlobalAvgPool:
      return GlobalAvgPoolOp{};
    case OpTag::kFlatten:
      return FlattenOp{};
  }
  throw ParseError("unknown op tag");
}

}  // namespace

std::vector<std::uint8_t> serialize(const WebModel& model) {
  ByteWriter w;
  w.write_u32(kWebModelMagic);
  w.write_u32(kVersion);
  w.write_i64(model.in_c);
  w.write_i64(model.in_h);
  w.write_i64(model.in_w);
  w.write_i64(model.num_classes);
  w.write_i64(model.shared_op_count);
  w.write_u32(static_cast<std::uint32_t>(model.ops.size()));
  for (const Op& op : model.ops) std::visit(OpSerializer{w}, op);
  return w.take();
}

WebModel deserialize(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.read_u32() != kWebModelMagic) throw ParseError("bad web model magic");
  if (r.read_u32() != kVersion) throw ParseError("unsupported version");
  WebModel m;
  m.in_c = r.read_i64();
  m.in_h = r.read_i64();
  m.in_w = r.read_i64();
  m.num_classes = r.read_i64();
  m.shared_op_count = r.read_i64();
  const std::uint32_t n = r.read_u32();
  if (n > 4096) throw ParseError("op list too long");
  if (m.shared_op_count < 0 ||
      m.shared_op_count > static_cast<std::int64_t>(n)) {
    throw ParseError("bad shared_op_count");
  }
  m.ops.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.ops.push_back(read_op(r));
  // The blob is exactly one model: trailing bytes mean a corrupted
  // download or a smuggled payload, and accepting them would break the
  // serialize(deserialize(b)) == b canonical-format invariant the fuzz
  // harness enforces.
  if (!r.at_end()) {
    throw ParseError("trailing bytes after web model blob");
  }
  return m;
}

}  // namespace lcrs::webinfer
