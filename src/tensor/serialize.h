// Tensor (de)serialization into the library's byte format.
#pragma once

#include "common/bytes.h"
#include "tensor/tensor.h"

namespace lcrs {

/// Appends shape + raw float32 payload.
void write_tensor(ByteWriter& w, const Tensor& t);

/// Reads a tensor previously written by write_tensor.
Tensor read_tensor(ByteReader& r);

/// Serialized size in bytes of a tensor with `numel` elements (header +
/// payload); used by the cost model to price intermediate transfers.
std::int64_t tensor_wire_bytes(const Shape& shape);

}  // namespace lcrs
