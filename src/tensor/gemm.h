// Single-precision matrix multiplication kernels.
//
// Convolution in this library is im2col + GEMM, so this file is the hot
// path for both training and full-precision inference. The blocked kernel
// is cache-tiled and register-accumulated; `gemm_naive` is the oracle the
// tests compare against.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace lcrs {

/// C[m x n] = A[m x k] * B[k x n]. `beta` scales the existing contents of
/// C before accumulation (0 overwrites, 1 accumulates).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, float beta = 0.0f);

/// C[m x n] = A^T[k x m]^T... i.e. A is stored [k x m] and used transposed.
void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta = 0.0f);

/// C[m x n] = A[m x k] * B^T where B is stored [n x k].
void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta = 0.0f);

/// Reference triple loop; used by tests as ground truth.
void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n, float beta = 0.0f);

/// Convenience wrappers on Tensor (rank-2 operands).
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor matmul_bt(const Tensor& a, const Tensor& b_t);

}  // namespace lcrs
