// Single-precision matrix multiplication kernels.
//
// Convolution in this library is im2col + GEMM, so this file is the hot
// path for both training and full-precision inference. The blocked kernel
// is cache-tiled and register-accumulated, with SIMD inner loops
// dispatched at runtime (common/simd.h: AVX2/SSE with a scalar
// fallback); `gemm_naive` is the oracle the tests compare against.
//
// Parity contract: every variant of `gemm`/`gemm_packed_a` computes each
// output element as one ascending-k accumulation chain, so results are
// row-pure (row i of a batched multiply is bit-identical to the same row
// multiplied alone) at every dispatch level. Across levels the chains
// agree up to FMA-vs-mul+add rounding; tests bound the difference with a
// k-scaled ULP tolerance (see DESIGN.md "SIMD kernel layer").
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace lcrs {

/// C[m x n] = A[m x k] * B[k x n]. `beta` scales the existing contents of
/// C before accumulation (0 overwrites, 1 accumulates).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, float beta = 0.0f);

/// C[m x n] = A^T[k x m]^T... i.e. A is stored [k x m] and used transposed.
void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta = 0.0f);

/// C[m x n] = A[m x k] * B^T where B is stored [n x k].
void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta = 0.0f);

/// Reference triple loop; used by tests as ground truth.
void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n, float beta = 0.0f);

/// Panel-packed left operand for the prepared serving GEMM
/// (Conv2d::prepare_inference() packs the [out_c x patch] weight matrix
/// once; every completion then reuses the panels). Rows are grouped in
/// panels of kPanelRows and stored k-major within the panel --
/// panels[(p * k + kk) * kPanelRows + r] == a[(p * kPanelRows + r) * k
/// + kk] -- so the microkernel's per-k broadcasts of a panel's row
/// values read one contiguous quad instead of kPanelRows cache lines.
/// The last panel's missing rows are zero-padded.
struct PackedA {
  static constexpr std::int64_t kPanelRows = 4;

  std::int64_t m = 0, k = 0;
  std::vector<float> panels;

  bool empty() const { return m == 0; }
  std::int64_t panel_count() const {
    return (m + kPanelRows - 1) / kPanelRows;
  }
};

PackedA pack_a_panels(const float* a, std::int64_t m, std::int64_t k);

/// C[m x n] = packed_a * B[k x n], overwriting C. Same ascending-k
/// accumulation chain per output as `gemm` (row-pure at any batch size);
/// the packed layout only changes how the weights are *read*.
void gemm_packed_a(const PackedA& a, const float* b, float* c,
                   std::int64_t n);

/// Convenience wrappers on Tensor (rank-2 operands).
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor matmul_bt(const Tensor& a, const Tensor& b_t);

}  // namespace lcrs
