#include "tensor/shape.h"

#include <sstream>

namespace lcrs {

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace lcrs
