// Elementwise and reduction operations on tensors.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace lcrs {

/// out = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);

/// a += b in place.
void add_inplace(Tensor& a, const Tensor& b);

/// a += alpha * b in place (axpy).
void axpy_inplace(Tensor& a, float alpha, const Tensor& b);

/// out = a - b.
Tensor sub(const Tensor& a, const Tensor& b);

/// out = a * b elementwise (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);

/// out = a * s.
Tensor scale(const Tensor& a, float s);
void scale_inplace(Tensor& a, float s);

/// Sum of all elements.
double sum(const Tensor& a);

/// Mean of all elements.
double mean(const Tensor& a);

/// Mean of |x| over all elements (the alpha factor of XNOR-Net).
double mean_abs(const Tensor& a);

/// Max element value.
float max_value(const Tensor& a);

/// Index of the max element in a flat view.
std::int64_t argmax(const Tensor& a);

/// Row-wise argmax for a rank-2 [rows x cols] tensor.
std::vector<std::int64_t> argmax_rows(const Tensor& logits);

/// Numerically stable row-wise softmax of a rank-2 [rows x cols] tensor.
Tensor softmax_rows(const Tensor& logits);

/// Elementwise sign with sign(0) = +1, matching XNOR-Net binarization.
Tensor sign(const Tensor& a);

/// L1 norm (sum of |x|).
double l1_norm(const Tensor& a);

/// L2 norm.
double l2_norm(const Tensor& a);

/// Largest absolute difference between two same-shaped tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Concatenates tensors along the outermost dimension: parts with shapes
/// [n_i, d1, ...] (identical inner dims, identical rank >= 1) become one
/// [sum(n_i), d1, ...] tensor. The inverse of slice_outer: each part's
/// rows are copied verbatim, so stacking then slicing is bit-identical.
/// Used by the edge batcher to coalesce per-request conv1 feature maps
/// into one batched forward.
Tensor stack_outer(const std::vector<Tensor>& parts);

}  // namespace lcrs
