// Dense float32 tensor, the workhorse value type of the library.
//
// Design notes:
//  * Contiguous row-major storage; NCHW layout for image batches.
//  * Value semantics with shared storage would invite aliasing bugs in a
//    training framework, so Tensor owns its buffer and copies are deep.
//    Moves are cheap; kernels pass by const& / return by value.
//  * Element type is float only -- the paper's models are float32 with a
//    separate bit-packed representation in src/binary for the XNOR path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/shape.h"

namespace lcrs {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    LCRS_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
               "data size " << data_.size() << " != numel "
                            << shape_.numel());
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }

  /// I.i.d. draws from N(mean, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);

  /// I.i.d. draws from U[lo, hi).
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  /// Kaiming-style fan-in init used for conv/linear weights.
  static Tensor kaiming(Shape shape, Rng& rng, std::int64_t fan_in);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  std::int64_t dim(std::int64_t i) const { return shape_[i]; }
  std::int64_t rank() const { return shape_.rank(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) {
    LCRS_ASSERT(i >= 0 && i < numel(), "flat index out of range");
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    LCRS_ASSERT(i >= 0 && i < numel(), "flat index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  /// NCHW accessor for rank-4 tensors.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(flat4(n, c, h, w))];
  }
  float at4(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const {
    return data_[static_cast<std::size_t>(flat4(n, c, h, w))];
  }

  /// Row-major accessor for rank-2 tensors.
  float& at2(std::int64_t r, std::int64_t c) {
    LCRS_ASSERT(rank() == 2, "at2 on rank " << rank());
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at2(std::int64_t r, std::int64_t c) const {
    LCRS_ASSERT(rank() == 2, "at2 on rank " << rank());
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  /// Returns a tensor viewing the same data with a new shape (copying;
  /// numel must match).
  Tensor reshaped(Shape new_shape) const;

  /// Copies row range [begin, end) of the outermost dimension.
  Tensor slice_outer(std::int64_t begin, std::int64_t end) const;

  void fill(float value);

  bool same_shape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

 private:
  std::int64_t flat4(std::int64_t n, std::int64_t c, std::int64_t h,
                     std::int64_t w) const {
    LCRS_ASSERT(rank() == 4, "at4 on rank " << rank());
    return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace lcrs
