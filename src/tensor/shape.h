// Tensor shape: an ordered list of dimension extents.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.h"

namespace lcrs {

/// Immutable-ish value type describing a tensor's extents, outermost first.
/// Convolutional tensors use NCHW order throughout the library.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  std::int64_t rank() const { return static_cast<std::int64_t>(dims_.size()); }

  std::int64_t operator[](std::int64_t i) const {
    LCRS_CHECK(i >= 0 && i < rank(), "shape index " << i << " out of rank "
                                                    << rank());
    return dims_[static_cast<std::size_t>(i)];
  }

  /// Total number of elements (1 for a rank-0 scalar shape). Overflow is
  /// impossible for any constructed Shape: validate() bounds the product
  /// at construction, so deserializers that build a Shape from wire dims
  /// get the overflow check for free.
  std::int64_t numel() const {
    std::int64_t n = 1;
    for (const auto d : dims_) n *= d;
    return n;
  }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Human-readable form, e.g. "[32, 3, 28, 28]".
  std::string to_string() const;

 private:
  void validate() const {
    // Checked product: a shape whose element count overflows int64 would
    // turn every downstream numel()-derived allocation size into garbage
    // (possibly small and positive), so it is rejected at construction.
    std::int64_t n = 1;
    for (const auto d : dims_) {
      LCRS_CHECK(d >= 0, "negative dimension in shape " << to_string());
      LCRS_CHECK(!__builtin_mul_overflow(n, d, &n),
                 "element count overflows int64 in shape " << to_string());
    }
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace lcrs
