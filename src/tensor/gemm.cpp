#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/parallel.h"
#include "common/simd.h"

#if LCRS_SIMD_COMPILED_AVX2 || LCRS_SIMD_COMPILED_SSE
#include <immintrin.h>
#endif
#if LCRS_SIMD_COMPILED_NEON
#include <arm_neon.h>
#endif

namespace lcrs {

namespace {

// Tile sizes chosen for ~32 KiB L1: one A tile + one B tile fit together.
constexpr std::int64_t kTileM = 64;
constexpr std::int64_t kTileN = 64;
constexpr std::int64_t kTileK = 64;

void scale_c(float* c, std::int64_t m, std::int64_t n, float beta) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return;
  }
  for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
}

// Every tile kernel computes
//   C[i0..i1, j0..j1] += A[i0..i1, k0..k1] * B[k0..k1, j0..j1]
// with each C element updated in ascending-k order, so all variants are
// row-pure and agree with each other up to FMA rounding. The SIMD
// variants vectorize across j (independent outputs) and keep the k loop
// serial per element -- the order is what the batched serving path's
// bit-identity property stands on, so do not reassociate it.

void tile_kernel_scalar(const float* a, const float* b, float* c,
                        std::int64_t k, std::int64_t n, std::int64_t i0,
                        std::int64_t i1, std::int64_t j0, std::int64_t j1,
                        std::int64_t k0, std::int64_t k1) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

#if LCRS_SIMD_COMPILED_AVX2

inline __m256 madd8(__m256 a, __m256 b, __m256 c) {
#if defined(__FMA__)
  return _mm256_fmadd_ps(a, b, c);
#else
  return _mm256_add_ps(_mm256_mul_ps(a, b), c);
#endif
}

void tile_kernel_avx2(const float* a, const float* b, float* c,
                      std::int64_t k, std::int64_t n, std::int64_t i0,
                      std::int64_t i1, std::int64_t j0, std::int64_t j1,
                      std::int64_t k0, std::int64_t k1) {
  std::int64_t i = i0;
  // 4 rows x 16 columns held in registers across the k tile: 8
  // accumulators + 2 B vectors + 1 broadcast stay within 16 ymm regs.
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    std::int64_t j = j0;
    for (; j + 16 <= j1; j += 16) {
      __m256 x00 = _mm256_loadu_ps(c0 + j), x01 = _mm256_loadu_ps(c0 + j + 8);
      __m256 x10 = _mm256_loadu_ps(c1 + j), x11 = _mm256_loadu_ps(c1 + j + 8);
      __m256 x20 = _mm256_loadu_ps(c2 + j), x21 = _mm256_loadu_ps(c2 + j + 8);
      __m256 x30 = _mm256_loadu_ps(c3 + j), x31 = _mm256_loadu_ps(c3 + j + 8);
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const float* brow = b + kk * n + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_broadcast_ss(a0 + kk);
        x00 = madd8(av, b0, x00);
        x01 = madd8(av, b1, x01);
        av = _mm256_broadcast_ss(a1 + kk);
        x10 = madd8(av, b0, x10);
        x11 = madd8(av, b1, x11);
        av = _mm256_broadcast_ss(a2 + kk);
        x20 = madd8(av, b0, x20);
        x21 = madd8(av, b1, x21);
        av = _mm256_broadcast_ss(a3 + kk);
        x30 = madd8(av, b0, x30);
        x31 = madd8(av, b1, x31);
      }
      _mm256_storeu_ps(c0 + j, x00);
      _mm256_storeu_ps(c0 + j + 8, x01);
      _mm256_storeu_ps(c1 + j, x10);
      _mm256_storeu_ps(c1 + j + 8, x11);
      _mm256_storeu_ps(c2 + j, x20);
      _mm256_storeu_ps(c2 + j + 8, x21);
      _mm256_storeu_ps(c3 + j, x30);
      _mm256_storeu_ps(c3 + j + 8, x31);
    }
    for (; j + 8 <= j1; j += 8) {
      __m256 x0 = _mm256_loadu_ps(c0 + j);
      __m256 x1 = _mm256_loadu_ps(c1 + j);
      __m256 x2 = _mm256_loadu_ps(c2 + j);
      __m256 x3 = _mm256_loadu_ps(c3 + j);
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const __m256 bv = _mm256_loadu_ps(b + kk * n + j);
        x0 = madd8(_mm256_broadcast_ss(a0 + kk), bv, x0);
        x1 = madd8(_mm256_broadcast_ss(a1 + kk), bv, x1);
        x2 = madd8(_mm256_broadcast_ss(a2 + kk), bv, x2);
        x3 = madd8(_mm256_broadcast_ss(a3 + kk), bv, x3);
      }
      _mm256_storeu_ps(c0 + j, x0);
      _mm256_storeu_ps(c1 + j, x1);
      _mm256_storeu_ps(c2 + j, x2);
      _mm256_storeu_ps(c3 + j, x3);
    }
    if (j < j1) {
      tile_kernel_scalar(a, b, c, k, n, i, i + 4, j, j1, k0, k1);
    }
  }
  for (; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      __m256 x = _mm256_loadu_ps(crow + j);
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        x = madd8(_mm256_broadcast_ss(arow + kk),
                  _mm256_loadu_ps(b + kk * n + j), x);
      }
      _mm256_storeu_ps(crow + j, x);
    }
    if (j < j1) {
      tile_kernel_scalar(a, b, c, k, n, i, i + 1, j, j1, k0, k1);
    }
  }
}

#endif  // LCRS_SIMD_COMPILED_AVX2

#if LCRS_SIMD_COMPILED_SSE

void tile_kernel_sse(const float* a, const float* b, float* c,
                     std::int64_t k, std::int64_t n, std::int64_t i0,
                     std::int64_t i1, std::int64_t j0, std::int64_t j1,
                     std::int64_t k0, std::int64_t k1) {
  std::int64_t i = i0;
  // 2 rows x 8 columns (4 xmm accumulators); SSE2 has no FMA, so this
  // level is plain mul+add -- still the same ascending-k chain.
  for (; i + 2 <= i1; i += 2) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    std::int64_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      __m128 x00 = _mm_loadu_ps(c0 + j), x01 = _mm_loadu_ps(c0 + j + 4);
      __m128 x10 = _mm_loadu_ps(c1 + j), x11 = _mm_loadu_ps(c1 + j + 4);
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const float* brow = b + kk * n + j;
        const __m128 b0 = _mm_loadu_ps(brow);
        const __m128 b1 = _mm_loadu_ps(brow + 4);
        __m128 av = _mm_set1_ps(a0[kk]);
        x00 = _mm_add_ps(x00, _mm_mul_ps(av, b0));
        x01 = _mm_add_ps(x01, _mm_mul_ps(av, b1));
        av = _mm_set1_ps(a1[kk]);
        x10 = _mm_add_ps(x10, _mm_mul_ps(av, b0));
        x11 = _mm_add_ps(x11, _mm_mul_ps(av, b1));
      }
      _mm_storeu_ps(c0 + j, x00);
      _mm_storeu_ps(c0 + j + 4, x01);
      _mm_storeu_ps(c1 + j, x10);
      _mm_storeu_ps(c1 + j + 4, x11);
    }
    if (j < j1) {
      tile_kernel_scalar(a, b, c, k, n, i, i + 2, j, j1, k0, k1);
    }
  }
  if (i < i1) {
    tile_kernel_scalar(a, b, c, k, n, i, i1, j0, j1, k0, k1);
  }
}

#endif  // LCRS_SIMD_COMPILED_SSE

#if LCRS_SIMD_COMPILED_NEON

void tile_kernel_neon(const float* a, const float* b, float* c,
                      std::int64_t k, std::int64_t n, std::int64_t i0,
                      std::int64_t i1, std::int64_t j0, std::int64_t j1,
                      std::int64_t k0, std::int64_t k1) {
  std::int64_t i = i0;
  // 2 rows x 8 columns; vfmaq is fused like the AVX2 path.
  for (; i + 2 <= i1; i += 2) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    std::int64_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      float32x4_t x00 = vld1q_f32(c0 + j), x01 = vld1q_f32(c0 + j + 4);
      float32x4_t x10 = vld1q_f32(c1 + j), x11 = vld1q_f32(c1 + j + 4);
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const float* brow = b + kk * n + j;
        const float32x4_t b0 = vld1q_f32(brow);
        const float32x4_t b1 = vld1q_f32(brow + 4);
        x00 = vfmaq_n_f32(x00, b0, a0[kk]);
        x01 = vfmaq_n_f32(x01, b1, a0[kk]);
        x10 = vfmaq_n_f32(x10, b0, a1[kk]);
        x11 = vfmaq_n_f32(x11, b1, a1[kk]);
      }
      vst1q_f32(c0 + j, x00);
      vst1q_f32(c0 + j + 4, x01);
      vst1q_f32(c1 + j, x10);
      vst1q_f32(c1 + j + 4, x11);
    }
    if (j < j1) {
      tile_kernel_scalar(a, b, c, k, n, i, i + 2, j, j1, k0, k1);
    }
  }
  if (i < i1) {
    tile_kernel_scalar(a, b, c, k, n, i, i1, j0, j1, k0, k1);
  }
}

#endif  // LCRS_SIMD_COMPILED_NEON

using TileKernel = void (*)(const float*, const float*, float*,
                            std::int64_t, std::int64_t, std::int64_t,
                            std::int64_t, std::int64_t, std::int64_t,
                            std::int64_t, std::int64_t);

TileKernel select_tile_kernel() {
  const simd::Level level = simd::active_level();
#if LCRS_SIMD_COMPILED_AVX2
  if (level == simd::Level::kAvx2) return tile_kernel_avx2;
#endif
#if LCRS_SIMD_COMPILED_SSE
  if (level == simd::Level::kSse) return tile_kernel_sse;
#endif
#if LCRS_SIMD_COMPILED_NEON
  if (level == simd::Level::kNeon) return tile_kernel_neon;
#endif
  (void)level;
  return tile_kernel_scalar;
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, float beta) {
  scale_c(c, m, n, beta);
  const TileKernel kernel = select_tile_kernel();
  parallel_for(m, [&](std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t i0 = row_begin; i0 < row_end; i0 += kTileM) {
      const std::int64_t i1 = std::min(i0 + kTileM, row_end);
      for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
        const std::int64_t k1 = std::min(k0 + kTileK, k);
        for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
          const std::int64_t j1 = std::min(j0 + kTileN, n);
          kernel(a, b, c, k, n, i0, i1, j0, j1, k0, k1);
        }
      }
    }
  });
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta) {
  // A is stored [k x m]; materialize the transpose once, then reuse the
  // blocked kernel. The copy is O(mk) against the O(mkn) multiply.
  std::vector<float> at(static_cast<std::size_t>(m * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < m; ++i) at[i * k + kk] = a[kk * m + i];
  }
  gemm(at.data(), b, c, m, k, n, beta);
}

namespace {

// One A row against four consecutive B rows. Four independent
// accumulator chains hide the FMA latency that a single running dot
// product serializes on; each chain still adds products in ascending-k
// order, so every output bit matches the plain dot-product kernel.
void bt_row(const float* arow, const float* b, float* crow, std::int64_t k,
            std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const float* b0 = b + j * k;
    const float* b1 = b0 + k;
    const float* b2 = b1 + k;
    const float* b3 = b2 + k;
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      s0 += av * b0[kk];
      s1 += av * b1[kk];
      s2 += av * b2[kk];
      s3 += av * b3[kk];
    }
    crow[j] += s0;
    crow[j + 1] += s1;
    crow[j + 2] += s2;
    crow[j + 3] += s3;
  }
  for (; j < n; ++j) {
    const float* brow = b + j * k;
    float acc = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
    crow[j] += acc;
  }
}

}  // namespace

void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta) {
  // B is stored [n x k]: dot products over contiguous rows of both
  // operands, so no transpose is needed. Rows are processed in pairs so
  // each streamed B row feeds two A rows, halving B traffic for batched
  // inputs; within a pair the 2x4 microkernel keeps eight independent
  // accumulators in flight. Every c[i][j] is still a single ascending-k
  // accumulation over (A row i, B row j) regardless of m, so results are
  // bit-identical for any batch size -- the row-independence the batched
  // edge serving path relies on. This training-path kernel is left
  // scalar on purpose: a vectorized dot product needs lane-split partial
  // sums, which would reassociate the chain.
  scale_c(c, m, n, beta);
  parallel_for(m, [&](std::int64_t row_begin, std::int64_t row_end) {
    std::int64_t i = row_begin;
    for (; i + 2 <= row_end; i += 2) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      float* c0 = c + i * n;
      float* c1 = c0 + n;
      std::int64_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const float* b0 = b + j * k;
        const float* b1 = b0 + k;
        const float* b2 = b1 + k;
        const float* b3 = b2 + k;
        float s00 = 0.0f, s01 = 0.0f, s02 = 0.0f, s03 = 0.0f;
        float s10 = 0.0f, s11 = 0.0f, s12 = 0.0f, s13 = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float av0 = a0[kk], av1 = a1[kk];
          const float bv0 = b0[kk], bv1 = b1[kk];
          const float bv2 = b2[kk], bv3 = b3[kk];
          s00 += av0 * bv0;
          s01 += av0 * bv1;
          s02 += av0 * bv2;
          s03 += av0 * bv3;
          s10 += av1 * bv0;
          s11 += av1 * bv1;
          s12 += av1 * bv2;
          s13 += av1 * bv3;
        }
        c0[j] += s00;
        c0[j + 1] += s01;
        c0[j + 2] += s02;
        c0[j + 3] += s03;
        c1[j] += s10;
        c1[j + 1] += s11;
        c1[j + 2] += s12;
        c1[j + 3] += s13;
      }
      for (; j < n; ++j) {
        const float* brow = b + j * k;
        float s0 = 0.0f, s1 = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          s0 += a0[kk] * brow[kk];
          s1 += a1[kk] * brow[kk];
        }
        c0[j] += s0;
        c1[j] += s1;
      }
    }
    for (; i < row_end; ++i) {
      bt_row(a + i * k, b, c + i * n, k, n);
    }
  });
}

void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n, float beta) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = beta * c[i * n + j] + acc;
    }
  }
}

PackedA pack_a_panels(const float* a, std::int64_t m, std::int64_t k) {
  LCRS_CHECK(m >= 0 && k >= 0, "pack_a_panels negative dims");
  PackedA p;
  p.m = m;
  p.k = k;
  const std::int64_t panels = p.panel_count();
  p.panels.assign(
      static_cast<std::size_t>(panels * k * PackedA::kPanelRows), 0.0f);
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t panel = i / PackedA::kPanelRows;
    const std::int64_t r = i % PackedA::kPanelRows;
    const float* src = a + i * k;
    float* dst = p.panels.data() + panel * k * PackedA::kPanelRows;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      dst[kk * PackedA::kPanelRows + r] = src[kk];
    }
  }
  return p;
}

namespace {

// Panel microkernels: C rows [r0, r0+rows) over all n columns from one
// zero state, ascending k. `pan` is the panel base (k-major quads).

void panel_rows_scalar(const float* pan, const float* b, float* c,
                       std::int64_t k, std::int64_t n, std::int64_t rows) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* crow = c + r * n;
    std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = pan[kk * PackedA::kPanelRows + r];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

#if LCRS_SIMD_COMPILED_AVX2

void panel_rows_avx2(const float* pan, const float* b, float* c,
                     std::int64_t k, std::int64_t n, std::int64_t rows) {
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 x00 = _mm256_setzero_ps(), x01 = _mm256_setzero_ps();
    __m256 x10 = _mm256_setzero_ps(), x11 = _mm256_setzero_ps();
    __m256 x20 = _mm256_setzero_ps(), x21 = _mm256_setzero_ps();
    __m256 x30 = _mm256_setzero_ps(), x31 = _mm256_setzero_ps();
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* quad = pan + kk * PackedA::kPanelRows;
      const float* brow = b + kk * n + j;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      __m256 av = _mm256_broadcast_ss(quad);
      x00 = madd8(av, b0, x00);
      x01 = madd8(av, b1, x01);
      av = _mm256_broadcast_ss(quad + 1);
      x10 = madd8(av, b0, x10);
      x11 = madd8(av, b1, x11);
      av = _mm256_broadcast_ss(quad + 2);
      x20 = madd8(av, b0, x20);
      x21 = madd8(av, b1, x21);
      av = _mm256_broadcast_ss(quad + 3);
      x30 = madd8(av, b0, x30);
      x31 = madd8(av, b1, x31);
    }
    // Padded panel rows compute garbage-free zeros; only real rows land.
    if (rows > 0) {
      _mm256_storeu_ps(c + j, x00);
      _mm256_storeu_ps(c + j + 8, x01);
    }
    if (rows > 1) {
      _mm256_storeu_ps(c + n + j, x10);
      _mm256_storeu_ps(c + n + j + 8, x11);
    }
    if (rows > 2) {
      _mm256_storeu_ps(c + 2 * n + j, x20);
      _mm256_storeu_ps(c + 2 * n + j + 8, x21);
    }
    if (rows > 3) {
      _mm256_storeu_ps(c + 3 * n + j, x30);
      _mm256_storeu_ps(c + 3 * n + j + 8, x31);
    }
  }
  for (; j + 8 <= n; j += 8) {
    __m256 x0 = _mm256_setzero_ps(), x1 = _mm256_setzero_ps();
    __m256 x2 = _mm256_setzero_ps(), x3 = _mm256_setzero_ps();
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* quad = pan + kk * PackedA::kPanelRows;
      const __m256 bv = _mm256_loadu_ps(b + kk * n + j);
      x0 = madd8(_mm256_broadcast_ss(quad), bv, x0);
      x1 = madd8(_mm256_broadcast_ss(quad + 1), bv, x1);
      x2 = madd8(_mm256_broadcast_ss(quad + 2), bv, x2);
      x3 = madd8(_mm256_broadcast_ss(quad + 3), bv, x3);
    }
    if (rows > 0) _mm256_storeu_ps(c + j, x0);
    if (rows > 1) _mm256_storeu_ps(c + n + j, x1);
    if (rows > 2) _mm256_storeu_ps(c + 2 * n + j, x2);
    if (rows > 3) _mm256_storeu_ps(c + 3 * n + j, x3);
  }
  for (; j < n; ++j) {
    for (std::int64_t r = 0; r < rows; ++r) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += pan[kk * PackedA::kPanelRows + r] * b[kk * n + j];
      }
      c[r * n + j] = acc;
    }
  }
}

#endif  // LCRS_SIMD_COMPILED_AVX2

#if LCRS_SIMD_COMPILED_SSE

void panel_rows_sse(const float* pan, const float* b, float* c,
                    std::int64_t k, std::int64_t n, std::int64_t rows) {
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m128 x00 = _mm_setzero_ps(), x01 = _mm_setzero_ps();
    __m128 x10 = _mm_setzero_ps(), x11 = _mm_setzero_ps();
    __m128 x20 = _mm_setzero_ps(), x21 = _mm_setzero_ps();
    __m128 x30 = _mm_setzero_ps(), x31 = _mm_setzero_ps();
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* quad = pan + kk * PackedA::kPanelRows;
      const float* brow = b + kk * n + j;
      const __m128 b0 = _mm_loadu_ps(brow);
      const __m128 b1 = _mm_loadu_ps(brow + 4);
      __m128 av = _mm_set1_ps(quad[0]);
      x00 = _mm_add_ps(x00, _mm_mul_ps(av, b0));
      x01 = _mm_add_ps(x01, _mm_mul_ps(av, b1));
      av = _mm_set1_ps(quad[1]);
      x10 = _mm_add_ps(x10, _mm_mul_ps(av, b0));
      x11 = _mm_add_ps(x11, _mm_mul_ps(av, b1));
      av = _mm_set1_ps(quad[2]);
      x20 = _mm_add_ps(x20, _mm_mul_ps(av, b0));
      x21 = _mm_add_ps(x21, _mm_mul_ps(av, b1));
      av = _mm_set1_ps(quad[3]);
      x30 = _mm_add_ps(x30, _mm_mul_ps(av, b0));
      x31 = _mm_add_ps(x31, _mm_mul_ps(av, b1));
    }
    if (rows > 0) {
      _mm_storeu_ps(c + j, x00);
      _mm_storeu_ps(c + j + 4, x01);
    }
    if (rows > 1) {
      _mm_storeu_ps(c + n + j, x10);
      _mm_storeu_ps(c + n + j + 4, x11);
    }
    if (rows > 2) {
      _mm_storeu_ps(c + 2 * n + j, x20);
      _mm_storeu_ps(c + 2 * n + j + 4, x21);
    }
    if (rows > 3) {
      _mm_storeu_ps(c + 3 * n + j, x30);
      _mm_storeu_ps(c + 3 * n + j + 4, x31);
    }
  }
  for (; j < n; ++j) {
    for (std::int64_t r = 0; r < rows; ++r) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += pan[kk * PackedA::kPanelRows + r] * b[kk * n + j];
      }
      c[r * n + j] = acc;
    }
  }
}

#endif  // LCRS_SIMD_COMPILED_SSE

using PanelKernel = void (*)(const float*, const float*, float*,
                             std::int64_t, std::int64_t, std::int64_t);

PanelKernel select_panel_kernel() {
  const simd::Level level = simd::active_level();
#if LCRS_SIMD_COMPILED_AVX2
  if (level == simd::Level::kAvx2) return panel_rows_avx2;
#endif
#if LCRS_SIMD_COMPILED_SSE
  if (level == simd::Level::kSse) return panel_rows_sse;
#endif
  // No NEON variant yet: kNeon falls back to scalar for this kernel
  // (per-kernel fallback is part of the dispatch contract).
  (void)level;
  return panel_rows_scalar;
}

}  // namespace

void gemm_packed_a(const PackedA& a, const float* b, float* c,
                   std::int64_t n) {
  LCRS_CHECK(n >= 0, "gemm_packed_a negative n");
  if (a.m == 0 || n == 0) return;
  const PanelKernel kernel = select_panel_kernel();
  const std::int64_t panels = a.panel_count();
  parallel_for(panels, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t r0 = p * PackedA::kPanelRows;
      const std::int64_t rows =
          std::min<std::int64_t>(PackedA::kPanelRows, a.m - r0);
      kernel(a.panels.data() + p * a.k * PackedA::kPanelRows, b, c + r0 * n,
             a.k, n, rows);
    }
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  LCRS_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 tensors");
  LCRS_CHECK(a.dim(1) == b.dim(0), "matmul inner dims mismatch: "
                                       << a.shape().to_string() << " x "
                                       << b.shape().to_string());
  Tensor c{Shape{a.dim(0), b.dim(1)}};
  gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b_t) {
  LCRS_CHECK(a.rank() == 2 && b_t.rank() == 2,
             "matmul_bt expects rank-2 tensors");
  LCRS_CHECK(a.dim(1) == b_t.dim(1), "matmul_bt inner dims mismatch: "
                                         << a.shape().to_string() << " x "
                                         << b_t.shape().to_string() << "^T");
  Tensor c{Shape{a.dim(0), b_t.dim(0)}};
  gemm_bt(a.data(), b_t.data(), c.data(), a.dim(0), a.dim(1), b_t.dim(0));
  return c;
}

}  // namespace lcrs
