#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/parallel.h"

namespace lcrs {

namespace {

// Tile sizes chosen for ~32 KiB L1: one A tile + one B tile fit together.
constexpr std::int64_t kTileM = 64;
constexpr std::int64_t kTileN = 64;
constexpr std::int64_t kTileK = 64;

void scale_c(float* c, std::int64_t m, std::int64_t n, float beta) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return;
  }
  for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
}

// Inner kernel: C[i0..i1, j0..j1] += A[i0..i1, k0..k1] * B[k0..k1, j0..j1].
void tile_kernel(const float* a, const float* b, float* c, std::int64_t k,
                 std::int64_t n, std::int64_t i0, std::int64_t i1,
                 std::int64_t j0, std::int64_t j1, std::int64_t k0,
                 std::int64_t k1) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, float beta) {
  scale_c(c, m, n, beta);
  parallel_for(m, [&](std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t i0 = row_begin; i0 < row_end; i0 += kTileM) {
      const std::int64_t i1 = std::min(i0 + kTileM, row_end);
      for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
        const std::int64_t k1 = std::min(k0 + kTileK, k);
        for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
          const std::int64_t j1 = std::min(j0 + kTileN, n);
          tile_kernel(a, b, c, k, n, i0, i1, j0, j1, k0, k1);
        }
      }
    }
  });
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta) {
  // A is stored [k x m]; materialize the transpose once, then reuse the
  // blocked kernel. The copy is O(mk) against the O(mkn) multiply.
  std::vector<float> at(static_cast<std::size_t>(m * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < m; ++i) at[i * k + kk] = a[kk * m + i];
  }
  gemm(at.data(), b, c, m, k, n, beta);
}

namespace {

// One A row against four consecutive B rows. Four independent
// accumulator chains hide the FMA latency that a single running dot
// product serializes on; each chain still adds products in ascending-k
// order, so every output bit matches the plain dot-product kernel.
void bt_row(const float* arow, const float* b, float* crow, std::int64_t k,
            std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const float* b0 = b + j * k;
    const float* b1 = b0 + k;
    const float* b2 = b1 + k;
    const float* b3 = b2 + k;
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      s0 += av * b0[kk];
      s1 += av * b1[kk];
      s2 += av * b2[kk];
      s3 += av * b3[kk];
    }
    crow[j] += s0;
    crow[j + 1] += s1;
    crow[j + 2] += s2;
    crow[j + 3] += s3;
  }
  for (; j < n; ++j) {
    const float* brow = b + j * k;
    float acc = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
    crow[j] += acc;
  }
}

}  // namespace

void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta) {
  // B is stored [n x k]: dot products over contiguous rows of both
  // operands, so no transpose is needed. Rows are processed in pairs so
  // each streamed B row feeds two A rows, halving B traffic for batched
  // inputs; within a pair the 2x4 microkernel keeps eight independent
  // accumulators in flight. Every c[i][j] is still a single ascending-k
  // accumulation over (A row i, B row j) regardless of m, so results are
  // bit-identical for any batch size -- the row-independence the batched
  // edge serving path relies on.
  scale_c(c, m, n, beta);
  parallel_for(m, [&](std::int64_t row_begin, std::int64_t row_end) {
    std::int64_t i = row_begin;
    for (; i + 2 <= row_end; i += 2) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      float* c0 = c + i * n;
      float* c1 = c0 + n;
      std::int64_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const float* b0 = b + j * k;
        const float* b1 = b0 + k;
        const float* b2 = b1 + k;
        const float* b3 = b2 + k;
        float s00 = 0.0f, s01 = 0.0f, s02 = 0.0f, s03 = 0.0f;
        float s10 = 0.0f, s11 = 0.0f, s12 = 0.0f, s13 = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float av0 = a0[kk], av1 = a1[kk];
          const float bv0 = b0[kk], bv1 = b1[kk];
          const float bv2 = b2[kk], bv3 = b3[kk];
          s00 += av0 * bv0;
          s01 += av0 * bv1;
          s02 += av0 * bv2;
          s03 += av0 * bv3;
          s10 += av1 * bv0;
          s11 += av1 * bv1;
          s12 += av1 * bv2;
          s13 += av1 * bv3;
        }
        c0[j] += s00;
        c0[j + 1] += s01;
        c0[j + 2] += s02;
        c0[j + 3] += s03;
        c1[j] += s10;
        c1[j + 1] += s11;
        c1[j + 2] += s12;
        c1[j + 3] += s13;
      }
      for (; j < n; ++j) {
        const float* brow = b + j * k;
        float s0 = 0.0f, s1 = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          s0 += a0[kk] * brow[kk];
          s1 += a1[kk] * brow[kk];
        }
        c0[j] += s0;
        c1[j] += s1;
      }
    }
    for (; i < row_end; ++i) {
      bt_row(a + i * k, b, c + i * n, k, n);
    }
  });
}

void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n, float beta) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = beta * c[i * n + j] + acc;
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  LCRS_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 tensors");
  LCRS_CHECK(a.dim(1) == b.dim(0), "matmul inner dims mismatch: "
                                       << a.shape().to_string() << " x "
                                       << b.shape().to_string());
  Tensor c{Shape{a.dim(0), b.dim(1)}};
  gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b_t) {
  LCRS_CHECK(a.rank() == 2 && b_t.rank() == 2,
             "matmul_bt expects rank-2 tensors");
  LCRS_CHECK(a.dim(1) == b_t.dim(1), "matmul_bt inner dims mismatch: "
                                         << a.shape().to_string() << " x "
                                         << b_t.shape().to_string() << "^T");
  Tensor c{Shape{a.dim(0), b_t.dim(0)}};
  gemm_bt(a.data(), b_t.data(), c.data(), a.dim(0), a.dim(1), b_t.dim(0));
  return c;
}

}  // namespace lcrs
