#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/parallel.h"

namespace lcrs {

namespace {

// Tile sizes chosen for ~32 KiB L1: one A tile + one B tile fit together.
constexpr std::int64_t kTileM = 64;
constexpr std::int64_t kTileN = 64;
constexpr std::int64_t kTileK = 64;

void scale_c(float* c, std::int64_t m, std::int64_t n, float beta) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return;
  }
  for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
}

// Inner kernel: C[i0..i1, j0..j1] += A[i0..i1, k0..k1] * B[k0..k1, j0..j1].
void tile_kernel(const float* a, const float* b, float* c, std::int64_t k,
                 std::int64_t n, std::int64_t i0, std::int64_t i1,
                 std::int64_t j0, std::int64_t j1, std::int64_t k0,
                 std::int64_t k1) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, float beta) {
  scale_c(c, m, n, beta);
  parallel_for(m, [&](std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t i0 = row_begin; i0 < row_end; i0 += kTileM) {
      const std::int64_t i1 = std::min(i0 + kTileM, row_end);
      for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
        const std::int64_t k1 = std::min(k0 + kTileK, k);
        for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
          const std::int64_t j1 = std::min(j0 + kTileN, n);
          tile_kernel(a, b, c, k, n, i0, i1, j0, j1, k0, k1);
        }
      }
    }
  });
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta) {
  // A is stored [k x m]; materialize the transpose once, then reuse the
  // blocked kernel. The copy is O(mk) against the O(mkn) multiply.
  std::vector<float> at(static_cast<std::size_t>(m * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < m; ++i) at[i * k + kk] = a[kk * m + i];
  }
  gemm(at.data(), b, c, m, k, n, beta);
}

void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float beta) {
  // B is stored [n x k]: dot products over contiguous rows of both
  // operands, which is already cache-friendly -- no transpose needed.
  scale_c(c, m, n, beta);
  parallel_for(m, [&](std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += acc;
      }
    }
  });
}

void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n, float beta) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = beta * c[i * n + j] + acc;
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  LCRS_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 tensors");
  LCRS_CHECK(a.dim(1) == b.dim(0), "matmul inner dims mismatch: "
                                       << a.shape().to_string() << " x "
                                       << b.shape().to_string());
  Tensor c{Shape{a.dim(0), b.dim(1)}};
  gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b_t) {
  LCRS_CHECK(a.rank() == 2 && b_t.rank() == 2,
             "matmul_bt expects rank-2 tensors");
  LCRS_CHECK(a.dim(1) == b_t.dim(1), "matmul_bt inner dims mismatch: "
                                         << a.shape().to_string() << " x "
                                         << b_t.shape().to_string() << "^T");
  Tensor c{Shape{a.dim(0), b_t.dim(0)}};
  gemm_bt(a.data(), b_t.data(), c.data(), a.dim(0), a.dim(1), b_t.dim(0));
  return c;
}

}  // namespace lcrs
