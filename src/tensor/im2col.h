// im2col / col2im lowering for convolution.
//
// Conv2d forward lowers each input window to a column so convolution
// becomes one GEMM; col2im is the adjoint used in the backward pass.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace lcrs {

/// Static description of a 2-D convolution geometry.
struct ConvGeom {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t kernel = 1;   // square kernels only (all paper models)
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the lowered patch matrix (= one dot product per output pixel).
  std::int64_t patch_size() const { return in_c * kernel * kernel; }

  void validate() const;
};

/// Lowers one image [C, H, W] (flat pointer) into `cols` with layout
/// [patch_size x (out_h * out_w)]: row = (c, kh, kw), col = output pixel.
/// `pad_value` fills out-of-bounds taps: 0 for ordinary convolution, +1
/// when lowering an already-binarized input (sign(0) = +1 convention, so
/// the float-sign reference and the bit-packed XNOR path agree exactly).
void im2col(const float* image, const ConvGeom& g, float* cols,
            float pad_value = 0.0f);

/// Lowers `n` images stored back to back (`input` = n * C*H*W floats)
/// into per-sample [patch_size x out_pixels] blocks of `cols`, sample s
/// at offset s * patch_size * out_pixels. One call amortizes the
/// geometry setup and parallelizes across the whole coalesced batch
/// instead of per image -- the batched edge completion path uses this to
/// lower every queued request in one pass before the prepared GEMM.
void im2col_batch(const float* input, std::int64_t n, const ConvGeom& g,
                  float* cols, float pad_value = 0.0f);

/// Transposed lowering: `rows` gets [out_pixels x patch_size], row =
/// output pixel, col = (c, kh, kw). The pixel-major layout makes each
/// patch contiguous, which is what the fused binarize+bitpack consumes
/// (one patch row packs straight into one BitMatrix row). Interior
/// pixels copy each kernel row's `kernel` taps with one memcpy.
void im2col_rows(const float* image, const ConvGeom& g, float* rows,
                 float pad_value = 0.0f);

/// Adjoint of im2col: scatters `cols` gradients back into `image_grad`
/// (accumulating; caller zeroes the buffer).
void col2im(const float* cols, const ConvGeom& g, float* image_grad);

}  // namespace lcrs
