#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

#include "common/parallel.h"

namespace lcrs {

void ConvGeom::validate() const {
  LCRS_CHECK(in_c > 0 && in_h > 0 && in_w > 0,
             "conv geometry needs positive input dims");
  LCRS_CHECK(kernel > 0 && stride > 0 && pad >= 0,
             "conv geometry needs kernel>0, stride>0, pad>=0");
  // Per-field caps so every derived quantity (out_h * out_w, patch_size,
  // the patch * pixels buffer size) fits int64 with huge margin. Geometry
  // arrives from untrusted web-model blobs (webinfer read_geom), where a
  // forged field would otherwise overflow the arithmetic above into a
  // small positive buffer size and turn the lowering into a heap smash.
  constexpr std::int64_t kMaxExtent = 1 << 20;  // 1M pixels per axis
  LCRS_CHECK(in_c <= kMaxExtent && in_h <= kMaxExtent && in_w <= kMaxExtent &&
                 kernel <= kMaxExtent && stride <= kMaxExtent &&
                 pad <= kMaxExtent,
             "conv geometry field exceeds the 2^20 wire-format cap");
  LCRS_CHECK(in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel,
             "kernel " << kernel << " larger than padded input " << in_h
                       << "x" << in_w << " pad " << pad);
}

void im2col(const float* image, const ConvGeom& g, float* cols,
            float pad_value) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t out_pixels = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* chan = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        float* out_row = cols + row * out_pixels;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * g.stride + kh - g.pad;
          if (in_y < 0 || in_y >= g.in_h) {
            for (std::int64_t x = 0; x < ow; ++x) {
              out_row[y * ow + x] = pad_value;
            }
            continue;
          }
          const float* in_row = chan + in_y * g.in_w;
          if (g.stride == 1) {
            // in_x = x + kw - pad is affine with slope 1: the valid x
            // range is contiguous, so the interior is one memcpy.
            const std::int64_t lo =
                std::max<std::int64_t>(0, g.pad - kw);
            const std::int64_t hi =
                std::min<std::int64_t>(ow, g.in_w + g.pad - kw);
            float* dst = out_row + y * ow;
            for (std::int64_t x = 0; x < std::min<std::int64_t>(lo, ow);
                 ++x) {
              dst[x] = pad_value;
            }
            if (hi > lo) {
              std::memcpy(dst + lo, in_row + (lo + kw - g.pad),
                          static_cast<std::size_t>(hi - lo) *
                              sizeof(float));
            }
            for (std::int64_t x = std::max<std::int64_t>(hi, 0); x < ow;
                 ++x) {
              dst[x] = pad_value;
            }
            continue;
          }
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t in_x = x * g.stride + kw - g.pad;
            out_row[y * ow + x] =
                (in_x >= 0 && in_x < g.in_w) ? in_row[in_x] : pad_value;
          }
        }
      }
    }
  }
}

void im2col_batch(const float* input, std::int64_t n, const ConvGeom& g,
                  float* cols, float pad_value) {
  LCRS_CHECK(n >= 0, "im2col_batch negative batch size");
  const std::int64_t image_size = g.in_c * g.in_h * g.in_w;
  const std::int64_t block = g.patch_size() * g.out_h() * g.out_w();
  parallel_for(n, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t s = s0; s < s1; ++s) {
      im2col(input + s * image_size, g, cols + s * block, pad_value);
    }
  });
}

void im2col_rows(const float* image, const ConvGeom& g, float* rows,
                 float pad_value) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t patch = g.patch_size();
  const std::int64_t chan_stride = g.in_h * g.in_w;
  for (std::int64_t y = 0; y < oh; ++y) {
    for (std::int64_t x = 0; x < ow; ++x) {
      float* prow = rows + (y * ow + x) * patch;
      const std::int64_t base_y = y * g.stride - g.pad;
      const std::int64_t base_x = x * g.stride - g.pad;
      std::int64_t col = 0;
      for (std::int64_t c = 0; c < g.in_c; ++c) {
        const float* chan = image + c * chan_stride;
        for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
          const std::int64_t in_y = base_y + kh;
          if (in_y < 0 || in_y >= g.in_h) {
            for (std::int64_t kw = 0; kw < g.kernel; ++kw) {
              prow[col++] = pad_value;
            }
            continue;
          }
          const std::int64_t lo =
              std::clamp<std::int64_t>(-base_x, 0, g.kernel);
          const std::int64_t hi =
              std::clamp<std::int64_t>(g.in_w - base_x, 0, g.kernel);
          const float* in_row = chan + in_y * g.in_w;
          for (std::int64_t kw = 0; kw < lo; ++kw) prow[col + kw] = pad_value;
          if (hi > lo) {
            // The kw taps of one kernel row are contiguous in the image.
            std::memcpy(prow + col + lo, in_row + base_x + lo,
                        static_cast<std::size_t>(hi - lo) * sizeof(float));
          }
          for (std::int64_t kw = hi; kw < g.kernel; ++kw) {
            prow[col + kw] = pad_value;
          }
          col += g.kernel;
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeom& g, float* image_grad) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t out_pixels = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* chan = image_grad + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        const float* in_row_grad = cols + row * out_pixels;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * g.stride + kh - g.pad;
          if (in_y < 0 || in_y >= g.in_h) continue;
          float* chan_row = chan + in_y * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t in_x = x * g.stride + kw - g.pad;
            if (in_x >= 0 && in_x < g.in_w) {
              chan_row[in_x] += in_row_grad[y * ow + x];
            }
          }
        }
      }
    }
  }
}

}  // namespace lcrs
