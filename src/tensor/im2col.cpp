#include "tensor/im2col.h"

namespace lcrs {

void ConvGeom::validate() const {
  LCRS_CHECK(in_c > 0 && in_h > 0 && in_w > 0,
             "conv geometry needs positive input dims");
  LCRS_CHECK(kernel > 0 && stride > 0 && pad >= 0,
             "conv geometry needs kernel>0, stride>0, pad>=0");
  LCRS_CHECK(in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel,
             "kernel " << kernel << " larger than padded input " << in_h
                       << "x" << in_w << " pad " << pad);
}

void im2col(const float* image, const ConvGeom& g, float* cols,
            float pad_value) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t out_pixels = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* chan = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        float* out_row = cols + row * out_pixels;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * g.stride + kh - g.pad;
          if (in_y < 0 || in_y >= g.in_h) {
            for (std::int64_t x = 0; x < ow; ++x) {
              out_row[y * ow + x] = pad_value;
            }
            continue;
          }
          const float* in_row = chan + in_y * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t in_x = x * g.stride + kw - g.pad;
            out_row[y * ow + x] =
                (in_x >= 0 && in_x < g.in_w) ? in_row[in_x] : pad_value;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeom& g, float* image_grad) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t out_pixels = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* chan = image_grad + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        const float* in_row_grad = cols + row * out_pixels;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * g.stride + kh - g.pad;
          if (in_y < 0 || in_y >= g.in_h) continue;
          float* chan_row = chan + in_y * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t in_x = x * g.stride + kw - g.pad;
            if (in_x >= 0 && in_x < g.in_w) {
              chan_row[in_x] += in_row_grad[y * ow + x];
            }
          }
        }
      }
    }
  }
}

}  // namespace lcrs
