#include "tensor/serialize.h"

namespace lcrs {

namespace {
constexpr std::uint32_t kTensorMagic = 0x4c435254;  // "LCRT"
}

void write_tensor(ByteWriter& w, const Tensor& t) {
  w.write_u32(kTensorMagic);
  w.write_u32(static_cast<std::uint32_t>(t.rank()));
  for (std::int64_t i = 0; i < t.rank(); ++i) w.write_i64(t.dim(i));
  w.write_bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

Tensor read_tensor(ByteReader& r) {
  const std::uint32_t magic = r.read_u32();
  if (magic != kTensorMagic) throw ParseError("bad tensor magic");
  const std::uint32_t rank = r.read_u32();
  if (rank > 8) throw ParseError("tensor rank too large: " + std::to_string(rank));
  std::vector<std::int64_t> dims(rank);
  std::int64_t numel = 1;
  for (auto& d : dims) {
    d = r.read_i64();
    if (d < 0 || d > (1ll << 28)) throw ParseError("bad tensor dim");
    numel *= d;
    if (numel > (1ll << 28)) throw ParseError("tensor too large");
  }
  // Validate the payload exists BEFORE allocating: a corrupt size field
  // must fail with ParseError, not bad_alloc.
  if (r.remaining() < static_cast<std::size_t>(numel) * sizeof(float)) {
    throw ParseError("tensor payload truncated");
  }
  Tensor t{Shape(dims)};
  r.read_bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  return t;
}

std::int64_t tensor_wire_bytes(const Shape& shape) {
  return 8 + 8 * shape.rank() + 4 * shape.numel();
}

}  // namespace lcrs
