#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace lcrs {

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::kaiming(Shape shape, Rng& rng, std::int64_t fan_in) {
  LCRS_CHECK(fan_in > 0, "kaiming init needs positive fan_in");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return randn(std::move(shape), rng, 0.0f, stddev);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  LCRS_CHECK(new_shape.numel() == numel(),
             "reshape " << shape_.to_string() << " -> "
                        << new_shape.to_string() << " changes numel");
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::slice_outer(std::int64_t begin, std::int64_t end) const {
  LCRS_CHECK(rank() >= 1, "slice_outer on scalar");
  LCRS_CHECK(begin >= 0 && begin <= end && end <= shape_[0],
             "slice_outer range [" << begin << ", " << end << ") of "
                                   << shape_.to_string());
  std::vector<std::int64_t> dims = shape_.dims();
  dims[0] = end - begin;
  const std::int64_t inner = numel() / std::max<std::int64_t>(shape_[0], 1);
  Tensor out{Shape(dims)};
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * inner),
            data_.begin() + static_cast<std::ptrdiff_t>(end * inner),
            out.data());
  return out;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace lcrs
