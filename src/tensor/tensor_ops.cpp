#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace lcrs {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  LCRS_CHECK(a.same_shape(b), op << ": shape mismatch "
                                 << a.shape().to_string() << " vs "
                                 << b.shape().to_string());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

void axpy_inplace(Tensor& a, float alpha, const Tensor& b) {
  check_same_shape(a, b, "axpy_inplace");
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] += alpha * b[i];
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * s;
  return out;
}

void scale_inplace(Tensor& a, float s) {
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] *= s;
}

double sum(const Tensor& a) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(a[i]);
  }
  return acc;
}

double mean(const Tensor& a) {
  LCRS_CHECK(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<double>(a.numel());
}

double mean_abs(const Tensor& a) {
  LCRS_CHECK(a.numel() > 0, "mean_abs of empty tensor");
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(std::fabs(a[i]));
  }
  return acc / static_cast<double>(a.numel());
}

float max_value(const Tensor& a) {
  LCRS_CHECK(a.numel() > 0, "max of empty tensor");
  float m = a[0];
  for (std::int64_t i = 1; i < a.numel(); ++i) m = std::max(m, a[i]);
  return m;
}

std::int64_t argmax(const Tensor& a) {
  LCRS_CHECK(a.numel() > 0, "argmax of empty tensor");
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < a.numel(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  LCRS_CHECK(logits.rank() == 2, "argmax_rows expects rank-2");
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  LCRS_CHECK(cols > 0, "argmax_rows on zero columns");
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = logits.data() + r * cols;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  LCRS_CHECK(logits.rank() == 2, "softmax_rows expects rank-2");
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float mx = in[0];
    for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double denom = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += static_cast<double>(o[c]);
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

Tensor sign(const Tensor& a) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a[i] >= 0.0f ? 1.0f : -1.0f;
  }
  return out;
}

double l1_norm(const Tensor& a) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(std::fabs(a[i]));
  }
  return acc;
}

double l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double v = static_cast<double>(a[i]);
    acc += v * v;
  }
  return std::sqrt(acc);
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

Tensor stack_outer(const std::vector<Tensor>& parts) {
  LCRS_CHECK(!parts.empty(), "stack_outer needs at least one tensor");
  const Shape& first = parts.front().shape();
  LCRS_CHECK(first.rank() >= 1, "stack_outer needs rank >= 1");
  std::int64_t total_outer = 0;
  for (const Tensor& p : parts) {
    LCRS_CHECK(p.rank() == first.rank(),
               "stack_outer rank mismatch: " << p.shape().to_string()
                                             << " vs " << first.to_string());
    for (std::int64_t d = 1; d < first.rank(); ++d) {
      LCRS_CHECK(p.dim(d) == first[d],
                 "stack_outer inner-dim mismatch: " << p.shape().to_string()
                                                    << " vs "
                                                    << first.to_string());
    }
    total_outer += p.dim(0);
  }
  std::vector<std::int64_t> out_dims = first.dims();
  out_dims[0] = total_outer;
  Tensor out{Shape{std::move(out_dims)}};
  float* dst = out.data();
  for (const Tensor& p : parts) {
    const std::size_t n = static_cast<std::size_t>(p.numel());
    if (n > 0) std::memcpy(dst, p.data(), n * sizeof(float));
    dst += n;
  }
  return out;
}

}  // namespace lcrs
