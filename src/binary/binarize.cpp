#include "binary/binarize.h"

#include <cmath>

#include "common/error.h"

namespace lcrs::binary {

BinarizedFilters binarize_filters(const Tensor& w) {
  LCRS_CHECK(w.rank() >= 2, "binarize_filters expects rank >= 2");
  const std::int64_t out = w.dim(0);
  const std::int64_t per_filter = w.numel() / out;
  LCRS_CHECK(per_filter > 0, "empty filters");

  BinarizedFilters result{Tensor(w.shape()), Tensor(Shape{out})};
  for (std::int64_t f = 0; f < out; ++f) {
    const float* src = w.data() + f * per_filter;
    float* dst = result.sign.data() + f * per_filter;
    double l1 = 0.0;
    for (std::int64_t i = 0; i < per_filter; ++i) {
      l1 += static_cast<double>(std::fabs(src[i]));
      dst[i] = src[i] >= 0.0f ? 1.0f : -1.0f;
    }
    result.alpha[f] = static_cast<float>(l1 / static_cast<double>(per_filter));
  }
  return result;
}

Tensor ste_clip(const Tensor& grad, const Tensor& x) {
  LCRS_CHECK(grad.same_shape(x), "ste_clip shape mismatch");
  Tensor out(grad.shape());
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    out[i] = (x[i] >= -1.0f && x[i] <= 1.0f) ? grad[i] : 0.0f;
  }
  return out;
}

Tensor eq6_weight_grad(const Tensor& grad_west, const Tensor& w,
                       const Tensor& alpha) {
  LCRS_CHECK(grad_west.same_shape(w), "eq6 shape mismatch");
  const std::int64_t out = w.dim(0);
  LCRS_CHECK(alpha.numel() == out, "eq6 alpha count mismatch");
  const std::int64_t per_filter = w.numel() / out;
  const float inv_n = 1.0f / static_cast<float>(per_filter);

  Tensor grad(w.shape());
  for (std::int64_t f = 0; f < out; ++f) {
    const float a = alpha[f];
    const float* g = grad_west.data() + f * per_filter;
    const float* wp = w.data() + f * per_filter;
    float* o = grad.data() + f * per_filter;
    for (std::int64_t i = 0; i < per_filter; ++i) {
      const float ste = (wp[i] >= -1.0f && wp[i] <= 1.0f) ? 1.0f : 0.0f;
      o[i] = g[i] * (inv_n + ste * a);
    }
  }
  return grad;
}

}  // namespace lcrs::binary
