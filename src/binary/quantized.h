// Int8 post-training quantization -- the classic compression alternative
// the binary approach competes with (paper Sec. II-B frames binarization
// against "effective compression methods"; this module lets the ablation
// bench quantify binary-vs-int8 on equal footing).
//
// Symmetric per-filter quantization: W ~ scale * q with q in [-127, 127].
// Forward-only: the ablation compares inference size/accuracy/latency,
// not training.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace lcrs::binary {

/// A weight matrix quantized to int8 with one scale per outer filter.
struct QuantizedFilters {
  std::vector<std::int8_t> q;  // row-major, same element order as source
  Tensor scale;                // [out], scale_i = max|W_i| / 127
  std::int64_t rows = 0, cols = 0;

  std::int64_t payload_bytes() const {
    return static_cast<std::int64_t>(q.size()) + 4 * scale.numel();
  }
};

/// Quantizes along the outermost dimension (one scale per filter row).
QuantizedFilters quantize_filters(const Tensor& w);

/// Reconstructs the float approximation scale * q.
Tensor dequantize(const QuantizedFilters& qf);

/// Largest absolute reconstruction error (for tests; bounded by scale/2
/// per element, i.e. max|W_row| / 254).
float quantization_error(const Tensor& w, const QuantizedFilters& qf);

/// Int8 convolution: runs conv with dequantized-on-the-fly weights via
/// integer accumulation per output filter. Input stays float (weights-only
/// quantization, the standard deployment mode).
Tensor int8_conv2d(const Tensor& input, const ConvGeom& geom,
                   const QuantizedFilters& weights, const Tensor* bias);

/// Int8 fully-connected layer: y = (x . scale*q^T) + bias.
Tensor int8_linear(const Tensor& input, const QuantizedFilters& weights,
                   const Tensor* bias);

/// Serialized byte size of a whole model with conv/linear weights stored
/// as int8 + scales and everything else float32 -- the int8 counterpart
/// of models::browser_payload_bytes.
std::int64_t int8_payload_bytes(nn::Sequential& model);

}  // namespace lcrs::binary
