// Binary fully-connected layer.
//
// FC analogue of BinaryConv2d: y = (sign(x) . sign(W)^T) * beta * alpha
// with beta the per-sample input magnitude and alpha the per-neuron weight
// magnitude, plus an optional full-precision bias. Same STE/Eq. 6 backward
// and the same bit-packed fast path.
#pragma once

#include <optional>

#include "binary/binarize.h"
#include "binary/bitmatrix.h"
#include "nn/layer.h"

namespace lcrs::binary {

class BinaryLinear : public nn::Layer {
 public:
  BinaryLinear(std::int64_t in, std::int64_t out, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Param*> params() override;
  std::string kind() const override { return "binary_linear"; }
  std::int64_t flops_per_sample() const override {
    return 2 * in_ * out_ + (has_bias_ ? out_ : 0);
  }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  nn::Param& weight() { return weight_; }
  bool has_bias() const { return has_bias_; }

  void prepare_inference();
  bool inference_ready() const { return packed_.has_value(); }
  Tensor forward_fast(const Tensor& input) const;

  std::int64_t binary_weight_bytes() const;

  /// Packed weights for export (requires inference_ready()).
  const BitMatrix& packed_weight_bits() const;
  const Tensor& packed_alpha() const;
  const Tensor& bias_values() const { return bias_.value; }

 private:
  std::int64_t in_, out_;
  bool has_bias_;
  nn::Param weight_;  // [out x in] master weights
  nn::Param bias_;

  struct Packed {
    BitMatrix weight_bits;  // [out x in]
    Tensor alpha;           // [out]
  };
  std::optional<Packed> packed_;

  Tensor cached_input_;
  Tensor cached_sign_input_;
  Tensor cached_beta_;  // [batch]
  BinarizedFilters cached_bin_;
};

}  // namespace lcrs::binary
