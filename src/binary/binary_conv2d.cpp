#include "binary/binary_conv2d.h"

#include <vector>

#include "binary/input_scale.h"
#include "binary/xnor_gemm.h"
#include "common/parallel.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace lcrs::binary {

BinaryConv2d::BinaryConv2d(std::int64_t in_c, std::int64_t out_c,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, std::int64_t in_h,
                           std::int64_t in_w, Rng& rng)
    : geom_{in_c, in_h, in_w, kernel, stride, pad},
      out_c_(out_c),
      weight_("binary_conv.weight",
              Tensor::kaiming(Shape{out_c, in_c, kernel, kernel}, rng,
                              in_c * kernel * kernel)) {
  LCRS_CHECK(out_c > 0, "binary conv out_c must be positive");
  geom_.validate();
}

Tensor BinaryConv2d::reference_forward(const Tensor& input, bool train) {
  LCRS_CHECK(input.rank() == 4 && input.dim(1) == geom_.in_c &&
                 input.dim(2) == geom_.in_h && input.dim(3) == geom_.in_w,
             "binary conv input " << input.shape().to_string()
                                  << " mismatches geometry");
  const std::int64_t n = input.dim(0);
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::int64_t pixels = oh * ow;
  const std::int64_t patch = geom_.patch_size();
  const std::int64_t in_image = geom_.in_c * geom_.in_h * geom_.in_w;

  const Tensor sign_input = sign(input);
  const Tensor k = input_scale_K(input, geom_);
  BinarizedFilters bin = binarize_filters(weight_.value);

  Tensor out{Shape{n, out_c_, oh, ow}};
  parallel_for(n, [&](std::int64_t b0, std::int64_t b1) {
    std::vector<float> cols(static_cast<std::size_t>(patch * pixels));
    for (std::int64_t b = b0; b < b1; ++b) {
      // Pad with +1 (sign(0)) so this reference path agrees exactly with
      // the bit-packed XNOR path, which has no zero symbol.
      im2col(sign_input.data() + b * in_image, geom_, cols.data(),
             /*pad_value=*/1.0f);
      gemm(bin.sign.data(), cols.data(), out.data() + b * out_c_ * pixels,
           out_c_, patch, pixels);
      const float* kb = k.data() + b * pixels;
      float* obase = out.data() + b * out_c_ * pixels;
      for (std::int64_t oc = 0; oc < out_c_; ++oc) {
        const float a = bin.alpha[oc];
        float* orow = obase + oc * pixels;
        for (std::int64_t p = 0; p < pixels; ++p) orow[p] *= a * kb[p];
      }
    }
  });

  if (train) {
    cached_input_ = input;
    cached_sign_input_ = sign_input;
    cached_K_ = k;
    cached_bin_ = std::move(bin);
    packed_.reset();  // weights will change; invalidate the fast path
  }
  return out;
}

Tensor BinaryConv2d::forward(const Tensor& input, bool train) {
  return reference_forward(input, train);
}

Tensor BinaryConv2d::backward(const Tensor& grad_output) {
  LCRS_CHECK(cached_input_.numel() > 0,
             "binary conv backward without cached forward");
  const Tensor& input = cached_input_;
  const std::int64_t n = input.dim(0);
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::int64_t pixels = oh * ow;
  const std::int64_t patch = geom_.patch_size();
  const std::int64_t in_image = geom_.in_c * geom_.in_h * geom_.in_w;
  LCRS_CHECK(grad_output.shape() == (Shape{n, out_c_, oh, ow}),
             "binary conv grad_output shape mismatch");

  // Fold the (constant) K and alpha scales into the output gradient.
  Tensor g_conv(grad_output.shape());
  for (std::int64_t b = 0; b < n; ++b) {
    const float* kb = cached_K_.data() + b * pixels;
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      const float a = cached_bin_.alpha[oc];
      const float* g = grad_output.data() + (b * out_c_ + oc) * pixels;
      float* o = g_conv.data() + (b * out_c_ + oc) * pixels;
      for (std::int64_t p = 0; p < pixels; ++p) o[p] = g[p] * a * kb[p];
    }
  }

  Tensor grad_west{weight_.value.shape()};  // d L / d (sign weights)
  Tensor grad_sign_input{input.shape()};
  std::vector<float> cols(static_cast<std::size_t>(patch * pixels));
  std::vector<float> dcols(static_cast<std::size_t>(patch * pixels));
  for (std::int64_t b = 0; b < n; ++b) {
    const float* gout = g_conv.data() + b * out_c_ * pixels;
    im2col(cached_sign_input_.data() + b * in_image, geom_, cols.data(),
           /*pad_value=*/1.0f);
    gemm_bt(gout, cols.data(), grad_west.data(), out_c_, pixels, patch, 1.0f);
    gemm_at(cached_bin_.sign.data(), gout, dcols.data(), patch, out_c_,
            pixels);
    col2im(dcols.data(), geom_, grad_sign_input.data() + b * in_image);
  }

  // Eq. 6 for the master weights; Eq. 5 STE for the input.
  add_inplace(weight_.grad,
              eq6_weight_grad(grad_west, weight_.value, cached_bin_.alpha));
  return ste_clip(grad_sign_input, input);
}

std::int64_t BinaryConv2d::flops_per_sample() const {
  // Equivalent MAC work of the convolution; the cost model divides by the
  // binary speedup factor when pricing devices.
  return 2 * out_c_ * geom_.patch_size() * geom_.out_h() * geom_.out_w();
}

void BinaryConv2d::prepare_inference() {
  BinarizedFilters bin = binarize_filters(weight_.value);
  const std::int64_t patch = geom_.patch_size();
  packed_ = Packed{
      BitMatrix::pack(bin.sign.data(), out_c_, patch),
      std::move(bin.alpha),
  };
}

Tensor BinaryConv2d::forward_fast(const Tensor& input) const {
  LCRS_CHECK(packed_.has_value(),
             "forward_fast requires prepare_inference()");
  return xnor_conv2d(input, geom_, packed_->weight_bits, packed_->alpha);
}

const BitMatrix& BinaryConv2d::packed_weight_bits() const {
  LCRS_CHECK(packed_.has_value(), "packed access before prepare_inference");
  return packed_->weight_bits;
}

const Tensor& BinaryConv2d::packed_alpha() const {
  LCRS_CHECK(packed_.has_value(), "packed access before prepare_inference");
  return packed_->alpha;
}

std::int64_t BinaryConv2d::binary_weight_bytes() const {
  const std::int64_t patch = geom_.patch_size();
  const std::int64_t words_per_row = (patch + 63) / 64;
  return out_c_ * words_per_row * 8    // packed sign bits
         + out_c_ * 4;                 // float alpha per filter
}

}  // namespace lcrs::binary
