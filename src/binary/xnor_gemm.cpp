#include "binary/xnor_gemm.h"

#include <vector>

#include "binary/input_scale.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace lcrs::binary {

void xnor_gemm(const BitMatrix& a, const BitMatrix& b, float* c) {
  LCRS_CHECK(a.cols() == b.cols(), "xnor_gemm inner dim mismatch: "
                                       << a.cols() << " vs " << b.cols());
  const std::int64_t m = a.rows(), n = b.rows();
  const std::int64_t words = a.words_per_row();
  const std::int64_t k = a.cols();
  // Dispatch once per call. The AVX2 popcount only pays for itself when
  // a row spans several 256-bit loads; short rows stay on the unrolled
  // scalar loop. Both are exact, so the cutover is purely a speed knob.
  const bool use_avx2 =
      simd::active_level() == simd::Level::kAvx2 && words >= 8;

  parallel_for(m, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const std::uint64_t* arow = a.row(i);
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const std::int64_t mismatches =
            use_avx2
                ? detail::xor_popcount_words_avx2(arow, b.row(j), words)
                : detail::xor_popcount_words_scalar(arow, b.row(j), words);
        crow[j] = static_cast<float>(k - 2 * mismatches);
      }
    }
  });
}

Tensor xnor_matmul(const BitMatrix& a, const BitMatrix& b) {
  Tensor c{Shape{a.rows(), b.rows()}};
  xnor_gemm(a, b, c.data());
  return c;
}

Tensor xnor_conv2d(const Tensor& input, const ConvGeom& geom,
                   const BitMatrix& weight_bits, const Tensor& alpha) {
  LCRS_CHECK(input.rank() == 4 && input.dim(1) == geom.in_c &&
                 input.dim(2) == geom.in_h && input.dim(3) == geom.in_w,
             "xnor_conv2d input mismatch");
  const std::int64_t out_c = weight_bits.rows();
  LCRS_CHECK(weight_bits.cols() == geom.patch_size(),
             "xnor_conv2d weight patch mismatch");
  LCRS_CHECK(alpha.numel() == out_c, "xnor_conv2d alpha count mismatch");
  const std::int64_t n = input.dim(0);
  const std::int64_t oh = geom.out_h(), ow = geom.out_w();
  const std::int64_t pixels = oh * ow;
  const std::int64_t patch = geom.patch_size();
  const std::int64_t in_image = geom.in_c * geom.in_h * geom.in_w;
  const Tensor k = input_scale_K(input, geom);

  Tensor out{Shape{n, out_c, oh, ow}};
  // Scratch is hoisted out of the batch loop: the old per-sample
  // `BitMatrix in_bits(pixels, patch)` re-allocated and zero-filled the
  // packed patches for every image, which dominated small-image batches.
  // pack_signs overwrites every word (tails included), so reuse needs no
  // clear between samples.
  std::vector<float> rows(static_cast<std::size_t>(pixels * patch));
  BitMatrix in_bits(pixels, patch);
  Tensor prod{Shape{out_c, pixels}};
  for (std::int64_t b = 0; b < n; ++b) {
    const float* img = input.data() + b * in_image;
    // Lower patches pixel-major, then fuse binarize+bitpack in one pass.
    // Spatial zero padding lowers as 0.0f, which packs as +1 -- the
    // sign(0) = +1 convention the float-sign reference path uses.
    im2col_rows(img, geom, rows.data(), /*pad_value=*/0.0f);
    pack_signs(rows.data(), pixels, patch, &in_bits);

    xnor_gemm(weight_bits, in_bits, prod.data());  // [out_c x pixels]
    const float* kb = k.data() + b * pixels;
    float* obase = out.data() + b * out_c * pixels;
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      const float a = alpha[oc];
      const float* prow = prod.data() + oc * pixels;
      float* orow = obase + oc * pixels;
      // Same association order as the reference path (dot *= a * K) so
      // the two paths are bit-identical, not merely close.
      for (std::int64_t p = 0; p < pixels; ++p) {
        orow[p] = prow[p] * (a * kb[p]);
      }
    }
  }
  return out;
}

Tensor xnor_linear(const Tensor& input, const BitMatrix& weight_bits,
                   const Tensor& alpha, const Tensor* bias) {
  LCRS_CHECK(input.rank() == 2 && input.dim(1) == weight_bits.cols(),
             "xnor_linear input mismatch");
  const std::int64_t n = input.dim(0);
  const std::int64_t out = weight_bits.rows();
  LCRS_CHECK(alpha.numel() == out, "xnor_linear alpha count mismatch");
  const Tensor beta = input_scale_rows(input);
  const BitMatrix in_bits = BitMatrix::pack(input.data(), n, input.dim(1));

  Tensor y = xnor_matmul(in_bits, weight_bits);  // [n x out]
  for (std::int64_t b = 0; b < n; ++b) {
    float* row = y.data() + b * out;
    const float bv = beta[b];
    for (std::int64_t o = 0; o < out; ++o) {
      row[o] *= bv * alpha[o];
      if (bias != nullptr) row[o] += (*bias)[o];
    }
  }
  return y;
}

}  // namespace lcrs::binary
