#include "binary/xnor_gemm.h"

#include <bit>

#include "binary/input_scale.h"
#include "common/error.h"
#include "common/parallel.h"

namespace lcrs::binary {

void xnor_gemm(const BitMatrix& a, const BitMatrix& b, float* c) {
  LCRS_CHECK(a.cols() == b.cols(), "xnor_gemm inner dim mismatch: "
                                       << a.cols() << " vs " << b.cols());
  const std::int64_t m = a.rows(), n = b.rows();
  const std::int64_t words = a.words_per_row();
  const std::int32_t k = static_cast<std::int32_t>(a.cols());

  parallel_for(m, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const std::uint64_t* arow = a.row(i);
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const std::uint64_t* brow = b.row(j);
        std::int32_t mismatches = 0;
        for (std::int64_t w = 0; w < words; ++w) {
          mismatches += std::popcount(arow[w] ^ brow[w]);
        }
        crow[j] = static_cast<float>(k - 2 * mismatches);
      }
    }
  });
}

Tensor xnor_matmul(const BitMatrix& a, const BitMatrix& b) {
  Tensor c{Shape{a.rows(), b.rows()}};
  xnor_gemm(a, b, c.data());
  return c;
}

Tensor xnor_conv2d(const Tensor& input, const ConvGeom& geom,
                   const BitMatrix& weight_bits, const Tensor& alpha) {
  LCRS_CHECK(input.rank() == 4 && input.dim(1) == geom.in_c &&
                 input.dim(2) == geom.in_h && input.dim(3) == geom.in_w,
             "xnor_conv2d input mismatch");
  const std::int64_t out_c = weight_bits.rows();
  LCRS_CHECK(weight_bits.cols() == geom.patch_size(),
             "xnor_conv2d weight patch mismatch");
  LCRS_CHECK(alpha.numel() == out_c, "xnor_conv2d alpha count mismatch");
  const std::int64_t n = input.dim(0);
  const std::int64_t oh = geom.out_h(), ow = geom.out_w();
  const std::int64_t pixels = oh * ow;
  const std::int64_t patch = geom.patch_size();
  const std::int64_t in_image = geom.in_c * geom.in_h * geom.in_w;
  const Tensor k = input_scale_K(input, geom);

  Tensor out{Shape{n, out_c, oh, ow}};
  for (std::int64_t b = 0; b < n; ++b) {
    // Pack each output pixel's input patch into a bit row; spatial zero
    // padding packs as +1, matching sign(0) = +1 in the reference path.
    BitMatrix in_bits(pixels, patch);
    const float* img = input.data() + b * in_image;
    std::int64_t pix = 0;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x, ++pix) {
        std::uint64_t* row = in_bits.row(pix);
        std::int64_t bit = 0;
        for (std::int64_t c = 0; c < geom.in_c; ++c) {
          const float* plane = img + c * geom.in_h * geom.in_w;
          for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
            const std::int64_t iy = y * geom.stride + ky - geom.pad;
            for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++bit) {
              const std::int64_t ix = x * geom.stride + kx - geom.pad;
              const bool inside =
                  iy >= 0 && iy < geom.in_h && ix >= 0 && ix < geom.in_w;
              const float v = inside ? plane[iy * geom.in_w + ix] : 0.0f;
              if (v >= 0.0f) row[bit >> 6] |= (1ull << (bit & 63));
            }
          }
        }
      }
    }

    Tensor prod = xnor_matmul(weight_bits, in_bits);  // [out_c x pixels]
    const float* kb = k.data() + b * pixels;
    float* obase = out.data() + b * out_c * pixels;
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      const float a = alpha[oc];
      const float* prow = prod.data() + oc * pixels;
      float* orow = obase + oc * pixels;
      // Same association order as the reference path (dot *= a * K) so
      // the two paths are bit-identical, not merely close.
      for (std::int64_t p = 0; p < pixels; ++p) {
        orow[p] = prow[p] * (a * kb[p]);
      }
    }
  }
  return out;
}

Tensor xnor_linear(const Tensor& input, const BitMatrix& weight_bits,
                   const Tensor& alpha, const Tensor* bias) {
  LCRS_CHECK(input.rank() == 2 && input.dim(1) == weight_bits.cols(),
             "xnor_linear input mismatch");
  const std::int64_t n = input.dim(0);
  const std::int64_t out = weight_bits.rows();
  LCRS_CHECK(alpha.numel() == out, "xnor_linear alpha count mismatch");
  const Tensor beta = input_scale_rows(input);
  const BitMatrix in_bits = BitMatrix::pack(input.data(), n, input.dim(1));

  Tensor y = xnor_matmul(in_bits, weight_bits);  // [n x out]
  for (std::int64_t b = 0; b < n; ++b) {
    float* row = y.data() + b * out;
    const float bv = beta[b];
    for (std::int64_t o = 0; o < out; ++o) {
      row[o] *= bv * alpha[o];
      if (bias != nullptr) row[o] += (*bias)[o];
    }
  }
  return y;
}

}  // namespace lcrs::binary
