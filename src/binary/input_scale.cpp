#include "binary/input_scale.h"

#include <cmath>
#include <vector>

#include "common/error.h"

namespace lcrs::binary {

Tensor input_scale_K(const Tensor& input, const ConvGeom& geom) {
  LCRS_CHECK(input.rank() == 4, "input_scale_K expects NCHW");
  LCRS_CHECK(input.dim(1) == geom.in_c && input.dim(2) == geom.in_h &&
                 input.dim(3) == geom.in_w,
             "input_scale_K geometry mismatch");
  const std::int64_t n = input.dim(0), c = geom.in_c, h = geom.in_h,
                     w = geom.in_w;
  const std::int64_t oh = geom.out_h(), ow = geom.out_w();
  const float inv_c = 1.0f / static_cast<float>(c);
  const float inv_kk = 1.0f / static_cast<float>(geom.kernel * geom.kernel);

  Tensor k_out{Shape{n, oh, ow}};
  std::vector<float> a_plane(static_cast<std::size_t>(h * w));
  for (std::int64_t b = 0; b < n; ++b) {
    // A = mean over channels of |I|.
    for (auto& v : a_plane) v = 0.0f;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (b * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        a_plane[static_cast<std::size_t>(i)] += std::fabs(plane[i]);
      }
    }
    for (auto& v : a_plane) v *= inv_c;

    // K = A convolved with the kernel-sized box filter (zero padding, same
    // stride as the layer).
    float* kb = k_out.data() + b * oh * ow;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        float acc = 0.0f;
        for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
          const std::int64_t iy = y * geom.stride + ky - geom.pad;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < geom.kernel; ++kx) {
            const std::int64_t ix = x * geom.stride + kx - geom.pad;
            if (ix < 0 || ix >= w) continue;
            acc += a_plane[static_cast<std::size_t>(iy * w + ix)];
          }
        }
        kb[y * ow + x] = acc * inv_kk;
      }
    }
  }
  return k_out;
}

Tensor input_scale_rows(const Tensor& input) {
  LCRS_CHECK(input.rank() == 2, "input_scale_rows expects rank-2");
  const std::int64_t n = input.dim(0), f = input.dim(1);
  LCRS_CHECK(f > 0, "input_scale_rows on empty features");
  Tensor beta{Shape{n}};
  for (std::int64_t b = 0; b < n; ++b) {
    const float* row = input.data() + b * f;
    double acc = 0.0;
    for (std::int64_t i = 0; i < f; ++i) {
      acc += static_cast<double>(std::fabs(row[i]));
    }
    beta[b] = static_cast<float>(acc / static_cast<double>(f));
  }
  return beta;
}

}  // namespace lcrs::binary
