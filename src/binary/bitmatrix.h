// Bit-packed {-1,+1} matrices for XNOR arithmetic.
//
// A BitMatrix stores an [rows x cols] sign matrix with one bit per entry
// (+1 -> 1, -1 -> 0), each row padded to whole 64-bit words with zeros.
// The dot product of two sign rows is then
//     dot = cols - 2 * popcount(a XOR b)
// because XOR counts mismatching signs and zero padding bits cancel.
// This is the memory layout the browser inference library ships and the
// source of the paper's ~32x weight-memory reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "tensor/tensor.h"

namespace lcrs::binary {

class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::int64_t rows, std::int64_t cols);

  /// Packs the signs of a float matrix (value >= 0 -> bit 1).
  static BitMatrix pack(const float* data, std::int64_t rows,
                        std::int64_t cols);
  static BitMatrix pack(const Tensor& t);  // any rank; outermost dim = rows

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t words_per_row() const { return words_per_row_; }

  const std::uint64_t* row(std::int64_t r) const {
    return words_.data() + r * words_per_row_;
  }
  std::uint64_t* row(std::int64_t r) {
    return words_.data() + r * words_per_row_;
  }

  void set(std::int64_t r, std::int64_t c, bool positive);
  bool get(std::int64_t r, std::int64_t c) const;

  /// Sign dot product of row r with the given packed row (same cols).
  std::int32_t dot_row(std::int64_t r, const std::uint64_t* other) const;

  /// Unpacks back into a {-1, +1} float tensor of shape [rows x cols].
  Tensor unpack() const;

  /// Payload bytes (the number the model-size tables report for binary
  /// weights): one bit per entry plus row padding.
  std::int64_t payload_bytes() const {
    return static_cast<std::int64_t>(words_.size()) * 8;
  }

  void serialize(ByteWriter& w) const;
  static BitMatrix deserialize(ByteReader& r);

  bool operator==(const BitMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           words_ == other.words_;
  }

 private:
  std::int64_t rows_ = 0, cols_ = 0, words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Sign dot product between two packed rows of `cols` entries.
std::int32_t xnor_dot(const std::uint64_t* a, const std::uint64_t* b,
                      std::int64_t cols);

/// Fused binarize+bitpack: packs the signs of `data` [rows x cols]
/// (value >= 0 -> bit 1, matching sign(0) = +1) into `out`, which must
/// already have the right shape. Unlike BitMatrix::pack this writes
/// every word of every row -- tail bits beyond `cols` are stored as 0 --
/// so a scratch BitMatrix can be reused across calls without clearing
/// (the hoisted per-batch scratch in xnor_conv2d depends on this).
/// SIMD-dispatched; bit-identical at every level.
void pack_signs(const float* data, std::int64_t rows, std::int64_t cols,
                BitMatrix* out);

namespace detail {

/// popcount(a XOR b) over `words` 64-bit words. The scalar variant is
/// the portable reference (4-way unrolled accumulators); the avx2
/// variant uses the vpshufb nibble-LUT popcount and delegates to scalar
/// when AVX2 was not compiled in. Both are exact (integer domain) --
/// exposed for xnor_gemm's inner loop, not for general use.
std::int64_t xor_popcount_words_scalar(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::int64_t words);
std::int64_t xor_popcount_words_avx2(const std::uint64_t* a,
                                     const std::uint64_t* b,
                                     std::int64_t words);

}  // namespace detail

}  // namespace lcrs::binary
