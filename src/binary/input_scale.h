// Input scaling factor K for binary convolution (paper Eq. 4).
//
// XNOR-Net approximates I * W  ~  (sign(I) (*) sign(W)) . K . alpha where
// K spatially redistributes the input magnitude: K = A (*) k with
// A(h, w) = mean_c |I(c, h, w)| and k a kernel-sized box filter. K has one
// entry per output pixel and is shared by all output channels.
#pragma once

#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace lcrs::binary {

/// Computes K for a batch: input [N, C, H, W] -> K [N, out_h, out_w]
/// using the same kernel/stride/pad geometry as the convolution.
Tensor input_scale_K(const Tensor& input, const ConvGeom& geom);

/// Per-row mean absolute value of a rank-2 [batch x features] tensor; the
/// FC analogue of K (beta in XNOR-Net). Returns [batch].
Tensor input_scale_rows(const Tensor& input);

}  // namespace lcrs::binary
