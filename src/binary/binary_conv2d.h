// Binary convolution layer (paper Eq. 4, Algorithm 1).
//
// Training keeps full-precision master weights; the forward pass uses
// alpha * sign(W) on sign(I) with the spatial scale K, and the backward
// pass uses the straight-through estimator (Eq. 5) plus the Eq. 6 weight
// gradient. Inference can run the exact same arithmetic through bit-packed
// XNOR/popcount kernels (prepare_inference + forward_fast), which is what
// the browser library ships.
#pragma once

#include <optional>

#include "binary/binarize.h"
#include "binary/bitmatrix.h"
#include "nn/layer.h"
#include "tensor/im2col.h"

namespace lcrs::binary {

class BinaryConv2d : public nn::Layer {
 public:
  BinaryConv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, std::int64_t in_h,
               std::int64_t in_w, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Param*> params() override { return {&weight_}; }
  std::string kind() const override { return "binary_conv2d"; }
  std::int64_t flops_per_sample() const override;

  const ConvGeom& geometry() const { return geom_; }
  std::int64_t out_channels() const { return out_c_; }
  nn::Param& weight() { return weight_; }

  /// Packs the current weights for the XNOR fast path. Must be re-run
  /// after any optimizer step before calling forward_fast.
  void prepare_inference();
  bool inference_ready() const { return packed_.has_value(); }

  /// Bit-packed inference forward; numerically identical to forward()
  /// (sign dot products are exact small integers in float).
  Tensor forward_fast(const Tensor& input) const;

  /// Bytes of the binary weight payload (bits + per-filter alphas) -- the
  /// browser-side model size Tables I / Fig. 7 account.
  std::int64_t binary_weight_bytes() const;

  /// Packed weights for export (requires inference_ready()).
  const BitMatrix& packed_weight_bits() const;
  const Tensor& packed_alpha() const;

 private:
  Tensor reference_forward(const Tensor& input, bool train);

  ConvGeom geom_;
  std::int64_t out_c_;
  nn::Param weight_;  // full-precision master weights [out_c, in_c, k, k]

  struct Packed {
    BitMatrix weight_bits;  // [out_c x patch]
    Tensor alpha;           // [out_c]
  };
  std::optional<Packed> packed_;

  // Training caches.
  Tensor cached_input_;
  Tensor cached_sign_input_;
  Tensor cached_K_;       // [N, oh, ow]
  BinarizedFilters cached_bin_;
};

}  // namespace lcrs::binary
