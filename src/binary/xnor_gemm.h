// XNOR + popcount matrix multiplication over bit-packed sign matrices.
//
// This replaces the float GEMM inside binary conv/linear layers at
// inference time: C[m x n] = A_signs[m x k] * B_signs[n x k]^T where every
// multiply-accumulate over 64 entries collapses to one XOR + one POPCNT.
#pragma once

#include <cstdint>

#include "binary/bitmatrix.h"
#include "tensor/im2col.h"

namespace lcrs::binary {

/// C[m x n] (float) = sign-dot of every row of `a` with every row of `b`.
/// Requires a.cols() == b.cols(); the result is exact (integer-valued).
void xnor_gemm(const BitMatrix& a, const BitMatrix& b, float* c);

/// Tensor convenience wrapper: returns [a.rows x b.rows].
Tensor xnor_matmul(const BitMatrix& a, const BitMatrix& b);

/// Complete binary convolution forward through the XNOR path: packs the
/// input signs per output pixel, multiplies against pre-packed weight
/// bits [out_c x patch], and applies the K * alpha scaling of Eq. 4.
/// Numerically identical to the reference float-sign path. Shared by
/// BinaryConv2d::forward_fast and the browser engine.
Tensor xnor_conv2d(const Tensor& input, const ConvGeom& geom,
                   const BitMatrix& weight_bits, const Tensor& alpha);

/// Binary fully-connected forward through the XNOR path; `bias` may be
/// null. weight_bits is [out x in].
Tensor xnor_linear(const Tensor& input, const BitMatrix& weight_bits,
                   const Tensor& alpha, const Tensor* bias);

}  // namespace lcrs::binary
