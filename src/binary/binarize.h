// Weight binarization math (XNOR-Net style, paper Sec. IV-B).
//
// A weight filter W is approximated by alpha * sign(W), where
// alpha = ||W||_l1 / n is the per-filter scaling factor (Algorithm 1,
// line 9). Gradients flow through sign() with the straight-through
// estimator clipped to |x| <= 1 (Eq. 5), and the weight gradient uses the
// paper's Eq. 6 transform.
#pragma once

#include "tensor/tensor.h"

namespace lcrs::binary {

/// sign(W) together with the per-filter scale alpha. For conv weights
/// [out_c, in_c, k, k] there is one alpha per output filter; for linear
/// weights [out, in] one per output neuron.
struct BinarizedFilters {
  Tensor sign;    // same shape as W, entries in {-1, +1}
  Tensor alpha;   // [out] scale factors, alpha_i = mean |W_i|
};

/// Binarizes along the outermost dimension of `w` (one filter per row).
BinarizedFilters binarize_filters(const Tensor& w);

/// Straight-through estimator of d sign(x)/dx: 1 when |x| <= 1 else 0
/// (Eq. 5). Applied elementwise: out[i] = grad[i] * 1_{|x[i]| <= 1}.
Tensor ste_clip(const Tensor& grad, const Tensor& x);

/// Paper Eq. 6: transforms the gradient w.r.t. the *estimated* filters
/// W~ = alpha * sign(W) into the gradient w.r.t. the full-precision master
/// weights: dW = dW~ * (1/n + ste(W) * alpha), with n = elements per
/// filter and alpha broadcast per outer filter.
Tensor eq6_weight_grad(const Tensor& grad_west, const Tensor& w,
                       const Tensor& alpha);

}  // namespace lcrs::binary
