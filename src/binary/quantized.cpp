#include "binary/quantized.h"

#include <cmath>

#include "nn/conv2d.h"
#include "nn/linear.h"

namespace lcrs::binary {

QuantizedFilters quantize_filters(const Tensor& w) {
  LCRS_CHECK(w.rank() >= 2, "quantize_filters expects rank >= 2");
  const std::int64_t rows = w.dim(0);
  const std::int64_t cols = w.numel() / rows;
  LCRS_CHECK(cols > 0, "empty filters");

  QuantizedFilters qf;
  qf.rows = rows;
  qf.cols = cols;
  qf.q.resize(static_cast<std::size_t>(w.numel()));
  qf.scale = Tensor{Shape{rows}};
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* src = w.data() + r * cols;
    float max_abs = 0.0f;
    for (std::int64_t i = 0; i < cols; ++i) {
      max_abs = std::max(max_abs, std::fabs(src[i]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    qf.scale[r] = scale;
    for (std::int64_t i = 0; i < cols; ++i) {
      const float v = std::round(src[i] / scale);
      qf.q[static_cast<std::size_t>(r * cols + i)] =
          static_cast<std::int8_t>(std::max(-127.0f, std::min(127.0f, v)));
    }
  }
  return qf;
}

Tensor dequantize(const QuantizedFilters& qf) {
  Tensor w{Shape{qf.rows, qf.cols}};
  for (std::int64_t r = 0; r < qf.rows; ++r) {
    const float s = qf.scale[r];
    for (std::int64_t i = 0; i < qf.cols; ++i) {
      w.at2(r, i) = s * qf.q[static_cast<std::size_t>(r * qf.cols + i)];
    }
  }
  return w;
}

float quantization_error(const Tensor& w, const QuantizedFilters& qf) {
  LCRS_CHECK(w.numel() == qf.rows * qf.cols, "quantization_error mismatch");
  const Tensor deq = dequantize(qf);
  float max_err = 0.0f;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    max_err = std::max(max_err, std::fabs(w[i] - deq[i]));
  }
  return max_err;
}

Tensor int8_conv2d(const Tensor& input, const ConvGeom& geom,
                   const QuantizedFilters& weights, const Tensor* bias) {
  LCRS_CHECK(input.rank() == 4 && input.dim(1) == geom.in_c &&
                 input.dim(2) == geom.in_h && input.dim(3) == geom.in_w,
             "int8_conv2d input mismatch");
  LCRS_CHECK(weights.cols == geom.patch_size(),
             "int8_conv2d weight patch mismatch");
  const std::int64_t n = input.dim(0);
  const std::int64_t out_c = weights.rows;
  const std::int64_t oh = geom.out_h(), ow = geom.out_w();
  const std::int64_t pixels = oh * ow;
  const std::int64_t patch = geom.patch_size();
  const std::int64_t in_image = geom.in_c * geom.in_h * geom.in_w;

  Tensor out{Shape{n, out_c, oh, ow}};
  std::vector<float> cols(static_cast<std::size_t>(patch * pixels));
  for (std::int64_t b = 0; b < n; ++b) {
    im2col(input.data() + b * in_image, geom, cols.data());
    float* obase = out.data() + b * out_c * pixels;
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      const std::int8_t* wrow =
          weights.q.data() + static_cast<std::size_t>(oc * patch);
      const float s = weights.scale[oc];
      const float bv = bias != nullptr ? (*bias)[oc] : 0.0f;
      float* orow = obase + oc * pixels;
      for (std::int64_t p = 0; p < pixels; ++p) {
        float acc = 0.0f;
        for (std::int64_t k = 0; k < patch; ++k) {
          acc += cols[static_cast<std::size_t>(k * pixels + p)] * wrow[k];
        }
        orow[p] = acc * s + bv;
      }
    }
  }
  return out;
}

Tensor int8_linear(const Tensor& input, const QuantizedFilters& weights,
                   const Tensor* bias) {
  LCRS_CHECK(input.rank() == 2 && input.dim(1) == weights.cols,
             "int8_linear input mismatch");
  const std::int64_t n = input.dim(0);
  const std::int64_t out = weights.rows;
  Tensor y{Shape{n, out}};
  for (std::int64_t b = 0; b < n; ++b) {
    const float* x = input.data() + b * weights.cols;
    float* row = y.data() + b * out;
    for (std::int64_t o = 0; o < out; ++o) {
      const std::int8_t* wrow =
          weights.q.data() + static_cast<std::size_t>(o * weights.cols);
      float acc = 0.0f;
      for (std::int64_t k = 0; k < weights.cols; ++k) acc += x[k] * wrow[k];
      row[o] = acc * weights.scale[o];
      if (bias != nullptr) row[o] += (*bias)[o];
    }
  }
  return y;
}

namespace {
std::int64_t int8_bytes_of(nn::Layer& layer) {
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    std::int64_t b = conv->weight().numel() + 4 * conv->out_channels();
    if (conv->has_bias()) b += 4 * conv->out_channels();
    return b;
  }
  if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
    std::int64_t b = lin->weight().numel() + 4 * lin->out_features();
    if (lin->has_bias()) b += 4 * lin->out_features();
    return b;
  }
  const auto children = layer.children();
  if (children.empty()) return layer.param_bytes();
  std::int64_t total = 0;
  for (nn::Layer* child : children) total += int8_bytes_of(*child);
  return total;
}
}  // namespace

std::int64_t int8_payload_bytes(nn::Sequential& model) {
  return int8_bytes_of(model);
}

}  // namespace lcrs::binary
