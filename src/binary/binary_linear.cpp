#include "binary/binary_linear.h"

#include "binary/input_scale.h"
#include "binary/xnor_gemm.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace lcrs::binary {

BinaryLinear::BinaryLinear(std::int64_t in, std::int64_t out, Rng& rng,
                           bool bias)
    : in_(in),
      out_(out),
      has_bias_(bias),
      weight_("binary_linear.weight",
              Tensor::kaiming(Shape{out, in}, rng, in)),
      bias_("binary_linear.bias", Tensor::zeros(Shape{out})) {
  LCRS_CHECK(in > 0 && out > 0, "binary linear dims must be positive");
}

Tensor BinaryLinear::forward(const Tensor& input, bool train) {
  LCRS_CHECK(input.rank() == 2 && input.dim(1) == in_,
             "binary linear expects [batch x " << in_ << "], got "
                                               << input.shape().to_string());
  const std::int64_t n = input.dim(0);
  const Tensor sign_input = sign(input);
  const Tensor beta = input_scale_rows(input);
  BinarizedFilters bin = binarize_filters(weight_.value);

  Tensor out{Shape{n, out_}};
  gemm_bt(sign_input.data(), bin.sign.data(), out.data(), n, in_, out_);
  for (std::int64_t b = 0; b < n; ++b) {
    float* row = out.data() + b * out_;
    const float bv = beta[b];
    for (std::int64_t o = 0; o < out_; ++o) {
      row[o] *= bv * bin.alpha[o];
      if (has_bias_) row[o] += bias_.value[o];
    }
  }

  if (train) {
    cached_input_ = input;
    cached_sign_input_ = sign_input;
    cached_beta_ = beta;
    cached_bin_ = std::move(bin);
    packed_.reset();
  }
  return out;
}

Tensor BinaryLinear::backward(const Tensor& grad_output) {
  LCRS_CHECK(cached_input_.numel() > 0,
             "binary linear backward without cached forward");
  const std::int64_t n = cached_input_.dim(0);
  LCRS_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == n &&
                 grad_output.dim(1) == out_,
             "binary linear grad_output shape mismatch");

  // Fold the constant beta/alpha scales in; bias sees the raw gradient.
  Tensor g_eff{Shape{n, out_}};
  for (std::int64_t b = 0; b < n; ++b) {
    const float bv = cached_beta_[b];
    const float* g = grad_output.data() + b * out_;
    float* o = g_eff.data() + b * out_;
    for (std::int64_t oc = 0; oc < out_; ++oc) {
      o[oc] = g[oc] * bv * cached_bin_.alpha[oc];
      if (has_bias_) bias_.grad[oc] += g[oc];
    }
  }

  // dW~ [out x in] = g_eff^T [out x n] . sign(x) [n x in]
  Tensor grad_west{Shape{out_, in_}};
  gemm_at(g_eff.data(), cached_sign_input_.data(), grad_west.data(), out_, n,
          in_);
  add_inplace(weight_.grad,
              eq6_weight_grad(grad_west, weight_.value, cached_bin_.alpha));

  // d sign(x) [n x in] = g_eff [n x out] . sign(W) [out x in]
  Tensor grad_sign_input{Shape{n, in_}};
  gemm(g_eff.data(), cached_bin_.sign.data(), grad_sign_input.data(), n,
       out_, in_);
  return ste_clip(grad_sign_input, cached_input_);
}

std::vector<nn::Param*> BinaryLinear::params() {
  std::vector<nn::Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

void BinaryLinear::prepare_inference() {
  BinarizedFilters bin = binarize_filters(weight_.value);
  packed_ = Packed{BitMatrix::pack(bin.sign.data(), out_, in_),
                   std::move(bin.alpha)};
}

Tensor BinaryLinear::forward_fast(const Tensor& input) const {
  LCRS_CHECK(packed_.has_value(),
             "forward_fast requires prepare_inference()");
  return xnor_linear(input, packed_->weight_bits, packed_->alpha,
                     has_bias_ ? &bias_.value : nullptr);
}

const BitMatrix& BinaryLinear::packed_weight_bits() const {
  LCRS_CHECK(packed_.has_value(), "packed access before prepare_inference");
  return packed_->weight_bits;
}

const Tensor& BinaryLinear::packed_alpha() const {
  LCRS_CHECK(packed_.has_value(), "packed access before prepare_inference");
  return packed_->alpha;
}

std::int64_t BinaryLinear::binary_weight_bytes() const {
  const std::int64_t words_per_row = (in_ + 63) / 64;
  std::int64_t bytes = out_ * words_per_row * 8 + out_ * 4;
  if (has_bias_) bytes += out_ * 4;
  return bytes;
}

}  // namespace lcrs::binary
