#include "binary/bitmatrix.h"

#include <algorithm>
#include <bit>

#include "common/error.h"
#include "common/simd.h"

#if LCRS_SIMD_COMPILED_AVX2 || LCRS_SIMD_COMPILED_SSE
#include <immintrin.h>
#endif

namespace lcrs::binary {

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64) {
  LCRS_CHECK(rows >= 0 && cols >= 0, "negative BitMatrix dims");
  words_.assign(static_cast<std::size_t>(rows_ * words_per_row_), 0);
}

namespace {

// Row packers: write every destination word (tail bits 0), one full
// 64-bit store per word, so reused scratch needs no clearing. All
// variants implement `bit c = (src[c] >= 0.0f)` exactly: the vector
// compares use ordered >= (NaN -> false, -0 >= +0 -> true), matching
// the scalar comparison bit for bit.

void pack_row_scalar(const float* src, std::int64_t cols,
                     std::uint64_t* dst, std::int64_t words) {
  std::int64_t c = 0;
  for (std::int64_t w = 0; w < words; ++w) {
    const std::int64_t nbits = std::min<std::int64_t>(64, cols - c);
    std::uint64_t bits = 0;
    for (std::int64_t i = 0; i < nbits; ++i) {
      if (src[c + i] >= 0.0f) bits |= 1ull << i;
    }
    dst[w] = bits;
    c += 64;
  }
}

#if LCRS_SIMD_COMPILED_SSE

void pack_row_sse(const float* src, std::int64_t cols, std::uint64_t* dst,
                  std::int64_t words) {
  const __m128 zero = _mm_setzero_ps();
  std::int64_t c = 0;
  for (std::int64_t w = 0; w < words; ++w) {
    std::uint64_t bits = 0;
    std::int64_t shift = 0;
    for (; shift + 4 <= 64 && c + 4 <= cols; shift += 4, c += 4) {
      const int m =
          _mm_movemask_ps(_mm_cmpge_ps(_mm_loadu_ps(src + c), zero));
      bits |= static_cast<std::uint64_t>(static_cast<unsigned>(m)) << shift;
    }
    for (; shift < 64 && c < cols; ++shift, ++c) {
      if (src[c] >= 0.0f) bits |= 1ull << shift;
    }
    dst[w] = bits;
  }
}

#endif  // LCRS_SIMD_COMPILED_SSE

#if LCRS_SIMD_COMPILED_AVX2

void pack_row_avx2(const float* src, std::int64_t cols, std::uint64_t* dst,
                   std::int64_t words) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t c = 0;
  for (std::int64_t w = 0; w < words; ++w) {
    std::uint64_t bits = 0;
    std::int64_t shift = 0;
    for (; shift + 8 <= 64 && c + 8 <= cols; shift += 8, c += 8) {
      const int m = _mm256_movemask_ps(
          _mm256_cmp_ps(_mm256_loadu_ps(src + c), zero, _CMP_GE_OQ));
      bits |= static_cast<std::uint64_t>(static_cast<unsigned>(m)) << shift;
    }
    for (; shift < 64 && c < cols; ++shift, ++c) {
      if (src[c] >= 0.0f) bits |= 1ull << shift;
    }
    dst[w] = bits;
  }
}

#endif  // LCRS_SIMD_COMPILED_AVX2

using RowPacker = void (*)(const float*, std::int64_t, std::uint64_t*,
                           std::int64_t);

RowPacker select_row_packer() {
  const simd::Level level = simd::active_level();
#if LCRS_SIMD_COMPILED_AVX2
  if (level == simd::Level::kAvx2) return pack_row_avx2;
#endif
#if LCRS_SIMD_COMPILED_SSE
  if (level == simd::Level::kSse) return pack_row_sse;
#endif
  (void)level;
  return pack_row_scalar;
}

}  // namespace

void pack_signs(const float* data, std::int64_t rows, std::int64_t cols,
                BitMatrix* out) {
  LCRS_CHECK(out != nullptr, "pack_signs null output");
  LCRS_CHECK(out->rows() == rows && out->cols() == cols,
             "pack_signs shape mismatch: dest " << out->rows() << "x"
                                                << out->cols() << " vs "
                                                << rows << "x" << cols);
  const RowPacker packer = select_row_packer();
  const std::int64_t words = out->words_per_row();
  for (std::int64_t r = 0; r < rows; ++r) {
    packer(data + r * cols, cols, out->row(r), words);
  }
}

BitMatrix BitMatrix::pack(const float* data, std::int64_t rows,
                          std::int64_t cols) {
  BitMatrix m(rows, cols);
  pack_signs(data, rows, cols, &m);
  return m;
}

BitMatrix BitMatrix::pack(const Tensor& t) {
  LCRS_CHECK(t.rank() >= 1, "pack expects rank >= 1");
  const std::int64_t rows = t.dim(0);
  const std::int64_t cols = rows > 0 ? t.numel() / rows : 0;
  return pack(t.data(), rows, cols);
}

void BitMatrix::set(std::int64_t r, std::int64_t c, bool positive) {
  LCRS_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
             "BitMatrix::set out of range");
  std::uint64_t& w = row(r)[c >> 6];
  const std::uint64_t mask = 1ull << (c & 63);
  if (positive) {
    w |= mask;
  } else {
    w &= ~mask;
  }
}

bool BitMatrix::get(std::int64_t r, std::int64_t c) const {
  LCRS_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
             "BitMatrix::get out of range");
  return (row(r)[c >> 6] >> (c & 63)) & 1u;
}

namespace detail {

std::int64_t xor_popcount_words_scalar(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::int64_t words) {
  // Four independent accumulators break the add dependency chain; the
  // sum is an exact integer so the split changes nothing observable.
  std::int64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    s0 += std::popcount(a[w] ^ b[w]);
    s1 += std::popcount(a[w + 1] ^ b[w + 1]);
    s2 += std::popcount(a[w + 2] ^ b[w + 2]);
    s3 += std::popcount(a[w + 3] ^ b[w + 3]);
  }
  for (; w < words; ++w) s0 += std::popcount(a[w] ^ b[w]);
  return s0 + s1 + s2 + s3;
}

std::int64_t xor_popcount_words_avx2(const std::uint64_t* a,
                                     const std::uint64_t* b,
                                     std::int64_t words) {
#if LCRS_SIMD_COMPILED_AVX2
  // Mula's vpshufb popcount: per-nibble LUT lookups summed bytewise,
  // folded into 64-bit lanes with vpsadbw. Byte counts max out at 8 per
  // byte so the epi8 adds cannot carry; the 64-bit lane accumulator
  // never saturates for any realistic word count.
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0,
                       1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i vzero = _mm256_setzero_si256();
  __m256i acc = vzero;
  std::int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i x = _mm256_xor_si256(va, vb);
    const __m256i lo = _mm256_and_si256(x, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, vzero));
  }
  std::int64_t total = _mm256_extract_epi64(acc, 0) +
                       _mm256_extract_epi64(acc, 1) +
                       _mm256_extract_epi64(acc, 2) +
                       _mm256_extract_epi64(acc, 3);
  for (; w < words; ++w) total += std::popcount(a[w] ^ b[w]);
  return total;
#else
  return xor_popcount_words_scalar(a, b, words);
#endif
}

}  // namespace detail

std::int32_t xnor_dot(const std::uint64_t* a, const std::uint64_t* b,
                      std::int64_t cols) {
  const std::int64_t words = (cols + 63) / 64;
  const std::int64_t mismatches =
      detail::xor_popcount_words_scalar(a, b, words);
  return static_cast<std::int32_t>(cols - 2 * mismatches);
}

std::int32_t BitMatrix::dot_row(std::int64_t r,
                                const std::uint64_t* other) const {
  return xnor_dot(row(r), other, cols_);
}

Tensor BitMatrix::unpack() const {
  Tensor t{Shape{rows_, cols_}};
  for (std::int64_t r = 0; r < rows_; ++r) {
    const std::uint64_t* wr = row(r);
    float* dst = t.data() + r * cols_;
    for (std::int64_t c = 0; c < cols_; ++c) {
      dst[c] = ((wr[c >> 6] >> (c & 63)) & 1u) ? 1.0f : -1.0f;
    }
  }
  return t;
}

void BitMatrix::serialize(ByteWriter& w) const {
  w.write_i64(rows_);
  w.write_i64(cols_);
  w.write_bytes(words_.data(), words_.size() * sizeof(std::uint64_t));
}

BitMatrix BitMatrix::deserialize(ByteReader& r) {
  const std::int64_t rows = r.read_i64();
  const std::int64_t cols = r.read_i64();
  if (rows < 0 || cols < 0 || rows > (1ll << 24) || cols > (1ll << 24) ||
      rows * ((cols + 63) / 64) > (1ll << 26)) {
    throw ParseError("bad BitMatrix dims");
  }
  // Validate payload availability before allocating (corrupt sizes must
  // raise ParseError, not bad_alloc).
  const std::size_t payload = static_cast<std::size_t>(
      rows * ((cols + 63) / 64) * 8);
  if (r.remaining() < payload) throw ParseError("BitMatrix truncated");
  BitMatrix m(rows, cols);
  r.read_bytes(m.words_.data(), m.words_.size() * sizeof(std::uint64_t));
  return m;
}

}  // namespace lcrs::binary
