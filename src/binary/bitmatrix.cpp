#include "binary/bitmatrix.h"

#include <bit>

#include "common/error.h"

namespace lcrs::binary {

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64) {
  LCRS_CHECK(rows >= 0 && cols >= 0, "negative BitMatrix dims");
  words_.assign(static_cast<std::size_t>(rows_ * words_per_row_), 0);
}

BitMatrix BitMatrix::pack(const float* data, std::int64_t rows,
                          std::int64_t cols) {
  BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::uint64_t* wr = m.row(r);
    const float* src = data + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      if (src[c] >= 0.0f) wr[c >> 6] |= (1ull << (c & 63));
    }
  }
  return m;
}

BitMatrix BitMatrix::pack(const Tensor& t) {
  LCRS_CHECK(t.rank() >= 1, "pack expects rank >= 1");
  const std::int64_t rows = t.dim(0);
  const std::int64_t cols = rows > 0 ? t.numel() / rows : 0;
  return pack(t.data(), rows, cols);
}

void BitMatrix::set(std::int64_t r, std::int64_t c, bool positive) {
  LCRS_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
             "BitMatrix::set out of range");
  std::uint64_t& w = row(r)[c >> 6];
  const std::uint64_t mask = 1ull << (c & 63);
  if (positive) {
    w |= mask;
  } else {
    w &= ~mask;
  }
}

bool BitMatrix::get(std::int64_t r, std::int64_t c) const {
  LCRS_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
             "BitMatrix::get out of range");
  return (row(r)[c >> 6] >> (c & 63)) & 1u;
}

std::int32_t xnor_dot(const std::uint64_t* a, const std::uint64_t* b,
                      std::int64_t cols) {
  const std::int64_t words = (cols + 63) / 64;
  std::int32_t mismatches = 0;
  for (std::int64_t w = 0; w < words; ++w) {
    mismatches += std::popcount(a[w] ^ b[w]);
  }
  return static_cast<std::int32_t>(cols) - 2 * mismatches;
}

std::int32_t BitMatrix::dot_row(std::int64_t r,
                                const std::uint64_t* other) const {
  return xnor_dot(row(r), other, cols_);
}

Tensor BitMatrix::unpack() const {
  Tensor t{Shape{rows_, cols_}};
  for (std::int64_t r = 0; r < rows_; ++r) {
    const std::uint64_t* wr = row(r);
    float* dst = t.data() + r * cols_;
    for (std::int64_t c = 0; c < cols_; ++c) {
      dst[c] = ((wr[c >> 6] >> (c & 63)) & 1u) ? 1.0f : -1.0f;
    }
  }
  return t;
}

void BitMatrix::serialize(ByteWriter& w) const {
  w.write_i64(rows_);
  w.write_i64(cols_);
  w.write_bytes(words_.data(), words_.size() * sizeof(std::uint64_t));
}

BitMatrix BitMatrix::deserialize(ByteReader& r) {
  const std::int64_t rows = r.read_i64();
  const std::int64_t cols = r.read_i64();
  if (rows < 0 || cols < 0 || rows > (1ll << 24) || cols > (1ll << 24) ||
      rows * ((cols + 63) / 64) > (1ll << 26)) {
    throw ParseError("bad BitMatrix dims");
  }
  // Validate payload availability before allocating (corrupt sizes must
  // raise ParseError, not bad_alloc).
  const std::size_t payload = static_cast<std::size_t>(
      rows * ((cols + 63) / 64) * 8);
  if (r.remaining() < payload) throw ParseError("BitMatrix truncated");
  BitMatrix m(rows, cols);
  r.read_bytes(m.words_.data(), m.words_.size() * sizeof(std::uint64_t));
  return m;
}

}  // namespace lcrs::binary
