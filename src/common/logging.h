// Minimal leveled logger used across the library.
//
// Logging goes to stderr so benchmark tables on stdout stay clean. The
// level is a process-wide setting; the default (kInfo) is quiet enough for
// test runs while still reporting training progress from the harnesses.
#pragma once

#include <sstream>
#include <string>

namespace lcrs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide log level. Thread-safe.
void set_log_level(LogLevel level);

/// Returns the current process-wide log level.
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace lcrs

#define LCRS_LOG_AT(level, ...)                               \
  do {                                                        \
    if (static_cast<int>(level) >=                            \
        static_cast<int>(::lcrs::log_level())) {              \
      std::ostringstream lcrs_log_os_;                        \
      lcrs_log_os_ << __VA_ARGS__;                            \
      ::lcrs::detail::log_line(level, lcrs_log_os_.str());    \
    }                                                         \
  } while (0)

#define LCRS_DEBUG(...) LCRS_LOG_AT(::lcrs::LogLevel::kDebug, __VA_ARGS__)
#define LCRS_INFO(...) LCRS_LOG_AT(::lcrs::LogLevel::kInfo, __VA_ARGS__)
#define LCRS_WARN(...) LCRS_LOG_AT(::lcrs::LogLevel::kWarn, __VA_ARGS__)
#define LCRS_ERROR(...) LCRS_LOG_AT(::lcrs::LogLevel::kError, __VA_ARGS__)
