// Vectorized elementwise math for the serving hot path.
//
// tanh_inplace dispatches on simd::active_level():
//   - kAvx2: 8-wide rational approximation (odd degree-13 numerator over
//     even degree-6 denominator in x^2, inputs clamped at |x| ~ 7.905
//     where float tanh is saturated to within one ULP). Deviation from
//     std::tanh is a few ULP (< 1e-6 absolute); the bound is pinned by
//     the parity test in test_numerics.
//   - every other level (including LCRS_SIMD=scalar): an exact std::tanh
//     loop -- the pre-PR behaviour. SSE/NEON fall back to scalar; this is
//     the per-kernel fallback documented in common/simd.h.
//
// The AVX2 path routes the final < 8 elements through the same 8-wide
// kernel via a zero-padded buffer, so the result for a given input value
// never depends on its position in the tensor. The batch-composition
// invariance property tests rely on that elementwise purity.
#pragma once

#include <cstdint>

namespace lcrs::simd {

/// Applies tanh elementwise, in place. The scalar dispatch level computes
/// std::tanh exactly; vector levels use the approximation described above.
void tanh_inplace(float* data, std::int64_t n);

}  // namespace lcrs::simd
