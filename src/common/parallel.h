// Data-parallel loop helper.
//
// Tensor kernels call parallel_for over independent index ranges. The pool
// sizes itself to the hardware; on a single-core host it degrades to a
// plain serial loop with zero thread overhead, so kernels are written
// against one API regardless of core count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace lcrs {

/// Number of worker threads parallel_for will use (>= 1).
int parallel_thread_count();

/// Overrides the worker count (for tests); n < 1 resets to hardware default.
void set_parallel_thread_count(int n);

/// Invokes fn(begin, end) over a partition of [0, n). Chunks are
/// contiguous; fn must be safe to run concurrently on disjoint ranges.
/// Exceptions from workers are rethrown on the calling thread.
void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace lcrs
