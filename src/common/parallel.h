// Data-parallel loop helper.
//
// Tensor kernels call parallel_for over independent index ranges. Work
// runs on a persistent worker pool (spawned lazily, reused across calls;
// the calling thread always participates, so nested calls and a busy
// pool both make progress); on a single-core host it degrades to a plain
// serial loop with zero thread overhead, so kernels are written against
// one API regardless of core count. The pool's internals are guarded by
// annotated lcrs::Mutex/CondVar (common/sync.h) and add no lock-order
// edges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace lcrs {

/// Number of worker threads parallel_for will use (>= 1).
int parallel_thread_count();

/// Overrides the worker count (for tests); n < 1 resets to hardware default.
void set_parallel_thread_count(int n);

/// Invokes fn(begin, end) over a partition of [0, n). Chunks are
/// contiguous; fn must be safe to run concurrently on disjoint ranges.
/// Exceptions from workers are rethrown on the calling thread.
void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace lcrs
