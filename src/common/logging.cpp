#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/sync.h"

namespace lcrs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
// Serializes whole lines onto stderr (the guarded "state" is the stream
// itself). Leaf lock: nothing else is ever acquired while holding it.
Mutex g_mutex{"common.logging.stderr"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%8.3f] %s %s\n", secs, level_name(level),
               msg.c_str());
}
}  // namespace detail

}  // namespace lcrs
