// Annotated synchronization primitives: the repo's only lock vocabulary.
//
// Every mutex in src/ is an lcrs::Mutex (scripts/lint_invariants.py bans
// raw std::mutex outside this pair of files), which buys two things no
// test run can:
//
//   1. Compile-time capability analysis. The wrappers carry Clang
//      -Wthread-safety attributes, so `LCRS_GUARDED_BY(mu)` on a field
//      makes every unlocked access a build error under
//      -DLCRS_THREAD_SAFETY=ON (Clang only; the macros expand to nothing
//      on other compilers). TSan can only catch the interleavings a test
//      happens to hit; the analysis checks every call path.
//
//   2. Runtime lock-order deadlock detection. Each Mutex names an
//      acquisition *site* ("edge.server.conns"); blocking acquisitions
//      record held-site -> new-site edges into a process-wide lock-order
//      graph, and an acquisition that would close a cycle (the classic
//      ABBA deadlock) is reported with both conflicting orders *before*
//      the thread blocks -- catching deadlocks whose interleaving never
//      fires in tests. try_lock() never blocks, so it is exempt (the
//      try-and-back-off idiom is deadlock-free by construction).
//
// Cost when the checker is off (sync::set_lock_order_checking(false), or
// a -DLCRS_LOCK_ORDER=OFF build): one relaxed atomic load plus a few
// thread-local stores per acquisition. When on, an acquisition made while
// holding no other lock -- the overwhelmingly common case in this tree --
// adds only the same thread-local bookkeeping; the graph lock is touched
// only for genuinely nested acquisitions.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

// ---------------------------------------------------------------------
// Clang capability-analysis attribute macros (no-ops elsewhere).
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define LCRS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LCRS_THREAD_ANNOTATION(x)
#endif

#define LCRS_CAPABILITY(x) LCRS_THREAD_ANNOTATION(capability(x))
#define LCRS_SCOPED_CAPABILITY LCRS_THREAD_ANNOTATION(scoped_lockable)
#define LCRS_GUARDED_BY(x) LCRS_THREAD_ANNOTATION(guarded_by(x))
#define LCRS_PT_GUARDED_BY(x) LCRS_THREAD_ANNOTATION(pt_guarded_by(x))
#define LCRS_ACQUIRED_BEFORE(...) \
  LCRS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LCRS_ACQUIRED_AFTER(...) \
  LCRS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define LCRS_REQUIRES(...) \
  LCRS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LCRS_ACQUIRE(...) \
  LCRS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LCRS_RELEASE(...) \
  LCRS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LCRS_TRY_ACQUIRE(...) \
  LCRS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define LCRS_EXCLUDES(...) LCRS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define LCRS_RETURN_CAPABILITY(x) LCRS_THREAD_ANNOTATION(lock_returned(x))
#define LCRS_NO_THREAD_SAFETY_ANALYSIS \
  LCRS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace lcrs {

/// Annotated mutex. Non-reentrant, non-movable. `site` must be a string
/// with static storage duration (a literal): it names the acquisition
/// site in the lock-order graph, and every Mutex constructed with the
/// same site shares one node -- per-instance mutexes of one class (all
/// EdgeServers' conns mutexes, say) are one site, which is exactly the
/// granularity deadlock ordering is defined at.
class LCRS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* site);

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LCRS_ACQUIRE();
  void unlock() LCRS_RELEASE();
  /// Never blocks, so it records the acquisition for release bookkeeping
  /// but adds no lock-order edge (try-and-back-off cannot deadlock).
  bool try_lock() LCRS_TRY_ACQUIRE(true);

  const char* site() const { return site_; }
  std::uint32_t site_id() const { return site_id_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* site_;
  std::uint32_t site_id_;
};

/// RAII lock for lcrs::Mutex -- the project's std::lock_guard.
class LCRS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LCRS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LCRS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to lcrs::Mutex. wait() releases and
/// reacquires through Mutex::unlock/lock, so the lock-order checker and
/// capability analysis both see the handoff.
///
/// Capability-analysis caveat: prefer an explicit `while (!cond)
/// cv.wait(mu);` loop over the predicate overload when the condition
/// reads LCRS_GUARDED_BY state -- Clang analyzes a predicate lambda as a
/// separate function and cannot see that the lock is held inside it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu`; atomically releases it while blocked.
  void wait(Mutex& mu) LCRS_REQUIRES(mu) { cv_.wait(mu); }

  template <class Predicate>
  void wait(Mutex& mu, Predicate pred) LCRS_REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  /// Timed wait: blocks for at most `timeout_us` microseconds. Returns
  /// false when the wait timed out, true when it was notified (spurious
  /// wakeups also return true -- callers must re-check their predicate
  /// either way). Releases/reacquires through Mutex::unlock/lock like
  /// wait(), so the lock-order checker sees the reacquisition.
  bool wait_for_us(Mutex& mu, std::int64_t timeout_us) LCRS_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::microseconds(timeout_us)) ==
           std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

namespace sync {

// ---------------------------------------------------------------------
// Lock-order checker controls.

/// Whether blocking acquisitions feed (and are checked against) the
/// process-wide lock-order graph. Defaults on; a -DLCRS_LOCK_ORDER=OFF
/// build flips the default, and this toggle overrides either way.
bool lock_order_checking_enabled();
void set_lock_order_checking(bool on);

/// RAII toggle for tests.
class ScopedLockOrderChecking {
 public:
  explicit ScopedLockOrderChecking(bool on = true)
      : prev_(lock_order_checking_enabled()) {
    set_lock_order_checking(on);
  }
  ~ScopedLockOrderChecking() { set_lock_order_checking(prev_); }
  ScopedLockOrderChecking(const ScopedLockOrderChecking&) = delete;
  ScopedLockOrderChecking& operator=(const ScopedLockOrderChecking&) = delete;

 private:
  bool prev_;
};

/// Called with a human-readable report when an acquisition would close a
/// cycle in the lock-order graph (potential ABBA deadlock) or re-enter a
/// mutex this thread already holds. The default handler prints the report
/// to stderr and aborts -- a potential deadlock is a bug, and aborting at
/// the detection point yields both stacks. Handlers run *before* the
/// offending acquisition blocks and may throw to unwind past it (the
/// mutex is not yet locked); tests use that to assert on reports.
using LockOrderHandler = void (*)(const std::string& report);

/// Installs a handler; returns the previous one (nullptr = default).
LockOrderHandler set_lock_order_handler(LockOrderHandler handler);

/// RAII handler installer for tests.
class ScopedLockOrderHandler {
 public:
  explicit ScopedLockOrderHandler(LockOrderHandler handler)
      : prev_(set_lock_order_handler(handler)) {}
  ~ScopedLockOrderHandler() { set_lock_order_handler(prev_); }
  ScopedLockOrderHandler(const ScopedLockOrderHandler&) = delete;
  ScopedLockOrderHandler& operator=(const ScopedLockOrderHandler&) = delete;

 private:
  LockOrderHandler prev_;
};

/// Drops every recorded edge (sites persist). Tests that intentionally
/// record a bad order call this so later tests see a clean graph.
void reset_lock_order_graph_for_testing();

/// Number of distinct ordered site pairs recorded so far (test hook).
std::size_t lock_order_edge_count();

}  // namespace sync

}  // namespace lcrs
