#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/error.h"

namespace lcrs {

namespace {
std::atomic<int> g_threads{0};  // 0 = auto

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

int parallel_thread_count() {
  const int n = g_threads.load();
  return n >= 1 ? n : hardware_threads();
}

void set_parallel_thread_count(int n) { g_threads.store(n < 1 ? 0 : n); }

void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const int workers = static_cast<int>(
      std::min<std::int64_t>(parallel_thread_count(), n));
  if (workers <= 1) {
    fn(0, n);
    return;
  }

  const std::int64_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  std::exception_ptr first_error;
  std::atomic<bool> has_error{false};

  for (int w = 0; w < workers; ++w) {
    const std::int64_t begin = w * chunk;
    const std::int64_t end = std::min<std::int64_t>(begin + chunk, n);
    if (begin >= end) break;
    threads.emplace_back([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        if (!has_error.exchange(true)) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (has_error.load()) std::rethrow_exception(first_error);
}

}  // namespace lcrs
