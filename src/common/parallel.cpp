#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/sync.h"

namespace lcrs {

namespace {

std::atomic<int> g_threads{0};  // 0 = auto

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

using Fn = std::function<void(std::int64_t, std::int64_t)>;

/// Persistent worker pool behind parallel_for. Workers are spawned
/// lazily on the first call that wants them and reused for every later
/// call, so a hot training loop pays thread-creation cost once, not per
/// GEMM. One Job is one parallel_for invocation: its chunks are claimed
/// lock-free through an atomic cursor by however many threads reach it
/// (the calling thread always participates, so a call can never wait on
/// a fully-busy pool), and completion is signalled through the Job's own
/// mutex + condvar.
///
/// Lock order: pool.mu and job.mu are never held together -- workers
/// take pool.mu only to pick up or retire a job, and job.mu only after
/// releasing pool.mu -- so the pool adds no edges to the lock-order
/// graph.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::int64_t n, int workers, const Fn& fn) {
    auto job = std::make_shared<Job>(&fn, n, (n + workers - 1) / workers,
                                     workers);
    {
      MutexLock lock(mu_);
      if (stopping_) {  // static destruction already began: stay serial
        fn(0, n);
        return;
      }
      ensure_workers_locked(workers - 1);
      queue_.push_back(job);
    }
    work_cv_.notify_all();

    run_chunks(*job);  // the caller is always one of the workers

    std::exception_ptr error;
    {
      MutexLock lock(job->mu);
      while (job->completed < job->chunks) job->done_cv.wait(job->mu);
      error = job->error;
    }
    {
      // Normally a worker retires the drained job; sweep it here too in
      // case every helper was busy elsewhere and never picked it up.
      MutexLock lock(mu_);
      const auto it = std::find(queue_.begin(), queue_.end(), job);
      if (it != queue_.end()) queue_.erase(it);
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  struct Job {
    Job(const Fn* fn_arg, std::int64_t n_arg, std::int64_t chunk_arg,
        std::int64_t chunks_arg)
        : fn(fn_arg), n(n_arg), chunk(chunk_arg), chunks(chunks_arg) {}

    // The work description is const: fully set before the job is
    // published to the queue, so workers read it without job.mu.
    const Fn* const fn;
    const std::int64_t n;
    const std::int64_t chunk;
    const std::int64_t chunks;
    std::atomic<std::int64_t> next{0};  // next chunk index to claim

    Mutex mu{"common.parallel.job"};
    CondVar done_cv;
    std::int64_t completed LCRS_GUARDED_BY(mu) = 0;
    std::exception_ptr error LCRS_GUARDED_BY(mu);
  };

  Pool() = default;

  ~Pool() {
    std::vector<std::thread> workers;
    {
      MutexLock lock(mu_);
      stopping_ = true;
      workers.swap(workers_);
    }
    work_cv_.notify_all();
    for (auto& w : workers) w.join();
  }

  void ensure_workers_locked(int helpers) LCRS_REQUIRES(mu_) {
    while (static_cast<int>(workers_.size()) < helpers) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Claims and executes chunks until the job is drained. Every chunk is
  /// executed even after a failure (matching the pre-pool semantics of
  /// one thread per range); the first exception wins.
  static void run_chunks(Job& job) {
    for (;;) {
      const std::int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.chunks) return;
      const std::int64_t begin = i * job.chunk;
      const std::int64_t end = std::min(begin + job.chunk, job.n);
      std::exception_ptr error;
      if (begin < end) {
        try {
          (*job.fn)(begin, end);
        } catch (...) {
          error = std::current_exception();
        }
      }
      MutexLock lock(job.mu);
      if (error && !job.error) job.error = error;
      if (++job.completed == job.chunks) job.done_cv.notify_all();
    }
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock(mu_);
        while (!stopping_ && queue_.empty()) work_cv_.wait(mu_);
        if (queue_.empty()) return;  // stopping and nothing left
        job = queue_.front();
      }
      run_chunks(*job);
      {
        // The job is drained (no chunks left to claim); retire it so
        // later wakeups see fresh work at the front.
        MutexLock lock(mu_);
        if (!queue_.empty() && queue_.front() == job) queue_.pop_front();
      }
    }
  }

  Mutex mu_{"common.parallel.pool"};
  CondVar work_cv_;
  std::deque<std::shared_ptr<Job>> queue_ LCRS_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ LCRS_GUARDED_BY(mu_);
  bool stopping_ LCRS_GUARDED_BY(mu_) = false;
};

}  // namespace

int parallel_thread_count() {
  const int n = g_threads.load();
  return n >= 1 ? n : hardware_threads();
}

void set_parallel_thread_count(int n) { g_threads.store(n < 1 ? 0 : n); }

void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const int workers = static_cast<int>(
      std::min<std::int64_t>(parallel_thread_count(), n));
  if (workers <= 1) {
    fn(0, n);
    return;
  }
  Pool::instance().run(n, workers, fn);
}

}  // namespace lcrs
