// Error handling for the LCRS library.
//
// Following the Core Guidelines (E.2, E.14) we signal errors with
// exceptions derived from std::runtime_error and reserve assertions for
// programming bugs. LCRS_CHECK is used at API boundaries (always on);
// LCRS_ASSERT documents internal invariants (also always on -- the cost is
// negligible next to the tensor math).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lcrs {

/// Base class of every exception thrown by the LCRS library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on malformed serialized data (model files, protocol frames).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown on socket / OS failures in the edge runtime.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when an I/O deadline expires before the operation completes.
/// Derives from IoError so transport-level retry/fallback handlers that
/// catch IoError also cover timeouts.
class TimeoutError : public IoError {
 public:
  explicit TimeoutError(const std::string& what) : IoError(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace lcrs

// Precondition check: throws lcrs::Error when `cond` is false.
// Usage: LCRS_CHECK(n > 0, "batch size must be positive, got " << n);
#define LCRS_CHECK(cond, ...)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream lcrs_check_os_;                                    \
      __VA_OPT__(lcrs_check_os_ << __VA_ARGS__;)                            \
      ::lcrs::detail::throw_check_failure("LCRS_CHECK", #cond, __FILE__,    \
                                          __LINE__, lcrs_check_os_.str()); \
    }                                                                       \
  } while (0)

// Internal invariant check; semantically an assertion but kept enabled.
#define LCRS_ASSERT(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream lcrs_check_os_;                                    \
      __VA_OPT__(lcrs_check_os_ << __VA_ARGS__;)                            \
      ::lcrs::detail::throw_check_failure("LCRS_ASSERT", #cond, __FILE__,   \
                                          __LINE__, lcrs_check_os_.str()); \
    }                                                                       \
  } while (0)
