#include "common/sync.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace lcrs {

namespace {

#if defined(LCRS_LOCK_ORDER_DEFAULT_OFF)
constexpr bool kCheckingDefault = false;
#else
constexpr bool kCheckingDefault = true;
#endif

std::atomic<bool> g_checking{kCheckingDefault};
std::atomic<sync::LockOrderHandler> g_handler{nullptr};

// ---------------------------------------------------------------------
// Per-thread held set. Fixed-size and trivially destructible on purpose:
// thread_local objects with destructors race static destruction at
// process exit (a mutex acquired from a static destructor would touch a
// dead vector), and 32 simultaneously-held locks is far beyond anything
// this codebase nests.

struct HeldSet {
  static constexpr int kMax = 32;
  const Mutex* mutexes[kMax];
  std::uint32_t sites[kMax];
  int n;
  int overflow;  // acquisitions past kMax: released untracked
};

thread_local HeldSet t_held{};

// ---------------------------------------------------------------------
// Process-wide lock-order graph: nodes are acquisition sites, a directed
// edge a->b means "some thread held site a while (blocking-)acquiring
// site b". The graph is kept acyclic: an acquisition whose edges would
// close a cycle is reported instead of recorded. Intentionally leaked
// (static pointer keeps it LSan-reachable) so Mutex operations during
// static destruction never touch a destroyed map.

struct Graph {
  std::mutex mu;
  std::vector<std::string> site_names;              // id -> name
  std::unordered_map<std::string, std::uint32_t> site_ids;
  // adjacency + first-seen held-chain description per edge (a<<32|b)
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> out;
  std::unordered_map<std::uint64_t, std::string> edge_chain;
};

Graph& graph() {
  static Graph* g = new Graph();  // leaked: see comment above
  return *g;
}

std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

bool has_edge(const Graph& g, std::uint32_t a, std::uint32_t b) {
  return g.edge_chain.count(edge_key(a, b)) != 0;
}

/// Iterative DFS; on success fills `path` with the site sequence from
/// `from` to `to` inclusive. from == to is a (trivial) path: two distinct
/// mutexes sharing a site nested inside each other is already an
/// ordering hazard.
bool find_path(const Graph& g, std::uint32_t from, std::uint32_t to,
               std::vector<std::uint32_t>* path) {
  if (from == to) {
    *path = {from};
    return true;
  }
  std::unordered_map<std::uint32_t, std::uint32_t> parent;
  std::vector<std::uint32_t> stack{from};
  parent.emplace(from, from);
  while (!stack.empty()) {
    const std::uint32_t cur = stack.back();
    stack.pop_back();
    const auto it = g.out.find(cur);
    if (it == g.out.end()) continue;
    for (const std::uint32_t next : it->second) {
      if (parent.count(next) != 0) continue;
      parent.emplace(next, cur);
      if (next == to) {
        path->clear();
        for (std::uint32_t p = to;; p = parent.at(p)) {
          path->push_back(p);
          if (p == from) break;
        }
        std::reverse(path->begin(), path->end());
        return true;
      }
      stack.push_back(next);
    }
  }
  return false;
}

std::string held_chain_string(const HeldSet& held, const Graph& g) {
  std::ostringstream os;
  os << '[';
  for (int i = 0; i < held.n; ++i) {
    os << (i ? ", " : "") << '\'' << g.site_names[held.sites[i]] << '\'';
  }
  os << ']';
  return os.str();
}

void invoke_handler(const std::string& report) {
  if (sync::LockOrderHandler handler = g_handler.load()) {
    handler(report);
    return;
  }
  std::fprintf(stderr, "%s\n", report.c_str());
  std::abort();
}

/// Bookkeeping-only: the acquisition succeeded (lock or try_lock), add it
/// to this thread's held set.
void note_locked(const Mutex& m) {
  HeldSet& held = t_held;
  if (held.n == HeldSet::kMax) {
    ++held.overflow;
    return;
  }
  held.mutexes[held.n] = &m;
  held.sites[held.n] = m.site_id();
  ++held.n;
}

void note_unlocked(const Mutex& m) {
  HeldSet& held = t_held;
  for (int i = held.n - 1; i >= 0; --i) {
    if (held.mutexes[i] == &m) {
      for (int j = i; j + 1 < held.n; ++j) {
        held.mutexes[j] = held.mutexes[j + 1];
        held.sites[j] = held.sites[j + 1];
      }
      --held.n;
      return;
    }
  }
  if (held.overflow > 0) --held.overflow;
}

/// Runs before a *blocking* acquisition: detects re-entrancy and
/// would-be lock-order cycles while the thread can still be stopped.
void check_before_lock(const Mutex& m) {
  if (!g_checking.load(std::memory_order_relaxed)) return;
  HeldSet& held = t_held;
  if (held.n == 0) return;  // common case: first lock on this thread

  for (int i = 0; i < held.n; ++i) {
    if (held.mutexes[i] == &m) {
      std::ostringstream os;
      os << "lcrs sync: recursive acquisition of mutex site '" << m.site()
         << "' -- this thread already holds it (lcrs::Mutex is "
            "non-reentrant; this lock() would self-deadlock)";
      invoke_handler(os.str());
      return;
    }
  }

  std::optional<std::string> report;
  {
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    const std::uint32_t site = m.site_id();
    for (int i = 0; i < held.n && !report.has_value(); ++i) {
      const std::uint32_t held_site = held.sites[i];
      if (has_edge(g, held_site, site)) continue;  // already known-safe
      std::vector<std::uint32_t> path;
      if (find_path(g, site, held_site, &path)) {
        // Adding held_site -> site would close a cycle: some thread has
        // acquired these sites in the opposite order.
        std::ostringstream os;
        os << "lcrs sync: lock-order violation (potential ABBA deadlock)\n"
           << "  this thread: acquiring '" << g.site_names[site]
           << "' while holding " << held_chain_string(held, g) << "\n"
           << "  conflicting recorded order: ";
        for (std::size_t p = 0; p < path.size(); ++p) {
          os << (p ? " -> " : "") << '\'' << g.site_names[path[p]] << '\'';
        }
        if (path.size() >= 2) {
          const auto it =
              g.edge_chain.find(edge_key(path[0], path[1]));
          if (it != g.edge_chain.end()) {
            os << "\n  first recorded by a thread holding " << it->second
               << " when it acquired '" << g.site_names[path[1]] << '\'';
          }
        } else {
          os << " (same site nested: two '" << g.site_names[site]
             << "' mutexes acquired inside each other)";
        }
        os << "\n  fix: acquire these sites in one global order "
              "everywhere (see DESIGN.md 'Thread-safety model')";
        report = os.str();
      } else {
        g.out[held_site].push_back(site);
        g.edge_chain.emplace(edge_key(held_site, site),
                             held_chain_string(held, g));
      }
    }
  }
  if (report.has_value()) invoke_handler(*report);
}

std::uint32_t register_site(const char* site) {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  const auto it = g.site_ids.find(site);
  if (it != g.site_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(g.site_names.size());
  g.site_names.emplace_back(site);
  g.site_ids.emplace(site, id);
  return id;
}

}  // namespace

Mutex::Mutex(const char* site)
    : site_(site), site_id_(register_site(site)) {}

void Mutex::lock() LCRS_NO_THREAD_SAFETY_ANALYSIS {
  check_before_lock(*this);  // may report (and default-abort) *before*
  mu_.lock();                // this thread can block on a real deadlock
  note_locked(*this);
}

void Mutex::unlock() LCRS_NO_THREAD_SAFETY_ANALYSIS {
  note_unlocked(*this);
  mu_.unlock();
}

bool Mutex::try_lock() LCRS_NO_THREAD_SAFETY_ANALYSIS {
  if (!mu_.try_lock()) return false;
  note_locked(*this);  // no order edge: try_lock cannot deadlock
  return true;
}

namespace sync {

bool lock_order_checking_enabled() {
  return g_checking.load(std::memory_order_relaxed);
}

void set_lock_order_checking(bool on) {
  g_checking.store(on, std::memory_order_relaxed);
}

LockOrderHandler set_lock_order_handler(LockOrderHandler handler) {
  return g_handler.exchange(handler);
}

void reset_lock_order_graph_for_testing() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.out.clear();
  g.edge_chain.clear();
}

std::size_t lock_order_edge_count() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.edge_chain.size();
}

}  // namespace sync

}  // namespace lcrs
