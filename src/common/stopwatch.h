// Monotonic stopwatch for measuring real kernel execution time.
// Deliberately steady_clock, never system_clock: spans and metrics must
// not jump when NTP steps the wall clock mid-measurement.
#pragma once

#include <chrono>

namespace lcrs {

/// Measures elapsed monotonic time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

  /// Elapsed microseconds -- the native unit of the obs histograms.
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lcrs
