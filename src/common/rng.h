// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, dataset
// synthesis, augmentation, network jitter) takes an explicit Rng so
// experiments are reproducible from a single seed. There is deliberately
// no global generator.
#pragma once

#include <cstdint>
#include <random>

#include "common/error.h"

namespace lcrs {

/// A seeded mt19937_64 with convenience draws. Copyable; copies evolve
/// independently, which makes it easy to fork reproducible substreams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5cc5u) : engine_(seed) {}

  /// Forks a child generator whose stream is decorrelated from the parent.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    LCRS_CHECK(lo <= hi, "randint: empty range [" << lo << ", " << hi << "]");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lcrs
