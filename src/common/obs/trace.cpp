#include "common/obs/trace.h"

#include <chrono>

#include "common/error.h"

namespace lcrs::obs {

std::int64_t steady_now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              anchor)
      .count();
}

std::uint64_t next_trace_id() {
  // splitmix64 finalizer over a process-wide counter: deterministic
  // (reproducibility rule bans std::random_device) yet well-mixed, so
  // concurrent clients do not hand out adjacent-looking ids.
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t z =
      counter.fetch_add(1, std::memory_order_relaxed) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return z | 1ull;  // never 0: zero means "untraced" on the wire
}

// ---------------------------------------------------------------------
// RingBufferSink

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  LCRS_CHECK(capacity_ > 0, "RingBufferSink capacity must be positive");
}

void RingBufferSink::emit(const SpanRecord& span) {
  MutexLock lock(mutex_);
  if (buffer_.size() == capacity_) {
    buffer_.pop_front();
    ++dropped_;
  }
  buffer_.push_back(span);
}

std::vector<SpanRecord> RingBufferSink::spans() const {
  MutexLock lock(mutex_);
  return std::vector<SpanRecord>(buffer_.begin(), buffer_.end());
}

std::int64_t RingBufferSink::dropped() const {
  MutexLock lock(mutex_);
  return dropped_;
}

void RingBufferSink::clear() {
  MutexLock lock(mutex_);
  buffer_.clear();
  dropped_ = 0;
}

// ---------------------------------------------------------------------
// JsonlFileSink

JsonlFileSink::JsonlFileSink(const std::string& path) : out_(path) {
  LCRS_CHECK(out_.good(), "JsonlFileSink: cannot open " << path);
}

void JsonlFileSink::emit(const SpanRecord& span) {
  MutexLock lock(mutex_);
  // Span names come from the metric-name catalogue ([a-z0-9_.]), so no
  // JSON escaping is required.
  out_ << "{\"trace_id\":" << span.trace_id << ",\"name\":\"" << span.name
       << "\",\"start_ns\":" << span.start_ns
       << ",\"end_ns\":" << span.end_ns
       << ",\"duration_us\":" << span.duration_us() << "}\n";
}

void JsonlFileSink::flush() {
  MutexLock lock(mutex_);
  out_.flush();
}

// ---------------------------------------------------------------------
// Process-wide sink

namespace {
std::atomic<TraceSink*> g_sink{nullptr};
}  // namespace

void set_trace_sink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* trace_sink() { return g_sink.load(std::memory_order_acquire); }

}  // namespace lcrs::obs
